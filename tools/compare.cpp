#include "tools/compare.hpp"

#include <iomanip>
#include <ostream>

namespace cfgx::tools {
namespace {

using obs::JsonValue;

const JsonValue* find_path(const JsonValue& root,
                           const std::vector<std::string>& path) {
  const JsonValue* node = &root;
  for (const std::string& key : path) {
    if (!node->is_object() || !node->has(key)) return nullptr;
    node = &node->at(key);
  }
  return node;
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& key : path) {
    if (!out.empty()) out += '.';
    out += key;
  }
  return out;
}

class Comparer {
 public:
  Comparer(const JsonValue& baseline, const JsonValue& fresh, double tolerance,
           CompareReport& report)
      : baseline_(baseline), fresh_(fresh), tolerance_(tolerance),
        report_(report) {}

  void structure_failure(const std::string& name, const std::string& note) {
    MetricCheck check;
    check.name = name;
    check.status = CheckStatus::Structure;
    check.note = note;
    report_.checks.push_back(std::move(check));
  }

  // Reads the same numeric path from both documents; registers a
  // structure failure and returns false when either side lacks it.
  bool read_pair(const std::vector<std::string>& path, double& baseline_value,
                 double& fresh_value) {
    const JsonValue* b = find_path(baseline_, path);
    const JsonValue* f = find_path(fresh_, path);
    if (b == nullptr || f == nullptr ||
        b->kind != JsonValue::Kind::Number ||
        f->kind != JsonValue::Kind::Number) {
      structure_failure(join_path(path),
                        b == nullptr || b->kind != JsonValue::Kind::Number
                            ? "missing in baseline"
                            : "missing in fresh run");
      return false;
    }
    baseline_value = b->number_value;
    fresh_value = f->number_value;
    return true;
  }

  // Higher is better: regress when fresh < baseline / tolerance.
  void check_throughput(const std::vector<std::string>& path) {
    MetricCheck check;
    check.name = join_path(path);
    if (!read_pair(path, check.baseline, check.fresh)) return;
    check.ratio = check.baseline > 0.0 ? check.fresh / check.baseline : 1.0;
    if (check.baseline > 0.0 && check.fresh < check.baseline / tolerance_) {
      check.status = CheckStatus::Regressed;
      check.note = "throughput fell more than tolerance";
    }
    report_.checks.push_back(std::move(check));
  }

  // Lower is better: regress when fresh > baseline * tolerance.
  void check_latency(const std::vector<std::string>& path) {
    MetricCheck check;
    check.name = join_path(path);
    if (!read_pair(path, check.baseline, check.fresh)) return;
    check.ratio = check.baseline > 0.0 ? check.fresh / check.baseline : 0.0;
    if (check.baseline > 0.0 && check.fresh > check.baseline * tolerance_) {
      check.status = CheckStatus::Regressed;
      check.note = "latency grew more than tolerance";
    }
    report_.checks.push_back(std::move(check));
  }

  // Exact invariant: when the committed baseline holds `expected` (the
  // "this must stay zero" class), the fresh run must as well.
  void check_invariant(const std::vector<std::string>& path, double expected) {
    MetricCheck check;
    check.name = join_path(path);
    if (!read_pair(path, check.baseline, check.fresh)) return;
    if (check.baseline == expected && check.fresh != expected) {
      check.status = CheckStatus::Regressed;
      check.note = "exact invariant broken (noise cannot explain this)";
    }
    report_.checks.push_back(std::move(check));
  }

  const JsonValue& baseline_;
  const JsonValue& fresh_;
  double tolerance_;
  CompareReport& report_;
};

void compare_serve_v1(Comparer& c) {
  const JsonValue* fresh_ok = find_path(c.fresh_, {"totals", "ok"});
  if (fresh_ok == nullptr || fresh_ok->number_value <= 0.0) {
    c.structure_failure("totals.ok", "fresh run served no requests");
    return;
  }
  c.check_throughput({"explanations_per_second"});
  c.check_latency({"latency", "p50_s"});
  c.check_latency({"latency", "p95_s"});
  c.check_invariant({"totals", "explain_errors"}, 0.0);
  c.check_invariant({"totals", "other"}, 0.0);
  c.check_invariant({"workspace", "bytes_allocated_delta"}, 0.0);
}

void compare_kernels_v2(Comparer& c) {
  const JsonValue* base_isa = find_path(c.baseline_, {"isa"});
  const JsonValue* fresh_isa = find_path(c.fresh_, {"isa"});
  if (base_isa == nullptr || fresh_isa == nullptr ||
      base_isa->string_value != fresh_isa->string_value) {
    c.structure_failure(
        "isa", "baseline and fresh run used different kernel ISAs — "
               "per-case speedups are not comparable");
    return;
  }
  const JsonValue* base_cases = find_path(c.baseline_, {"cases"});
  const JsonValue* fresh_cases = find_path(c.fresh_, {"cases"});
  if (base_cases == nullptr || !base_cases->is_array() ||
      fresh_cases == nullptr || !fresh_cases->is_array()) {
    c.structure_failure("cases", "missing cases array");
    return;
  }
  // Cases are keyed by (name, n): the same kernel pair is measured at
  // several problem sizes and each is its own trajectory.
  const auto case_key = [](const JsonValue& v) {
    std::string key = v.at("name").string_value;
    if (v.has("n")) {
      key += "@n" + std::to_string(
                        static_cast<long long>(v.at("n").number_value));
    }
    return key;
  };
  for (const JsonValue& base_case : base_cases->items) {
    if (!base_case.is_object() || !base_case.has("name")) continue;
    const std::string name = case_key(base_case);
    const JsonValue* fresh_case = nullptr;
    for (const JsonValue& candidate : fresh_cases->items) {
      if (candidate.is_object() && candidate.has("name") &&
          case_key(candidate) == name) {
        fresh_case = &candidate;
        break;
      }
    }
    if (fresh_case == nullptr) {
      c.structure_failure("cases." + name,
                          "case present in baseline, absent in fresh run");
      continue;
    }
    // Per-case comparer rooted at the two case objects; its checks carry
    // the case-qualified name so the report stays readable.
    Comparer case_comparer(base_case, *fresh_case, c.tolerance_, c.report_);
    MetricCheck speedup;
    speedup.name = "cases." + name + ".speedup_mean";
    if (case_comparer.read_pair({"speedup_mean"}, speedup.baseline,
                                speedup.fresh)) {
      speedup.ratio =
          speedup.baseline > 0.0 ? speedup.fresh / speedup.baseline : 1.0;
      if (speedup.baseline > 0.0 &&
          speedup.fresh < speedup.baseline / c.tolerance_) {
        speedup.status = CheckStatus::Regressed;
        speedup.note = "speedup fell more than tolerance";
      }
      c.report_.checks.push_back(std::move(speedup));
    } else {
      c.report_.checks.back().name = std::move(speedup.name);
    }
    MetricCheck alloc;
    alloc.name = "cases." + name + ".workspace_after_loop.bytes_allocated_delta";
    if (case_comparer.read_pair({"workspace_after_loop",
                                 "bytes_allocated_delta"},
                                alloc.baseline, alloc.fresh)) {
      if (alloc.baseline == 0.0 && alloc.fresh != 0.0) {
        alloc.status = CheckStatus::Regressed;
        alloc.note = "zero-allocation invariant broken";
      }
      c.report_.checks.push_back(std::move(alloc));
    } else {
      c.report_.checks.back().name = std::move(alloc.name);
    }
  }
}

}  // namespace

bool CompareReport::ok() const {
  for (const MetricCheck& check : checks) {
    if (check.status != CheckStatus::Ok) return false;
  }
  return true;
}

std::size_t CompareReport::regressions() const {
  std::size_t n = 0;
  for (const MetricCheck& check : checks) {
    if (check.status == CheckStatus::Regressed) ++n;
  }
  return n;
}

std::size_t CompareReport::structure_failures() const {
  std::size_t n = 0;
  for (const MetricCheck& check : checks) {
    if (check.status == CheckStatus::Structure) ++n;
  }
  return n;
}

int CompareReport::exit_code() const {
  if (structure_failures() > 0) return 2;
  if (regressions() > 0) return 1;
  return 0;
}

CompareReport compare_bench_json(const JsonValue& baseline,
                                 const JsonValue& fresh, double tolerance) {
  CompareReport report;
  Comparer comparer(baseline, fresh, tolerance, report);
  if (!baseline.is_object() || !baseline.has("schema") ||
      !fresh.is_object() || !fresh.has("schema")) {
    comparer.structure_failure("schema", "missing schema field");
    return report;
  }
  const std::string& base_schema = baseline.at("schema").string_value;
  const std::string& fresh_schema = fresh.at("schema").string_value;
  if (base_schema != fresh_schema) {
    comparer.structure_failure(
        "schema", "schema drift: baseline " + base_schema + " vs fresh " +
                      fresh_schema);
    return report;
  }
  report.schema = base_schema;
  if (base_schema == "cfgx.bench.serve.v1") {
    compare_serve_v1(comparer);
  } else if (base_schema == "cfgx.bench.kernels.v2") {
    compare_kernels_v2(comparer);
  } else {
    comparer.structure_failure("schema", "unsupported schema " + base_schema);
  }
  return report;
}

void print_report(std::ostream& out, const CompareReport& report) {
  out << "schema: " << (report.schema.empty() ? "<none>" : report.schema)
      << "\n";
  for (const MetricCheck& check : report.checks) {
    const char* verdict = check.status == CheckStatus::Ok          ? "ok"
                          : check.status == CheckStatus::Regressed ? "REGRESSED"
                                                                   : "STRUCTURE";
    out << "  [" << verdict << "] " << check.name;
    if (check.status != CheckStatus::Structure) {
      out << ": baseline " << check.baseline << " fresh " << check.fresh;
      if (check.ratio != 0.0) {
        out << " (x" << std::setprecision(3) << check.ratio
            << std::setprecision(6) << ")";
      }
    }
    if (!check.note.empty()) out << " — " << check.note;
    out << "\n";
  }
  out << (report.ok() ? "PASS" : "FAIL") << ": " << report.checks.size()
      << " checks, " << report.regressions() << " regressions, "
      << report.structure_failures() << " structure failures\n";
}

}  // namespace cfgx::tools
