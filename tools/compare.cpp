#include "tools/compare.hpp"

#include <iomanip>
#include <ostream>
#include <utility>

namespace cfgx::tools {
namespace {

using obs::JsonValue;

const JsonValue* find_path(const JsonValue& root,
                           const std::vector<std::string>& path) {
  const JsonValue* node = &root;
  for (const std::string& key : path) {
    if (!node->is_object() || !node->has(key)) return nullptr;
    node = &node->at(key);
  }
  return node;
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& key : path) {
    if (!out.empty()) out += '.';
    out += key;
  }
  return out;
}

class Comparer {
 public:
  Comparer(const JsonValue& baseline, const JsonValue& fresh, double tolerance,
           CompareReport& report)
      : baseline_(baseline), fresh_(fresh), tolerance_(tolerance),
        report_(report) {}

  void structure_failure(const std::string& name, const std::string& note) {
    MetricCheck check;
    check.name = name;
    check.status = CheckStatus::Structure;
    check.note = note;
    report_.checks.push_back(std::move(check));
  }

  // Reads the same numeric path from both documents; registers a
  // structure failure and returns false when either side lacks it.
  bool read_pair(const std::vector<std::string>& path, double& baseline_value,
                 double& fresh_value) {
    const JsonValue* b = find_path(baseline_, path);
    const JsonValue* f = find_path(fresh_, path);
    if (b == nullptr || f == nullptr ||
        b->kind != JsonValue::Kind::Number ||
        f->kind != JsonValue::Kind::Number) {
      structure_failure(join_path(path),
                        b == nullptr || b->kind != JsonValue::Kind::Number
                            ? "missing in baseline"
                            : "missing in fresh run");
      return false;
    }
    baseline_value = b->number_value;
    fresh_value = f->number_value;
    return true;
  }

  // Higher is better: regress when fresh < baseline / tolerance.
  void check_throughput(const std::vector<std::string>& path) {
    MetricCheck check;
    check.name = join_path(path);
    if (!read_pair(path, check.baseline, check.fresh)) return;
    check.ratio = check.baseline > 0.0 ? check.fresh / check.baseline : 1.0;
    if (check.baseline > 0.0 && check.fresh < check.baseline / tolerance_) {
      check.status = CheckStatus::Regressed;
      check.note = "throughput fell more than tolerance";
    }
    report_.checks.push_back(std::move(check));
  }

  // Lower is better: regress when fresh > baseline * tolerance.
  void check_latency(const std::vector<std::string>& path) {
    MetricCheck check;
    check.name = join_path(path);
    if (!read_pair(path, check.baseline, check.fresh)) return;
    check.ratio = check.baseline > 0.0 ? check.fresh / check.baseline : 0.0;
    if (check.baseline > 0.0 && check.fresh > check.baseline * tolerance_) {
      check.status = CheckStatus::Regressed;
      check.note = "latency grew more than tolerance";
    }
    report_.checks.push_back(std::move(check));
  }

  // Exact invariant: when the committed baseline holds `expected` (the
  // "this must stay zero" class), the fresh run must as well.
  void check_invariant(const std::vector<std::string>& path, double expected) {
    MetricCheck check;
    check.name = join_path(path);
    if (!read_pair(path, check.baseline, check.fresh)) return;
    if (check.baseline == expected && check.fresh != expected) {
      check.status = CheckStatus::Regressed;
      check.note = "exact invariant broken (noise cannot explain this)";
    }
    report_.checks.push_back(std::move(check));
  }

  const JsonValue& baseline_;
  const JsonValue& fresh_;
  double tolerance_;
  CompareReport& report_;
};

void compare_serve_v1(Comparer& c) {
  const JsonValue* fresh_ok = find_path(c.fresh_, {"totals", "ok"});
  if (fresh_ok == nullptr || fresh_ok->number_value <= 0.0) {
    c.structure_failure("totals.ok", "fresh run served no requests");
    return;
  }
  c.check_throughput({"explanations_per_second"});
  c.check_latency({"latency", "p50_s"});
  c.check_latency({"latency", "p95_s"});
  c.check_invariant({"totals", "explain_errors"}, 0.0);
  c.check_invariant({"totals", "other"}, 0.0);
  c.check_invariant({"workspace", "bytes_allocated_delta"}, 0.0);
}

// Cases are keyed by (name, n): the same kernel pair / sweep mode is
// measured at several problem sizes and each is its own trajectory.
std::string case_key(const JsonValue& v) {
  std::string key = v.at("name").string_value;
  if (v.has("n")) {
    key += "@n" +
           std::to_string(static_cast<long long>(v.at("n").number_value));
  }
  return key;
}

// Requires matching `isa` fields (per-case numbers from different kernel
// ISAs are not comparable) and matching `cases` arrays; returns the two
// arrays on success, nullptrs after registering a structure failure.
std::pair<const JsonValue*, const JsonValue*> matched_cases(Comparer& c) {
  const JsonValue* base_isa = find_path(c.baseline_, {"isa"});
  const JsonValue* fresh_isa = find_path(c.fresh_, {"isa"});
  if (base_isa == nullptr || fresh_isa == nullptr ||
      base_isa->string_value != fresh_isa->string_value) {
    c.structure_failure(
        "isa", "baseline and fresh run used different kernel ISAs — "
               "per-case numbers are not comparable");
    return {nullptr, nullptr};
  }
  const JsonValue* base_cases = find_path(c.baseline_, {"cases"});
  const JsonValue* fresh_cases = find_path(c.fresh_, {"cases"});
  if (base_cases == nullptr || !base_cases->is_array() ||
      fresh_cases == nullptr || !fresh_cases->is_array()) {
    c.structure_failure("cases", "missing cases array");
    return {nullptr, nullptr};
  }
  return {base_cases, fresh_cases};
}

const JsonValue* find_case(Comparer& c, const JsonValue& fresh_cases,
                           const std::string& name) {
  for (const JsonValue& candidate : fresh_cases.items) {
    if (candidate.is_object() && candidate.has("name") &&
        case_key(candidate) == name) {
      return &candidate;
    }
  }
  c.structure_failure("cases." + name,
                      "case present in baseline, absent in fresh run");
  return nullptr;
}

void compare_kernels_v2(Comparer& c) {
  const auto [base_cases, fresh_cases] = matched_cases(c);
  if (base_cases == nullptr) return;
  for (const JsonValue& base_case : base_cases->items) {
    if (!base_case.is_object() || !base_case.has("name")) continue;
    const std::string name = case_key(base_case);
    const JsonValue* fresh_case = find_case(c, *fresh_cases, name);
    if (fresh_case == nullptr) continue;
    // Per-case comparer rooted at the two case objects; its checks carry
    // the case-qualified name so the report stays readable.
    Comparer case_comparer(base_case, *fresh_case, c.tolerance_, c.report_);
    MetricCheck speedup;
    speedup.name = "cases." + name + ".speedup_mean";
    if (case_comparer.read_pair({"speedup_mean"}, speedup.baseline,
                                speedup.fresh)) {
      speedup.ratio =
          speedup.baseline > 0.0 ? speedup.fresh / speedup.baseline : 1.0;
      if (speedup.baseline > 0.0 &&
          speedup.fresh < speedup.baseline / c.tolerance_) {
        speedup.status = CheckStatus::Regressed;
        speedup.note = "speedup fell more than tolerance";
      }
      c.report_.checks.push_back(std::move(speedup));
    } else {
      c.report_.checks.back().name = std::move(speedup.name);
    }
    MetricCheck alloc;
    alloc.name = "cases." + name + ".workspace_after_loop.bytes_allocated_delta";
    if (case_comparer.read_pair({"workspace_after_loop",
                                 "bytes_allocated_delta"},
                                alloc.baseline, alloc.fresh)) {
      if (alloc.baseline == 0.0 && alloc.fresh != 0.0) {
        alloc.status = CheckStatus::Regressed;
        alloc.note = "zero-allocation invariant broken";
      }
      c.report_.checks.push_back(std::move(alloc));
    } else {
      c.report_.checks.back().name = std::move(alloc.name);
    }
  }
}

// Size-sweep trajectory (bench/scaling_sweep). Wall-clock per explanation
// is banded per sweep point; the coarsener's reduction ratio and the
// fidelity@20% of the projected rankings are pure functions of the seeded
// graphs, so those are drift checks, not bands. The headline
// reduced@largest-vs-full@smallest ratio carries a hard ceiling: the
// paper-scale claim the baseline was committed under.
void compare_scaling_v1(Comparer& c) {
  const auto [base_cases, fresh_cases] = matched_cases(c);
  if (base_cases == nullptr) return;
  for (const JsonValue& base_case : base_cases->items) {
    if (!base_case.is_object() || !base_case.has("name")) continue;
    const std::string name = case_key(base_case);
    const JsonValue* fresh_case = find_case(c, *fresh_cases, name);
    if (fresh_case == nullptr) continue;
    Comparer case_comparer(base_case, *fresh_case, c.tolerance_, c.report_);

    MetricCheck latency;
    latency.name = "cases." + name + ".per_explanation.mean_ms";
    if (case_comparer.read_pair({"per_explanation", "mean_ms"},
                                latency.baseline, latency.fresh)) {
      latency.ratio =
          latency.baseline > 0.0 ? latency.fresh / latency.baseline : 0.0;
      if (latency.baseline > 0.0 &&
          latency.fresh > latency.baseline * c.tolerance_) {
        latency.status = CheckStatus::Regressed;
        latency.note = "per-explanation latency grew more than tolerance";
      }
      c.report_.checks.push_back(std::move(latency));
    } else {
      c.report_.checks.back().name = std::move(latency.name);
    }

    MetricCheck ratio;
    ratio.name = "cases." + name + ".reduction_ratio";
    if (case_comparer.read_pair({"reduction_ratio"}, ratio.baseline,
                                ratio.fresh)) {
      if (ratio.fresh <= 0.0) {
        ratio.status = CheckStatus::Regressed;
        ratio.note = "reduction ratio must stay positive "
                     "(coarsening may never empty a graph)";
      } else if (ratio.fresh != ratio.baseline) {
        ratio.status = CheckStatus::Regressed;
        ratio.note = "deterministic coarsening drifted "
                     "(same seeds must reduce identically)";
      }
      c.report_.checks.push_back(std::move(ratio));
    } else {
      c.report_.checks.back().name = std::move(ratio.name);
    }

    MetricCheck fidelity;
    fidelity.name = "cases." + name + ".fidelity_at_20";
    if (case_comparer.read_pair({"fidelity_at_20"}, fidelity.baseline,
                                fidelity.fresh)) {
      // Allow one graph's verdict to flip (libm differences can perturb
      // near-tied predictions); more than that is a real quality change.
      if (fidelity.fresh + 0.34 < fidelity.baseline) {
        fidelity.status = CheckStatus::Regressed;
        fidelity.note = "fidelity@20% fell beyond one-graph noise";
      }
      c.report_.checks.push_back(std::move(fidelity));
    } else {
      c.report_.checks.back().name = std::move(fidelity.name);
    }
  }

  MetricCheck headline;
  headline.name = "summary.reduced_largest_over_full_smallest";
  if (c.read_pair({"summary", "reduced_largest_over_full_smallest"},
                  headline.baseline, headline.fresh)) {
    headline.ratio =
        headline.baseline > 0.0 ? headline.fresh / headline.baseline : 0.0;
    if (headline.fresh > 10.0 * c.tolerance_) {
      headline.status = CheckStatus::Regressed;
      headline.note = "paper-scale ceiling broken: reduced@largest must stay "
                      "within 10x of full@smallest";
    }
    c.report_.checks.push_back(std::move(headline));
  } else {
    c.report_.checks.back().name = std::move(headline.name);
  }
}

}  // namespace

bool CompareReport::ok() const {
  for (const MetricCheck& check : checks) {
    if (check.status != CheckStatus::Ok) return false;
  }
  return true;
}

std::size_t CompareReport::regressions() const {
  std::size_t n = 0;
  for (const MetricCheck& check : checks) {
    if (check.status == CheckStatus::Regressed) ++n;
  }
  return n;
}

std::size_t CompareReport::structure_failures() const {
  std::size_t n = 0;
  for (const MetricCheck& check : checks) {
    if (check.status == CheckStatus::Structure) ++n;
  }
  return n;
}

int CompareReport::exit_code() const {
  if (structure_failures() > 0) return 2;
  if (regressions() > 0) return 1;
  return 0;
}

CompareReport compare_bench_json(const JsonValue& baseline,
                                 const JsonValue& fresh, double tolerance) {
  CompareReport report;
  Comparer comparer(baseline, fresh, tolerance, report);
  if (!baseline.is_object() || !baseline.has("schema") ||
      !fresh.is_object() || !fresh.has("schema")) {
    comparer.structure_failure("schema", "missing schema field");
    return report;
  }
  const std::string& base_schema = baseline.at("schema").string_value;
  const std::string& fresh_schema = fresh.at("schema").string_value;
  if (base_schema != fresh_schema) {
    comparer.structure_failure(
        "schema", "schema drift: baseline " + base_schema + " vs fresh " +
                      fresh_schema);
    return report;
  }
  report.schema = base_schema;
  if (base_schema == "cfgx.bench.serve.v1") {
    compare_serve_v1(comparer);
  } else if (base_schema == "cfgx.bench.kernels.v2") {
    compare_kernels_v2(comparer);
  } else if (base_schema == "cfgx.bench.scaling.v1") {
    compare_scaling_v1(comparer);
  } else {
    comparer.structure_failure("schema", "unsupported schema " + base_schema);
  }
  return report;
}

void print_report(std::ostream& out, const CompareReport& report) {
  out << "schema: " << (report.schema.empty() ? "<none>" : report.schema)
      << "\n";
  for (const MetricCheck& check : report.checks) {
    const char* verdict = check.status == CheckStatus::Ok          ? "ok"
                          : check.status == CheckStatus::Regressed ? "REGRESSED"
                                                                   : "STRUCTURE";
    out << "  [" << verdict << "] " << check.name;
    if (check.status != CheckStatus::Structure) {
      out << ": baseline " << check.baseline << " fresh " << check.fresh;
      if (check.ratio != 0.0) {
        out << " (x" << std::setprecision(3) << check.ratio
            << std::setprecision(6) << ")";
      }
    }
    if (!check.note.empty()) out << " — " << check.note;
    out << "\n";
  }
  out << (report.ok() ? "PASS" : "FAIL") << ": " << report.checks.size()
      << " checks, " << report.regressions() << " regressions, "
      << report.structure_failures() << " structure failures\n";
}

}  // namespace cfgx::tools
