// Schema-aware bench-baseline differ (the library behind bench_compare).
//
// Compares a fresh bench JSON against a committed baseline and classifies
// every metric as ok / regressed, with a hard "structure" failure class
// for anything that makes the comparison meaningless (unknown or
// mismatched schema, a baseline case missing from the fresh run, ISA
// mismatch between kernels files). This is the CI gate that finally READS
// the BENCH_*.json trajectory instead of merely uploading it.
//
// Tolerance model: wall-clock metrics move with the machine, so every
// check is a RATIO band, not an absolute one. A throughput-like metric
// regresses when fresh < baseline / tolerance; a latency-like metric when
// fresh > baseline * tolerance. Counter invariants (explain errors stay
// zero, the zero-allocation steady state stays zero) are exact — noise
// cannot explain those.
//
// Supported schemas:
//   * cfgx.bench.serve.v1   (bench/serve_throughput)
//   * cfgx.bench.kernels.v2 (bench/micro_kernels --kernels-baseline)
//   * cfgx.bench.scaling.v1 (bench/scaling_sweep)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cfgx::tools {

enum class CheckStatus { Ok, Regressed, Structure };

struct MetricCheck {
  std::string name;
  CheckStatus status = CheckStatus::Ok;
  double baseline = 0.0;
  double fresh = 0.0;
  // fresh/baseline for throughput-like, baseline-relative growth for
  // latency-like; 0 when not a ratio check.
  double ratio = 0.0;
  std::string note;
};

struct CompareReport {
  std::string schema;
  std::vector<MetricCheck> checks;

  bool ok() const;
  std::size_t regressions() const;
  std::size_t structure_failures() const;
  // 0 ok, 1 metric regression, 2 structure/schema drift.
  int exit_code() const;
};

// Both documents must carry the same supported "schema" field; anything
// else yields a report with a single Structure check. `tolerance` >= 1
// scales every ratio band (2.0 = fail only on >2x moves).
CompareReport compare_bench_json(const obs::JsonValue& baseline,
                                 const obs::JsonValue& fresh,
                                 double tolerance);

// Human-readable table of every check, one line each.
void print_report(std::ostream& out, const CompareReport& report);

}  // namespace cfgx::tools
