// bench_compare: gate a fresh bench JSON against a committed baseline.
//
//   bench_compare --baseline BENCH_serve.json --fresh /tmp/serve.json
//                 --tolerance 4.0
//
// Exit codes: 0 all checks within tolerance, 1 at least one metric
// regression, 2 structure failure (schema drift, missing case, ISA
// mismatch) or unreadable input. CI runs this against both committed
// baselines after regenerating the JSONs on the runner.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "tools/compare.hpp"
#include "util/cli.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cfgx::CliArgs args(argc, argv);
  const std::string baseline_path = args.get_string("baseline", "");
  const std::string fresh_path = args.get_string("fresh", "");
  const double tolerance = args.get_double("tolerance", 2.0);
  if (baseline_path.empty() || fresh_path.empty() || tolerance < 1.0) {
    std::cerr << "usage: bench_compare --baseline FILE --fresh FILE"
                 " [--tolerance RATIO>=1]\n";
    return 2;
  }

  std::string baseline_text;
  std::string fresh_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::cerr << "bench_compare: cannot read baseline " << baseline_path
              << "\n";
    return 2;
  }
  if (!read_file(fresh_path, fresh_text)) {
    std::cerr << "bench_compare: cannot read fresh " << fresh_path << "\n";
    return 2;
  }

  cfgx::obs::JsonValue baseline;
  cfgx::obs::JsonValue fresh;
  try {
    baseline = cfgx::obs::JsonValue::parse(baseline_text);
    fresh = cfgx::obs::JsonValue::parse(fresh_text);
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: JSON parse failure: " << e.what() << "\n";
    return 2;
  }

  const cfgx::tools::CompareReport report =
      cfgx::tools::compare_bench_json(baseline, fresh, tolerance);
  std::cout << "baseline: " << baseline_path << "\nfresh:    " << fresh_path
            << "\ntolerance: " << tolerance << "x\n";
  cfgx::tools::print_report(std::cout, report);
  return report.exit_code();
}
