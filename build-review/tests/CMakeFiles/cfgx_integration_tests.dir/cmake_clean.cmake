file(REMOVE_RECURSE
  "CMakeFiles/cfgx_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/cfgx_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "cfgx_integration_tests"
  "cfgx_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
