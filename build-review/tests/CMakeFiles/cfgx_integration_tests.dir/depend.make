# Empty dependencies file for cfgx_integration_tests.
# This may be replaced when dependencies are built.
