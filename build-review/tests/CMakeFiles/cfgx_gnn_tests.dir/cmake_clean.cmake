file(REMOVE_RECURSE
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/classifier_test.cpp.o"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/classifier_test.cpp.o.d"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/gcn_test.cpp.o"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/gcn_test.cpp.o.d"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/metrics_test.cpp.o"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/metrics_test.cpp.o.d"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/trainer_test.cpp.o"
  "CMakeFiles/cfgx_gnn_tests.dir/gnn/trainer_test.cpp.o.d"
  "cfgx_gnn_tests"
  "cfgx_gnn_tests.pdb"
  "cfgx_gnn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_gnn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
