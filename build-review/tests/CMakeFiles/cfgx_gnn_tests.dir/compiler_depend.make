# Empty compiler generated dependencies file for cfgx_gnn_tests.
# This may be replaced when dependencies are built.
