# Empty compiler generated dependencies file for cfgx_proptest_tests.
# This may be replaced when dependencies are built.
