file(REMOVE_RECURSE
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/determinism_test.cpp.o"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/determinism_test.cpp.o.d"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/kernels_oracle_test.cpp.o"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/kernels_oracle_test.cpp.o.d"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/metamorphic_test.cpp.o"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/metamorphic_test.cpp.o.d"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/selftest.cpp.o"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/selftest.cpp.o.d"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/serialize_oracle_test.cpp.o"
  "CMakeFiles/cfgx_proptest_tests.dir/proptest/serialize_oracle_test.cpp.o.d"
  "cfgx_proptest_tests"
  "cfgx_proptest_tests.pdb"
  "cfgx_proptest_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_proptest_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
