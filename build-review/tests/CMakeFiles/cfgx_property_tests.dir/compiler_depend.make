# Empty compiler generated dependencies file for cfgx_property_tests.
# This may be replaced when dependencies are built.
