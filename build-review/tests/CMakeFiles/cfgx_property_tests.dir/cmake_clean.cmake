file(REMOVE_RECURSE
  "CMakeFiles/cfgx_property_tests.dir/integration/property_test.cpp.o"
  "CMakeFiles/cfgx_property_tests.dir/integration/property_test.cpp.o.d"
  "cfgx_property_tests"
  "cfgx_property_tests.pdb"
  "cfgx_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
