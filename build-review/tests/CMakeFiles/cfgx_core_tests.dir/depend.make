# Empty dependencies file for cfgx_core_tests.
# This may be replaced when dependencies are built.
