file(REMOVE_RECURSE
  "CMakeFiles/cfgx_core_tests.dir/core/explainer_model_test.cpp.o"
  "CMakeFiles/cfgx_core_tests.dir/core/explainer_model_test.cpp.o.d"
  "CMakeFiles/cfgx_core_tests.dir/core/interpreter_test.cpp.o"
  "CMakeFiles/cfgx_core_tests.dir/core/interpreter_test.cpp.o.d"
  "CMakeFiles/cfgx_core_tests.dir/core/trainer_test.cpp.o"
  "CMakeFiles/cfgx_core_tests.dir/core/trainer_test.cpp.o.d"
  "cfgx_core_tests"
  "cfgx_core_tests.pdb"
  "cfgx_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
