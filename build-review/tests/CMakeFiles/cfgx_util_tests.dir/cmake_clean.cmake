file(REMOVE_RECURSE
  "CMakeFiles/cfgx_util_tests.dir/util/cli_test.cpp.o"
  "CMakeFiles/cfgx_util_tests.dir/util/cli_test.cpp.o.d"
  "CMakeFiles/cfgx_util_tests.dir/util/logging_test.cpp.o"
  "CMakeFiles/cfgx_util_tests.dir/util/logging_test.cpp.o.d"
  "CMakeFiles/cfgx_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/cfgx_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/cfgx_util_tests.dir/util/table_test.cpp.o"
  "CMakeFiles/cfgx_util_tests.dir/util/table_test.cpp.o.d"
  "CMakeFiles/cfgx_util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/cfgx_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/cfgx_util_tests.dir/util/timer_test.cpp.o"
  "CMakeFiles/cfgx_util_tests.dir/util/timer_test.cpp.o.d"
  "cfgx_util_tests"
  "cfgx_util_tests.pdb"
  "cfgx_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
