# Empty compiler generated dependencies file for cfgx_util_tests.
# This may be replaced when dependencies are built.
