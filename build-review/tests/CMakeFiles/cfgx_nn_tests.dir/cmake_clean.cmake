file(REMOVE_RECURSE
  "CMakeFiles/cfgx_nn_tests.dir/nn/gradcheck_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/gradcheck_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/layers_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/loss_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/matrix_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/matrix_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/optimizer_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/optimizer_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/sequential_extra_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/sequential_extra_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/serialize_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/serialize_test.cpp.o.d"
  "CMakeFiles/cfgx_nn_tests.dir/nn/sparse_test.cpp.o"
  "CMakeFiles/cfgx_nn_tests.dir/nn/sparse_test.cpp.o.d"
  "cfgx_nn_tests"
  "cfgx_nn_tests.pdb"
  "cfgx_nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
