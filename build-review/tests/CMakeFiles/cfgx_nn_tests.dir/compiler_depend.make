# Empty compiler generated dependencies file for cfgx_nn_tests.
# This may be replaced when dependencies are built.
