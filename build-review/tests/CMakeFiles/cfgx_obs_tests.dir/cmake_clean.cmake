file(REMOVE_RECURSE
  "CMakeFiles/cfgx_obs_tests.dir/obs/json_test.cpp.o"
  "CMakeFiles/cfgx_obs_tests.dir/obs/json_test.cpp.o.d"
  "CMakeFiles/cfgx_obs_tests.dir/obs/manifest_test.cpp.o"
  "CMakeFiles/cfgx_obs_tests.dir/obs/manifest_test.cpp.o.d"
  "CMakeFiles/cfgx_obs_tests.dir/obs/metrics_test.cpp.o"
  "CMakeFiles/cfgx_obs_tests.dir/obs/metrics_test.cpp.o.d"
  "CMakeFiles/cfgx_obs_tests.dir/obs/trace_test.cpp.o"
  "CMakeFiles/cfgx_obs_tests.dir/obs/trace_test.cpp.o.d"
  "cfgx_obs_tests"
  "cfgx_obs_tests.pdb"
  "cfgx_obs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_obs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
