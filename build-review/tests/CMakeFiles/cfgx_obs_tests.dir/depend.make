# Empty dependencies file for cfgx_obs_tests.
# This may be replaced when dependencies are built.
