# Empty compiler generated dependencies file for cfgx_explain_tests.
# This may be replaced when dependencies are built.
