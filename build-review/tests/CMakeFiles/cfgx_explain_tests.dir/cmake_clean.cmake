file(REMOVE_RECURSE
  "CMakeFiles/cfgx_explain_tests.dir/explain/api_test.cpp.o"
  "CMakeFiles/cfgx_explain_tests.dir/explain/api_test.cpp.o.d"
  "CMakeFiles/cfgx_explain_tests.dir/explain/evaluate_test.cpp.o"
  "CMakeFiles/cfgx_explain_tests.dir/explain/evaluate_test.cpp.o.d"
  "CMakeFiles/cfgx_explain_tests.dir/explain/explainers_test.cpp.o"
  "CMakeFiles/cfgx_explain_tests.dir/explain/explainers_test.cpp.o.d"
  "CMakeFiles/cfgx_explain_tests.dir/explain/parallel_test.cpp.o"
  "CMakeFiles/cfgx_explain_tests.dir/explain/parallel_test.cpp.o.d"
  "cfgx_explain_tests"
  "cfgx_explain_tests.pdb"
  "cfgx_explain_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_explain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
