file(REMOVE_RECURSE
  "CMakeFiles/cfgx_bench_tests.dir/bench/common_test.cpp.o"
  "CMakeFiles/cfgx_bench_tests.dir/bench/common_test.cpp.o.d"
  "cfgx_bench_tests"
  "cfgx_bench_tests.pdb"
  "cfgx_bench_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_bench_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
