# Empty compiler generated dependencies file for cfgx_bench_tests.
# This may be replaced when dependencies are built.
