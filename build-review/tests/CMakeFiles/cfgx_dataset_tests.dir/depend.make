# Empty dependencies file for cfgx_dataset_tests.
# This may be replaced when dependencies are built.
