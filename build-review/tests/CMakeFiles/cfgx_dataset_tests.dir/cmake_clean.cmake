file(REMOVE_RECURSE
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/codegen_test.cpp.o"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/codegen_test.cpp.o.d"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/corpus_test.cpp.o"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/corpus_test.cpp.o.d"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/families_test.cpp.o"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/families_test.cpp.o.d"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/family_signatures_test.cpp.o"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/family_signatures_test.cpp.o.d"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/generator_test.cpp.o"
  "CMakeFiles/cfgx_dataset_tests.dir/dataset/generator_test.cpp.o.d"
  "cfgx_dataset_tests"
  "cfgx_dataset_tests.pdb"
  "cfgx_dataset_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_dataset_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
