# Empty compiler generated dependencies file for cfgx_isa_tests.
# This may be replaced when dependencies are built.
