file(REMOVE_RECURSE
  "CMakeFiles/cfgx_isa_tests.dir/isa/features_test.cpp.o"
  "CMakeFiles/cfgx_isa_tests.dir/isa/features_test.cpp.o.d"
  "CMakeFiles/cfgx_isa_tests.dir/isa/instruction_test.cpp.o"
  "CMakeFiles/cfgx_isa_tests.dir/isa/instruction_test.cpp.o.d"
  "CMakeFiles/cfgx_isa_tests.dir/isa/lifter_test.cpp.o"
  "CMakeFiles/cfgx_isa_tests.dir/isa/lifter_test.cpp.o.d"
  "CMakeFiles/cfgx_isa_tests.dir/isa/patterns_test.cpp.o"
  "CMakeFiles/cfgx_isa_tests.dir/isa/patterns_test.cpp.o.d"
  "CMakeFiles/cfgx_isa_tests.dir/isa/program_test.cpp.o"
  "CMakeFiles/cfgx_isa_tests.dir/isa/program_test.cpp.o.d"
  "cfgx_isa_tests"
  "cfgx_isa_tests.pdb"
  "cfgx_isa_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_isa_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
