# Empty compiler generated dependencies file for cfgx_graph_tests.
# This may be replaced when dependencies are built.
