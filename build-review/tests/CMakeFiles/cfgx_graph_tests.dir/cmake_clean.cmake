file(REMOVE_RECURSE
  "CMakeFiles/cfgx_graph_tests.dir/graph/acfg_test.cpp.o"
  "CMakeFiles/cfgx_graph_tests.dir/graph/acfg_test.cpp.o.d"
  "CMakeFiles/cfgx_graph_tests.dir/graph/dot_test.cpp.o"
  "CMakeFiles/cfgx_graph_tests.dir/graph/dot_test.cpp.o.d"
  "CMakeFiles/cfgx_graph_tests.dir/graph/ops_test.cpp.o"
  "CMakeFiles/cfgx_graph_tests.dir/graph/ops_test.cpp.o.d"
  "CMakeFiles/cfgx_graph_tests.dir/graph/serialize_test.cpp.o"
  "CMakeFiles/cfgx_graph_tests.dir/graph/serialize_test.cpp.o.d"
  "cfgx_graph_tests"
  "cfgx_graph_tests.pdb"
  "cfgx_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
