
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/acfg_test.cpp" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/acfg_test.cpp.o" "gcc" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/acfg_test.cpp.o.d"
  "/root/repo/tests/graph/dot_test.cpp" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/dot_test.cpp.o" "gcc" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/dot_test.cpp.o.d"
  "/root/repo/tests/graph/ops_test.cpp" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/ops_test.cpp.o" "gcc" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/ops_test.cpp.o.d"
  "/root/repo/tests/graph/serialize_test.cpp" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/cfgx_graph_tests.dir/graph/serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/explain/CMakeFiles/cfgx_explain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/cfgx_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gnn/CMakeFiles/cfgx_gnn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/proptest/CMakeFiles/cfgx_proptest.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dataset/CMakeFiles/cfgx_dataset.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/cfgx_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/cfgx_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/cfgx_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/cfgx_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/cfgx_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
