# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/cfgx_obs_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_util_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_nn_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_graph_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_isa_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_dataset_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_gnn_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_core_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_explain_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_property_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_proptest_tests[1]_include.cmake")
include("/root/repo/build-review/tests/cfgx_bench_tests[1]_include.cmake")
add_test(cfgx_integration "/root/repo/build-review/tests/cfgx_integration_tests")
set_tests_properties(cfgx_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;105;add_test;/root/repo/tests/CMakeLists.txt;0;")
