# Empty compiler generated dependencies file for figure2_accuracy_curves.
# This may be replaced when dependencies are built.
