file(REMOVE_RECURSE
  "CMakeFiles/figure2_accuracy_curves.dir/figure2_accuracy_curves.cpp.o"
  "CMakeFiles/figure2_accuracy_curves.dir/figure2_accuracy_curves.cpp.o.d"
  "figure2_accuracy_curves"
  "figure2_accuracy_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_accuracy_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
