file(REMOVE_RECURSE
  "CMakeFiles/gnn_training.dir/gnn_training.cpp.o"
  "CMakeFiles/gnn_training.dir/gnn_training.cpp.o.d"
  "gnn_training"
  "gnn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
