# Empty dependencies file for gnn_training.
# This may be replaced when dependencies are built.
