# Empty dependencies file for ablation_stability.
# This may be replaced when dependencies are built.
