file(REMOVE_RECURSE
  "CMakeFiles/ablation_stability.dir/ablation_stability.cpp.o"
  "CMakeFiles/ablation_stability.dir/ablation_stability.cpp.o.d"
  "ablation_stability"
  "ablation_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
