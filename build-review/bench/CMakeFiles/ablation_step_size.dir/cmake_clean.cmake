file(REMOVE_RECURSE
  "CMakeFiles/ablation_step_size.dir/ablation_step_size.cpp.o"
  "CMakeFiles/ablation_step_size.dir/ablation_step_size.cpp.o.d"
  "ablation_step_size"
  "ablation_step_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_step_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
