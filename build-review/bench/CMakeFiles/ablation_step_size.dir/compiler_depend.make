# Empty compiler generated dependencies file for ablation_step_size.
# This may be replaced when dependencies are built.
