file(REMOVE_RECURSE
  "CMakeFiles/ablation_scoring.dir/ablation_scoring.cpp.o"
  "CMakeFiles/ablation_scoring.dir/ablation_scoring.cpp.o.d"
  "ablation_scoring"
  "ablation_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
