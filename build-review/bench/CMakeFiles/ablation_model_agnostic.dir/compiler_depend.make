# Empty compiler generated dependencies file for ablation_model_agnostic.
# This may be replaced when dependencies are built.
