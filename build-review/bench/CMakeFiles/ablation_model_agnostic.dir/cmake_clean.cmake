file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_agnostic.dir/ablation_model_agnostic.cpp.o"
  "CMakeFiles/ablation_model_agnostic.dir/ablation_model_agnostic.cpp.o.d"
  "ablation_model_agnostic"
  "ablation_model_agnostic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_agnostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
