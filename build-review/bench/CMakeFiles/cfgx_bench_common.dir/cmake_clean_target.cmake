file(REMOVE_RECURSE
  "libcfgx_bench_common.a"
)
