file(REMOVE_RECURSE
  "CMakeFiles/cfgx_bench_common.dir/common.cpp.o"
  "CMakeFiles/cfgx_bench_common.dir/common.cpp.o.d"
  "libcfgx_bench_common.a"
  "libcfgx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
