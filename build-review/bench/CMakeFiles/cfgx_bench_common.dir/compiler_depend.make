# Empty compiler generated dependencies file for cfgx_bench_common.
# This may be replaced when dependencies are built.
