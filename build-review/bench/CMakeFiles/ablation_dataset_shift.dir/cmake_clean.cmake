file(REMOVE_RECURSE
  "CMakeFiles/ablation_dataset_shift.dir/ablation_dataset_shift.cpp.o"
  "CMakeFiles/ablation_dataset_shift.dir/ablation_dataset_shift.cpp.o.d"
  "ablation_dataset_shift"
  "ablation_dataset_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dataset_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
