# Empty compiler generated dependencies file for ablation_dataset_shift.
# This may be replaced when dependencies are built.
