file(REMOVE_RECURSE
  "CMakeFiles/table4_explanation_time.dir/table4_explanation_time.cpp.o"
  "CMakeFiles/table4_explanation_time.dir/table4_explanation_time.cpp.o.d"
  "table4_explanation_time"
  "table4_explanation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_explanation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
