# Empty dependencies file for table4_explanation_time.
# This may be replaced when dependencies are built.
