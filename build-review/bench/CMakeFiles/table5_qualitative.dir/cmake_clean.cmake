file(REMOVE_RECURSE
  "CMakeFiles/table5_qualitative.dir/table5_qualitative.cpp.o"
  "CMakeFiles/table5_qualitative.dir/table5_qualitative.cpp.o.d"
  "table5_qualitative"
  "table5_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
