# Empty dependencies file for table5_qualitative.
# This may be replaced when dependencies are built.
