
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/acfg.cpp" "src/graph/CMakeFiles/cfgx_graph.dir/acfg.cpp.o" "gcc" "src/graph/CMakeFiles/cfgx_graph.dir/acfg.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/cfgx_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/cfgx_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/ops.cpp" "src/graph/CMakeFiles/cfgx_graph.dir/ops.cpp.o" "gcc" "src/graph/CMakeFiles/cfgx_graph.dir/ops.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/graph/CMakeFiles/cfgx_graph.dir/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/cfgx_graph.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/nn/CMakeFiles/cfgx_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/cfgx_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/cfgx_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
