file(REMOVE_RECURSE
  "libcfgx_graph.a"
)
