# Empty compiler generated dependencies file for cfgx_graph.
# This may be replaced when dependencies are built.
