file(REMOVE_RECURSE
  "CMakeFiles/cfgx_graph.dir/acfg.cpp.o"
  "CMakeFiles/cfgx_graph.dir/acfg.cpp.o.d"
  "CMakeFiles/cfgx_graph.dir/dot.cpp.o"
  "CMakeFiles/cfgx_graph.dir/dot.cpp.o.d"
  "CMakeFiles/cfgx_graph.dir/ops.cpp.o"
  "CMakeFiles/cfgx_graph.dir/ops.cpp.o.d"
  "CMakeFiles/cfgx_graph.dir/serialize.cpp.o"
  "CMakeFiles/cfgx_graph.dir/serialize.cpp.o.d"
  "libcfgx_graph.a"
  "libcfgx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
