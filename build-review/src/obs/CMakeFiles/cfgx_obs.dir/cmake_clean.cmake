file(REMOVE_RECURSE
  "CMakeFiles/cfgx_obs.dir/json.cpp.o"
  "CMakeFiles/cfgx_obs.dir/json.cpp.o.d"
  "CMakeFiles/cfgx_obs.dir/manifest.cpp.o"
  "CMakeFiles/cfgx_obs.dir/manifest.cpp.o.d"
  "CMakeFiles/cfgx_obs.dir/metrics.cpp.o"
  "CMakeFiles/cfgx_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/cfgx_obs.dir/trace.cpp.o"
  "CMakeFiles/cfgx_obs.dir/trace.cpp.o.d"
  "libcfgx_obs.a"
  "libcfgx_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
