# Empty dependencies file for cfgx_obs.
# This may be replaced when dependencies are built.
