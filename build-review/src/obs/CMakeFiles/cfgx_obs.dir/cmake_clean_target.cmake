file(REMOVE_RECURSE
  "libcfgx_obs.a"
)
