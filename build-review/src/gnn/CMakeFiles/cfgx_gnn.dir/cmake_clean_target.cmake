file(REMOVE_RECURSE
  "libcfgx_gnn.a"
)
