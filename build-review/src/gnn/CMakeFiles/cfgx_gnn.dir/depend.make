# Empty dependencies file for cfgx_gnn.
# This may be replaced when dependencies are built.
