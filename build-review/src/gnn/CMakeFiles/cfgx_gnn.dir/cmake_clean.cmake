file(REMOVE_RECURSE
  "CMakeFiles/cfgx_gnn.dir/classifier.cpp.o"
  "CMakeFiles/cfgx_gnn.dir/classifier.cpp.o.d"
  "CMakeFiles/cfgx_gnn.dir/gcn.cpp.o"
  "CMakeFiles/cfgx_gnn.dir/gcn.cpp.o.d"
  "CMakeFiles/cfgx_gnn.dir/metrics.cpp.o"
  "CMakeFiles/cfgx_gnn.dir/metrics.cpp.o.d"
  "CMakeFiles/cfgx_gnn.dir/trainer.cpp.o"
  "CMakeFiles/cfgx_gnn.dir/trainer.cpp.o.d"
  "libcfgx_gnn.a"
  "libcfgx_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
