file(REMOVE_RECURSE
  "libcfgx_isa.a"
)
