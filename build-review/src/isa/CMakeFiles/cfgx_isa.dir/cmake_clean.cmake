file(REMOVE_RECURSE
  "CMakeFiles/cfgx_isa.dir/features.cpp.o"
  "CMakeFiles/cfgx_isa.dir/features.cpp.o.d"
  "CMakeFiles/cfgx_isa.dir/instruction.cpp.o"
  "CMakeFiles/cfgx_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/cfgx_isa.dir/lifter.cpp.o"
  "CMakeFiles/cfgx_isa.dir/lifter.cpp.o.d"
  "CMakeFiles/cfgx_isa.dir/patterns.cpp.o"
  "CMakeFiles/cfgx_isa.dir/patterns.cpp.o.d"
  "CMakeFiles/cfgx_isa.dir/program.cpp.o"
  "CMakeFiles/cfgx_isa.dir/program.cpp.o.d"
  "libcfgx_isa.a"
  "libcfgx_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
