
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/features.cpp" "src/isa/CMakeFiles/cfgx_isa.dir/features.cpp.o" "gcc" "src/isa/CMakeFiles/cfgx_isa.dir/features.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/cfgx_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/cfgx_isa.dir/instruction.cpp.o.d"
  "/root/repo/src/isa/lifter.cpp" "src/isa/CMakeFiles/cfgx_isa.dir/lifter.cpp.o" "gcc" "src/isa/CMakeFiles/cfgx_isa.dir/lifter.cpp.o.d"
  "/root/repo/src/isa/patterns.cpp" "src/isa/CMakeFiles/cfgx_isa.dir/patterns.cpp.o" "gcc" "src/isa/CMakeFiles/cfgx_isa.dir/patterns.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/isa/CMakeFiles/cfgx_isa.dir/program.cpp.o" "gcc" "src/isa/CMakeFiles/cfgx_isa.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/cfgx_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/cfgx_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/cfgx_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/cfgx_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
