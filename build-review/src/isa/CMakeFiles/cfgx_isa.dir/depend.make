# Empty dependencies file for cfgx_isa.
# This may be replaced when dependencies are built.
