file(REMOVE_RECURSE
  "libcfgx_core.a"
)
