file(REMOVE_RECURSE
  "CMakeFiles/cfgx_core.dir/explainer_model.cpp.o"
  "CMakeFiles/cfgx_core.dir/explainer_model.cpp.o.d"
  "CMakeFiles/cfgx_core.dir/interpreter.cpp.o"
  "CMakeFiles/cfgx_core.dir/interpreter.cpp.o.d"
  "CMakeFiles/cfgx_core.dir/trainer.cpp.o"
  "CMakeFiles/cfgx_core.dir/trainer.cpp.o.d"
  "libcfgx_core.a"
  "libcfgx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
