# Empty compiler generated dependencies file for cfgx_core.
# This may be replaced when dependencies are built.
