file(REMOVE_RECURSE
  "libcfgx_proptest.a"
)
