# Empty dependencies file for cfgx_proptest.
# This may be replaced when dependencies are built.
