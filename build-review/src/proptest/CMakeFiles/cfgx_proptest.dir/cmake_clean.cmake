file(REMOVE_RECURSE
  "CMakeFiles/cfgx_proptest.dir/fuzz.cpp.o"
  "CMakeFiles/cfgx_proptest.dir/fuzz.cpp.o.d"
  "CMakeFiles/cfgx_proptest.dir/generators.cpp.o"
  "CMakeFiles/cfgx_proptest.dir/generators.cpp.o.d"
  "CMakeFiles/cfgx_proptest.dir/proptest.cpp.o"
  "CMakeFiles/cfgx_proptest.dir/proptest.cpp.o.d"
  "libcfgx_proptest.a"
  "libcfgx_proptest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_proptest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
