# CMake generated Testfile for 
# Source directory: /root/repo/src/proptest
# Build directory: /root/repo/build-review/src/proptest
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
