file(REMOVE_RECURSE
  "libcfgx_dataset.a"
)
