# Empty dependencies file for cfgx_dataset.
# This may be replaced when dependencies are built.
