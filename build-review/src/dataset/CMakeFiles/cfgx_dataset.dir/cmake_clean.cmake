file(REMOVE_RECURSE
  "CMakeFiles/cfgx_dataset.dir/codegen.cpp.o"
  "CMakeFiles/cfgx_dataset.dir/codegen.cpp.o.d"
  "CMakeFiles/cfgx_dataset.dir/corpus.cpp.o"
  "CMakeFiles/cfgx_dataset.dir/corpus.cpp.o.d"
  "CMakeFiles/cfgx_dataset.dir/families.cpp.o"
  "CMakeFiles/cfgx_dataset.dir/families.cpp.o.d"
  "CMakeFiles/cfgx_dataset.dir/generator.cpp.o"
  "CMakeFiles/cfgx_dataset.dir/generator.cpp.o.d"
  "libcfgx_dataset.a"
  "libcfgx_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
