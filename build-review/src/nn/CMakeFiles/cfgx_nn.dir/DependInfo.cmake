
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gradcheck.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/gradcheck.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/gradcheck.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/sparse.cpp" "src/nn/CMakeFiles/cfgx_nn.dir/sparse.cpp.o" "gcc" "src/nn/CMakeFiles/cfgx_nn.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/cfgx_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/cfgx_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
