file(REMOVE_RECURSE
  "CMakeFiles/cfgx_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/cfgx_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/cfgx_nn.dir/layers.cpp.o"
  "CMakeFiles/cfgx_nn.dir/layers.cpp.o.d"
  "CMakeFiles/cfgx_nn.dir/loss.cpp.o"
  "CMakeFiles/cfgx_nn.dir/loss.cpp.o.d"
  "CMakeFiles/cfgx_nn.dir/matrix.cpp.o"
  "CMakeFiles/cfgx_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/cfgx_nn.dir/optimizer.cpp.o"
  "CMakeFiles/cfgx_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/cfgx_nn.dir/serialize.cpp.o"
  "CMakeFiles/cfgx_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/cfgx_nn.dir/sparse.cpp.o"
  "CMakeFiles/cfgx_nn.dir/sparse.cpp.o.d"
  "libcfgx_nn.a"
  "libcfgx_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
