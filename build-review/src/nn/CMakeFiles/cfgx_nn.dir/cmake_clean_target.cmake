file(REMOVE_RECURSE
  "libcfgx_nn.a"
)
