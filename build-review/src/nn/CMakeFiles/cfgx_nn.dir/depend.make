# Empty dependencies file for cfgx_nn.
# This may be replaced when dependencies are built.
