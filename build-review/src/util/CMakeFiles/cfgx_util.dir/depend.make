# Empty dependencies file for cfgx_util.
# This may be replaced when dependencies are built.
