file(REMOVE_RECURSE
  "libcfgx_util.a"
)
