file(REMOVE_RECURSE
  "CMakeFiles/cfgx_util.dir/cli.cpp.o"
  "CMakeFiles/cfgx_util.dir/cli.cpp.o.d"
  "CMakeFiles/cfgx_util.dir/logging.cpp.o"
  "CMakeFiles/cfgx_util.dir/logging.cpp.o.d"
  "CMakeFiles/cfgx_util.dir/rng.cpp.o"
  "CMakeFiles/cfgx_util.dir/rng.cpp.o.d"
  "CMakeFiles/cfgx_util.dir/table.cpp.o"
  "CMakeFiles/cfgx_util.dir/table.cpp.o.d"
  "CMakeFiles/cfgx_util.dir/thread_pool.cpp.o"
  "CMakeFiles/cfgx_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/cfgx_util.dir/timer.cpp.o"
  "CMakeFiles/cfgx_util.dir/timer.cpp.o.d"
  "libcfgx_util.a"
  "libcfgx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
