file(REMOVE_RECURSE
  "CMakeFiles/cfgx_explain.dir/baselines.cpp.o"
  "CMakeFiles/cfgx_explain.dir/baselines.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/cfg_explainer.cpp.o"
  "CMakeFiles/cfgx_explain.dir/cfg_explainer.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/evaluate.cpp.o"
  "CMakeFiles/cfgx_explain.dir/evaluate.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/explainer_api.cpp.o"
  "CMakeFiles/cfgx_explain.dir/explainer_api.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/gnnexplainer.cpp.o"
  "CMakeFiles/cfgx_explain.dir/gnnexplainer.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/parallel.cpp.o"
  "CMakeFiles/cfgx_explain.dir/parallel.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/pgexplainer.cpp.o"
  "CMakeFiles/cfgx_explain.dir/pgexplainer.cpp.o.d"
  "CMakeFiles/cfgx_explain.dir/subgraphx.cpp.o"
  "CMakeFiles/cfgx_explain.dir/subgraphx.cpp.o.d"
  "libcfgx_explain.a"
  "libcfgx_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
