file(REMOVE_RECURSE
  "libcfgx_explain.a"
)
