# Empty compiler generated dependencies file for cfgx_explain.
# This may be replaced when dependencies are built.
