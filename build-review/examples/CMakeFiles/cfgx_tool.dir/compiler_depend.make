# Empty compiler generated dependencies file for cfgx_tool.
# This may be replaced when dependencies are built.
