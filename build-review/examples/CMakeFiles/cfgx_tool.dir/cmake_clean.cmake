file(REMOVE_RECURSE
  "CMakeFiles/cfgx_tool.dir/cfgx_tool.cpp.o"
  "CMakeFiles/cfgx_tool.dir/cfgx_tool.cpp.o.d"
  "cfgx"
  "cfgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfgx_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
