# Empty compiler generated dependencies file for explainer_comparison.
# This may be replaced when dependencies are built.
