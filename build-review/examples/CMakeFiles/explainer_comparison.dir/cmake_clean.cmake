file(REMOVE_RECURSE
  "CMakeFiles/explainer_comparison.dir/explainer_comparison.cpp.o"
  "CMakeFiles/explainer_comparison.dir/explainer_comparison.cpp.o.d"
  "explainer_comparison"
  "explainer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explainer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
