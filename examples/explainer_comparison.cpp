// Side-by-side comparison of all four explainers on a single malware
// sample: node rankings, agreement between methods, per-size retention of
// the GNN's prediction, and wall-clock cost — a miniature of the paper's
// quantitative evaluation for one graph.
//
// Run:  ./explainer_comparison [--family Rbot] [--samples 24]

#include <algorithm>
#include <cstdio>
#include <set>

#include "explain/baselines.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/gnnexplainer.hpp"
#include "explain/pgexplainer.hpp"
#include "explain/subgraphx.hpp"
#include "gnn/trainer.hpp"
#include "graph/ops.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cfgx;

namespace {

double jaccard(const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  const std::set<std::uint32_t> sa(a.begin(), a.end());
  std::size_t shared = 0;
  for (std::uint32_t v : b) {
    if (sa.count(v)) ++shared;
  }
  const std::size_t unioned = sa.size() + b.size() - shared;
  return unioned == 0 ? 0.0 : static_cast<double>(shared) / unioned;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_default_log_level(LogLevel::Warn);

  const Family family = family_from_string(args.get_string("family", "Rbot"));

  CorpusConfig corpus_config;
  corpus_config.samples_per_family =
      static_cast<std::size_t>(args.get_int("samples", 24));
  const Corpus corpus = generate_corpus(corpus_config);
  const Split split = stratified_split(corpus, 0.75, 41);

  std::printf("training GNN + offline explainers...\n");
  Rng rng(7);
  GnnClassifier gnn(GnnConfig{}, rng);
  GnnTrainConfig gnn_config;
  gnn_config.epochs = 200;
  train_gnn(gnn, corpus, split.train, gnn_config);

  ExplainerTrainConfig cfg_train;
  cfg_train.epochs = static_cast<std::size_t>(args.get_int("exp-epochs", 2000));
  CfgExplainer cfg_explainer(gnn, cfg_train);
  cfg_explainer.fit(corpus, split.train);

  PgExplainerConfig pg_config;
  pg_config.epochs = 8;
  PgExplainer pg_explainer(gnn, pg_config);
  pg_explainer.fit(corpus, split.train);

  GnnExplainerConfig gx_config;
  gx_config.iterations = 80;
  GnnExplainer gnn_explainer(gnn, gx_config);

  SubgraphXConfig sx_config;
  sx_config.mcts_iterations = 30;
  SubgraphX subgraphx(gnn, sx_config);

  // Pick a test graph of the requested family.
  const Acfg* graph = nullptr;
  for (std::size_t index : split.test) {
    if (corpus.graph(index).label() == family_label(family)) {
      graph = &corpus.graph(index);
      break;
    }
  }
  if (graph == nullptr) {
    std::fprintf(stderr, "no test sample of family %s\n", to_string(family));
    return 1;
  }

  std::printf("\nsample: %s, %u nodes, %zu edges; GNN says %s\n\n",
              graph->family().c_str(), graph->num_nodes(), graph->num_edges(),
              to_string(family_from_label(static_cast<int>(
                  gnn.predict(*graph).predicted_class))));

  struct Entry {
    std::string name;
    NodeRanking ranking;
    double seconds;
  };
  std::vector<Entry> entries;
  const auto run = [&](Explainer& explainer) {
    Stopwatch watch;
    NodeRanking ranking = explainer.explain(*graph);
    entries.push_back({explainer.name(), std::move(ranking),
                       watch.elapsed_seconds()});
  };
  run(cfg_explainer);
  run(gnn_explainer);
  run(subgraphx);
  run(pg_explainer);

  // Per-size retention of the GNN's prediction.
  const Matrix adjacency = graph->dense_adjacency();
  const auto truth = static_cast<int>(graph->label());
  TextTable retention({"size", entries[0].name, entries[1].name,
                       entries[2].name, entries[3].name},
                      std::vector<Align>(5, Align::Right));
  for (unsigned size = 10; size <= 100; size += 10) {
    std::vector<std::string> row{std::to_string(size) + "%"};
    for (const Entry& entry : entries) {
      const auto kept = entry.ranking.top_fraction(size / 100.0);
      const MaskedGraph masked =
          keep_only(adjacency, graph->features(), kept);
      const Prediction p = gnn.predict_masked(masked.adjacency, masked.features);
      row.push_back(static_cast<int>(p.predicted_class) == truth ? "hit"
                                                                 : "miss");
    }
    retention.add_row(std::move(row));
  }
  std::printf("prediction retention by kept-node fraction:\n%s\n",
              retention.render().c_str());

  // Top-10 node agreement (Jaccard of the top-20% sets).
  std::printf("top-20%% subgraph agreement (Jaccard):\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      std::printf("  %-13s vs %-13s %.2f\n", entries[i].name.c_str(),
                  entries[j].name.c_str(),
                  jaccard(entries[i].ranking.top_fraction(0.2),
                          entries[j].ranking.top_fraction(0.2)));
    }
  }

  std::printf("\nwall-clock per explanation:\n");
  for (const Entry& entry : entries) {
    std::printf("  %-13s %.1f ms\n", entry.name.c_str(), entry.seconds * 1e3);
  }
  std::printf("\nplanted malicious nodes found in each top-20%% set "
              "(of %zu planted):\n",
              graph->planted_nodes().size());
  for (const Entry& entry : entries) {
    const auto top = entry.ranking.top_fraction(0.2);
    const std::set<std::uint32_t> kept(top.begin(), top.end());
    std::size_t hits = 0;
    for (std::uint32_t planted : graph->planted_nodes()) {
      if (kept.count(planted)) ++hits;
    }
    std::printf("  %-13s %zu\n", entry.name.c_str(), hits);
  }
  return 0;
}
