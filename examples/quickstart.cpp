// Quickstart: the whole CFGExplainer pipeline in one file.
//
//   1. generate a small synthetic malware ACFG corpus (12 families)
//   2. train the GNN classifier Phi
//   3. train CFGExplainer's Theta = {Theta_s, Theta_c} (Algorithm 1)
//   4. interpret one malware graph (Algorithm 2) and print the top blocks
//
// Run:  ./quickstart [--samples 12] [--gnn-epochs 30] [--exp-epochs 120]

#include <cstdio>

#include "core/interpreter.hpp"
#include "core/trainer.hpp"
#include "dataset/corpus.hpp"
#include "gnn/trainer.hpp"
#include "graph/ops.hpp"
#include "isa/patterns.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

using namespace cfgx;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_default_log_level(LogLevel::Info);

  // 1. Corpus ---------------------------------------------------------
  CorpusConfig corpus_config;
  corpus_config.samples_per_family =
      static_cast<std::size_t>(args.get_int("samples", 12));
  corpus_config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2022));
  const Corpus corpus = generate_corpus(corpus_config);
  const Split split = stratified_split(corpus, 0.75, 41);
  std::printf("corpus: %zu graphs (%zu train / %zu test)\n", corpus.size(),
              split.train.size(), split.test.size());

  // 2. GNN classifier Phi ---------------------------------------------
  Rng rng(7);
  GnnClassifier gnn(GnnConfig{}, rng);
  GnnTrainConfig gnn_config;
  gnn_config.epochs = static_cast<std::size_t>(args.get_int("gnn-epochs", 30));
  const GnnTrainResult gnn_result = train_gnn(gnn, corpus, split.train, gnn_config);
  const double test_accuracy =
      evaluate_gnn(gnn, corpus, split.test).accuracy();
  std::printf("GNN: train accuracy %.3f, test accuracy %.3f\n",
              gnn_result.final_train_accuracy, test_accuracy);

  // 3. CFGExplainer initial learning stage (Algorithm 1) ---------------
  Rng theta_rng(21);
  ExplainerModelConfig model_config;
  model_config.embedding_dim = gnn.config().embedding_dim();
  model_config.num_classes = gnn.config().num_classes;
  ExplainerModel theta(model_config, theta_rng);

  ExplainerTrainConfig exp_config;
  exp_config.epochs = static_cast<std::size_t>(args.get_int("exp-epochs", 400));
  const ExplainerTrainResult exp_result =
      train_explainer(theta, gnn, corpus, split.train, exp_config);
  std::printf("CFGExplainer: final loss %.4f, surrogate fidelity %.3f\n",
              exp_result.epoch_losses.back(), exp_result.surrogate_fidelity);

  // 4. Interpret one malware graph (Algorithm 2) -----------------------
  const std::size_t target_index = split.test.front();
  const Acfg& graph = corpus.graph(target_index);
  Interpreter interpreter(theta, gnn);
  const Interpretation interpretation = interpreter.interpret(graph);

  std::printf("\nsample #%zu (%s): %u nodes, %zu edges\n", target_index,
              graph.family().c_str(), graph.num_nodes(), graph.num_edges());
  std::printf("most important blocks: ");
  for (std::size_t i = 0; i < 8 && i < interpretation.ordered_nodes.size(); ++i) {
    std::printf("%u ", interpretation.ordered_nodes[i]);
  }
  std::printf("\n");

  // How well does the top-20%% subgraph classify?
  const auto top20 = interpretation.subgraph_nodes.size() > 1
                         ? interpretation.subgraph_nodes[1]
                         : interpretation.subgraph_nodes[0];
  const MaskedGraph masked =
      keep_only(graph.dense_adjacency(), graph.features(), top20);
  const Prediction pruned_prediction =
      gnn.predict_masked(masked.adjacency, masked.features);
  std::printf("top-20%% subgraph (%zu nodes) predicted as %s (true: %s)\n",
              top20.size(),
              to_string(family_from_label(
                  static_cast<int>(pruned_prediction.predicted_class))),
              graph.family().c_str());

  // Malware patterns inside the top-20%% blocks (Table V style).
  const GeneratedSample sample = regenerate_sample(corpus, target_index);
  const LiftedCfg cfg = lift_program(sample.program);
  const PatternReport report = analyze_blocks(cfg, top20);
  std::printf("patterns in top-20%% blocks:\n");
  for (const auto& [pattern, count] : report.pattern_counts) {
    std::printf("  %-26s x%zu   e.g. %s\n", to_string(pattern), count,
                report.examples.at(pattern).c_str());
  }
  return 0;
}
