// cfgx — command-line front end over the library's artifact formats.
//
//   cfgx generate --out corpus.bin [--samples 40] [--seed 2022]
//   cfgx train-gnn --corpus corpus.bin --out gnn.bin [--epochs 250]
//   cfgx train-explainer --corpus corpus.bin --gnn gnn.bin --out theta.bin
//   cfgx explain --corpus corpus.bin --gnn gnn.bin --theta theta.bin
//                --index 3 [--dot explanation.dot] [--step 10]
//   cfgx eval --corpus corpus.bin --gnn gnn.bin --theta theta.bin
//
// Every artifact is a self-describing binary file (magic + schema), so the
// steps can run in separate processes / on separate days — the workflow a
// malware-analysis team would actually operate.

#include <cstdio>
#include <string>

#include "core/interpreter.hpp"
#include "core/trainer.hpp"
#include "dataset/corpus.hpp"
#include "explain/evaluate.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/baselines.hpp"
#include "gnn/trainer.hpp"
#include "graph/dot.hpp"
#include "graph/ops.hpp"
#include "graph/serialize.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace cfgx;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cfgx <generate|train-gnn|train-explainer|explain|eval> "
               "[flags]\n"
               "  generate        --out F [--samples N] [--seed S]\n"
               "  train-gnn       --corpus F --out F [--epochs N]\n"
               "  train-explainer --corpus F --gnn F --out F [--epochs N]\n"
               "  explain         --corpus F --gnn F --theta F --index I\n"
               "                  [--dot F] [--step P] [--top-frac X]\n"
               "  eval            --corpus F --gnn F --theta F [--step P]\n");
  return 2;
}

std::string require_flag(const CliArgs& args, const std::string& name) {
  const std::string value = args.get_string(name, "");
  if (value.empty()) {
    throw std::invalid_argument("missing required flag --" + name);
  }
  return value;
}

// The corpus file stores only graphs; splits are re-derived from flags so
// that every stage agrees on them.
struct LoadedCorpus {
  Corpus corpus;
  Split split;
};

LoadedCorpus load_corpus(const CliArgs& args) {
  const std::string path = require_flag(args, "corpus");
  std::vector<Acfg> graphs = load_acfg_collection_file(path);
  // Seeds are unknown for a file loaded from disk; regeneration-dependent
  // features (Table V listings) are not available through the CLI.
  std::vector<std::uint64_t> seeds(graphs.size(), 0);
  CorpusConfig config;
  config.samples_per_family =
      graphs.empty() ? 0 : graphs.size() / kFamilyCount;
  Corpus corpus(std::move(graphs), std::move(seeds), config);
  Split split = stratified_split(
      corpus, args.get_double("train-fraction", 0.75),
      static_cast<std::uint64_t>(args.get_int("split-seed", 41)));
  return {std::move(corpus), std::move(split)};
}

int cmd_generate(const CliArgs& args) {
  CorpusConfig config;
  config.samples_per_family =
      static_cast<std::size_t>(args.get_int("samples", 40));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2022));
  const Corpus corpus = generate_corpus(config);
  const std::string out = require_flag(args, "out");
  save_acfg_collection_file(out, corpus.graphs());
  std::printf("wrote %zu graphs (%zu families) to %s\n", corpus.size(),
              kFamilyCount, out.c_str());
  return 0;
}

int cmd_train_gnn(const CliArgs& args) {
  const LoadedCorpus data = load_corpus(args);
  Rng rng(static_cast<std::uint64_t>(args.get_int("init-seed", 7)));
  GnnClassifier gnn(GnnConfig{}, rng);
  GnnTrainConfig config;
  config.epochs = static_cast<std::size_t>(args.get_int("epochs", 250));
  const auto result = train_gnn(gnn, data.corpus, data.split.train, config);
  const double test_accuracy =
      evaluate_gnn(gnn, data.corpus, data.split.test).accuracy();
  const std::string out = require_flag(args, "out");
  gnn.save_file(out);
  std::printf("GNN trained: train %.3f / test %.3f -> %s\n",
              result.final_train_accuracy, test_accuracy, out.c_str());
  return 0;
}

int cmd_train_explainer(const CliArgs& args) {
  const LoadedCorpus data = load_corpus(args);
  const GnnClassifier gnn =
      GnnClassifier::load_file(require_flag(args, "gnn"));
  Rng rng(static_cast<std::uint64_t>(args.get_int("init-seed", 99)));
  ExplainerModelConfig model_config;
  model_config.embedding_dim = gnn.config().embedding_dim();
  model_config.num_classes = gnn.config().num_classes;
  ExplainerModel theta(model_config, rng);
  ExplainerTrainConfig config;
  config.epochs = static_cast<std::size_t>(args.get_int("epochs", 3000));
  const auto result =
      train_explainer(theta, gnn, data.corpus, data.split.train, config);
  const std::string out = require_flag(args, "out");
  theta.save_file(out);
  std::printf("CFGExplainer trained: surrogate fidelity %.3f, best checkpoint "
              "epoch %zu (val retention %.3f) -> %s\n",
              result.surrogate_fidelity, result.best_checkpoint_epoch,
              result.best_validation_retention, out.c_str());
  return 0;
}

int cmd_explain(const CliArgs& args) {
  const LoadedCorpus data = load_corpus(args);
  const GnnClassifier gnn =
      GnnClassifier::load_file(require_flag(args, "gnn"));
  ExplainerModel theta =
      ExplainerModel::load_file(require_flag(args, "theta"));

  const auto index = static_cast<std::size_t>(args.get_int("index", 0));
  if (index >= data.corpus.size()) {
    std::fprintf(stderr, "--index out of range (corpus has %zu graphs)\n",
                 data.corpus.size());
    return 1;
  }
  const Acfg& graph = data.corpus.graph(index);

  const Prediction prediction = gnn.predict(graph);
  std::printf("graph #%zu (%s): GNN predicts %s (%.1f%%)\n", index,
              graph.family().c_str(),
              to_string(family_from_label(
                  static_cast<int>(prediction.predicted_class))),
              100.0 * prediction.confidence());

  Interpreter interpreter(theta, gnn);
  InterpretationConfig config;
  config.step_size_percent =
      static_cast<unsigned>(args.get_int("step", 10));
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph, config);

  const double top_fraction = args.get_double("top-frac", 0.2);
  const std::size_t k = nodes_for_fraction(graph.num_nodes(), top_fraction);
  std::printf("top %.0f%% nodes (most important first):", top_fraction * 100);
  for (std::size_t i = 0; i < k; ++i) {
    std::printf(" %u", result.ordered_nodes[i]);
  }
  std::printf("\n");

  const std::string dot_path = args.get_string("dot", "");
  if (!dot_path.empty()) {
    DotOptions options;
    options.highlighted_nodes.assign(
        result.ordered_nodes.begin(),
        result.ordered_nodes.begin() + static_cast<std::ptrdiff_t>(k));
    options.graph_name = "explanation_" + std::to_string(index);
    write_dot_file(dot_path, graph, options);
    std::printf("wrote highlighted CFG to %s (render with `dot -Tsvg`)\n",
                dot_path.c_str());
  }
  return 0;
}

int cmd_eval(const CliArgs& args) {
  const LoadedCorpus data = load_corpus(args);
  const GnnClassifier gnn =
      GnnClassifier::load_file(require_flag(args, "gnn"));

  ExplainerTrainConfig unused_train;
  InterpretationConfig interpret_config;
  interpret_config.keep_adjacency_snapshots = false;
  CfgExplainer explainer(gnn, unused_train, interpret_config);
  explainer.load_model_file(require_flag(args, "theta"));

  EvaluationConfig config;
  config.step_size_percent =
      static_cast<unsigned>(args.get_int("step", 10));
  const auto eval = evaluate_explainer(explainer, gnn, data.corpus,
                                       data.split.test, config);
  RandomExplainer random(17);
  const auto baseline = evaluate_explainer(random, gnn, data.corpus,
                                           data.split.test, config);

  TextTable table({"metric", "CFGExplainer", "Random"},
                  {Align::Left, Align::Right, Align::Right});
  table.add_row({"AUC", format_fixed(eval.average_auc),
                 format_fixed(baseline.average_auc)});
  table.add_row({"Acc@10%", format_fixed(eval.average_accuracy_at(0.1)),
                 format_fixed(baseline.average_accuracy_at(0.1))});
  table.add_row({"Acc@20%", format_fixed(eval.average_accuracy_at(0.2)),
                 format_fixed(baseline.average_accuracy_at(0.2))});
  table.add_row({"plant recall", format_fixed(eval.plant_recall),
                 format_fixed(baseline.plant_recall)});
  table.add_row({"time/explanation", eval.explain_time.summary(),
                 baseline.explain_time.summary()});
  std::printf("%s", table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_default_log_level(LogLevel::Warn);
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const CliArgs args(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "train-gnn") return cmd_train_gnn(args);
    if (command == "train-explainer") return cmd_train_explainer(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "eval") return cmd_eval(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cfgx %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  return usage();
}
