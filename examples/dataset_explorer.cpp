// Dataset explorer: inspects the synthetic YANCFG-substitute corpus —
// per-family graph statistics, a disassembly excerpt, the Table-I feature
// vector of an interesting block, and a corpus (de)serialization round
// trip. Useful for understanding what the GNN actually trains on.
//
// Run:  ./dataset_explorer [--samples 4] [--family Vundo] [--listing]

#include <cstdio>

#include "dataset/corpus.hpp"
#include "graph/serialize.hpp"
#include "isa/features.hpp"
#include "isa/patterns.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace cfgx;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_default_log_level(LogLevel::Warn);

  CorpusConfig config;
  config.samples_per_family =
      static_cast<std::size_t>(args.get_int("samples", 4));
  const Corpus corpus = generate_corpus(config);

  // --- per-family statistics ---
  TextTable stats({"Family", "graphs", "avg nodes", "avg edges", "avg calls",
                   "avg planted"},
                  {Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right});
  for (Family family : kAllFamilies) {
    const auto indices = corpus.indices_of(family);
    double nodes = 0, edges = 0, calls = 0, planted = 0;
    for (std::size_t index : indices) {
      const GraphStats s = compute_stats(corpus.graph(index));
      nodes += s.num_nodes;
      edges += s.num_edges;
      calls += s.num_call_edges;
      planted += corpus.graph(index).planted_nodes().size();
    }
    const auto n = static_cast<double>(indices.size());
    stats.add_row({to_string(family), std::to_string(indices.size()),
                   format_fixed(nodes / n, 1), format_fixed(edges / n, 1),
                   format_fixed(calls / n, 1), format_fixed(planted / n, 1)});
  }
  std::printf("=== corpus statistics (%zu graphs) ===\n%s\n", corpus.size(),
              stats.render().c_str());

  // --- one sample in depth ---
  const Family family = family_from_string(args.get_string("family", "Vundo"));
  const std::size_t index = corpus.indices_of(family).front();
  const Acfg& graph = corpus.graph(index);
  const GeneratedSample sample = regenerate_sample(corpus, index);
  const LiftedCfg cfg = lift_program(sample.program);

  std::printf("=== sample #%zu (%s) ===\n", index, to_string(family));
  std::printf("%zu instructions -> %u basic blocks; planted blocks:",
              sample.program.size(), graph.num_nodes());
  for (std::uint32_t node : graph.planted_nodes()) std::printf(" %u", node);
  std::printf("\n\n");

  if (args.get_flag("listing")) {
    std::printf("full disassembly:\n%s\n", sample.program.to_string().c_str());
  }

  // Feature vector of the first planted block vs the entry block.
  const std::uint32_t planted_block = graph.planted_nodes().front();
  TextTable features({"Table-I feature", "entry block",
                      "planted block " + std::to_string(planted_block)},
                     {Align::Left, Align::Right, Align::Right});
  for (std::size_t f = 0; f < kAcfgFeatureCount; ++f) {
    features.add_row({feature_name(static_cast<AcfgFeature>(f)),
                      format_fixed(graph.features()(0, f), 0),
                      format_fixed(graph.features()(planted_block, f), 0)});
  }
  std::printf("block features:\n%s\n", features.render().c_str());

  std::printf("planted block disassembly:\n  %s\n\n",
              cfg.block_to_string(planted_block).c_str());

  const std::vector<std::uint32_t> planted_nodes = graph.planted_nodes();
  const PatternReport report = analyze_blocks(cfg, planted_nodes);
  std::printf("patterns in the planted blocks:\n");
  for (const auto& [pattern, count] : report.pattern_counts) {
    std::printf("  %-26s x%zu\n", to_string(pattern), count);
  }

  // --- serialization round trip ---
  const std::string path = "/tmp/cfgx_corpus_demo.bin";
  save_acfg_collection_file(path, corpus.graphs());
  const auto restored = load_acfg_collection_file(path);
  std::printf("\nserialized %zu graphs to %s and read back %zu (%s)\n",
              corpus.size(), path.c_str(), restored.size(),
              restored.size() == corpus.size() &&
                      restored[index] == corpus.graph(index)
                  ? "bit-exact"
                  : "MISMATCH");
  return 0;
}
