#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dataset/corpus.hpp"
#include "explain/baselines.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/reduced.hpp"
#include "graph/reduce.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace cfgx::serve {
namespace {

using namespace std::chrono_literals;

GnnConfig small_gnn_config() {
  GnnConfig config;
  config.gcn_dims = {8, 6};
  return config;
}

ExplainerModelConfig small_theta_config(const GnnConfig& gnn) {
  ExplainerModelConfig config;
  config.embedding_dim = gnn.embedding_dim();
  config.num_classes = gnn.num_classes;
  config.scorer_dims = {8, 1};
  config.surrogate_dims = {8};
  return config;
}

// One GNN + one Theta shared by every test; inference is const and the
// engine factories deep-copy the model, so sharing is safe.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : rng_(42), gnn_(small_gnn_config(), rng_) {}

  ExplainerModel fresh_theta() {
    Rng theta_rng(7);
    return ExplainerModel(small_theta_config(gnn_.config()), theta_rng);
  }

  ExplainerFactory cfg_factory() {
    return make_cfg_explainer_factory(gnn_, fresh_theta());
  }

  static Acfg corpus_graph(std::size_t index) {
    CorpusConfig config;
    config.samples_per_family = 2;
    config.seed = 3;
    static const Corpus corpus = generate_corpus(config);
    return corpus.graph(index % corpus.size());
  }

  Rng rng_;
  GnnClassifier gnn_;
};

TEST_F(EngineTest, BatchedServingMatchesPerGraphInferenceAndExplanation) {
  ServeConfig config;
  config.max_batch = 4;
  config.explain_workers = 2;
  ExplanationEngine engine(gnn_, cfg_factory(), config);

  std::vector<Acfg> graphs;
  std::vector<std::future<ExplanationResponse>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    graphs.push_back(corpus_graph(i * 3));
    futures.push_back(engine.submit(graphs.back()));
  }

  CfgExplainer reference(gnn_);
  reference.set_model(fresh_theta());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    ExplanationResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << to_string(response.status);
    // Batched block-diagonal inference is BIT-identical to the per-graph
    // dense path.
    const Prediction expected = gnn_.predict(graphs[i]);
    EXPECT_EQ(response.prediction.predicted_class, expected.predicted_class);
    EXPECT_EQ(response.prediction.probabilities, expected.probabilities);
    EXPECT_EQ(response.ranking.order, reference.explain(graphs[i]).order);
  }
}

TEST_F(EngineTest, SubmitValidatesGraphAgainstTheGnn) {
  ExplanationEngine engine(gnn_, cfg_factory());
  EXPECT_THROW(engine.submit(Acfg()), std::invalid_argument);
  EXPECT_THROW(engine.submit(Acfg(3, /*feature_count=*/2)),
               std::invalid_argument);
}

TEST_F(EngineTest, ExpiredDeadlineIsATypedResponseNotACrash) {
  ExplanationEngine engine(gnn_, cfg_factory());
  const Acfg graph = corpus_graph(0);

  auto late = engine.submit(graph, ExplanationEngine::Clock::now() - 1s);
  EXPECT_EQ(late.get().status, ResponseStatus::DeadlineExceeded);

  // The engine is still healthy afterwards.
  auto ok = engine.submit(graph);
  EXPECT_EQ(ok.get().status, ResponseStatus::Ok);
}

// Explainer whose explain() spins until the shared gate opens; used to
// hold the dispatcher busy so queue states can be set up deterministically.
class GatedExplainer : public Explainer {
 public:
  explicit GatedExplainer(std::shared_ptr<std::atomic<bool>> gate)
      : gate_(std::move(gate)) {}
  std::string name() const override { return "Gated"; }
  NodeRanking explain(const Acfg& graph) override {
    while (!gate_->load()) std::this_thread::sleep_for(1ms);
    NodeRanking ranking;
    for (std::uint32_t i = 0; i < graph.num_nodes(); ++i) {
      ranking.order.push_back(i);
    }
    return ranking;
  }

 private:
  std::shared_ptr<std::atomic<bool>> gate_;
};

void wait_for_empty_queue(const ExplanationEngine& engine) {
  while (engine.queue_depth() != 0) std::this_thread::sleep_for(1ms);
}

TEST_F(EngineTest, FullQueueRejectsImmediatelyWithQueueFull) {
  auto gate = std::make_shared<std::atomic<bool>>(false);
  ServeConfig config;
  config.queue_capacity = 1;
  config.max_batch = 1;
  config.explain_workers = 1;
  ExplanationEngine engine(
      gnn_, [gate] { return std::make_unique<GatedExplainer>(gate); }, config);
  const Acfg graph = corpus_graph(2);

  auto busy = engine.submit(graph);
  wait_for_empty_queue(engine);  // dispatcher holds `busy` at the gate
  auto queued = engine.submit(graph);
  auto rejected = engine.submit(graph);

  // Backpressure is immediate: the future is already complete.
  ASSERT_EQ(rejected.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(rejected.get().status, ResponseStatus::QueueFull);

  gate->store(true);
  EXPECT_EQ(busy.get().status, ResponseStatus::Ok);
  EXPECT_EQ(queued.get().status, ResponseStatus::Ok);
}

TEST_F(EngineTest, StopDrainsQueuedRequestsWithEngineStopped) {
  auto gate = std::make_shared<std::atomic<bool>>(false);
  ServeConfig config;
  config.max_batch = 1;
  config.explain_workers = 1;
  ExplanationEngine engine(
      gnn_, [gate] { return std::make_unique<GatedExplainer>(gate); }, config);
  const Acfg graph = corpus_graph(4);

  auto in_flight = engine.submit(graph);
  wait_for_empty_queue(engine);
  auto queued = engine.submit(graph);

  std::thread stopper([&] { engine.stop(); });
  std::this_thread::sleep_for(20ms);  // let stop() set the flag
  gate->store(true);
  stopper.join();

  EXPECT_EQ(in_flight.get().status, ResponseStatus::Ok);
  EXPECT_EQ(queued.get().status, ResponseStatus::EngineStopped);

  // Submission after stop is a typed response too.
  EXPECT_EQ(engine.submit(graph).get().status, ResponseStatus::EngineStopped);
}

TEST_F(EngineTest, ExplainerFailureIsPerRequestAndKeepsThePrediction) {
  // Throws for every graph with the marker node count; other graphs serve
  // normally from the same engine and the same batch.
  const Acfg good = corpus_graph(1);
  Acfg poisoned = corpus_graph(5);
  while (poisoned.num_nodes() == good.num_nodes()) {
    poisoned = corpus_graph(7);
  }
  const std::uint32_t marker = poisoned.num_nodes();

  class SelectiveThrow : public Explainer {
   public:
    explicit SelectiveThrow(std::uint32_t marker) : marker_(marker) {}
    std::string name() const override { return "SelectiveThrow"; }
    NodeRanking explain(const Acfg& graph) override {
      if (graph.num_nodes() == marker_) {
        throw std::runtime_error("poisoned graph");
      }
      return DegreeExplainer().explain(graph);
    }

   private:
    std::uint32_t marker_;
  };

  ServeConfig config;
  config.max_batch = 2;
  ExplanationEngine engine(
      gnn_, [marker] { return std::make_unique<SelectiveThrow>(marker); },
      config);

  auto ok_future = engine.submit(good);
  auto bad_future = engine.submit(poisoned);

  ExplanationResponse ok = ok_future.get();
  EXPECT_EQ(ok.status, ResponseStatus::Ok);
  EXPECT_EQ(ok.ranking.order, DegreeExplainer().explain(good).order);

  ExplanationResponse bad = bad_future.get();
  EXPECT_EQ(bad.status, ResponseStatus::ExplainError);
  EXPECT_NE(bad.error.find("poisoned graph"), std::string::npos);
  // Classification ran in the batched forward pass before the explainer
  // failed; the response keeps it.
  EXPECT_EQ(bad.prediction.predicted_class,
            gnn_.predict(poisoned).predicted_class);

  // The engine survives the failure.
  EXPECT_EQ(engine.submit(good).get().status, ResponseStatus::Ok);
}

TEST_F(EngineTest, SteadyStateServingIsWorkspaceAllocFree) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  ServeConfig config;
  config.max_batch = 1;
  config.explain_workers = 1;
  ExplanationEngine engine(gnn_, cfg_factory(), config);
  const Acfg graph = corpus_graph(3);

  // Submit-and-await keeps every batch identical: same graph, same shapes.
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(engine.submit(graph).get().ok());
  }
  const std::uint64_t allocated_before = allocated.value();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(engine.submit(graph).get().ok());
  }
  // Warmed-up serving performs no fresh workspace allocation: prepare
  // leases and kernel scratch are all served from pooled capacity.
  EXPECT_EQ(allocated.value(), allocated_before);

  obs::set_metrics_enabled(saved);
}

// Reduce-then-explain mode: the engine coarsens during prepare, explains
// the coarse graph, and expands the ranking back to ORIGINAL block ids —
// exactly what an offline reduce + explain + project pipeline produces.
TEST_F(EngineTest, ReducedModeRanksOriginalBlocksAndMatchesOfflinePipeline) {
  ServeConfig config;
  config.max_batch = 4;
  config.explain_workers = 2;
  config.reduction = ReduceConfig{};
  ExplanationEngine engine(gnn_, cfg_factory(), config);

  std::vector<Acfg> graphs;
  std::vector<std::future<ExplanationResponse>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    graphs.push_back(corpus_graph(i));
    futures.push_back(engine.submit(graphs.back()));
  }

  CfgExplainer reference(gnn_);
  reference.set_model(fresh_theta());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    ExplanationResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << to_string(response.status);

    // The ranking is a permutation of the ORIGINAL node ids.
    ASSERT_EQ(response.ranking.order.size(), graphs[i].num_nodes());
    std::set<std::uint32_t> unique(response.ranking.order.begin(),
                                   response.ranking.order.end());
    EXPECT_EQ(unique.size(), graphs[i].num_nodes());

    // Differential vs the offline pipeline: reduce, predict + explain on
    // the coarse graph, project the ranking back.
    const ReducedGraph r = reduce_graph(graphs[i], *config.reduction);
    const Prediction expected = gnn_.predict(r.graph);
    EXPECT_EQ(response.prediction.predicted_class, expected.predicted_class);
    EXPECT_EQ(response.prediction.probabilities, expected.probabilities);
    EXPECT_EQ(response.ranking.order,
              project_ranking(reference.explain(r.graph), r.projection).order);
  }
}

// The TSan target: many client threads race submit() against the
// dispatcher, backpressure, deadlines and stop().
TEST_F(EngineTest, ConcurrentSubmitHammer) {
  ServeConfig config;
  config.queue_capacity = 8;
  config.max_batch = 4;
  config.explain_workers = 2;
  ExplanationEngine engine(
      gnn_, [] { return std::make_unique<DegreeExplainer>(); }, config);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 12;
  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> bad_status{0};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const Acfg graph = corpus_graph(c * kPerClient + i);
        // A third of the requests carry an already-expired deadline.
        const auto deadline = (i % 3 == 0)
                                  ? ExplanationEngine::Clock::now() - 1ms
                                  : ExplanationEngine::Clock::time_point::max();
        ExplanationResponse response =
            engine.submit(graph, deadline).get();
        switch (response.status) {
          case ResponseStatus::Ok:
            ok_count.fetch_add(1);
            break;
          case ResponseStatus::QueueFull:
          case ResponseStatus::DeadlineExceeded:
          case ResponseStatus::EngineStopped:
            break;
          default:
            bad_status.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  engine.stop();

  EXPECT_EQ(bad_status.load(), 0u);
  // Unexpired, admitted requests must all have served.
  EXPECT_GT(ok_count.load(), 0u);
}

TEST_F(EngineTest, ResponsesCarryUniqueRequestIds) {
  ExplanationEngine engine(gnn_, cfg_factory());
  std::vector<std::future<ExplanationResponse>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(engine.submit(corpus_graph(i)));

  std::vector<std::uint64_t> ids;
  for (auto& f : futures) {
    const ExplanationResponse response = f.get();
    ASSERT_TRUE(response.ok());
    ids.push_back(response.request_id);
  }
  for (std::uint64_t id : ids) EXPECT_NE(id, 0u);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

  // Rejections are ids too: a QueueFull/EngineStopped response still names
  // the request it answers.
  engine.stop();
  EXPECT_NE(engine.submit(corpus_graph(0)).get().request_id, 0u);
}

TEST_F(EngineTest, InflightAndUptimeGaugesTrackTheEngine) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::Gauge& inflight = obs::MetricsRegistry::global().gauge("serve.inflight");
  obs::Gauge& uptime =
      obs::MetricsRegistry::global().gauge("engine.uptime_seconds");
  inflight.reset();

  auto gate = std::make_shared<std::atomic<bool>>(false);
  ServeConfig config;
  config.max_batch = 1;
  config.explain_workers = 1;
  ExplanationEngine engine(
      gnn_, [gate] { return std::make_unique<GatedExplainer>(gate); }, config);

  auto held = engine.submit(corpus_graph(0));
  wait_for_empty_queue(engine);  // dispatcher holds it at the gate
  auto queued = engine.submit(corpus_graph(1));
  EXPECT_EQ(inflight.value(), 2.0);  // submitted, neither finished

  gate->store(true);
  EXPECT_TRUE(held.get().ok());
  EXPECT_TRUE(queued.get().ok());
  EXPECT_EQ(inflight.value(), 0.0);

  EXPECT_GT(engine.uptime_seconds(), 0.0);
  EXPECT_GT(uptime.value(), 0.0);
  EXPECT_LE(uptime.value(), engine.uptime_seconds());

  obs::set_metrics_enabled(saved);
}

TEST_F(EngineTest, SlowRequestsAreCapturedAsExemplars) {
  ServeConfig config;
  config.slow_request_threshold_seconds = 1e-9;  // everything is "slow"
  config.slow_exemplar_capacity = 3;
  config.slow_exemplar_top_k = 4;
  ExplanationEngine engine(gnn_, cfg_factory(), config);

  std::vector<std::uint64_t> served_ids;
  for (int i = 0; i < 5; ++i) {
    const ExplanationResponse response = engine.submit(corpus_graph(i)).get();
    ASSERT_TRUE(response.ok());
    served_ids.push_back(response.request_id);
  }

  const std::vector<SlowRequestExemplar> exemplars = engine.slow_exemplars();
  ASSERT_EQ(exemplars.size(), 3u);  // capacity-bounded, oldest evicted
  for (std::size_t i = 0; i < exemplars.size(); ++i) {
    const SlowRequestExemplar& e = exemplars[i];
    // The retained exemplars are the LAST three served requests, in order.
    EXPECT_EQ(e.request_id, served_ids[served_ids.size() - 3 + i]);
    EXPECT_EQ(e.status, ResponseStatus::Ok);
    EXPECT_GT(e.total_seconds, 0.0);
    EXPECT_GE(e.total_seconds, e.queue_seconds);
    EXPECT_LE(e.top_nodes.size(), 4u);
    EXPECT_FALSE(e.top_nodes.empty());
  }

  // Threshold 0 disables capture entirely.
  ExplanationEngine quiet(gnn_, cfg_factory());
  ASSERT_TRUE(quiet.submit(corpus_graph(0)).get().ok());
  EXPECT_TRUE(quiet.slow_exemplars().empty());
}

TEST_F(EngineTest, RequestFlowEventsLinkSpansAcrossThreads) {
  obs::start_tracing();
  ExplanationEngine engine(gnn_, cfg_factory());
  const ExplanationResponse response = engine.submit(corpus_graph(0)).get();
  ASSERT_TRUE(response.ok());
  engine.stop();
  obs::stop_tracing();
  const std::string trace = obs::trace_json();
  obs::clear_trace_events();

  const obs::JsonValue doc = obs::JsonValue::parse(trace);
  const std::string flow_id = std::to_string(response.request_id);
  bool saw_start = false, saw_step = false, saw_end = false;
  bool end_binds_enclosing = false;
  std::set<double> flow_tids;
  for (const obs::JsonValue& event : doc.at("traceEvents").items) {
    if (!event.has("id") ||
        event.at("id").string_value != flow_id) {
      continue;
    }
    const std::string& ph = event.at("ph").string_value;
    flow_tids.insert(event.at("tid").number_value);
    if (ph == "s") saw_start = true;
    if (ph == "t") saw_step = true;
    if (ph == "f") {
      saw_end = true;
      end_binds_enclosing =
          event.has("bp") && event.at("bp").string_value == "e";
    }
  }
  // One arrow chain: submit (s) -> dispatcher batch (t) -> finish (f).
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(end_binds_enclosing);
  // The chain crosses threads (submit thread vs dispatcher thread).
  EXPECT_GE(flow_tids.size(), 2u);

  // The spans the flow binds to exist on the same timeline.
  bool saw_submit_span = false, saw_batch_span = false;
  for (const obs::JsonValue& event : doc.at("traceEvents").items) {
    if (!event.has("name")) continue;
    if (event.at("name").string_value == "serve.submit") saw_submit_span = true;
    if (event.at("name").string_value == "serve.batch") saw_batch_span = true;
  }
  EXPECT_TRUE(saw_submit_span);
  EXPECT_TRUE(saw_batch_span);
}

}  // namespace
}  // namespace cfgx::serve
