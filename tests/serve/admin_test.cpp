#include "serve/admin.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dataset/corpus.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "util/rng.hpp"

namespace cfgx::serve {
namespace {

// Minimal blocking HTTP/1.0 client: one request, read to EOF (the server
// sends Connection: close), return the raw response text.
std::string http_get(std::uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      method + " " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(AdminServerTest, ServesInjectedHandlersOnEphemeralPort) {
  AdminServer server(
      0, [] { return std::string("metric_a 1\n"); },
      [] { return std::string("{\"x\":1}"); });
  ASSERT_GT(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_EQ(body_of(metrics), "metric_a 1\n");

  const std::string statusz = http_get(server.port(), "/statusz");
  EXPECT_NE(statusz.find("application/json"), std::string::npos);
  EXPECT_EQ(body_of(statusz), "{\"x\":1}");

  // Query strings are stripped before routing.
  EXPECT_NE(http_get(server.port(), "/healthz?verbose=1").find("200"),
            std::string::npos);
}

TEST(AdminServerTest, UnknownRouteAndMethodAreTypedErrors) {
  AdminServer server(0, [] { return std::string(); },
                     [] { return std::string(); });
  EXPECT_NE(http_get(server.port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/metrics", "POST").find("HTTP/1.0 405"),
            std::string::npos);
}

TEST(AdminServerTest, ThrowingHandlerYieldsServerErrorNotACrash) {
  AdminServer server(
      0, []() -> std::string { throw std::runtime_error("boom"); },
      [] { return std::string("{}"); });
  EXPECT_NE(http_get(server.port(), "/metrics").find("HTTP/1.0 500"),
            std::string::npos);
  // The acceptor thread survived the exception.
  EXPECT_NE(http_get(server.port(), "/statusz").find("200"),
            std::string::npos);
}

TEST(AdminServerTest, BindConflictThrows) {
  AdminServer first(0, [] { return std::string(); },
                    [] { return std::string(); });
  EXPECT_THROW(AdminServer(first.port(), [] { return std::string(); },
                           [] { return std::string(); }),
               std::runtime_error);
}

TEST(AdminServerTest, StopIsIdempotentAndConcurrent) {
  AdminServer server(0, [] { return std::string(); },
                     [] { return std::string(); });
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&server] { server.stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  server.stop();  // still fine after everyone joined
}

// --- Engine integration: the acceptance path. -----------------------------

GnnConfig small_gnn_config() {
  GnnConfig config;
  config.gcn_dims = {8, 6};
  return config;
}

ExplainerModelConfig small_theta_config(const GnnConfig& gnn) {
  ExplainerModelConfig config;
  config.embedding_dim = gnn.embedding_dim();
  config.num_classes = gnn.num_classes;
  config.scorer_dims = {8, 1};
  config.surrogate_dims = {8};
  return config;
}

class AdminEngineTest : public ::testing::Test {
 protected:
  AdminEngineTest() : rng_(42), gnn_(small_gnn_config(), rng_) {
    saved_enabled_ = obs::metrics_enabled();
    obs::set_metrics_enabled(true);
    // Counters are process-global and cumulative; the absolute values the
    // tests assert only make sense from a zeroed registry.
    obs::MetricsRegistry::global().reset();
  }
  ~AdminEngineTest() override {
    obs::MetricsRegistry::global().reset();
    obs::set_metrics_enabled(saved_enabled_);
  }

  ExplainerFactory cfg_factory() {
    Rng theta_rng(7);
    return make_cfg_explainer_factory(
        gnn_, ExplainerModel(small_theta_config(gnn_.config()), theta_rng));
  }

  static Acfg corpus_graph(std::size_t index) {
    CorpusConfig config;
    config.samples_per_family = 2;
    config.seed = 3;
    static const Corpus corpus = generate_corpus(config);
    return corpus.graph(index % corpus.size());
  }

  Rng rng_;
  GnnClassifier gnn_;
  bool saved_enabled_ = true;
};

TEST_F(AdminEngineTest, StatuszReportsLiveEngineStateAsValidJson) {
  ServeConfig config;
  config.admin_port = 0;
  ExplanationEngine engine(gnn_, cfg_factory(), config);
  ASSERT_GT(engine.admin_port(), 0);

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.submit(corpus_graph(i)).get().status,
              ResponseStatus::Ok);
  }

  const std::string body = body_of(http_get(engine.admin_port(), "/statusz"));
  const obs::JsonValue doc = obs::JsonValue::parse(body);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string_value, "cfgx.statusz.v1");
  EXPECT_GT(doc.at("uptime_seconds").number_value, 0.0);
  EXPECT_EQ(doc.at("inflight").number_value, 0.0);
  EXPECT_EQ(doc.at("requests").at("served_ok").number_value, 4.0);
  EXPECT_GE(doc.at("batch").at("count").number_value, 1.0);
  EXPECT_FALSE(doc.at("isa").string_value.empty());
  EXPECT_EQ(doc.at("precision").string_value, "fp64");
  EXPECT_TRUE(doc.at("slo").is_object());
  EXPECT_TRUE(doc.at("slo").at("availability").has("burn_short"));
}

TEST_F(AdminEngineTest, MetricsRouteServesPrometheusExposition) {
  ServeConfig config;
  config.admin_port = 0;
  ExplanationEngine engine(gnn_, cfg_factory(), config);
  EXPECT_EQ(engine.submit(corpus_graph(0)).get().status, ResponseStatus::Ok);

  const std::string body = body_of(http_get(engine.admin_port(), "/metrics"));
  EXPECT_NE(body.find("# TYPE serve_requests_served counter\n"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE engine_uptime_seconds gauge\n"),
            std::string::npos);
  // Two scrapes of an idle engine are byte-identical except gauges that
  // move with time; the body stays parseable exposition either way.
  EXPECT_NE(body.find("serve_requests_served 1\n"), std::string::npos);
}

// Acceptance hammer: scrapers pound every route while clients keep the
// engine serving. Run under TSan in CI (serve label) — the point is that
// scraping is safe AGAINST serving, not merely that both survive alone.
TEST_F(AdminEngineTest, ConcurrentScrapeWhileServingHammer) {
  ServeConfig config;
  config.admin_port = 0;
  config.max_batch = 4;
  config.explain_workers = 2;
  config.slow_request_threshold_seconds = 1e-9;  // every request an exemplar
  ExplanationEngine engine(gnn_, cfg_factory(), config);
  const std::uint16_t port = engine.admin_port();

  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      const char* routes[] = {"/metrics", "/statusz", "/healthz"};
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string response = http_get(port, routes[t % 3]);
        if (response.find("200") == std::string::npos) {
          scrape_failures.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::future<ExplanationResponse>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(engine.submit(corpus_graph(i)));
  }
  int served = 0;
  for (auto& f : futures) {
    const ExplanationResponse response = f.get();
    if (response.status == ResponseStatus::Ok) ++served;
    EXPECT_NE(response.request_id, 0u);
  }
  stop.store(true);
  for (std::thread& t : scrapers) t.join();

  EXPECT_GT(served, 0);
  EXPECT_EQ(scrape_failures.load(), 0);
  // The statusz body reflects the traffic the scrapers watched happen.
  const obs::JsonValue doc =
      obs::JsonValue::parse(body_of(http_get(port, "/statusz")));
  EXPECT_EQ(doc.at("requests").at("served_ok").number_value,
            static_cast<double>(served));
  EXPECT_GT(doc.at("slow_exemplars").number_value, 0.0);
}

}  // namespace
}  // namespace cfgx::serve
