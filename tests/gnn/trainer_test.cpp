#include "gnn/trainer.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

// Four well-separated families keep this training test fast and stable.
Corpus small_corpus() {
  CorpusConfig config;
  config.samples_per_family = 4;
  config.seed = 7;
  return generate_corpus(config);
}

GnnConfig small_gnn_config() {
  GnnConfig config;
  config.gcn_dims = {16, 12};
  return config;
}

TEST(GnnTrainerTest, LossDecreasesOverTraining) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  Rng rng(1);
  GnnClassifier model(small_gnn_config(), rng);

  GnnTrainConfig config;
  config.epochs = 12;
  const GnnTrainResult result = train_gnn(model, corpus, split.train, config);
  ASSERT_EQ(result.epoch_losses.size(), 12u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(GnnTrainerTest, AccuracyBeatsChanceAfterTraining) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  Rng rng(2);
  GnnClassifier model(small_gnn_config(), rng);

  GnnTrainConfig config;
  config.epochs = 80;
  const GnnTrainResult result = train_gnn(model, corpus, split.train, config);
  // Chance is 1/12 ~ 8%; trained model must do far better on train data.
  EXPECT_GT(result.final_train_accuracy, 0.5);
}

TEST(GnnTrainerTest, ScalerIsFittedDuringTraining) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  Rng rng(3);
  GnnClassifier model(small_gnn_config(), rng);
  EXPECT_FALSE(model.scaler().fitted());
  GnnTrainConfig config;
  config.epochs = 1;
  train_gnn(model, corpus, split.train, config);
  EXPECT_TRUE(model.scaler().fitted());
}

TEST(GnnTrainerTest, OnEpochCallbackFires) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  Rng rng(4);
  GnnClassifier model(small_gnn_config(), rng);
  std::size_t calls = 0;
  GnnTrainConfig config;
  config.epochs = 3;
  config.on_epoch = [&](std::size_t, double) { ++calls; };
  train_gnn(model, corpus, split.train, config);
  EXPECT_EQ(calls, 3u);
}

TEST(GnnTrainerTest, EmptyTrainingSetThrows) {
  const Corpus corpus = small_corpus();
  Rng rng(5);
  GnnClassifier model(small_gnn_config(), rng);
  EXPECT_THROW(train_gnn(model, corpus, {}, {}), std::invalid_argument);
}

TEST(GnnTrainerTest, ZeroBatchSizeThrows) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  Rng rng(6);
  GnnClassifier model(small_gnn_config(), rng);
  GnnTrainConfig config;
  config.batch_size = 0;
  EXPECT_THROW(train_gnn(model, corpus, split.train, config),
               std::invalid_argument);
}

TEST(GnnTrainerTest, TrainingIsDeterministic) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  GnnTrainConfig config;
  config.epochs = 4;

  Rng rng_a(7);
  GnnClassifier model_a(small_gnn_config(), rng_a);
  const auto result_a = train_gnn(model_a, corpus, split.train, config);

  Rng rng_b(7);
  GnnClassifier model_b(small_gnn_config(), rng_b);
  const auto result_b = train_gnn(model_b, corpus, split.train, config);

  ASSERT_EQ(result_a.epoch_losses.size(), result_b.epoch_losses.size());
  for (std::size_t i = 0; i < result_a.epoch_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(result_a.epoch_losses[i], result_b.epoch_losses[i]);
  }
}

TEST(GnnTrainerTest, EvaluateConfusionTotalsMatchIndices) {
  const Corpus corpus = small_corpus();
  const Split split = stratified_split(corpus, 0.75, 3);
  Rng rng(8);
  GnnClassifier model(small_gnn_config(), rng);
  const ConfusionMatrix cm = evaluate_gnn(model, corpus, split.test);
  EXPECT_EQ(cm.total(), split.test.size());
}

}  // namespace
}  // namespace cfgx
