#include "gnn/classifier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/ops.hpp"
#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

GnnConfig tiny_config() {
  GnnConfig config;
  config.feature_dim = kAcfgFeatureCount;
  config.gcn_dims = {8, 6};
  config.num_classes = 4;
  return config;
}

Acfg tiny_graph(Rng& rng, int label = 1) {
  Acfg graph(6);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(1, 2, EdgeKind::Flow);
  graph.add_edge(2, 3, EdgeKind::Call);
  graph.add_edge(3, 4, EdgeKind::Flow);
  graph.add_edge(4, 1, EdgeKind::Flow);
  graph.add_edge(0, 5, EdgeKind::Call);
  graph.set_label(label);
  for (std::size_t i = 0; i < graph.features().size(); ++i) {
    graph.features().data()[i] = std::floor(rng.uniform(0, 6));
  }
  return graph;
}

TEST(GnnClassifierTest, EmbeddingShape) {
  Rng rng(1);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Matrix z = model.embed(graph.dense_adjacency(), graph.features());
  EXPECT_EQ(z.rows(), graph.num_nodes());
  EXPECT_EQ(z.cols(), 6u);  // last gcn dim
}

TEST(GnnClassifierTest, EmbeddingsAreNonNegative) {
  Rng rng(2);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Matrix z = model.embed(graph.dense_adjacency(), graph.features());
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_GE(z.data()[i], 0.0);
}

TEST(GnnClassifierTest, KernelPoolDoesNotChangeResults) {
  // The CSR kernels partition disjoint output regions across workers, so
  // the pooled run must be bit-identical to the serial one — Table 3 /
  // Figure 2 outputs cannot move when a pool is attached.
  Rng rng(31);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);

  const Matrix serial_z = model.embed(graph.dense_adjacency(), graph.features());
  const Prediction serial_pred = model.predict(graph);
  const Matrix serial_logits =
      model.forward_cached(graph.dense_adjacency(), graph.features());
  model.zero_grad();

  ThreadPool pool(4);
  model.set_kernel_pool(&pool);
  EXPECT_EQ(model.embed(graph.dense_adjacency(), graph.features()), serial_z);
  EXPECT_EQ(model.predict(graph).probabilities, serial_pred.probabilities);
  EXPECT_EQ(model.forward_cached(graph.dense_adjacency(), graph.features()),
            serial_logits);
  model.set_kernel_pool(nullptr);
}

TEST(GnnClassifierTest, EmbedMatchesDenseLayerReference) {
  // The classifier's CSR-backed embed must reproduce a hand-rolled dense
  // pipeline (normalized_adjacency + dense GcnLayer::infer) to 1e-12: the
  // sparse hot path is a pure representation change.
  Rng rng(32);
  GnnClassifier model(tiny_config(), rng);
  Rng rng_ref(32);  // identical weights for the reference stack
  GcnLayer l0(kAcfgFeatureCount, 8, rng_ref, "phi_e.gcn0");
  GcnLayer l1(8, 6, rng_ref, "phi_e.gcn1");

  Rng graph_rng(33);
  const Acfg graph = tiny_graph(graph_rng);
  const Matrix adjacency = graph.dense_adjacency();
  const Matrix a_hat = normalized_adjacency(adjacency, &graph.features());
  const Matrix reference = l1.infer(a_hat, l0.infer(a_hat, graph.features()));

  EXPECT_TRUE(
      approx_equal(model.embed(adjacency, graph.features()), reference, 1e-12));
}

TEST(GnnClassifierTest, PredictionProbabilitiesSumToOne) {
  Rng rng(3);
  GnnClassifier model(tiny_config(), rng);
  const Prediction p = model.predict(tiny_graph(rng));
  EXPECT_NEAR(p.probabilities.sum(), 1.0, 1e-9);
  EXPECT_LT(p.predicted_class, 4u);
  EXPECT_GT(p.confidence(), 0.0);
}

TEST(GnnClassifierTest, NodeCountMismatchThrows) {
  Rng rng(4);
  GnnClassifier model(tiny_config(), rng);
  EXPECT_THROW(model.embed(Matrix(3, 3), Matrix(4, kAcfgFeatureCount)),
               std::invalid_argument);
}

TEST(GnnClassifierTest, NeedsAtLeastOneLayer) {
  Rng rng(5);
  GnnConfig config = tiny_config();
  config.gcn_dims = {};
  EXPECT_THROW(GnnClassifier(config, rng), std::invalid_argument);
}

TEST(GnnClassifierTest, ForwardCachedMatchesInference) {
  Rng rng(6);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Matrix a = graph.dense_adjacency();
  const Matrix logits_cached = model.forward_cached(a, graph.features());
  const Matrix logits_infer =
      model.class_logits(model.embed(a, graph.features()));
  EXPECT_TRUE(approx_equal(logits_cached, logits_infer, 1e-10));
}

TEST(GnnClassifierTest, MaskingAnEntireGraphChangesPrediction) {
  Rng rng(7);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  Matrix a = graph.dense_adjacency();
  Matrix x = graph.features();
  const Matrix full_logits = model.class_logits(model.embed(a, x));
  for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) mask_node(a, x, v);
  const Matrix masked_logits = model.class_logits(model.embed(a, x));
  EXPECT_FALSE(approx_equal(full_logits, masked_logits, 1e-6));
}

TEST(GnnClassifierTest, MaskedNodeFeaturesDoNotInfluenceOutput) {
  // Once a node is masked (zero row/col + zero features), changing the
  // ORIGINAL feature row of that node must not alter the model output —
  // the "pruned == padded" guarantee.
  Rng rng(8);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  Matrix a = graph.dense_adjacency();
  Matrix x = graph.features();
  mask_node(a, x, 2);
  const Matrix before = model.class_logits(model.embed(a, x));
  // Feature row stays zero because masking zeroed it; perturbing adjacency
  // row of the masked node is forbidden by construction, so instead verify
  // the masked row contributes nothing by comparing against a copy with a
  // different pre-mask feature value.
  Acfg graph2 = graph;
  graph2.features()(2, 0) += 100.0;
  Matrix a2 = graph2.dense_adjacency();
  Matrix x2 = graph2.features();
  mask_node(a2, x2, 2);
  const Matrix after = model.class_logits(model.embed(a2, x2));
  EXPECT_TRUE(approx_equal(before, after, 1e-10));
}

TEST(GnnClassifierTest, BackwardBeforeForwardThrows) {
  Rng rng(9);
  GnnClassifier model(tiny_config(), rng);
  EXPECT_THROW(model.backward_cached(Matrix(1, 4)), std::logic_error);
}

TEST(GnnClassifierTest, ParameterGradientsMatchNumeric) {
  Rng rng(10);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Matrix a = graph.dense_adjacency();
  const std::vector<std::size_t> target{2};

  model.zero_grad();
  const Matrix logits = model.forward_cached(a, graph.features());
  const LossResult loss = softmax_cross_entropy(logits, target);
  model.backward_cached(loss.grad);

  const auto loss_value = [&] {
    const Matrix l = model.class_logits(model.embed(a, graph.features()));
    return softmax_cross_entropy(l, target).value;
  };
  for (Parameter* param : model.parameters()) {
    const Matrix analytic = param->grad;
    const auto result =
        check_gradient_against(param->value, analytic, loss_value);
    EXPECT_TRUE(result.passed(2e-4))
        << param->name << " rel err " << result.max_rel_error;
  }
}

TEST(GnnClassifierTest, AdjacencyGradientMatchesNumericOnExistingEdges) {
  // The adjacency gradient treats normalization degrees as constants, so
  // compare against a numeric gradient computed with FROZEN normalization:
  // perturb A_hat through the same c_i c_j (A + A^T + I) map.
  Rng rng(11);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  Matrix a = graph.dense_adjacency();
  const std::vector<std::size_t> target{1};

  model.zero_grad();
  const Matrix logits = model.forward_cached(a, graph.features());
  const LossResult loss = softmax_cross_entropy(logits, target);
  const auto backward = model.backward_cached(loss.grad, true);
  ASSERT_EQ(backward.grad_adjacency.rows(), graph.num_nodes());

  std::vector<double> inv_sqrt;
  normalized_adjacency(a, inv_sqrt);
  // Build A_hat(A') with fixed coefficients and run the GCN layers on it by
  // constructing a synthetic adjacency via the classifier embed path is not
  // possible (embed renormalizes); instead verify the dominant property:
  // the gradient of an edge with larger |dL/dA_hat| mass is larger, and the
  // gradient is finite and non-zero somewhere on existing edges.
  double max_on_edges = 0.0;
  for (const Edge& e : graph.edges()) {
    max_on_edges = std::max(max_on_edges,
                            std::abs(backward.grad_adjacency(e.src, e.dst)));
  }
  EXPECT_GT(max_on_edges, 0.0);
  for (std::size_t i = 0; i < backward.grad_adjacency.size(); ++i) {
    EXPECT_TRUE(std::isfinite(backward.grad_adjacency.data()[i]));
  }
}

TEST(GnnClassifierTest, SaveLoadRoundTrip) {
  Rng rng(12);
  GnnClassifier model(tiny_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Prediction before = model.predict(graph);

  std::stringstream buffer;
  model.save(buffer);
  const GnnClassifier restored = GnnClassifier::load(buffer);
  const Prediction after = restored.predict(graph);
  EXPECT_EQ(before.predicted_class, after.predicted_class);
  EXPECT_TRUE(approx_equal(before.probabilities, after.probabilities, 1e-12));
}

TEST(GnnClassifierTest, SaveLoadPreservesScaler) {
  Rng rng(13);
  GnnClassifier model(tiny_config(), rng);
  Matrix packed(2, kAcfgFeatureCount, 1.0);
  for (std::size_t c = 0; c < kAcfgFeatureCount; ++c) packed(0, c) = 0.5;
  model.set_scaler(FeatureScaler::from_matrix(packed));

  const Acfg graph = tiny_graph(rng);
  const Prediction before = model.predict(graph);
  std::stringstream buffer;
  model.save(buffer);
  const GnnClassifier restored = GnnClassifier::load(buffer);
  const Prediction after = restored.predict(graph);
  EXPECT_TRUE(approx_equal(before.probabilities, after.probabilities, 1e-12));
}

TEST(GnnClassifierTest, LoadRejectsGarbage) {
  std::stringstream buffer("not a checkpoint at all");
  EXPECT_THROW(GnnClassifier::load(buffer), SerializationError);
}

TEST(GnnClassifierTest, CloneIsIndependent) {
  Rng rng(14);
  GnnClassifier model(tiny_config(), rng);
  GnnClassifier copy = model.clone();
  const Acfg graph = tiny_graph(rng);
  EXPECT_TRUE(approx_equal(model.predict(graph).probabilities,
                           copy.predict(graph).probabilities, 1e-12));
  // Mutating the clone's weights must not affect the original.
  copy.parameters()[0]->value(0, 0) += 1.0;
  EXPECT_FALSE(approx_equal(model.predict(graph).probabilities,
                            copy.predict(graph).probabilities, 1e-12));
}

TEST(GnnClassifierTest, ParameterCountMatchesArchitecture) {
  Rng rng(15);
  GnnClassifier model(tiny_config(), rng);
  // 2 GCN layers * (W+b) + readout (W+b) = 6.
  EXPECT_EQ(model.parameters().size(), 6u);
}

// ---------- SortPool (DGCNN-style) readout ----------

GnnConfig sortpool_config() {
  GnnConfig config = tiny_config();
  config.readout = ReadoutKind::SortPool;
  config.sortpool_k = 4;
  return config;
}

TEST(SortPoolTest, LogitsShapeAndProbabilities) {
  Rng rng(20);
  GnnClassifier model(sortpool_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Prediction p = model.predict(graph);
  EXPECT_EQ(p.probabilities.cols(), 4u);
  EXPECT_NEAR(p.probabilities.sum(), 1.0, 1e-9);
}

TEST(SortPoolTest, ZeroKThrows) {
  Rng rng(21);
  GnnConfig config = sortpool_config();
  config.sortpool_k = 0;
  EXPECT_THROW(GnnClassifier(config, rng), std::invalid_argument);
}

TEST(SortPoolTest, ForwardCachedMatchesInference) {
  Rng rng(22);
  GnnClassifier model(sortpool_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Matrix a = graph.dense_adjacency();
  const Matrix cached = model.forward_cached(a, graph.features());
  const Matrix infer = model.class_logits(model.embed(a, graph.features()));
  EXPECT_TRUE(approx_equal(cached, infer, 1e-10));
}

TEST(SortPoolTest, ConsistentUnderMasking) {
  Rng rng(23);
  GnnClassifier model(sortpool_config(), rng);
  const Acfg graph = tiny_graph(rng);
  Matrix a = graph.dense_adjacency();
  Matrix x = graph.features();
  mask_node(a, x, 1);
  const Matrix cached = model.forward_cached(a, x);
  const Prediction p = model.predict_masked(a, x);
  EXPECT_TRUE(approx_equal(softmax_rows(cached), p.probabilities, 1e-10));
}

TEST(SortPoolTest, ParameterGradientsMatchNumeric) {
  Rng rng(24);
  GnnClassifier model(sortpool_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Matrix a = graph.dense_adjacency();
  const std::vector<std::size_t> target{3};

  model.zero_grad();
  const Matrix logits = model.forward_cached(a, graph.features());
  const LossResult loss = softmax_cross_entropy(logits, target);
  model.backward_cached(loss.grad);

  const auto loss_value = [&] {
    const Matrix l = model.class_logits(model.embed(a, graph.features()));
    return softmax_cross_entropy(l, target).value;
  };
  for (Parameter* param : model.parameters()) {
    const Matrix analytic = param->grad;
    const auto result =
        check_gradient_against(param->value, analytic, loss_value);
    // The sort permutation can flip under +/- eps perturbations at ties;
    // use a looser tolerance than the MeanPool check.
    EXPECT_TRUE(result.passed(5e-3))
        << param->name << " rel err " << result.max_rel_error;
  }
}

TEST(SortPoolTest, SaveLoadRoundTripKeepsReadout) {
  Rng rng(25);
  GnnClassifier model(sortpool_config(), rng);
  const Acfg graph = tiny_graph(rng);
  const Prediction before = model.predict(graph);
  std::stringstream buffer;
  model.save(buffer);
  const GnnClassifier restored = GnnClassifier::load(buffer);
  EXPECT_EQ(restored.config().readout, ReadoutKind::SortPool);
  EXPECT_EQ(restored.config().sortpool_k, 4u);
  EXPECT_TRUE(approx_equal(before.probabilities,
                           restored.predict(graph).probabilities, 1e-12));
}

TEST(SortPoolTest, OldCheckpointMagicRejected) {
  // A MeanPool model saved by this build loads fine; corrupting the magic
  // to the previous version must throw rather than misparse.
  Rng rng(26);
  GnnClassifier model(tiny_config(), rng);
  std::stringstream buffer;
  model.save(buffer);
  std::string bytes = buffer.str();
  bytes[7] = '1';  // CFGXM002 -> CFGXM001
  std::stringstream old(bytes);
  EXPECT_THROW(GnnClassifier::load(old), SerializationError);
}

TEST(SortPoolTest, TrainsOnTinyCorpus) {
  CorpusConfig cc;
  cc.samples_per_family = 3;
  cc.seed = 5;
  const Corpus corpus = generate_corpus(cc);
  std::vector<std::size_t> all(corpus.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  Rng rng(27);
  GnnConfig config;
  config.gcn_dims = {12, 10};
  config.readout = ReadoutKind::SortPool;
  config.sortpool_k = 8;
  GnnClassifier model(config, rng);

  // A couple of training steps must reduce the loss (smoke-level check the
  // SortPool gradient path is wired correctly end to end).
  FeatureScaler scaler;
  scaler.fit(corpus, all);
  model.set_scaler(std::move(scaler));
  Adam optimizer(model.parameters(), AdamConfig{.learning_rate = 5e-3});
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    model.zero_grad();
    double loss_sum = 0.0;
    for (std::size_t i = 0; i < 12; ++i) {
      const Acfg& graph = corpus.graph(i * 3);
      const Matrix logits =
          model.forward_cached(graph.dense_adjacency(), graph.features());
      LossResult loss = softmax_cross_entropy(
          logits, {static_cast<std::size_t>(graph.label())});
      loss_sum += loss.value;
      loss.grad *= 1.0 / 12.0;
      model.backward_cached(loss.grad);
    }
    optimizer.step();
    if (step == 0) first_loss = loss_sum;
    last_loss = loss_sum;
  }
  EXPECT_LT(last_loss, first_loss);
}

}  // namespace
}  // namespace cfgx
