#include "gnn/metrics.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

TEST(ConfusionMatrixTest, ZeroClassesThrows) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrixTest, AccuracyOfPerfectPredictor) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_EQ(cm.total(), 3u);
}

TEST(ConfusionMatrixTest, MixedAccuracy) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 1.0);
}

TEST(ConfusionMatrixTest, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 0.0);
}

TEST(ConfusionMatrixTest, OutOfRangeThrows) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, 2), std::out_of_range);
}

TEST(ConfusionMatrixTest, CountsStored) {
  ConfusionMatrix cm(2);
  cm.add(0, 1);
  cm.add(0, 1);
  EXPECT_EQ(cm.count(0, 1), 2u);
  EXPECT_EQ(cm.count(1, 0), 0u);
}

TEST(ConfusionMatrixTest, ToStringUsesClassNames) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  const std::string text = cm.to_string({"Bagle", "Zlob"});
  EXPECT_NE(text.find("Bagle"), std::string::npos);
  EXPECT_NE(text.find("Zlob"), std::string::npos);
}

TEST(CurveAucTest, ConstantCurve) {
  EXPECT_NEAR(curve_auc({0.1, 0.5, 1.0}, {0.8, 0.8, 0.8}), 0.8, 1e-12);
}

TEST(CurveAucTest, LinearRamp) {
  // y = x on [0, 1]: normalized AUC = 0.5.
  EXPECT_NEAR(curve_auc({0.0, 0.5, 1.0}, {0.0, 0.5, 1.0}), 0.5, 1e-12);
}

TEST(CurveAucTest, PaperStyleGrid) {
  // Accuracy 1.0 at every subgraph size from 10% to 100% -> AUC 1.0.
  std::vector<double> x, y;
  for (int k = 1; k <= 10; ++k) {
    x.push_back(k / 10.0);
    y.push_back(1.0);
  }
  EXPECT_NEAR(curve_auc(x, y), 1.0, 1e-12);
}

TEST(CurveAucTest, HigherCurveGivesHigherAuc) {
  const std::vector<double> x{0.1, 0.4, 0.7, 1.0};
  const double low = curve_auc(x, {0.1, 0.2, 0.3, 0.9});
  const double high = curve_auc(x, {0.6, 0.7, 0.8, 0.9});
  EXPECT_GT(high, low);
}

TEST(CurveAucTest, ValidationErrors) {
  EXPECT_THROW(curve_auc({0.1}, {0.5}), std::invalid_argument);
  EXPECT_THROW(curve_auc({0.1, 0.2}, {0.5}), std::invalid_argument);
  EXPECT_THROW(curve_auc({0.2, 0.1}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(curve_auc({0.1, 0.1}, {0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace cfgx
