#include "gnn/gcn.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/sparse.hpp"
#include "graph/ops.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

Matrix random_a_hat(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  // Ring backbone keeps every node active: an isolated node would sit at
  // the ReLU kink (preactivation exactly 0 with zero bias), where finite
  // differences are undefined.
  for (std::size_t i = 0; i < n; ++i) a(i, (i + 1) % n) = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.3)) a(i, j) = 1.0;
    }
  }
  return normalized_adjacency(a);
}

double scalarize(const Matrix& out, const Matrix& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) acc += out.data()[i] * w.data()[i];
  return acc;
}

TEST(GcnLayerTest, InferMatchesForward) {
  Rng rng(1);
  GcnLayer layer(4, 3, rng);
  const Matrix a_hat = random_a_hat(5, rng);
  const Matrix h = random_matrix(5, 4, rng);
  EXPECT_TRUE(approx_equal(layer.infer(a_hat, h), layer.forward(a_hat, h), 1e-12));
}

TEST(GcnLayerTest, OutputIsNonNegative) {
  Rng rng(2);
  GcnLayer layer(4, 6, rng);
  const Matrix out = layer.forward(random_a_hat(7, rng), random_matrix(7, 4, rng));
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_GE(out.data()[i], 0.0);
}

TEST(GcnLayerTest, IsolatedNodeRowProducesBiasOnlyOutput) {
  Rng rng(3);
  GcnLayer layer(2, 2, rng);
  Matrix a_hat(3, 3);          // node 2 fully masked (zero row/col)
  a_hat(0, 0) = a_hat(1, 1) = 0.5;
  a_hat(0, 1) = a_hat(1, 0) = 0.5;
  const Matrix h = random_matrix(3, 2, rng);
  const Matrix out = layer.forward(a_hat, h);
  // Row 2: ReLU(0 + b).
  for (std::size_t c = 0; c < 2; ++c) {
    const double expected = std::max(0.0, layer.parameters()[1]->value(0, c));
    EXPECT_NEAR(out(2, c), expected, 1e-12);
  }
}

TEST(GcnLayerTest, InputGradientMatchesNumeric) {
  Rng rng(4);
  GcnLayer layer(3, 4, rng);
  const Matrix a_hat = random_a_hat(5, rng);
  Matrix h = random_matrix(5, 3, rng);
  const Matrix w = random_matrix(5, 4, rng);

  layer.zero_grad();
  layer.forward(a_hat, h);
  const Matrix analytic = layer.backward(w);
  const auto result = check_gradient_against(
      h, analytic, [&] { return scalarize(layer.infer(a_hat, h), w); });
  EXPECT_TRUE(result.passed(1e-5)) << result.max_rel_error;
}

TEST(GcnLayerTest, WeightGradientsMatchNumeric) {
  Rng rng(5);
  GcnLayer layer(3, 2, rng);
  const Matrix a_hat = random_a_hat(4, rng);
  const Matrix h = random_matrix(4, 3, rng);
  const Matrix w = random_matrix(4, 2, rng);

  layer.zero_grad();
  layer.forward(a_hat, h);
  layer.backward(w);

  for (Parameter* param : layer.parameters()) {
    const Matrix analytic = param->grad;
    const auto result = check_gradient_against(
        param->value, analytic,
        [&] { return scalarize(layer.infer(a_hat, h), w); });
    EXPECT_TRUE(result.passed(1e-5))
        << param->name << " rel err " << result.max_rel_error;
  }
}

TEST(GcnLayerTest, AdjacencyGradientMatchesNumeric) {
  Rng rng(6);
  GcnLayer layer(3, 2, rng);
  Matrix a_hat = random_a_hat(4, rng);
  const Matrix h = random_matrix(4, 3, rng);
  const Matrix w = random_matrix(4, 2, rng);

  layer.zero_grad();
  layer.forward(a_hat, h);
  Matrix grad_a(4, 4);
  layer.backward(w, &grad_a);

  const auto result = check_gradient_against(
      a_hat, grad_a, [&] { return scalarize(layer.infer(a_hat, h), w); });
  EXPECT_TRUE(result.passed(1e-5)) << result.max_rel_error;
}

TEST(GcnLayerTest, GradientsAccumulate) {
  Rng rng(7);
  GcnLayer layer(2, 2, rng);
  const Matrix a_hat = random_a_hat(3, rng);
  const Matrix h = random_matrix(3, 2, rng);
  const Matrix w(3, 2, 1.0);

  layer.zero_grad();
  layer.forward(a_hat, h);
  layer.backward(w);
  const Matrix once = layer.parameters()[0]->grad;
  layer.forward(a_hat, h);
  layer.backward(w);
  EXPECT_TRUE(approx_equal(layer.parameters()[0]->grad, once * 2.0, 1e-10));
}

// --- CSR fast path: must be a drop-in replacement for the dense path ---

TEST(GcnLayerCsrTest, InferMatchesDenseReference) {
  Rng rng(20);
  GcnLayer layer(4, 3, rng);
  const Matrix a_hat = random_a_hat(6, rng);
  const Matrix h = random_matrix(6, 4, rng);
  const CsrMatrix a_csr = CsrMatrix::from_dense(a_hat);
  EXPECT_TRUE(approx_equal(layer.infer(a_csr, h), layer.infer(a_hat, h), 1e-12));
}

TEST(GcnLayerCsrTest, InferWithPoolMatchesDenseReference) {
  Rng rng(21);
  ThreadPool pool(4);
  GcnLayer layer(4, 5, rng);
  const Matrix a_hat = random_a_hat(32, rng);
  const Matrix h = random_matrix(32, 4, rng);
  const CsrMatrix a_csr = CsrMatrix::from_dense(a_hat);
  EXPECT_EQ(layer.infer(a_csr, h, &pool), layer.infer(a_csr, h));
  EXPECT_TRUE(approx_equal(layer.infer(a_csr, h, &pool), layer.infer(a_hat, h),
                           1e-12));
}

TEST(GcnLayerCsrTest, ForwardBackwardMatchesDensePath) {
  Rng rng(22);
  GcnLayer dense_layer(3, 4, rng);
  Rng rng2(22);
  GcnLayer csr_layer(3, 4, rng2);  // identical weights (same seed)

  Rng data_rng(23);
  const Matrix a_hat = random_a_hat(7, data_rng);
  const Matrix h = random_matrix(7, 3, data_rng);
  const Matrix w = random_matrix(7, 4, data_rng);
  const CsrMatrix a_csr = CsrMatrix::from_dense(a_hat);

  EXPECT_TRUE(approx_equal(dense_layer.forward(a_hat, h),
                           csr_layer.forward(a_csr, h), 1e-12));

  Matrix grad_a_dense(7, 7), grad_a_csr(7, 7);
  const Matrix grad_h_dense = dense_layer.backward(w, &grad_a_dense);
  const Matrix grad_h_csr = csr_layer.backward(w, &grad_a_csr);
  EXPECT_TRUE(approx_equal(grad_h_dense, grad_h_csr, 1e-12));
  EXPECT_TRUE(approx_equal(grad_a_dense, grad_a_csr, 1e-12));
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(approx_equal(dense_layer.parameters()[p]->grad,
                             csr_layer.parameters()[p]->grad, 1e-12));
  }
}

// Gradcheck straight through the CSR-backed layer: the analytic gradients
// of the sparse kernels against central finite differences of the sparse
// forward itself (not just agreement with the dense path).
TEST(GcnLayerCsrTest, GradientsMatchNumericThroughCsrPath) {
  Rng rng(24);
  GcnLayer layer(3, 4, rng);
  const Matrix a_hat = random_a_hat(5, rng);
  const CsrMatrix a_csr = CsrMatrix::from_dense(a_hat);
  Matrix h = random_matrix(5, 3, rng);
  const Matrix w = random_matrix(5, 4, rng);

  layer.zero_grad();
  layer.forward(a_csr, h);
  const Matrix analytic = layer.backward(w);
  const auto input_check = check_gradient_against(
      h, analytic, [&] { return scalarize(layer.infer(a_csr, h), w); });
  EXPECT_TRUE(input_check.passed(1e-5)) << input_check.max_rel_error;

  for (Parameter* param : layer.parameters()) {
    const auto param_check = check_gradient_against(
        param->value, param->grad,
        [&] { return scalarize(layer.infer(a_csr, h), w); });
    EXPECT_TRUE(param_check.passed(1e-5))
        << param->name << " rel err " << param_check.max_rel_error;
  }
}

TEST(GcnLayerTest, DimensionsExposed) {
  Rng rng(8);
  GcnLayer layer(12, 64, rng);
  EXPECT_EQ(layer.in_features(), 12u);
  EXPECT_EQ(layer.out_features(), 64u);
}

}  // namespace
}  // namespace cfgx
