#include "graph/dot.hpp"

#include <gtest/gtest.h>
#include <fstream>

namespace cfgx {
namespace {

Acfg small_graph() {
  Acfg graph(3);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(1, 2, EdgeKind::Call);
  return graph;
}

TEST(DotExportTest, ContainsDigraphStructure) {
  const std::string dot = to_dot(small_graph());
  EXPECT_NE(dot.find("digraph acfg {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExportTest, CallEdgesStyled) {
  const std::string dot = to_dot(small_graph());
  const std::size_t call_pos = dot.find("n1 -> n2");
  ASSERT_NE(call_pos, std::string::npos);
  EXPECT_NE(dot.find("style=dashed", call_pos), std::string::npos);
  EXPECT_NE(dot.find("label=\"call\"", call_pos), std::string::npos);
}

TEST(DotExportTest, CallStylingCanBeDisabled) {
  DotOptions options;
  options.style_call_edges = false;
  const std::string dot = to_dot(small_graph(), options);
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExportTest, HighlightedNodesFilled) {
  DotOptions options;
  options.highlighted_nodes = {1};
  const std::string dot = to_dot(small_graph(), options);
  const std::size_t n1 = dot.find("n1 [");
  ASSERT_NE(n1, std::string::npos);
  const std::size_t n1_end = dot.find('\n', n1);
  EXPECT_NE(dot.substr(n1, n1_end - n1).find("fillcolor"), std::string::npos);
  const std::size_t n0 = dot.find("n0 [");
  const std::size_t n0_end = dot.find('\n', n0);
  EXPECT_EQ(dot.substr(n0, n0_end - n0).find("fillcolor"), std::string::npos);
}

TEST(DotExportTest, HighlightOutOfRangeThrows) {
  DotOptions options;
  options.highlighted_nodes = {7};
  EXPECT_THROW(to_dot(small_graph(), options), std::out_of_range);
}

TEST(DotExportTest, CustomLabelsUsedAndEscaped) {
  DotOptions options;
  options.node_label = [](std::uint32_t node) {
    return node == 0 ? std::string("push \"str\"\nret") : std::string("plain");
  };
  const std::string dot = to_dot(small_graph(), options);
  EXPECT_NE(dot.find("push \\\"str\\\"\\lret"), std::string::npos);
  EXPECT_NE(dot.find("plain"), std::string::npos);
}

TEST(DotExportTest, LabelsTruncated) {
  DotOptions options;
  options.max_label_length = 5;
  options.node_label = [](std::uint32_t) { return std::string(100, 'x'); };
  const std::string dot = to_dot(small_graph(), options);
  EXPECT_NE(dot.find("xxxxx..."), std::string::npos);
  EXPECT_EQ(dot.find(std::string(10, 'x')), std::string::npos);
}

TEST(DotExportTest, GraphNameConfigurable) {
  DotOptions options;
  options.graph_name = "sample42";
  const std::string dot = to_dot(small_graph(), options);
  EXPECT_NE(dot.find("digraph sample42 {"), std::string::npos);
}

TEST(DotExportTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cfgx_graph.dot";
  write_dot_file(path, small_graph());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, to_dot(small_graph()));
}

TEST(DotExportTest, WriteFileBadPathThrows) {
  EXPECT_THROW(write_dot_file("/nonexistent/dir/x.dot", small_graph()),
               std::runtime_error);
}

TEST(DotExportTest, EmptyGraphStillValid) {
  const std::string dot = to_dot(Acfg(0));
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace cfgx
