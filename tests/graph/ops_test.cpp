#include "graph/ops.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cfgx {
namespace {

Matrix triangle_adjacency() {
  // 0 -> 1 (flow), 1 -> 2 (call), 2 -> 0 (flow)
  Acfg graph(3);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(1, 2, EdgeKind::Call);
  graph.add_edge(2, 0, EdgeKind::Flow);
  return graph.dense_adjacency();
}

TEST(NormalizedAdjacencyTest, IsSymmetric) {
  const Matrix a_hat = normalized_adjacency(triangle_adjacency());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(a_hat(i, j), a_hat(j, i), 1e-12);
    }
  }
}

TEST(NormalizedAdjacencyTest, ActiveNodesHaveSelfLoops) {
  const Matrix a_hat = normalized_adjacency(triangle_adjacency());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_GT(a_hat(i, i), 0.0);
}

TEST(NormalizedAdjacencyTest, MaskedNodeRowIsZero) {
  Matrix a = triangle_adjacency();
  Matrix x(3, 2, 1.0);
  mask_node(a, x, 1);
  const Matrix a_hat = normalized_adjacency(a);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(a_hat(1, j), 0.0);
    EXPECT_DOUBLE_EQ(a_hat(j, 1), 0.0);
  }
  // Masked node gets no self-loop either (pruned == padded).
  EXPECT_DOUBLE_EQ(a_hat(1, 1), 0.0);
}

TEST(NormalizedAdjacencyTest, SingleActiveEdgePairNormalizesToDoublyStochasticish) {
  // Two nodes with one edge: degrees are equal, rows sum to 1.
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  const Matrix a_hat = normalized_adjacency(a);
  EXPECT_NEAR(a_hat(0, 0) + a_hat(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(a_hat(1, 0) + a_hat(1, 1), 1.0, 1e-12);
}

TEST(NormalizedAdjacencyTest, CallWeightInfluencesNormalization) {
  Matrix flow(2, 2), call(2, 2);
  flow(0, 1) = 1.0;
  call(0, 1) = 2.0;
  const Matrix h_flow = normalized_adjacency(flow);
  const Matrix h_call = normalized_adjacency(call);
  // Heavier edge -> relatively smaller self-loop share.
  EXPECT_LT(h_call(0, 0), h_flow(0, 0));
  EXPECT_GT(h_call(0, 1), 0.0);
}

TEST(NormalizedAdjacencyTest, ExportsInverseSqrtDegrees) {
  std::vector<double> inv_sqrt;
  const Matrix a_hat = normalized_adjacency(triangle_adjacency(), inv_sqrt);
  ASSERT_EQ(inv_sqrt.size(), 3u);
  for (double v : inv_sqrt) EXPECT_GT(v, 0.0);
  // Reconstruct one entry: a_hat(0,1) = c0*c1*(S+I)(0,1).
  const Matrix a = triangle_adjacency();
  const double s01 = a(0, 1) + a(1, 0);
  EXPECT_NEAR(a_hat(0, 1), inv_sqrt[0] * inv_sqrt[1] * s01, 1e-12);
}

TEST(NormalizedAdjacencyTest, NonSquareThrows) {
  EXPECT_THROW(normalized_adjacency(Matrix(2, 3)), std::invalid_argument);
}

TEST(NormalizedAdjacencyCsrTest, MatchesDenseBitForBit) {
  Rng rng(9);
  Matrix a(24, 24);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 24; ++j) {
      if (i != j && rng.bernoulli(0.08)) a(i, j) = 1.0;
    }
  }
  std::vector<double> inv_dense, inv_csr;
  const Matrix dense = normalized_adjacency(a, inv_dense);
  const CsrMatrix csr = normalized_adjacency_csr(a, inv_csr);
  EXPECT_EQ(csr.to_dense(), dense);  // identical values, zeros dropped
  EXPECT_EQ(inv_csr, inv_dense);
  EXPECT_LT(csr.density(), 0.5);
}

TEST(NormalizedAdjacencyCsrTest, MaskedNodeHasEmptyRow) {
  Matrix a = triangle_adjacency();
  Matrix x(3, 4, 1.0);
  mask_node(a, x, 1);
  const CsrMatrix csr = normalized_adjacency_csr(a, &x);
  EXPECT_EQ(csr.row_ptr()[2] - csr.row_ptr()[1], 0u);  // node 1 stores nothing
}

TEST(MaskNodeTest, ZeroesRowColumnAndFeatures) {
  Matrix a = triangle_adjacency();
  Matrix x(3, 4, 2.0);
  mask_node(a, x, 2);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(a(2, j), 0.0);
    EXPECT_DOUBLE_EQ(a(j, 2), 0.0);
  }
  for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(x(2, c), 0.0);
  // Other entries untouched.
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 0), 2.0);
}

TEST(MaskNodeTest, OutOfRangeThrows) {
  Matrix a(3, 3);
  Matrix x(3, 2);
  EXPECT_THROW(mask_node(a, x, 3), std::out_of_range);
  Matrix bad_x(2, 2);
  EXPECT_THROW(mask_node(a, bad_x, 0), std::invalid_argument);
}

TEST(NodeIsMaskedTest, DetectsMaskedNodes) {
  Matrix a = triangle_adjacency();
  Matrix x(3, 1);
  EXPECT_FALSE(node_is_masked(a, 0));
  mask_node(a, x, 0);
  EXPECT_TRUE(node_is_masked(a, 0));
}

TEST(KeepOnlyTest, PreservesShapeMasksComplement) {
  const Matrix a = triangle_adjacency();
  const Matrix x(3, 2, 1.0);
  const MaskedGraph masked = keep_only(a, x, {0, 1});
  EXPECT_EQ(masked.adjacency.rows(), 3u);
  EXPECT_TRUE(node_is_masked(masked.adjacency, 2));
  EXPECT_DOUBLE_EQ(masked.adjacency(0, 1), 1.0);   // kept edge
  EXPECT_DOUBLE_EQ(masked.adjacency(1, 2), 0.0);   // edge into masked node
  EXPECT_DOUBLE_EQ(masked.features(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(masked.features(0, 0), 1.0);
}

TEST(KeepOnlyTest, KeepAllIsIdentity) {
  const Matrix a = triangle_adjacency();
  const Matrix x(3, 2, 1.0);
  const MaskedGraph masked = keep_only(a, x, {0, 1, 2});
  EXPECT_EQ(masked.adjacency, a);
  EXPECT_EQ(masked.features, x);
}

TEST(KeepOnlyTest, OutOfRangeThrows) {
  const Matrix a(2, 2);
  const Matrix x(2, 1);
  EXPECT_THROW(keep_only(a, x, {5}), std::out_of_range);
}

TEST(TopKNodesTest, OrdersByScoreDescending) {
  const auto top = top_k_nodes({0.1, 0.9, 0.5}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 0u);
}

TEST(TopKNodesTest, TiesBrokenByLowerIndex) {
  const auto top = top_k_nodes({0.5, 0.5, 0.5}, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopKNodesTest, KTooLargeThrows) {
  EXPECT_THROW(top_k_nodes({0.1}, 2), std::invalid_argument);
}

TEST(NodesForFractionTest, CeilAndClamp) {
  EXPECT_EQ(nodes_for_fraction(10, 0.1), 1u);
  EXPECT_EQ(nodes_for_fraction(10, 0.25), 3u);   // ceil(2.5)
  EXPECT_EQ(nodes_for_fraction(10, 1.0), 10u);
  EXPECT_EQ(nodes_for_fraction(3, 0.01), 1u);    // at least one node
  EXPECT_EQ(nodes_for_fraction(0, 0.5), 0u);
}

TEST(NodesForFractionTest, BadFractionThrows) {
  EXPECT_THROW(nodes_for_fraction(10, -0.1), std::invalid_argument);
  EXPECT_THROW(nodes_for_fraction(10, 1.1), std::invalid_argument);
}

Acfg chain_graph(std::uint32_t nodes, std::size_t feature_count, double fill) {
  Acfg graph(nodes, feature_count);
  for (std::uint32_t i = 0; i + 1 < nodes; ++i) {
    graph.add_edge(i, i + 1, EdgeKind::Flow);
  }
  for (std::size_t i = 0; i < graph.features().size(); ++i) {
    graph.features().data()[i] = fill + static_cast<double>(i) * 0.01;
  }
  return graph;
}

TEST(BatchNormalizedGraphsTest, BlocksMatchPerGraphNormalization) {
  const Acfg g0 = chain_graph(4, 3, 0.5);
  const Acfg g1 = chain_graph(7, 3, -0.25);
  const GraphBatch batch = batch_normalized_graphs({&g0, &g1});

  ASSERT_EQ(batch.num_graphs(), 2u);
  EXPECT_EQ(batch.a_hat.matrix().rows(), 11u);
  EXPECT_EQ(batch.features.rows(), 11u);
  EXPECT_EQ(batch.features.cols(), 3u);
  ASSERT_EQ(batch.inv_sqrt_degree.size(), 11u);

  const std::vector<const Acfg*> graphs = {&g0, &g1};
  for (std::size_t k = 0; k < graphs.size(); ++k) {
    const Matrix adjacency = graphs[k]->dense_adjacency();
    std::vector<double> inv_sqrt;
    const CsrMatrix expected =
        normalized_adjacency_csr(adjacency, inv_sqrt, &graphs[k]->features());
    const BatchedCsr::Range& range = batch.range(k);
    ASSERT_EQ(range.size(), graphs[k]->num_nodes());

    const Matrix expected_dense = expected.to_dense();
    const Matrix batch_dense = batch.a_hat.matrix().to_dense();
    for (std::size_t i = 0; i < range.size(); ++i) {
      for (std::size_t j = 0; j < range.size(); ++j) {
        EXPECT_EQ(batch_dense(range.begin + i, range.begin + j),
                  expected_dense(i, j));
      }
      EXPECT_EQ(batch.inv_sqrt_degree[range.begin + i], inv_sqrt[i]);
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(batch.features(range.begin + i, c),
                  graphs[k]->features()(i, c));
      }
    }
    EXPECT_EQ(batch.active_counts[k],
              count_active_nodes(adjacency, graphs[k]->features()));
  }
}

TEST(BatchNormalizedGraphsTest, ActiveCountsSkipPaddedNodes) {
  // Two trailing nodes with no edges and zero features are inactive.
  Acfg graph(5, 2);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.features()(0, 0) = 1.0;
  graph.features()(1, 1) = 1.0;
  graph.features()(2, 0) = 3.0;  // isolated but feature-active
  const GraphBatch batch = batch_normalized_graphs({&graph});
  ASSERT_EQ(batch.active_counts.size(), 1u);
  EXPECT_EQ(batch.active_counts[0], 3u);
  EXPECT_EQ(batch.inv_sqrt_degree[3], 0.0);
  EXPECT_EQ(batch.inv_sqrt_degree[4], 0.0);
}

TEST(BatchNormalizedGraphsTest, EmptyAndInvalidInputs) {
  const GraphBatch empty = batch_normalized_graphs({});
  EXPECT_EQ(empty.num_graphs(), 0u);

  const Acfg narrow(2, 2);
  const Acfg wide(2, 3);
  EXPECT_THROW(batch_normalized_graphs({&narrow, &wide}),
               std::invalid_argument);
  EXPECT_THROW(batch_normalized_graphs({&narrow, nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cfgx
