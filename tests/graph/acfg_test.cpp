#include "graph/acfg.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

TEST(AcfgTest, ConstructionInitializesFeatures) {
  Acfg graph(5);
  EXPECT_EQ(graph.num_nodes(), 5u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.feature_count(), kAcfgFeatureCount);
  EXPECT_DOUBLE_EQ(graph.features().sum(), 0.0);
}

TEST(AcfgTest, AddEdgeAndQuery) {
  Acfg graph(3);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(1, 2, EdgeKind::Call);
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 2));
  EXPECT_FALSE(graph.has_edge(2, 0));
}

TEST(AcfgTest, EdgeOutOfRangeThrows) {
  Acfg graph(2);
  EXPECT_THROW(graph.add_edge(0, 2, EdgeKind::Flow), std::out_of_range);
  EXPECT_THROW(graph.add_edge(5, 0, EdgeKind::Flow), std::out_of_range);
}

TEST(AcfgTest, DuplicateEdgeThrows) {
  Acfg graph(2);
  graph.add_edge(0, 1, EdgeKind::Flow);
  EXPECT_THROW(graph.add_edge(0, 1, EdgeKind::Flow), std::invalid_argument);
  // A different kind between the same endpoints is allowed.
  EXPECT_NO_THROW(graph.add_edge(0, 1, EdgeKind::Call));
}

TEST(AcfgTest, EdgeWeightsMatchPaper) {
  EXPECT_DOUBLE_EQ((Edge{0, 1, EdgeKind::Flow}.weight()), 1.0);
  EXPECT_DOUBLE_EQ((Edge{0, 1, EdgeKind::Call}.weight()), 2.0);
}

TEST(AcfgTest, DenseAdjacencyWeights) {
  Acfg graph(3);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(1, 2, EdgeKind::Call);
  const Matrix a = graph.dense_adjacency();
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
}

TEST(AcfgTest, CallDominatesFlowInDenseAdjacency) {
  Acfg graph(2);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(0, 1, EdgeKind::Call);
  EXPECT_DOUBLE_EQ(graph.dense_adjacency()(0, 1), 2.0);
}

TEST(AcfgTest, Degrees) {
  Acfg graph(4);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(0, 2, EdgeKind::Flow);
  graph.add_edge(3, 0, EdgeKind::Call);
  const auto out = graph.out_degrees();
  const auto in = graph.in_degrees();
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[3], 1u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(in[3], 0u);
}

TEST(AcfgTest, PlantedNodesDedupAndValidate) {
  Acfg graph(3);
  graph.mark_planted(1);
  graph.mark_planted(1);
  graph.mark_planted(2);
  EXPECT_EQ(graph.planted_nodes().size(), 2u);
  EXPECT_THROW(graph.mark_planted(3), std::out_of_range);
}

TEST(AcfgTest, LabelAndFamily) {
  Acfg graph(1);
  EXPECT_EQ(graph.label(), -1);
  graph.set_label(4);
  graph.set_family("Lmir");
  EXPECT_EQ(graph.label(), 4);
  EXPECT_EQ(graph.family(), "Lmir");
}

TEST(AcfgTest, ValidatePassesOnConsistentGraph) {
  Acfg graph(2);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.mark_planted(0);
  EXPECT_NO_THROW(graph.validate());
}

TEST(GraphStatsTest, CountsAndMeans) {
  Acfg graph(4);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(0, 2, EdgeKind::Call);
  const GraphStats stats = compute_stats(graph);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 2u);
  EXPECT_EQ(stats.num_call_edges, 1u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 0.5);
  EXPECT_EQ(stats.isolated_nodes, 1u);  // node 3
}

TEST(GraphStatsTest, EmptyGraph) {
  const GraphStats stats = compute_stats(Acfg(0));
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 0.0);
}

}  // namespace
}  // namespace cfgx
