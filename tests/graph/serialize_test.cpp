#include "graph/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace cfgx {
namespace {

Acfg sample_graph() {
  Acfg graph(4);
  graph.add_edge(0, 1, EdgeKind::Flow);
  graph.add_edge(1, 2, EdgeKind::Call);
  graph.add_edge(2, 3, EdgeKind::Flow);
  graph.set_label(3);
  graph.set_family("Ldpinch");
  graph.mark_planted(2);
  Rng rng(9);
  for (std::size_t i = 0; i < graph.features().size(); ++i) {
    graph.features().data()[i] = std::floor(rng.uniform(0, 10));
  }
  return graph;
}

TEST(AcfgSerializeTest, RoundTripIsExact) {
  const Acfg original = sample_graph();
  std::stringstream buffer;
  write_acfg(buffer, original);
  const Acfg restored = read_acfg(buffer);
  EXPECT_EQ(original, restored);
}

TEST(AcfgSerializeTest, EmptyEdgesRoundTrip) {
  Acfg graph(2);
  graph.set_label(0);
  std::stringstream buffer;
  write_acfg(buffer, graph);
  const Acfg restored = read_acfg(buffer);
  EXPECT_EQ(restored.num_edges(), 0u);
  EXPECT_EQ(restored.num_nodes(), 2u);
}

TEST(AcfgSerializeTest, TruncatedStreamThrows) {
  std::stringstream buffer;
  write_acfg(buffer, sample_graph());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 8);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_acfg(truncated), SerializationError);
}

TEST(AcfgSerializeTest, InvalidEdgeKindThrows) {
  std::stringstream buffer;
  write_acfg(buffer, sample_graph());
  std::string bytes = buffer.str();
  // The edge kind byte of the first edge lives right after
  // num_nodes(4) + num_edges(4) + src(4) + dst(4).
  bytes[16] = 7;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(read_acfg(corrupted), SerializationError);
}

TEST(CollectionSerializeTest, RoundTrip) {
  std::vector<Acfg> graphs{sample_graph(), sample_graph(), Acfg(1)};
  graphs[2].set_label(0);
  std::stringstream buffer;
  write_acfg_collection(buffer, graphs);
  const auto restored = read_acfg_collection(buffer);
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored[0], graphs[0]);
  EXPECT_EQ(restored[2].num_nodes(), 1u);
}

TEST(CollectionSerializeTest, EmptyCollection) {
  std::stringstream buffer;
  write_acfg_collection(buffer, {});
  EXPECT_TRUE(read_acfg_collection(buffer).empty());
}

TEST(CollectionSerializeTest, BadMagicThrows) {
  std::stringstream buffer("NOTMAGIC________");
  EXPECT_THROW(read_acfg_collection(buffer), SerializationError);
}

TEST(CollectionSerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cfgx_graphs.bin";
  const std::vector<Acfg> graphs{sample_graph()};
  save_acfg_collection_file(path, graphs);
  const auto restored = load_acfg_collection_file(path);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0], graphs[0]);
}

TEST(CollectionSerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_acfg_collection_file("/nonexistent/graphs.bin"),
               SerializationError);
}

}  // namespace
}  // namespace cfgx
