// Unit tests for the CFG coarsening subsystem (graph/reduce.hpp): pass
// semantics, projection bookkeeping, merge rules, and the edge-list helpers
// (set_edges, masked_subgraph, count_active_nodes, the Acfg-direct
// MaskedNormalizedAdjacency constructor) the reduction work rides on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "graph/ops.hpp"
#include "graph/reduce.hpp"

namespace cfgx {
namespace {

// A graph whose every block carries distinctive (non-NOP) features, so only
// structural passes fire.
Acfg chain_graph(std::uint32_t n) {
  Acfg g(n);
  std::vector<Edge> edges;
  for (std::uint32_t v = 0; v + 1 < n; ++v) {
    edges.push_back(Edge{v, v + 1, EdgeKind::Flow});
  }
  g.set_edges(std::move(edges));
  for (std::uint32_t v = 0; v < n; ++v) {
    g.features()(v, 4) = 1.0 + v;   // #arithmetic: blocks are not NOP-like
    g.features()(v, 9) = 2.0 + v;   // #total instructions
    g.features()(v, 10) = v % 3;    // #offspring
  }
  g.set_label(1);
  g.set_family("Bagle");
  return g;
}

TEST(ReduceGraph, LinearChainCollapsesToOneSuperBlock) {
  const Acfg g = chain_graph(5);
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();

  ASSERT_EQ(r.graph.num_nodes(), 1u);
  EXPECT_EQ(r.graph.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 0.2);
  ASSERT_EQ(r.projection.members.size(), 1u);
  EXPECT_EQ(r.projection.members[0],
            (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));

  // Sum rule on instruction counts, Max on #offspring.
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 4), 1 + 2 + 3 + 4 + 5);
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 9), 2 + 3 + 4 + 5 + 6);
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 10), 2.0);

  // Metadata carried over.
  EXPECT_EQ(r.graph.label(), 1);
  EXPECT_EQ(r.graph.family(), "Bagle");
}

TEST(ReduceGraph, DiamondDrainsIntoItsHead) {
  // if/else diamond: 0 -> {1,2} -> 3. The branch pass folds both arms into
  // the head, which leaves the chain 0 -> 3; the whole single-entry
  // single-exit region is one super-block at the fixpoint.
  Acfg g(4);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 2, EdgeKind::Flow},
               Edge{1, 3, EdgeKind::Flow}, Edge{2, 3, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 4; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  ASSERT_EQ(r.graph.num_nodes(), 1u);
  EXPECT_EQ(r.graph.num_edges(), 0u);
  EXPECT_EQ(r.projection.members[0], (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 4), 4.0);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 0.25);
}

TEST(ReduceGraph, DiamondCollapseCanBeDisabled) {
  Acfg g(4);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 2, EdgeKind::Flow},
               Edge{1, 3, EdgeKind::Flow}, Edge{2, 3, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 4; ++v) g.features()(v, 4) = 1.0;
  ReduceConfig config;
  config.collapse_branch_diamonds = false;
  const ReducedGraph r = reduce_graph(g, config);
  r.projection.validate();
  EXPECT_EQ(r.graph.num_nodes(), 4u);
  EXPECT_EQ(r.graph.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 1.0);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(ReduceGraph, TriangleArmFoldsIntoHeadAndSharedJoinSurvives) {
  // if-without-else: 0 -> {1,2} with 1 -> 2, plus an outside predecessor
  // 3 -> 2 that pins the join. Only the arm merges into the head.
  Acfg g(4);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 2, EdgeKind::Flow},
               Edge{1, 2, EdgeKind::Flow}, Edge{3, 2, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 4; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  ASSERT_EQ(r.graph.num_nodes(), 3u);
  EXPECT_EQ(r.projection.members[0], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(r.projection.super_of[2], 1u);
  EXPECT_EQ(r.projection.super_of[3], 2u);
  // The two parallel paths 0->2 and 0->1->2 fuse into one Flow edge.
  EXPECT_EQ(r.graph.edges(),
            (std::vector<Edge>{Edge{0, 1, EdgeKind::Flow},
                               Edge{2, 1, EdgeKind::Flow}}));
}

TEST(ReduceGraph, BranchArmsWithExtraPredecessorsSurvive) {
  // Diamond 0 -> {1,2} -> 3 where arm 1 has a second predecessor 4: no arm
  // is single-entry any more, so the branch stays (and nothing else fires).
  Acfg g(5);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 2, EdgeKind::Flow},
               Edge{1, 3, EdgeKind::Flow}, Edge{2, 3, EdgeKind::Flow},
               Edge{4, 1, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 5; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  EXPECT_EQ(r.graph.num_nodes(), 5u);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 1.0);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(ReduceGraph, BranchArmsWithCallEdgesSurvive) {
  // Arm 1 calls out (1 -call-> 4): it is not pure straight-line code, so
  // the diamond must not fold it away.
  Acfg g(5);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 2, EdgeKind::Flow},
               Edge{1, 3, EdgeKind::Flow}, Edge{1, 4, EdgeKind::Call},
               Edge{2, 3, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 5; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  EXPECT_EQ(r.graph.num_nodes(), 5u);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 1.0);
}

TEST(ReduceGraph, NestedDiamondsDrainOverRounds) {
  // Outer diamond whose true arm is itself a diamond:
  //   0 -> {1, 5}; inner 1 -> {2,3} -> 4; 4 -> 6; 5 -> 6.
  // Round by round the inner diamond becomes a chain, the chain becomes a
  // single arm, and the outer diamond collapses: one super at fixpoint.
  Acfg g(7);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 5, EdgeKind::Flow},
               Edge{1, 2, EdgeKind::Flow}, Edge{1, 3, EdgeKind::Flow},
               Edge{2, 4, EdgeKind::Flow}, Edge{3, 4, EdgeKind::Flow},
               Edge{4, 6, EdgeKind::Flow}, Edge{5, 6, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 7; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  ASSERT_EQ(r.graph.num_nodes(), 1u);
  EXPECT_EQ(r.projection.members[0],
            (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 4), 7.0);
}

TEST(ReduceGraph, CallEdgesAreNeverCollapsed) {
  // 0 -call-> 1 -flow-> 2: only the flow pair merges.
  Acfg g(3);
  g.set_edges({Edge{0, 1, EdgeKind::Call}, Edge{1, 2, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 3; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  ASSERT_EQ(r.graph.num_nodes(), 2u);
  ASSERT_EQ(r.graph.num_edges(), 1u);
  EXPECT_EQ(r.graph.edges()[0].kind, EdgeKind::Call);
  EXPECT_EQ(r.projection.members[1], (std::vector<std::uint32_t>{1, 2}));
}

TEST(ReduceGraph, SelfLoopBlocksAreNeverMerged) {
  // 0 -> 1 -> 1 (explicit self-loop, a Bagle motif) -> 2. The self-loop
  // pins node 1: 0 cannot absorb it (1's in-list is {0,1}), and 1 cannot
  // absorb 2 (1's out-list is {1,2}).
  Acfg g(3);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{1, 1, EdgeKind::Flow},
               Edge{1, 2, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 3; ++v) g.features()(v, 4) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  EXPECT_EQ(r.graph.num_nodes(), 3u);
  bool has_self_loop = false;
  for (const Edge& e : r.graph.edges()) has_self_loop |= e.src == e.dst;
  EXPECT_TRUE(has_self_loop);
}

TEST(ReduceGraph, NopSledFoldsIntoItsSuccessor) {
  // 0 (NOP sled) -> 1 (real code), with 2 -> 1 and 3 -> 1 keeping 1 a join
  // point both before AND after the sled fold, so the chain pass can never
  // fire; only the sled pass can fold 0 into 1.
  Acfg g(4);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{2, 1, EdgeKind::Flow},
               Edge{3, 1, EdgeKind::Flow}});
  g.features()(0, 6) = 4.0;   // #mov only — semantic NOP
  g.features()(0, 9) = 4.0;   // #total instructions
  g.features()(0, 11) = 4.0;  // #instructions in vertex
  g.features()(1, 3) = 2.0;   // real code: calls
  g.features()(1, 9) = 5.0;
  g.features()(2, 4) = 1.0;
  g.features()(2, 9) = 1.0;
  g.features()(3, 4) = 1.0;
  g.features()(3, 9) = 1.0;
  const ReducedGraph r = reduce_graph(g);
  r.projection.validate();
  ASSERT_EQ(r.graph.num_nodes(), 3u);
  // Supers are renumbered by smallest member: super 0 = {0, 1}.
  EXPECT_EQ(r.projection.members[0], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(r.projection.super_of[2], 1u);
  EXPECT_EQ(r.projection.super_of[3], 2u);
  // The sled's mov/total counts land on the code it pads.
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 6), 4.0);
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 9), 9.0);
}

TEST(ReduceGraph, NopLikePredicate) {
  std::vector<double> f(kAcfgFeatureCount, 0.0);
  EXPECT_FALSE(NopSledCollapse::nop_like(f));  // zero instructions
  f[9] = 3.0;
  f[6] = 3.0;
  EXPECT_TRUE(NopSledCollapse::nop_like(f));
  f[4] = 1.0;  // one arithmetic instruction disqualifies
  EXPECT_FALSE(NopSledCollapse::nop_like(f));
  EXPECT_FALSE(NopSledCollapse::nop_like(std::vector<double>(4, 0.0)));
}

TEST(ReduceGraph, ReduceOfReducedIsFixpoint) {
  const ReducedGraph once = reduce_graph(chain_graph(12));
  const ReducedGraph twice = reduce_graph(once.graph);
  EXPECT_EQ(twice.graph.num_nodes(), once.graph.num_nodes());
  EXPECT_EQ(twice.rounds, 0u);
  EXPECT_DOUBLE_EQ(twice.reduction_ratio(), 1.0);
}

TEST(ReduceGraph, MaxRoundsBoundsTheWork) {
  ReduceConfig config;
  config.max_rounds = 1;
  const ReducedGraph r = reduce_graph(chain_graph(8), config);
  EXPECT_EQ(r.rounds, 1u);
  // One round of the chain pass already drains a pure chain.
  EXPECT_EQ(r.graph.num_nodes(), 1u);
}

TEST(ReduceGraph, DisabledPassesAreIdentity) {
  ReduceConfig config;
  config.collapse_linear_chains = false;
  config.collapse_nop_sleds = false;
  const ReducedGraph r = reduce_graph(chain_graph(6), config);
  EXPECT_EQ(r.graph.num_nodes(), 6u);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 1.0);
  for (std::size_t s = 0; s < r.projection.members.size(); ++s) {
    EXPECT_EQ(r.projection.members[s],
              std::vector<std::uint32_t>{static_cast<std::uint32_t>(s)});
  }
}

TEST(ReduceGraph, MergeRuleMismatchThrows) {
  ReduceConfig config;
  config.merge_rules.assign(5, MergeRule::Sum);  // graph has 12 columns
  EXPECT_THROW(reduce_graph(chain_graph(3), config), std::invalid_argument);
}

TEST(ReduceGraph, CountRuleRecordsAbsorbedBlocks) {
  ReduceConfig config;
  config.merge_rules = default_acfg_merge_rules();
  config.merge_rules[11] = MergeRule::Count;
  const ReducedGraph r = reduce_graph(chain_graph(4), config);
  ASSERT_EQ(r.graph.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(r.graph.features()(0, 11), 4.0);
}

TEST(ReduceGraph, InstructionShareWeighting) {
  ReduceConfig config;
  config.weighting = ProjectionWeighting::InstructionShare;
  const Acfg g = chain_graph(2);  // totals 2.0 and 3.0
  const ReducedGraph r = reduce_graph(g, config);
  r.projection.validate();
  ASSERT_EQ(r.projection.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(r.projection.weights[0][0], 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(r.projection.weights[0][1], 3.0 / 5.0);
}

TEST(ReduceGraph, PlantedNodesMarkTheirSupers) {
  Acfg g = chain_graph(4);
  g.mark_planted(2);
  const ReducedGraph r = reduce_graph(g);
  ASSERT_EQ(r.graph.num_nodes(), 1u);
  EXPECT_EQ(r.graph.planted_nodes(), std::vector<std::uint32_t>{0});
}

TEST(ReduceGraph, EmptyGraph) {
  const ReducedGraph r = reduce_graph(Acfg(0));
  EXPECT_EQ(r.graph.num_nodes(), 0u);
  EXPECT_DOUBLE_EQ(r.reduction_ratio(), 1.0);
  r.projection.validate();
}

// ---------- NodeProjection ----------

TEST(NodeProjection, ProjectScoresConservesMass) {
  const ReducedGraph r = reduce_graph(chain_graph(6));
  std::vector<double> reduced_scores(r.projection.reduced_nodes(), 0.0);
  for (std::size_t s = 0; s < reduced_scores.size(); ++s) {
    reduced_scores[s] = 1.0 + static_cast<double>(s);
  }
  const auto projected = r.projection.project_scores(reduced_scores);
  ASSERT_EQ(projected.size(), 6u);
  const double mass_in =
      std::accumulate(reduced_scores.begin(), reduced_scores.end(), 0.0);
  const double mass_out = std::accumulate(projected.begin(), projected.end(), 0.0);
  EXPECT_NEAR(mass_in, mass_out, 1e-12);
}

TEST(NodeProjection, ExpandOrderCoversEveryOriginalNodeOnce) {
  Acfg g = chain_graph(5);
  // Break the chain at 2 so two supers survive: {0,1,2} and {3,4}? No:
  // 2 -> 3 edge removed leaves chains 0-1-2 and 3-4.
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{1, 2, EdgeKind::Flow},
               Edge{3, 4, EdgeKind::Flow}});
  const ReducedGraph r = reduce_graph(g);
  ASSERT_EQ(r.projection.reduced_nodes(), 2u);
  const auto expanded = r.projection.expand_order({1, 0});
  EXPECT_EQ(expanded, (std::vector<std::uint32_t>{3, 4, 0, 1, 2}));
  EXPECT_THROW(r.projection.expand_order({5}), std::out_of_range);
}

TEST(NodeProjection, ProjectScoresRejectsWrongSize) {
  const ReducedGraph r = reduce_graph(chain_graph(4));
  EXPECT_THROW(r.projection.project_scores({1.0, 2.0}), std::invalid_argument);
}

// ---------- edge-list helpers the reduction rides on ----------

TEST(SetEdges, ValidatesAndPreservesOrder) {
  Acfg g(3);
  const std::vector<Edge> edges{Edge{2, 0, EdgeKind::Flow},
                                Edge{0, 1, EdgeKind::Call}};
  g.set_edges(edges);
  EXPECT_EQ(g.edges(), edges);  // given order, not sorted
  EXPECT_THROW(g.set_edges({Edge{0, 3, EdgeKind::Flow}}), std::out_of_range);
  EXPECT_THROW(g.set_edges({Edge{0, 1, EdgeKind::Flow},
                            Edge{0, 1, EdgeKind::Flow}}),
               std::invalid_argument);
}

TEST(MaskedSubgraph, MatchesKeepOnlyEntryForEntry) {
  Acfg g(4);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{1, 2, EdgeKind::Call},
               Edge{2, 3, EdgeKind::Flow}, Edge{3, 0, EdgeKind::Flow}});
  for (std::uint32_t v = 0; v < 4; ++v) g.features()(v, 0) = 1.0 + v;
  g.set_label(2);
  g.mark_planted(1);
  g.mark_planted(3);

  const std::vector<std::uint32_t> kept{0, 1};
  const Acfg sub = masked_subgraph(g, kept);
  const MaskedGraph reference =
      keep_only(g.dense_adjacency(), g.features(), kept);

  EXPECT_EQ(sub.num_nodes(), g.num_nodes());
  const Matrix sub_adj = sub.dense_adjacency();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(sub_adj(i, j), reference.adjacency(i, j)) << i << "," << j;
    }
    for (std::size_t c = 0; c < g.feature_count(); ++c) {
      EXPECT_EQ(sub.features()(i, c), reference.features(i, c));
    }
  }
  EXPECT_EQ(sub.label(), 2);
  EXPECT_EQ(sub.planted_nodes(), std::vector<std::uint32_t>{1});
  EXPECT_THROW(masked_subgraph(g, {7}), std::out_of_range);
}

TEST(CountActiveNodes, EdgeListFormMatchesDense) {
  Acfg g(5);
  g.set_edges({Edge{0, 1, EdgeKind::Flow}});
  g.features()(3, 2) = 1.0;  // feature-only activity
  // Nodes 2 and 4 are fully inactive.
  EXPECT_EQ(count_active_nodes(g), 3u);
  EXPECT_EQ(count_active_nodes(g),
            count_active_nodes(g.dense_adjacency(), g.features()));
}

TEST(MaskedNormalizedAdjacency, AcfgConstructorIsBitIdenticalToDense) {
  Acfg g(6);
  // Coincident Flow+Call pair exercises the call-dominates-flow max rule;
  // a self-loop exercises the diagonal merge.
  g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 1, EdgeKind::Call},
               Edge{1, 2, EdgeKind::Flow}, Edge{2, 2, EdgeKind::Flow},
               Edge{4, 3, EdgeKind::Call}, Edge{3, 4, EdgeKind::Flow}});
  g.features()(5, 1) = 2.0;  // feature-only active node
  const MaskedNormalizedAdjacency sparse(g);
  const MaskedNormalizedAdjacency dense(g.dense_adjacency(), g.features());

  ASSERT_EQ(sparse.a_hat().row_ptr(), dense.a_hat().row_ptr());
  ASSERT_EQ(sparse.a_hat().col_idx(), dense.a_hat().col_idx());
  const auto& sv = sparse.a_hat().values();
  const auto& dv = dense.a_hat().values();
  ASSERT_EQ(sv.size(), dv.size());
  for (std::size_t p = 0; p < sv.size(); ++p) {
    EXPECT_EQ(sv[p], dv[p]) << "value index " << p;
  }
  EXPECT_EQ(sparse.inv_sqrt_degree(), dense.inv_sqrt_degree());
}

}  // namespace
}  // namespace cfgx
