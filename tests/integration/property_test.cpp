// Cross-module property tests: Algorithm-2 invariants over every family,
// serialization robustness under random corruption, and end-to-end
// determinism of the data pipeline.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/interpreter.hpp"
#include "dataset/corpus.hpp"
#include "gnn/classifier.hpp"
#include "graph/ops.hpp"
#include "graph/serialize.hpp"
#include "isa/lifter.hpp"
#include "proptest/fuzz.hpp"
#include "proptest/proptest.hpp"

namespace cfgx {
namespace {

// ---------- Algorithm-2 invariants over every family ----------

class InterpretationInvariants : public ::testing::TestWithParam<Family> {
 protected:
  InterpretationInvariants()
      : rng_(static_cast<std::uint64_t>(GetParam()) * 101 + 5),
        gnn_([this] {
          GnnConfig config;
          config.gcn_dims = {10, 8};
          return GnnClassifier(config, rng_);
        }()),
        theta_([this] {
          ExplainerModelConfig config;
          config.embedding_dim = 8;
          config.num_classes = kFamilyCount;
          return ExplainerModel(config, rng_);
        }()),
        graph_(generate_acfg(GetParam(), rng_)) {}

  Rng rng_;
  GnnClassifier gnn_;
  ExplainerModel theta_;
  Acfg graph_;
};

TEST_P(InterpretationInvariants, OrderingIsPermutation) {
  Interpreter interpreter(theta_, gnn_);
  InterpretationConfig config;
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph_, config);
  std::set<std::uint32_t> unique(result.ordered_nodes.begin(),
                                 result.ordered_nodes.end());
  EXPECT_EQ(unique.size(), graph_.num_nodes());
}

TEST_P(InterpretationInvariants, SubgraphsNestedAndMonotone) {
  Interpreter interpreter(theta_, gnn_);
  InterpretationConfig config;
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph_, config);
  for (std::size_t k = 1; k < result.subgraph_nodes.size(); ++k) {
    EXPECT_GT(result.subgraph_nodes[k].size(),
              result.subgraph_nodes[k - 1].size() - 1);  // non-decreasing
    std::set<std::uint32_t> larger(result.subgraph_nodes[k].begin(),
                                   result.subgraph_nodes[k].end());
    for (std::uint32_t v : result.subgraph_nodes[k - 1]) {
      ASSERT_TRUE(larger.count(v));
    }
  }
}

TEST_P(InterpretationInvariants, MaskedEvaluationMatchesKeptSets) {
  // keep_only of the k-th node set must leave exactly those nodes unmasked
  // among nodes that had any connectivity or features.
  Interpreter interpreter(theta_, gnn_);
  InterpretationConfig config;
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph_, config);
  const Matrix adjacency = graph_.dense_adjacency();
  const auto& kept = result.subgraph_nodes.front();
  const MaskedGraph masked = keep_only(adjacency, graph_.features(), kept);
  const std::set<std::uint32_t> kept_set(kept.begin(), kept.end());
  for (std::uint32_t v = 0; v < graph_.num_nodes(); ++v) {
    if (!kept_set.count(v)) {
      EXPECT_TRUE(node_is_masked(masked.adjacency, v));
      for (std::size_t c = 0; c < masked.features.cols(); ++c) {
        EXPECT_DOUBLE_EQ(masked.features(v, c), 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, InterpretationInvariants,
                         ::testing::ValuesIn(kAllFamilies),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------- serialization robustness under random corruption ----------

std::string family_archive_bytes(Family family, std::uint64_t seed) {
  Rng rng(seed);
  const Acfg graph = generate_acfg(family, rng);
  std::stringstream buffer;
  write_acfg_collection(buffer, {graph});
  return buffer.str();
}

TEST(CorruptionResistance, GraphArchiveHonorsTheReaderContract) {
  // Structure-aware mutational fuzzing over valid archives: the reader
  // must either accept the bytes (every surviving graph still validates)
  // or throw SerializationError — never crash, hang, or leak a foreign
  // exception type out of the deserializer.
  const std::vector<std::string> corpus = {
      family_archive_bytes(Family::Zlob, 1),
      family_archive_bytes(Family::Bagle, 2),
      family_archive_bytes(Family::Benign, 3),
  };
  const auto outcome = proptest::fuzz_bytes(
      corpus,
      [](const std::string& bytes) {
        std::stringstream in(bytes);
        for (const Acfg& g : read_acfg_collection(in)) g.validate();
      },
      {.iterations = 2000, .seed = 0xc0441});
  ASSERT_TRUE(outcome.passed) << outcome.report();
  EXPECT_GT(outcome.rejected, 0u);  // the mutations do reach the guards
}

TEST(CorruptionResistance, TruncationAlwaysThrows) {
  const std::string bytes = family_archive_bytes(Family::Bagle, 0x5555);
  CHECK_PROPERTY(
      "any strict prefix of an archive is rejected",
      proptest::sizes(8, bytes.size() - 1), [&bytes](std::size_t keep) {
        std::stringstream in(bytes.substr(0, keep));
        try {
          read_acfg_collection(in);
          return false;  // a truncated archive must not parse
        } catch (const SerializationError&) {
          return true;
        }
      },
      {.iterations = 150});
}

// ---------- pipeline determinism ----------

TEST(PipelineDeterminism, CorpusGnnAndInterpretationBitStable) {
  const auto build_and_interpret = [] {
    CorpusConfig cc;
    cc.samples_per_family = 2;
    cc.seed = 77;
    const Corpus corpus = generate_corpus(cc);
    Rng rng(3);
    GnnConfig gnn_config;
    gnn_config.gcn_dims = {8, 6};
    GnnClassifier gnn(gnn_config, rng);
    ExplainerModelConfig theta_config;
    theta_config.embedding_dim = 6;
    theta_config.num_classes = kFamilyCount;
    ExplainerModel theta(theta_config, rng);
    Interpreter interpreter(theta, gnn);
    InterpretationConfig ic;
    ic.keep_adjacency_snapshots = false;
    return interpreter.interpret(corpus.graph(5), ic).ordered_nodes;
  };
  EXPECT_EQ(build_and_interpret(), build_and_interpret());
}

TEST(PipelineDeterminism, RegeneratedProgramsLiftIdentically) {
  CorpusConfig cc;
  cc.samples_per_family = 2;
  cc.seed = 99;
  const Corpus corpus = generate_corpus(cc);
  for (std::size_t index : {std::size_t{0}, std::size_t{7}, std::size_t{20}}) {
    const GeneratedSample a = regenerate_sample(corpus, index);
    const GeneratedSample b = regenerate_sample(corpus, index);
    EXPECT_EQ(a.program.instructions(), b.program.instructions());
    const LiftedCfg cfg = lift_program(a.program);
    EXPECT_EQ(cfg.block_count(), corpus.graph(index).num_nodes());
  }
}

}  // namespace
}  // namespace cfgx
