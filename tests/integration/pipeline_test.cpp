// End-to-end integration: corpus -> GNN training -> CFGExplainer training
// -> interpretation -> evaluation, plus checkpoint round trips through the
// full pipeline. These are the "does the paper's pipeline hold together"
// tests; the bench binaries run the full-size version.
#include <gtest/gtest.h>

#include "explain/baselines.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/evaluate.hpp"
#include "gnn/trainer.hpp"
#include "graph/serialize.hpp"
#include "isa/patterns.hpp"

namespace cfgx {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // CFGExplainer's joint training needs a reasonably sized corpus to
    // produce discriminative scores (see DESIGN.md); 24 samples/family is
    // the smallest scale where the headline comparisons hold robustly.
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 24;
    corpus_config.seed = 2022;
    corpus_ = new Corpus(generate_corpus(corpus_config));
    split_ = new Split(stratified_split(*corpus_, 0.75, 41));

    Rng rng(7);
    gnn_ = new GnnClassifier(GnnConfig{}, rng);  // full 64/48/32 stack
    GnnTrainConfig gnn_train;
    gnn_train.epochs = 200;
    train_gnn(*gnn_, *corpus_, split_->train, gnn_train);

    ExplainerTrainConfig exp_train;
    exp_train.epochs = 2000;
    explainer_ = new CfgExplainer(*gnn_, exp_train);
    explainer_->fit(*corpus_, split_->train);
  }

  static void TearDownTestSuite() {
    delete explainer_;
    delete corpus_;
    delete split_;
    delete gnn_;
    explainer_ = nullptr;
    corpus_ = nullptr;
    split_ = nullptr;
    gnn_ = nullptr;
  }

  static Corpus* corpus_;
  static Split* split_;
  static GnnClassifier* gnn_;
  static CfgExplainer* explainer_;
};

Corpus* PipelineTest::corpus_ = nullptr;
Split* PipelineTest::split_ = nullptr;
GnnClassifier* PipelineTest::gnn_ = nullptr;
CfgExplainer* PipelineTest::explainer_ = nullptr;

TEST_F(PipelineTest, GnnLearnsTheCorpus) {
  const double train_acc =
      evaluate_gnn(*gnn_, *corpus_, split_->train).accuracy();
  const double test_acc =
      evaluate_gnn(*gnn_, *corpus_, split_->test).accuracy();
  EXPECT_GT(train_acc, 0.8);
  EXPECT_GT(test_acc, 0.5);  // far above 1/12 chance
}

TEST_F(PipelineTest, SurrogateReachesHighFidelity) {
  EXPECT_GT(explainer_->train_result().surrogate_fidelity, 0.6);
}

TEST_F(PipelineTest, CfgExplainerBeatsRandomOnTop20Accuracy) {
  // The headline claim at miniature scale: CFGExplainer's top-20% subgraphs
  // classify better than random top-20% subgraphs.
  const auto cfgx_eval =
      evaluate_explainer(*explainer_, *gnn_, *corpus_, split_->test);
  RandomExplainer random(3);
  const auto random_eval =
      evaluate_explainer(random, *gnn_, *corpus_, split_->test);
  EXPECT_GT(cfgx_eval.average_accuracy_at(0.2),
            random_eval.average_accuracy_at(0.2));
  EXPECT_GT(cfgx_eval.average_auc, random_eval.average_auc);
}

TEST_F(PipelineTest, CfgExplainerRecoversPlantedNodesBetterThanRandom) {
  const auto cfgx_eval =
      evaluate_explainer(*explainer_, *gnn_, *corpus_, split_->test);
  RandomExplainer random(4);
  const auto random_eval =
      evaluate_explainer(random, *gnn_, *corpus_, split_->test);
  EXPECT_GT(cfgx_eval.plant_recall, random_eval.plant_recall);
}

TEST_F(PipelineTest, CheckpointRoundTripPreservesExplanations) {
  const std::string gnn_path = ::testing::TempDir() + "/pipeline_gnn.bin";
  const std::string theta_path = ::testing::TempDir() + "/pipeline_theta.bin";
  gnn_->save_file(gnn_path);
  explainer_->model().save_file(theta_path);

  const GnnClassifier gnn2 = GnnClassifier::load_file(gnn_path);
  ExplainerModel theta2 = ExplainerModel::load_file(theta_path);

  const Acfg& graph = corpus_->graph(split_->test[0]);
  Interpreter original(explainer_->model(), *gnn_);
  Interpreter restored(theta2, gnn2);
  EXPECT_EQ(original.interpret(graph).ordered_nodes,
            restored.interpret(graph).ordered_nodes);
}

TEST_F(PipelineTest, Top20SubgraphsContainPlantedPatterns) {
  // Qualitative pipeline (Table V): the top-20% blocks of malware samples
  // should surface at least one detector hit for most samples.
  std::size_t with_patterns = 0;
  std::size_t malware_count = 0;
  for (std::size_t index : split_->test) {
    const Acfg& graph = corpus_->graph(index);
    if (graph.label() == family_label(Family::Benign)) continue;
    ++malware_count;

    const NodeRanking ranking = explainer_->explain(graph);
    const auto top20 = ranking.top_fraction(0.2);
    const GeneratedSample sample = regenerate_sample(*corpus_, index);
    const LiftedCfg cfg = lift_program(sample.program);
    const PatternReport report = analyze_blocks(cfg, top20);
    if (!report.pattern_counts.empty()) ++with_patterns;
  }
  ASSERT_GT(malware_count, 0u);
  EXPECT_GE(static_cast<double>(with_patterns) /
                static_cast<double>(malware_count),
            0.5);
}

TEST_F(PipelineTest, SerializedCorpusSurvivesFullRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pipeline_corpus.bin";
  save_acfg_collection_file(path, corpus_->graphs());
  const auto restored = load_acfg_collection_file(path);
  ASSERT_EQ(restored.size(), corpus_->size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i], corpus_->graph(i));
  }
}

}  // namespace
}  // namespace cfgx
