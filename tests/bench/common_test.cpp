// Tests for the bench harness' shared machinery: the evaluation cache
// format and the CLI-driven configuration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "nn/serialize.hpp"

#include "common.hpp"

namespace cfgx::bench {
namespace {

NamedEvaluation sample_evaluation() {
  NamedEvaluation eval;
  eval.offline_training_seconds = 123.5;
  eval.evaluation.explainer_name = "CFGExplainer";
  eval.evaluation.average_auc = 0.77;
  eval.evaluation.plant_precision = 0.5;
  eval.evaluation.plant_recall = 0.52;
  eval.evaluation.complement_accuracy_at_20 = 0.31;
  eval.evaluation.sparsity_at_20 = 0.79;
  eval.evaluation.explain_time.add(0.002);
  eval.evaluation.explain_time.add(0.004);

  FamilyCurve curve;
  curve.family = Family::Zbot;
  curve.sample_count = 8;
  curve.auc = 0.81;
  curve.fractions = {0.1, 0.2, 0.5, 1.0};
  curve.accuracies = {0.3, 0.6, 0.8, 0.9};
  eval.evaluation.per_family.push_back(curve);
  return eval;
}

TEST(EvalCacheTest, RoundTripPreservesEverything) {
  const std::string path = ::testing::TempDir() + "/cfgx_eval.bin";
  const NamedEvaluation original = sample_evaluation();
  save_evaluation_file(path, original);
  const NamedEvaluation restored = load_evaluation_file(path);

  EXPECT_EQ(restored.evaluation.explainer_name, "CFGExplainer");
  EXPECT_DOUBLE_EQ(restored.offline_training_seconds, 123.5);
  EXPECT_DOUBLE_EQ(restored.evaluation.average_auc, 0.77);
  EXPECT_DOUBLE_EQ(restored.evaluation.plant_recall, 0.52);
  EXPECT_DOUBLE_EQ(restored.evaluation.complement_accuracy_at_20, 0.31);
  EXPECT_DOUBLE_EQ(restored.evaluation.sparsity_at_20, 0.79);
  EXPECT_EQ(restored.evaluation.explain_time.count(), 2u);
  EXPECT_NEAR(restored.evaluation.explain_time.mean(), 0.003, 1e-12);

  ASSERT_EQ(restored.evaluation.per_family.size(), 1u);
  const FamilyCurve& curve = restored.evaluation.per_family[0];
  EXPECT_EQ(curve.family, Family::Zbot);
  EXPECT_EQ(curve.sample_count, 8u);
  EXPECT_DOUBLE_EQ(curve.auc, 0.81);
  EXPECT_EQ(curve.fractions.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.accuracies[1], 0.6);
}

TEST(EvalCacheTest, BadMagicThrows) {
  const std::string path = ::testing::TempDir() + "/cfgx_eval_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "WRONGMAGICxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW(load_evaluation_file(path), SerializationError);
}

TEST(EvalCacheTest, MissingFileThrows) {
  EXPECT_THROW(load_evaluation_file("/nonexistent/eval.bin"), SerializationError);
}

TEST(BenchConfigTest, DefaultsAreFullScale) {
  const char* argv[] = {"bench"};
  const CliArgs args(1, argv);
  const BenchConfig config = BenchConfig::from_cli(args);
  EXPECT_FALSE(config.fast);
  EXPECT_EQ(config.samples_per_family, 40u);
  EXPECT_EQ(config.gnn_epochs, 250u);
}

TEST(BenchConfigTest, FastModeShrinksEverything) {
  const char* argv[] = {"bench", "--fast"};
  const CliArgs args(2, argv);
  const BenchConfig config = BenchConfig::from_cli(args);
  EXPECT_TRUE(config.fast);
  EXPECT_LT(config.samples_per_family, 40u);
  EXPECT_LT(config.gnn_epochs, 250u);
  EXPECT_NE(config.cache_dir.find("_fast"), std::string::npos);
}

TEST(BenchConfigTest, ExplicitFlagsOverrideProfiles) {
  const char* argv[] = {"bench", "--fast", "--samples", "99"};
  const CliArgs args(4, argv);
  const BenchConfig config = BenchConfig::from_cli(args);
  EXPECT_EQ(config.samples_per_family, 99u);
}

TEST(BenchConfigTest, ReplaySeedFlagOverridesCorpusSeedAndBypassesCache) {
  const char* argv[] = {"bench", "--replay-seed", "4242"};
  const CliArgs args(3, argv);
  const BenchConfig config = BenchConfig::from_cli(args);
  EXPECT_EQ(config.corpus_seed, 4242u);
  EXPECT_TRUE(config.fresh);
}

TEST(BenchConfigTest, ReplaySeedEnvVariableMatchesTheFlag) {
  ASSERT_EQ(setenv("CFGX_PROPTEST_SEED", "987654321", /*overwrite=*/1), 0);
  const char* argv[] = {"bench"};
  const CliArgs args(1, argv);
  const BenchConfig config = BenchConfig::from_cli(args);
  unsetenv("CFGX_PROPTEST_SEED");
  EXPECT_EQ(config.corpus_seed, 987654321u);
  EXPECT_TRUE(config.fresh);
}

TEST(BenchConfigTest, MalformedReplaySeedEnvVariableIsIgnored) {
  ASSERT_EQ(setenv("CFGX_PROPTEST_SEED", "not-a-number", /*overwrite=*/1), 0);
  const char* argv[] = {"bench"};
  const CliArgs args(1, argv);
  const BenchConfig fallback = BenchConfig::from_cli(args);
  unsetenv("CFGX_PROPTEST_SEED");
  const BenchConfig baseline = BenchConfig::from_cli(args);
  EXPECT_EQ(fallback.corpus_seed, baseline.corpus_seed);
  EXPECT_EQ(fallback.fresh, baseline.fresh);
}

TEST(BenchContextTest, FreshFlagClearsCache) {
  const std::string dir = ::testing::TempDir() + "/cfgx_bench_ctx";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/stale.bin");
    out << "old";
  }
  BenchConfig config;
  config.fresh = true;
  config.cache_dir = dir;
  BenchContext ctx(config);
  EXPECT_FALSE(std::filesystem::exists(dir + "/stale.bin"));
}

TEST(FormatMinutesTest, UnitsSwitchAtSixtySeconds) {
  EXPECT_NE(format_minutes(30.0).find(" s"), std::string::npos);
  EXPECT_NE(format_minutes(120.0).find("min"), std::string::npos);
}

}  // namespace
}  // namespace cfgx::bench
