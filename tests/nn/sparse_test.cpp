#include "nn/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

Matrix random_dense(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

// Random matrix at roughly CFG density (each row has a few non-zeros).
Matrix random_sparse(std::size_t rows, std::size_t cols, double density,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.bernoulli(density)) m(i, j) = rng.normal();
    }
  }
  return m;
}

TEST(CsrMatrixTest, FromDenseToDenseRoundTrips) {
  Rng rng(1);
  const Matrix dense = random_sparse(17, 23, 0.1, rng);
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.rows(), 17u);
  EXPECT_EQ(csr.cols(), 23u);
  EXPECT_EQ(csr.to_dense(), dense);
}

TEST(CsrMatrixTest, NnzCountsExactNonZeros) {
  const Matrix dense{{0.0, 1.5, 0.0}, {0.0, 0.0, 0.0}, {-2.0, 0.0, 3.0}};
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_NEAR(csr.density(), 3.0 / 9.0, 1e-15);
}

TEST(CsrMatrixTest, ThresholdDropsSmallEntries) {
  const Matrix dense{{1e-12, 1.0}, {0.5, -1e-12}};
  const CsrMatrix csr = CsrMatrix::from_dense(dense, 1e-9);
  EXPECT_EQ(csr.nnz(), 2u);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  const CsrMatrix csr = CsrMatrix::from_dense(Matrix());
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_TRUE(csr.empty());
  EXPECT_EQ(csr.density(), 0.0);
}

TEST(CsrMatrixTest, TransposeMatchesDenseTranspose) {
  Rng rng(2);
  const Matrix dense = random_sparse(9, 13, 0.2, rng);
  EXPECT_EQ(CsrMatrix::from_dense(dense).transpose().to_dense(),
            dense.transpose());
}

TEST(CsrMatrixTest, ConstructorRejectsInconsistentArrays) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 1}, {0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {5}, {1.0}), std::invalid_argument);
}

// Property test: spmm(csr(A), H) == matmul(A, H) on random sparse matrices
// across shapes, densities and seeds (the CSR fast path must be a drop-in
// replacement for the dense reference).
TEST(SpmmTest, MatchesDenseMatmulOnRandomSparseMatrices) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const std::size_t n = 2 + seed % 60;
    const std::size_t f = 1 + seed % 33;
    const double density = 0.02 + 0.02 * static_cast<double>(seed % 5);
    const Matrix a = random_sparse(n, n, density, rng);
    const Matrix h = random_dense(n, f, rng);
    EXPECT_TRUE(
        approx_equal(spmm(CsrMatrix::from_dense(a), h), matmul(a, h), 1e-12))
        << "seed " << seed;
  }
}

TEST(SpmmTest, TransposeAMatchesDenseReference) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(100 + seed);
    const std::size_t n = 2 + seed % 40;
    const std::size_t f = 1 + seed % 17;
    const Matrix a = random_sparse(n, n, 0.08, rng);
    const Matrix g = random_dense(n, f, rng);
    EXPECT_TRUE(approx_equal(spmm_transpose_a(CsrMatrix::from_dense(a), g),
                             matmul_transpose_a(a, g), 1e-12))
        << "seed " << seed;
  }
}

TEST(SpmmTest, RectangularOperands) {
  Rng rng(3);
  const Matrix a = random_sparse(7, 12, 0.3, rng);
  const Matrix b = random_dense(12, 5, rng);
  EXPECT_TRUE(approx_equal(spmm(CsrMatrix::from_dense(a), b), matmul(a, b), 1e-12));
  const Matrix g = random_dense(7, 4, rng);
  EXPECT_TRUE(approx_equal(spmm_transpose_a(CsrMatrix::from_dense(a), g),
                           matmul_transpose_a(a, g), 1e-12));
}

TEST(SpmmTest, ShapeMismatchThrows) {
  const CsrMatrix a = CsrMatrix::from_dense(Matrix(3, 4, 1.0));
  EXPECT_THROW(spmm(a, Matrix(3, 2)), std::invalid_argument);
  EXPECT_THROW(spmm_transpose_a(a, Matrix(4, 2)), std::invalid_argument);
}

TEST(SpmmTest, ParallelMatchesSerialExactly) {
  Rng rng(4);
  ThreadPool pool(4);
  const Matrix a = random_sparse(64, 64, 0.05, rng);
  const Matrix h = random_dense(64, 48, rng);
  const CsrMatrix csr = CsrMatrix::from_dense(a);
  // Bit-identical, not just approx: partitioning is over disjoint output
  // regions with unchanged accumulation order.
  EXPECT_EQ(spmm(csr, h, &pool), spmm(csr, h));
  EXPECT_EQ(spmm_transpose_a(csr, h, &pool), spmm_transpose_a(csr, h));
}

TEST(MatmulParallelTest, MatchesSerialMatmulExactly) {
  Rng rng(5);
  ThreadPool pool(3);
  const Matrix a = random_dense(33, 21, rng);
  const Matrix b = random_dense(21, 17, rng);
  EXPECT_EQ(matmul_parallel(a, b, pool), matmul(a, b));
  EXPECT_THROW(matmul_parallel(a, Matrix(5, 5), pool), std::invalid_argument);
}

// Sparsity semantics: a structural zero contributes nothing, even against
// a non-finite operand — the skip is explicit in the representation.
TEST(SpmmTest, StructuralZeroesSkipNonFiniteOperandRows) {
  const Matrix a{{0.0, 1.0}, {0.0, 2.0}};  // column 0 never referenced
  Matrix b(2, 2, 1.0);
  b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  b(0, 1) = std::numeric_limits<double>::infinity();
  const Matrix out = spmm(CsrMatrix::from_dense(a), b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
  // The dense reference now faithfully poisons the result instead.
  const Matrix dense_out = matmul(a, b);
  EXPECT_TRUE(std::isnan(dense_out(0, 0)));
}

TEST(BatchedCsrTest, ConcatBuildsBlockDiagonal) {
  Rng rng(7);
  const Matrix dense_a = random_sparse(3, 4, 0.4, rng);
  const Matrix dense_b = random_sparse(5, 2, 0.4, rng);
  const CsrMatrix a = CsrMatrix::from_dense(dense_a);
  const CsrMatrix b = CsrMatrix::from_dense(dense_b);

  const BatchedCsr batched = BatchedCsr::concat({&a, &b});
  ASSERT_EQ(batched.num_blocks(), 2u);
  EXPECT_EQ(batched.matrix().rows(), 8u);
  EXPECT_EQ(batched.matrix().cols(), 6u);
  EXPECT_EQ(batched.matrix().nnz(), a.nnz() + b.nnz());
  EXPECT_EQ(batched.range(0).begin, 0u);
  EXPECT_EQ(batched.range(0).end, 3u);
  EXPECT_EQ(batched.range(1).begin, 3u);
  EXPECT_EQ(batched.range(1).end, 5u + 3u);
  EXPECT_EQ(batched.range(1).size(), 5u);

  // Dense view is exactly block-diagonal: each block verbatim on the
  // diagonal, zeros everywhere else.
  const Matrix dense = batched.matrix().to_dense();
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      double expected = 0.0;
      if (i < 3 && j < 4) expected = dense_a(i, j);
      if (i >= 3 && j >= 4) expected = dense_b(i - 3, j - 4);
      EXPECT_EQ(dense(i, j), expected) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(BatchedCsrTest, SpmmOverConcatIsBitIdenticalToPerBlockSpmm) {
  Rng rng(11);
  // Ragged block sizes, including a 1-row block.
  const std::vector<std::size_t> sizes = {5, 1, 9, 3};
  std::vector<Matrix> dense_blocks;
  std::vector<CsrMatrix> csr_blocks;
  for (std::size_t n : sizes) {
    dense_blocks.push_back(random_sparse(n, n, 0.3, rng));
    csr_blocks.push_back(CsrMatrix::from_dense(dense_blocks.back()));
  }
  std::vector<const CsrMatrix*> ptrs;
  for (const CsrMatrix& c : csr_blocks) ptrs.push_back(&c);
  const BatchedCsr batched = BatchedCsr::concat(ptrs);

  const std::size_t feat = 6;
  std::vector<Matrix> features;
  Matrix stacked(batched.matrix().rows(), feat);
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    features.push_back(random_dense(sizes[k], feat, rng));
    const BatchedCsr::Range& range = batched.range(k);
    for (std::size_t r = 0; r < sizes[k]; ++r) {
      for (std::size_t c = 0; c < feat; ++c) {
        stacked(range.begin + r, c) = features[k](r, c);
      }
    }
  }

  const Matrix batched_out = spmm(batched.matrix(), stacked);
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    const Matrix block_out = spmm(csr_blocks[k], features[k]);
    const BatchedCsr::Range& range = batched.range(k);
    for (std::size_t r = 0; r < sizes[k]; ++r) {
      for (std::size_t c = 0; c < feat; ++c) {
        // Bit-identical, not approximately equal: same additions in the
        // same order per output element.
        EXPECT_EQ(batched_out(range.begin + r, c), block_out(r, c))
            << "block " << k << " (" << r << ", " << c << ")";
      }
    }
  }
}

TEST(BatchedCsrTest, EmptyBlocksAndEmptyInput) {
  const BatchedCsr none = BatchedCsr::concat({});
  EXPECT_EQ(none.num_blocks(), 0u);
  EXPECT_TRUE(none.matrix().empty());

  const CsrMatrix empty;
  const CsrMatrix tiny = CsrMatrix::from_dense(Matrix{{1.0}});
  const BatchedCsr mixed = BatchedCsr::concat({&empty, &tiny, &empty});
  EXPECT_EQ(mixed.num_blocks(), 3u);
  EXPECT_EQ(mixed.matrix().rows(), 1u);
  EXPECT_EQ(mixed.range(0).size(), 0u);
  EXPECT_EQ(mixed.range(1).begin, 0u);
  EXPECT_EQ(mixed.range(1).end, 1u);
  EXPECT_EQ(mixed.matrix().to_dense()(0, 0), 1.0);
}

TEST(BatchedCsrTest, NullBlockThrows) {
  const CsrMatrix a = CsrMatrix::from_dense(Matrix{{1.0}});
  EXPECT_THROW(BatchedCsr::concat({&a, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace cfgx
