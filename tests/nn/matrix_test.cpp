#include "nn/matrix.hpp"

#include <gtest/gtest.h>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace cfgx {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, SizedConstructorZeroInitializes) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, Identity) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(eye.sum(), 3.0);
}

TEST(MatrixTest, RowAndColumnVectors) {
  const std::vector<double> values{1, 2, 3};
  const Matrix row = Matrix::row_vector(values);
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
  const Matrix col = Matrix::column_vector(values);
  EXPECT_EQ(col.rows(), 3u);
  EXPECT_EQ(col.cols(), 1u);
  EXPECT_DOUBLE_EQ(col(2, 0), 3.0);
}

TEST(MatrixTest, AtBoundsChecking) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(MatrixTest, AdditionAndSubtraction) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{10, 20}, {30, 40}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.hadamard_inplace(b), std::invalid_argument);
}

TEST(MatrixTest, ScalarMultiplication) {
  Matrix m{{1, -2}};
  m *= 3.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), -6.0);
  const Matrix n = 2.0 * Matrix{{1, 1}};
  EXPECT_DOUBLE_EQ(n(0, 1), 2.0);
}

TEST(MatrixTest, Hadamard) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{2, 0}, {1, -1}};
  const Matrix h = a.hadamard(b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(h(1, 1), -4.0);
}

TEST(MatrixTest, Apply) {
  Matrix m{{1, 4}, {9, 16}};
  m.apply([](double v) { return std::sqrt(v); });
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, Reductions) {
  const Matrix m{{1, -2}, {3, -4}};
  EXPECT_DOUBLE_EQ(m.sum(), -2.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  EXPECT_NEAR(m.frobenius_norm(), std::sqrt(30.0), 1e-12);
}

TEST(MatrixTest, RowAndColSums) {
  const Matrix m{{1, 2}, {3, 4}};
  const Matrix rows = m.row_sums();
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_DOUBLE_EQ(rows(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(rows(1, 0), 7.0);
  const Matrix cols = m.col_sums();
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_DOUBLE_EQ(cols(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(cols(0, 1), 6.0);
}

TEST(MatrixTest, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatmulKnownValues) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatmulDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(MatrixTest, MatmulIdentityIsNoop) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(approx_equal(matmul(m, Matrix::identity(2)), m));
  EXPECT_TRUE(approx_equal(matmul(Matrix::identity(2), m), m));
}

TEST(MatrixTest, TransposedMatmulsAgreeWithExplicit) {
  Rng rng(3);
  Matrix a(4, 3), b(4, 5), c(3, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] = rng.normal();

  EXPECT_TRUE(approx_equal(matmul_transpose_a(a, b), matmul(a.transpose(), b), 1e-12));
  EXPECT_TRUE(approx_equal(matmul_transpose_b(b, c),
                           matmul(b, c.transpose()), 1e-12));
}

TEST(MatrixTest, TransposedMatmulMismatchThrows) {
  EXPECT_THROW(matmul_transpose_a(Matrix(2, 3), Matrix(3, 2)),
               std::invalid_argument);
  EXPECT_THROW(matmul_transpose_b(Matrix(2, 3), Matrix(2, 4)),
               std::invalid_argument);
}

TEST(MatrixTest, EqualityAndApproxEqual) {
  const Matrix a{{1, 2}};
  Matrix b = a;
  EXPECT_EQ(a, b);
  b(0, 0) += 1e-12;
  EXPECT_NE(a, b);
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, Matrix(2, 1)));
}

TEST(MatrixTest, ToStringContainsValues) {
  const Matrix m{{1.5, -2.25}};
  const std::string s = m.to_string(2);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-2.25"), std::string::npos);
}

TEST(MatrixTest, MatmulPropagatesNonFiniteThroughZeroCoefficients) {
  // The dense kernels are the IEEE-faithful reference: 0 * NaN and 0 * Inf
  // must poison the output (no silent zero-skip fast path).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Matrix a{{0.0, 1.0}, {0.0, 0.0}};
  Matrix b(2, 2, 1.0);
  b(0, 0) = nan;
  b(0, 1) = inf;

  const Matrix out = matmul(a, b);
  EXPECT_TRUE(std::isnan(out(0, 0)));  // 0*NaN + 1*1
  EXPECT_TRUE(std::isnan(out(0, 1)));  // 0*Inf + 1*1
  EXPECT_TRUE(std::isnan(out(1, 0)));
  EXPECT_TRUE(std::isnan(out(1, 1)));

  Matrix a_nan(2, 2);
  a_nan(1, 0) = nan;
  const Matrix t = matmul_transpose_a(a_nan, Matrix(2, 3, 1.0));
  for (std::size_t j = 0; j < t.cols(); ++j) {
    EXPECT_TRUE(std::isnan(t(0, j)));   // NaN * 1 contributes to row 0
    EXPECT_EQ(t(1, j), 0.0);            // untouched column stays finite
  }
}

TEST(MatrixTest, MatmulAssociativityOnRandomMatrices) {
  Rng rng(11);
  Matrix a(3, 4), b(4, 2), c(2, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] = rng.normal();
  EXPECT_TRUE(approx_equal(matmul(matmul(a, b), c), matmul(a, matmul(b, c)),
                           1e-10));
}

}  // namespace
}  // namespace cfgx
