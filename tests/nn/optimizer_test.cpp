#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cfgx {
namespace {

TEST(AdamTest, RejectsEmptyParameterList) {
  EXPECT_THROW(Adam({}), std::invalid_argument);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction the first Adam step is ~lr * sign(grad).
  Parameter p("p", Matrix{{1.0}});
  p.grad = Matrix{{0.5}};
  AdamConfig config;
  config.learning_rate = 0.1;
  Adam adam({&p}, config);
  adam.step();
  EXPECT_NEAR(p.value(0, 0), 1.0 - 0.1, 1e-6);
}

TEST(AdamTest, StepCountAdvances) {
  Parameter p("p", Matrix{{1.0}});
  Adam adam({&p});
  EXPECT_EQ(adam.step_count(), 0u);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.step_count(), 2u);
}

TEST(AdamTest, ZeroGradClearsGradients) {
  Parameter p("p", Matrix{{1.0, 2.0}});
  p.grad = Matrix{{3.0, 4.0}};
  Adam adam({&p});
  adam.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad.max_abs(), 0.0);
}

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, grad = 2(x - 3).
  Parameter p("x", Matrix{{-5.0}});
  AdamConfig config;
  config.learning_rate = 0.1;
  Adam adam({&p}, config);
  for (int i = 0; i < 500; ++i) {
    p.zero_grad();
    p.grad(0, 0) = 2.0 * (p.value(0, 0) - 3.0);
    adam.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0, 1e-2);
}

TEST(AdamTest, MinimizesMultiParameterObjective) {
  // f(a, b) = a^2 + (b - 1)^2 with separate parameter tensors.
  Parameter a("a", Matrix{{4.0}});
  Parameter b("b", Matrix{{-2.0}});
  Adam adam({&a, &b}, AdamConfig{.learning_rate = 0.05});
  for (int i = 0; i < 800; ++i) {
    a.zero_grad();
    b.zero_grad();
    a.grad(0, 0) = 2.0 * a.value(0, 0);
    b.grad(0, 0) = 2.0 * (b.value(0, 0) - 1.0);
    adam.step();
  }
  EXPECT_NEAR(a.value(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(b.value(0, 0), 1.0, 1e-2);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter p("p", Matrix{{10.0}});
  AdamConfig config;
  config.learning_rate = 0.1;
  config.weight_decay = 0.1;
  Adam adam({&p}, config);
  for (int i = 0; i < 200; ++i) {
    p.zero_grad();  // zero task gradient: only decay acts
    adam.step();
  }
  EXPECT_LT(std::abs(p.value(0, 0)), 10.0 * 0.5);
}

TEST(AdamTest, AdaptsToGradientScale) {
  // Two coordinates with wildly different gradient scales should both make
  // progress (the normalization property of Adam).
  Parameter p("p", Matrix{{1.0, 1.0}});
  Adam adam({&p}, AdamConfig{.learning_rate = 0.01});
  for (int i = 0; i < 300; ++i) {
    p.zero_grad();
    p.grad(0, 0) = 1000.0 * p.value(0, 0);
    p.grad(0, 1) = 0.001 * (p.value(0, 1) > 0 ? 1.0 : -1.0);
    adam.step();
  }
  EXPECT_LT(std::abs(p.value(0, 0)), 0.2);
  EXPECT_LT(std::abs(p.value(0, 1)), 0.2);
}

}  // namespace
}  // namespace cfgx
