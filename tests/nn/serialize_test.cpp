#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace cfgx {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

TEST(MatrixSerializeTest, RoundTripExact) {
  Rng rng(1);
  const Matrix original = random_matrix(5, 7, rng);
  std::stringstream buffer;
  write_matrix(buffer, original);
  const Matrix restored = read_matrix(buffer);
  EXPECT_EQ(original, restored);  // bit-exact doubles
}

TEST(MatrixSerializeTest, EmptyMatrixRoundTrip) {
  std::stringstream buffer;
  write_matrix(buffer, Matrix());
  const Matrix restored = read_matrix(buffer);
  EXPECT_EQ(restored.rows(), 0u);
  EXPECT_EQ(restored.cols(), 0u);
}

TEST(MatrixSerializeTest, TruncatedDataThrows) {
  Rng rng(2);
  std::stringstream buffer;
  write_matrix(buffer, random_matrix(4, 4, rng));
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_matrix(truncated), SerializationError);
}

TEST(MatrixSerializeTest, CorruptedDimsThrow) {
  std::stringstream buffer;
  const std::uint64_t huge = 1ull << 40;
  buffer.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  buffer.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  EXPECT_THROW(read_matrix(buffer), SerializationError);
}

TEST(StringSerializeTest, RoundTrip) {
  std::stringstream buffer;
  write_string(buffer, "hello.W");
  EXPECT_EQ(read_string(buffer), "hello.W");
}

TEST(StringSerializeTest, EmptyString) {
  std::stringstream buffer;
  write_string(buffer, "");
  EXPECT_EQ(read_string(buffer), "");
}

TEST(StringSerializeTest, ImplausibleLengthThrows) {
  std::stringstream buffer;
  const std::uint64_t huge = 1ull << 40;
  buffer.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  EXPECT_THROW(read_string(buffer), SerializationError);
}

class ParameterArchiveTest : public ::testing::Test {
 protected:
  ParameterArchiveTest()
      : rng_(3),
        weight_("layer.W", random_matrix(3, 4, rng_)),
        bias_("layer.b", random_matrix(1, 4, rng_)) {}

  Rng rng_;
  Parameter weight_;
  Parameter bias_;
};

TEST_F(ParameterArchiveTest, RoundTripRestoresValues) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_, &bias_});

  Parameter w2("layer.W", Matrix(3, 4));
  Parameter b2("layer.b", Matrix(1, 4));
  load_parameters(buffer, {&w2, &b2});
  EXPECT_EQ(w2.value, weight_.value);
  EXPECT_EQ(b2.value, bias_.value);
}

TEST_F(ParameterArchiveTest, BadMagicThrows) {
  std::stringstream buffer("XXXXXXXXgarbage");
  Parameter p("p", Matrix(1, 1));
  EXPECT_THROW(load_parameters(buffer, {&p}), SerializationError);
}

TEST_F(ParameterArchiveTest, MissingNameThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_});
  Parameter renamed("other.W", Matrix(3, 4));
  EXPECT_THROW(load_parameters(buffer, {&renamed}), SerializationError);
}

TEST_F(ParameterArchiveTest, ShapeMismatchThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_});
  Parameter wrong_shape("layer.W", Matrix(4, 3));
  EXPECT_THROW(load_parameters(buffer, {&wrong_shape}), SerializationError);
}

TEST_F(ParameterArchiveTest, CountMismatchThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_, &bias_});
  Parameter only("layer.W", Matrix(3, 4));
  EXPECT_THROW(load_parameters(buffer, {&only}), SerializationError);
}

TEST_F(ParameterArchiveTest, TruncatedArchiveThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_, &bias_});
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 10);
  std::stringstream truncated(bytes);
  Parameter w2("layer.W", Matrix(3, 4));
  Parameter b2("layer.b", Matrix(1, 4));
  EXPECT_THROW(load_parameters(truncated, {&w2, &b2}), SerializationError);
}

TEST_F(ParameterArchiveTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cfgx_params.bin";
  save_parameters_file(path, {&weight_, &bias_});
  Parameter w2("layer.W", Matrix(3, 4));
  Parameter b2("layer.b", Matrix(1, 4));
  load_parameters_file(path, {&w2, &b2});
  EXPECT_EQ(w2.value, weight_.value);
}

TEST_F(ParameterArchiveTest, MissingFileThrows) {
  Parameter p("p", Matrix(1, 1));
  EXPECT_THROW(load_parameters_file("/nonexistent/cfgx.bin", {&p}),
               SerializationError);
}

// ---------------------------------------------------------------------------
// Adam optimizer state checkpointing: resuming from a saved
// (parameters, optimizer state) pair continues the exact trajectory.
// ---------------------------------------------------------------------------

class AdamStateTest : public ::testing::Test {
 protected:
  // A small two-layer net with deterministic weights.
  static Sequential make_net() {
    Rng rng(1234);
    Sequential net;
    net.emplace<Dense>(4, 3, rng, "l0");
    net.emplace<Dense>(3, 2, rng, "l1");
    return net;
  }

  // Deterministic synthetic gradients, varied per step so the moment
  // estimates evolve non-trivially.
  static void fill_grads(std::vector<Parameter*>& params, std::uint64_t step) {
    Rng rng(0x9a9a + step);
    for (Parameter* p : params) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        p->grad.data()[i] = rng.uniform(-0.5, 0.5);
      }
    }
  }

  static std::string weights_of(Sequential& net) {
    std::stringstream out;
    save_parameters(out, net.parameters());
    return out.str();
  }
};

TEST_F(AdamStateTest, SaveLoadStepIsBitIdentical) {
  Sequential original = make_net();
  auto original_params = original.parameters();
  Adam original_adam(original_params);
  for (std::uint64_t s = 0; s < 3; ++s) {
    fill_grads(original_params, s);
    original_adam.step();
  }

  // Checkpoint both the parameters and the optimizer state...
  std::stringstream weights;
  save_parameters(weights, original_params);
  std::stringstream state;
  original_adam.save_state(state);

  // ...restore into a fresh net + optimizer...
  Sequential resumed = make_net();
  auto resumed_params = resumed.parameters();
  load_parameters(weights, resumed_params);
  Adam resumed_adam(resumed_params);
  resumed_adam.load_state(state);
  EXPECT_EQ(resumed_adam.step_count(), original_adam.step_count());

  // ...and the next steps are bit-identical on both copies (the bias
  // correction uses step_count, so an unrestored count would diverge).
  for (std::uint64_t s = 3; s < 6; ++s) {
    fill_grads(original_params, s);
    original_adam.step();
    fill_grads(resumed_params, s);
    resumed_adam.step();
    ASSERT_EQ(weights_of(original), weights_of(resumed)) << "step " << s;
  }
}

TEST_F(AdamStateTest, FreshOptimizerWithoutLoadDiverges) {
  // Control for the round-trip test: dropping the optimizer state (the
  // common checkpointing bug) visibly changes the trajectory.
  Sequential original = make_net();
  auto original_params = original.parameters();
  Adam original_adam(original_params);
  for (std::uint64_t s = 0; s < 3; ++s) {
    fill_grads(original_params, s);
    original_adam.step();
  }
  std::stringstream weights;
  save_parameters(weights, original_params);

  Sequential resumed = make_net();
  auto resumed_params = resumed.parameters();
  load_parameters(weights, resumed_params);
  Adam fresh_adam(resumed_params);  // no load_state

  fill_grads(original_params, 3);
  original_adam.step();
  fill_grads(resumed_params, 3);
  fresh_adam.step();
  EXPECT_NE(weights_of(original), weights_of(resumed));
}

TEST_F(AdamStateTest, RoundTripPreservesStateBytes) {
  Sequential net = make_net();
  auto params = net.parameters();
  Adam adam(params);
  fill_grads(params, 0);
  adam.step();

  std::stringstream first;
  adam.save_state(first);
  Adam reloaded(params);
  std::stringstream in(first.str());
  reloaded.load_state(in);
  std::stringstream second;
  reloaded.save_state(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(AdamStateTest, BadMagicThrows) {
  Sequential net = make_net();
  auto params = net.parameters();
  Adam adam(params);
  std::stringstream bad("XXXXXXXXnot-an-adam-archive");
  EXPECT_THROW(adam.load_state(bad), SerializationError);
}

TEST_F(AdamStateTest, MismatchedParametersThrow) {
  Sequential net = make_net();
  auto params = net.parameters();
  Adam adam(params);
  std::stringstream state;
  adam.save_state(state);

  // A different architecture cannot absorb this state.
  Rng rng(77);
  Sequential other;
  other.emplace<Dense>(4, 3, rng, "other0");
  other.emplace<Dense>(3, 2, rng, "other1");
  auto other_params = other.parameters();
  Adam other_adam(other_params);
  EXPECT_THROW(other_adam.load_state(state), SerializationError);
}

TEST_F(AdamStateTest, TruncatedStateThrowsAndLeavesOptimizerUsable) {
  Sequential net = make_net();
  auto params = net.parameters();
  Adam adam(params);
  fill_grads(params, 0);
  adam.step();
  std::stringstream state;
  adam.save_state(state);
  const std::string reference = state.str();

  Adam victim(params);
  for (std::size_t cut : {std::size_t{9}, reference.size() / 2,
                          reference.size() - 3}) {
    std::stringstream truncated(reference.substr(0, cut));
    EXPECT_THROW(victim.load_state(truncated), SerializationError) << cut;
  }
  // Failed loads commit nothing: the victim still steps from its own state.
  EXPECT_EQ(victim.step_count(), 0u);
  fill_grads(params, 1);
  victim.step();
  EXPECT_EQ(victim.step_count(), 1u);
}

TEST_F(AdamStateTest, FileRoundTrip) {
  Sequential net = make_net();
  auto params = net.parameters();
  Adam adam(params);
  fill_grads(params, 0);
  adam.step();
  const std::string path = ::testing::TempDir() + "/cfgx_adam_state.bin";
  adam.save_state_file(path);
  Adam reloaded(params);
  reloaded.load_state_file(path);
  EXPECT_EQ(reloaded.step_count(), 1u);
  EXPECT_THROW(adam.load_state_file("/nonexistent/cfgx_adam.bin"),
               SerializationError);
}

}  // namespace
}  // namespace cfgx
