#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace cfgx {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

TEST(MatrixSerializeTest, RoundTripExact) {
  Rng rng(1);
  const Matrix original = random_matrix(5, 7, rng);
  std::stringstream buffer;
  write_matrix(buffer, original);
  const Matrix restored = read_matrix(buffer);
  EXPECT_EQ(original, restored);  // bit-exact doubles
}

TEST(MatrixSerializeTest, EmptyMatrixRoundTrip) {
  std::stringstream buffer;
  write_matrix(buffer, Matrix());
  const Matrix restored = read_matrix(buffer);
  EXPECT_EQ(restored.rows(), 0u);
  EXPECT_EQ(restored.cols(), 0u);
}

TEST(MatrixSerializeTest, TruncatedDataThrows) {
  Rng rng(2);
  std::stringstream buffer;
  write_matrix(buffer, random_matrix(4, 4, rng));
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_matrix(truncated), SerializationError);
}

TEST(MatrixSerializeTest, CorruptedDimsThrow) {
  std::stringstream buffer;
  const std::uint64_t huge = 1ull << 40;
  buffer.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  buffer.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  EXPECT_THROW(read_matrix(buffer), SerializationError);
}

TEST(StringSerializeTest, RoundTrip) {
  std::stringstream buffer;
  write_string(buffer, "hello.W");
  EXPECT_EQ(read_string(buffer), "hello.W");
}

TEST(StringSerializeTest, EmptyString) {
  std::stringstream buffer;
  write_string(buffer, "");
  EXPECT_EQ(read_string(buffer), "");
}

TEST(StringSerializeTest, ImplausibleLengthThrows) {
  std::stringstream buffer;
  const std::uint64_t huge = 1ull << 40;
  buffer.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  EXPECT_THROW(read_string(buffer), SerializationError);
}

class ParameterArchiveTest : public ::testing::Test {
 protected:
  ParameterArchiveTest()
      : rng_(3),
        weight_("layer.W", random_matrix(3, 4, rng_)),
        bias_("layer.b", random_matrix(1, 4, rng_)) {}

  Rng rng_;
  Parameter weight_;
  Parameter bias_;
};

TEST_F(ParameterArchiveTest, RoundTripRestoresValues) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_, &bias_});

  Parameter w2("layer.W", Matrix(3, 4));
  Parameter b2("layer.b", Matrix(1, 4));
  load_parameters(buffer, {&w2, &b2});
  EXPECT_EQ(w2.value, weight_.value);
  EXPECT_EQ(b2.value, bias_.value);
}

TEST_F(ParameterArchiveTest, BadMagicThrows) {
  std::stringstream buffer("XXXXXXXXgarbage");
  Parameter p("p", Matrix(1, 1));
  EXPECT_THROW(load_parameters(buffer, {&p}), SerializationError);
}

TEST_F(ParameterArchiveTest, MissingNameThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_});
  Parameter renamed("other.W", Matrix(3, 4));
  EXPECT_THROW(load_parameters(buffer, {&renamed}), SerializationError);
}

TEST_F(ParameterArchiveTest, ShapeMismatchThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_});
  Parameter wrong_shape("layer.W", Matrix(4, 3));
  EXPECT_THROW(load_parameters(buffer, {&wrong_shape}), SerializationError);
}

TEST_F(ParameterArchiveTest, CountMismatchThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_, &bias_});
  Parameter only("layer.W", Matrix(3, 4));
  EXPECT_THROW(load_parameters(buffer, {&only}), SerializationError);
}

TEST_F(ParameterArchiveTest, TruncatedArchiveThrows) {
  std::stringstream buffer;
  save_parameters(buffer, {&weight_, &bias_});
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 10);
  std::stringstream truncated(bytes);
  Parameter w2("layer.W", Matrix(3, 4));
  Parameter b2("layer.b", Matrix(1, 4));
  EXPECT_THROW(load_parameters(truncated, {&w2, &b2}), SerializationError);
}

TEST_F(ParameterArchiveTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cfgx_params.bin";
  save_parameters_file(path, {&weight_, &bias_});
  Parameter w2("layer.W", Matrix(3, 4));
  Parameter b2("layer.b", Matrix(1, 4));
  load_parameters_file(path, {&w2, &b2});
  EXPECT_EQ(w2.value, weight_.value);
}

TEST_F(ParameterArchiveTest, MissingFileThrows) {
  Parameter p("p", Matrix(1, 1));
  EXPECT_THROW(load_parameters_file("/nonexistent/cfgx.bin", {&p}),
               SerializationError);
}

}  // namespace
}  // namespace cfgx
