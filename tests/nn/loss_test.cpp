#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "util/rng.hpp"

namespace cfgx {
namespace {

TEST(NllTest, KnownValue) {
  const Matrix probs{{0.25, 0.75}};
  const LossResult result = nll_from_probabilities(probs, {1});
  EXPECT_NEAR(result.value, -std::log(0.75 + kLogBias), 1e-12);
}

TEST(NllTest, BatchAveraging) {
  const Matrix probs{{0.5, 0.5}, {0.1, 0.9}};
  const LossResult result = nll_from_probabilities(probs, {0, 1});
  const double expected =
      0.5 * (-std::log(0.5 + kLogBias) - std::log(0.9 + kLogBias));
  EXPECT_NEAR(result.value, expected, 1e-12);
}

TEST(NllTest, GradientOnlyOnTargetEntries) {
  const Matrix probs{{0.2, 0.8}, {0.6, 0.4}};
  const LossResult result = nll_from_probabilities(probs, {1, 0});
  EXPECT_DOUBLE_EQ(result.grad(0, 0), 0.0);
  EXPECT_NEAR(result.grad(0, 1), -1.0 / (0.8 * 2.0), 1e-9);
  EXPECT_NEAR(result.grad(1, 0), -1.0 / (0.6 * 2.0), 1e-9);
  EXPECT_DOUBLE_EQ(result.grad(1, 1), 0.0);
}

TEST(NllTest, LogBiasPreventsInfiniteLoss) {
  const Matrix probs{{0.0, 1.0}};
  const LossResult result = nll_from_probabilities(probs, {0});
  EXPECT_TRUE(std::isfinite(result.value));
  EXPECT_NEAR(result.value, -std::log(kLogBias), 1e-6);
}

TEST(NllTest, TargetValidation) {
  const Matrix probs{{0.5, 0.5}};
  EXPECT_THROW(nll_from_probabilities(probs, {2}), std::invalid_argument);
  EXPECT_THROW(nll_from_probabilities(probs, {0, 1}), std::invalid_argument);
}

TEST(NllTest, GradientMatchesNumeric) {
  Rng rng(5);
  Matrix probs(3, 4);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs.data()[i] = rng.uniform(0.05, 0.95);
  }
  const std::vector<std::size_t> targets{1, 3, 0};
  const LossResult analytic = nll_from_probabilities(probs, targets);
  const auto result = check_gradient_against(
      probs, analytic.grad,
      [&] { return nll_from_probabilities(probs, targets).value; });
  EXPECT_TRUE(result.passed(1e-5)) << result.max_rel_error;
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  const Matrix logits(1, 4);  // all-zero logits -> uniform probabilities
  const LossResult result = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(result.value, std::log(4.0), 1e-12);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOnehot) {
  const Matrix logits{{0.0, 0.0}};
  const LossResult result = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(result.grad(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(result.grad(0, 1), 0.5, 1e-12);
}

TEST(CrossEntropyTest, GradientMatchesNumeric) {
  Rng rng(7);
  Matrix logits(2, 5);
  for (std::size_t i = 0; i < logits.size(); ++i) logits.data()[i] = rng.normal();
  const std::vector<std::size_t> targets{4, 1};
  const LossResult analytic = softmax_cross_entropy(logits, targets);
  const auto result = check_gradient_against(
      logits, analytic.grad,
      [&] { return softmax_cross_entropy(logits, targets).value; });
  EXPECT_TRUE(result.passed(1e-6)) << result.max_rel_error;
}

TEST(CrossEntropyTest, ConfidentCorrectPredictionHasLowLoss) {
  const Matrix logits{{10.0, -10.0}};
  EXPECT_LT(softmax_cross_entropy(logits, {0}).value, 1e-6);
  EXPECT_GT(softmax_cross_entropy(logits, {1}).value, 10.0);
}

TEST(CrossEntropyTest, ExtremeLogitsStayFiniteAndConsistent) {
  // With ±1e4 logits the target softmax probability underflows to exactly
  // 0; the probability floor must apply to BOTH the loss value and the
  // gradient so they describe the same function.
  const Matrix logits{{1e4, -1e4}};
  const LossResult result = softmax_cross_entropy(logits, {1});
  EXPECT_TRUE(std::isfinite(result.value));
  EXPECT_NEAR(result.value, -std::log(kSoftmaxProbFloor), 1e-6);
  // Gradient of the floored loss: (max(p, floor) - 1, p_other)/batch.
  EXPECT_NEAR(result.grad(0, 1), kSoftmaxProbFloor - 1.0, 1e-12);
  EXPECT_NEAR(result.grad(0, 0), 1.0, 1e-12);
  for (std::size_t i = 0; i < result.grad.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.grad.data()[i]));
  }

  // The confident-correct side is untouched by the floor.
  const LossResult easy = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(easy.value));
  EXPECT_LT(easy.value, 1e-6);
}

TEST(CrossEntropyTest, TargetValidation) {
  const Matrix logits(2, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
}

TEST(SoftmaxRowsFnTest, MatchesManualComputation) {
  const Matrix probs = softmax_rows(Matrix{{std::log(1.0), std::log(3.0)}});
  EXPECT_NEAR(probs(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(probs(0, 1), 0.75, 1e-12);
}

TEST(ArgmaxRowsTest, PicksLargestPerRow) {
  const Matrix scores{{1.0, 3.0, 2.0}, {9.0, 0.0, 1.0}};
  const auto argmax = argmax_rows(scores);
  ASSERT_EQ(argmax.size(), 2u);
  EXPECT_EQ(argmax[0], 1u);
  EXPECT_EQ(argmax[1], 0u);
}

}  // namespace
}  // namespace cfgx
