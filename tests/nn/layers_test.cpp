#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cfgx {
namespace {

TEST(DenseTest, ForwardComputesAffineMap) {
  Rng rng(1);
  Dense dense(2, 3, rng);
  dense.weight().value = Matrix{{1, 2, 3}, {4, 5, 6}};
  dense.bias().value = Matrix{{0.5, -0.5, 1.0}};
  const Matrix out = dense.forward(Matrix{{1, 1}});
  EXPECT_DOUBLE_EQ(out(0, 0), 5.5);
  EXPECT_DOUBLE_EQ(out(0, 1), 6.5);
  EXPECT_DOUBLE_EQ(out(0, 2), 10.0);
}

TEST(DenseTest, GlorotInitWithinLimit) {
  Rng rng(2);
  const Matrix w = glorot_uniform(100, 50, rng);
  const double limit = std::sqrt(6.0 / 150.0);
  EXPECT_LE(w.max_abs(), limit);
  EXPECT_GT(w.max_abs(), 0.0);
}

TEST(DenseTest, BackwardShapes) {
  Rng rng(3);
  Dense dense(4, 2, rng);
  dense.forward(Matrix(5, 4, 1.0));
  const Matrix grad_in = dense.backward(Matrix(5, 2, 1.0));
  EXPECT_EQ(grad_in.rows(), 5u);
  EXPECT_EQ(grad_in.cols(), 4u);
  EXPECT_EQ(dense.weight().grad.rows(), 4u);
  EXPECT_EQ(dense.weight().grad.cols(), 2u);
  EXPECT_EQ(dense.bias().grad.cols(), 2u);
}

TEST(DenseTest, GradientsAccumulateAcrossCalls) {
  Rng rng(4);
  Dense dense(2, 2, rng);
  const Matrix x(1, 2, 1.0);
  const Matrix g(1, 2, 1.0);
  dense.forward(x);
  dense.backward(g);
  const Matrix once = dense.weight().grad;
  dense.forward(x);
  dense.backward(g);
  EXPECT_TRUE(approx_equal(dense.weight().grad, once * 2.0, 1e-12));
  dense.zero_grad();
  EXPECT_DOUBLE_EQ(dense.weight().grad.max_abs(), 0.0);
}

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  const Matrix out = relu.forward(Matrix{{-1.0, 0.0, 2.5}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 2.5);
}

TEST(ReluTest, BackwardGatesByInputSign) {
  Relu relu;
  relu.forward(Matrix{{-1.0, 3.0}});
  const Matrix grad = relu.backward(Matrix{{5.0, 5.0}});
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 5.0);
}

TEST(SigmoidTest, ForwardKnownValues) {
  Sigmoid sigmoid;
  const Matrix out = sigmoid.forward(Matrix{{0.0, 100.0, -100.0}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.5);
  EXPECT_NEAR(out(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(out(0, 2), 0.0, 1e-12);
}

TEST(SigmoidTest, OutputsInUnitInterval) {
  Sigmoid sigmoid;
  Rng rng(5);
  Matrix x(4, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal(0, 10);
  const Matrix out = sigmoid.forward(x);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.data()[i], 0.0);
    EXPECT_LE(out.data()[i], 1.0);
  }
}

TEST(SigmoidTest, BackwardUsesDerivative) {
  Sigmoid sigmoid;
  sigmoid.forward(Matrix{{0.0}});
  const Matrix grad = sigmoid.backward(Matrix{{1.0}});
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.25);  // s(1-s) at s=0.5
}

TEST(SoftmaxTest, RowsSumToOne) {
  SoftmaxRows softmax;
  const Matrix out = softmax.forward(Matrix{{1.0, 2.0, 3.0}, {-5.0, 0.0, 5.0}});
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 3; ++c) total += out(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, InvariantToRowShift) {
  SoftmaxRows s1, s2;
  const Matrix a = s1.forward(Matrix{{1.0, 2.0, 3.0}});
  const Matrix b = s2.forward(Matrix{{101.0, 102.0, 103.0}});
  EXPECT_TRUE(approx_equal(a, b, 1e-12));
}

TEST(SoftmaxTest, LargeInputsStayFinite) {
  SoftmaxRows softmax;
  const Matrix out = softmax.forward(Matrix{{1000.0, 999.0}});
  EXPECT_TRUE(std::isfinite(out(0, 0)));
  EXPECT_GT(out(0, 0), out(0, 1));
}

TEST(SoftmaxTest, BackwardOfUniformGradientIsZero) {
  // d(softmax)/dx applied to a constant vector must vanish (probabilities
  // sum to 1 regardless of the shift).
  SoftmaxRows softmax;
  softmax.forward(Matrix{{0.3, -1.2, 2.0}});
  const Matrix grad = softmax.backward(Matrix{{7.0, 7.0, 7.0}});
  EXPECT_NEAR(grad.max_abs(), 0.0, 1e-12);
}

TEST(SequentialTest, ComposesModules) {
  Rng rng(6);
  Sequential net;
  net.emplace<Dense>(2, 2, rng, "l0");
  net.emplace<Relu>();
  auto& dense = static_cast<Dense&>(net.module(0));
  dense.weight().value = Matrix{{1, 0}, {0, -1}};
  dense.bias().value = Matrix{{0, 0}};
  const Matrix out = net.forward(Matrix{{3.0, 2.0}});
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);  // -2 clamped by ReLU
}

TEST(SequentialTest, ParametersCollectedInOrder) {
  Rng rng(7);
  Sequential net;
  net.emplace<Dense>(2, 3, rng, "a");
  net.emplace<Relu>();
  net.emplace<Dense>(3, 1, rng, "b");
  const auto params = net.parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->name, "a.W");
  EXPECT_EQ(params[1]->name, "a.b");
  EXPECT_EQ(params[2]->name, "b.W");
  EXPECT_EQ(params[3]->name, "b.b");
}

TEST(SequentialTest, ModuleCount) {
  Sequential net;
  EXPECT_EQ(net.module_count(), 0u);
  net.emplace<Relu>();
  EXPECT_EQ(net.module_count(), 1u);
}

}  // namespace
}  // namespace cfgx
