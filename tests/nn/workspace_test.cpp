// Workspace scratch-buffer pool: recycling behaviour, lease semantics, the
// reshape/capacity contract the `_into` kernels rely on, and the
// bit-identity of the destination-passing kernels with their value-returning
// wrappers on small fixed shapes (random shapes live in the `prop` suite).
#include "nn/workspace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <utility>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"
#include "nn/sparse.hpp"
#include "obs/metrics.hpp"

namespace cfgx {
namespace {

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.same_shape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(MatrixReshape, ZeroFillsAndKeepsCapacity) {
  Matrix m(4, 5);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = 1.0 + i;
  const std::size_t cap = m.capacity();
  ASSERT_GE(cap, 20u);

  m.reshape(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_GE(m.capacity(), cap);  // shrink never releases the block
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0);

  m.reshape(0, 7);  // zero elements, shape still recorded
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 7u);
  EXPECT_EQ(m.size(), 0u);
}

TEST(WorkspaceTest, AcquireReturnsZeroFilledShape) {
  Workspace workspace;
  Workspace::Lease lease = workspace.acquire(3, 4);
  EXPECT_EQ(lease->rows(), 3u);
  EXPECT_EQ(lease->cols(), 4u);
  for (std::size_t i = 0; i < lease->size(); ++i) {
    EXPECT_EQ(lease->data()[i], 0.0);
  }
}

TEST(WorkspaceTest, ReleasedBufferIsRecycled) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& reused =
      obs::MetricsRegistry::global().counter("workspace.bytes_reused");
  auto& allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  Workspace workspace;
  const double* block = nullptr;
  {
    Workspace::Lease lease = workspace.acquire(8, 8);
    lease->fill(3.5);
    block = lease->data();
    EXPECT_EQ(workspace.pooled_count(), 0u);
  }
  EXPECT_EQ(workspace.pooled_count(), 1u);
  EXPECT_GE(workspace.pooled_capacity(), 64u);

  const std::uint64_t reused_before = reused.value();
  const std::uint64_t allocated_before = allocated.value();
  {
    // Smaller request served from the same heap block, zero-filled again.
    Workspace::Lease lease = workspace.acquire(4, 4);
    EXPECT_EQ(lease->data(), block);
    for (std::size_t i = 0; i < lease->size(); ++i) {
      EXPECT_EQ(lease->data()[i], 0.0);
    }
    EXPECT_EQ(workspace.pooled_count(), 0u);
  }
  EXPECT_EQ(reused.value() - reused_before, 16u * sizeof(double));
  EXPECT_EQ(allocated.value(), allocated_before);

  obs::set_metrics_enabled(saved);
}

TEST(WorkspaceTest, BestFitPrefersSmallestSufficientBuffer) {
  Workspace workspace;
  const double* small_block = nullptr;
  const double* big_block = nullptr;
  {
    Workspace::Lease big = workspace.acquire(16, 16);
    Workspace::Lease small = workspace.acquire(2, 2);
    big_block = big->data();
    small_block = small->data();
  }
  EXPECT_EQ(workspace.pooled_count(), 2u);
  Workspace::Lease lease = workspace.acquire(2, 2);
  EXPECT_EQ(lease->data(), small_block);
  Workspace::Lease lease_big = workspace.acquire(10, 10);
  EXPECT_EQ(lease_big->data(), big_block);
}

TEST(WorkspaceTest, ZeroSizedLeaseNeverPoolsUseless) {
  Workspace workspace;
  { Workspace::Lease lease = workspace.acquire(0, 0); }
  // A never-grown zero-capacity buffer would only slow the pool scan down.
  EXPECT_EQ(workspace.pooled_count(), 0u);
}

TEST(WorkspaceTest, LeaseMoveTransfersOwnership) {
  Workspace workspace;
  Workspace::Lease a = workspace.acquire(3, 3);
  const double* block = a->data();
  Workspace::Lease b = std::move(a);
  EXPECT_EQ(b->data(), block);
  EXPECT_EQ(workspace.pooled_count(), 0u);  // no double release on a's death

  Workspace::Lease c = workspace.acquire(2, 2);
  c = std::move(b);  // move-assign releases c's old buffer first
  EXPECT_EQ(c->data(), block);
  EXPECT_EQ(workspace.pooled_count(), 1u);
}

TEST(WorkspaceTest, ClearDropsPooledBuffers) {
  Workspace workspace;
  { Workspace::Lease lease = workspace.acquire(5, 5); }
  ASSERT_EQ(workspace.pooled_count(), 1u);
  workspace.clear();
  EXPECT_EQ(workspace.pooled_count(), 0u);
  EXPECT_EQ(workspace.pooled_capacity(), 0u);
}

TEST(WorkspaceTest, LocalIsStableAcrossCalls) {
  EXPECT_EQ(&Workspace::local(), &Workspace::local());
}

TEST(WorkspaceTest, OversizedBufferAgesOutDespiteBorrowedUse) {
  Workspace workspace;
  workspace.set_trim_after(4);
  { Workspace::Lease big = workspace.acquire(32, 32); }  // acquisition 1
  ASSERT_EQ(workspace.pooled_count(), 1u);
  ASSERT_GE(workspace.pooled_capacity(), 1024u);
  // Small leases borrow the big buffer (best fit) but never fill half its
  // capacity, so its right-sized stamp stays pinned at acquisition 1.
  for (int i = 0; i < 4; ++i) {  // acquisitions 2..5: age 1..4, kept
    Workspace::Lease small = workspace.acquire(2, 2);
    EXPECT_GE(small->capacity(), 1024u) << "borrowed the oversized block";
  }
  EXPECT_EQ(workspace.pooled_count(), 1u);
  EXPECT_GE(workspace.pooled_capacity(), 1024u);
  // Acquisition 6: age 5 > 4 trims the oversized block; the request is
  // served by a fresh right-sized allocation instead.
  { Workspace::Lease small = workspace.acquire(2, 2); }
  EXPECT_EQ(workspace.pooled_count(), 1u);
  EXPECT_LT(workspace.pooled_capacity(), 1024u);
}

TEST(WorkspaceTest, SteadySameShapeReuseNeverTrims) {
  Workspace workspace;
  workspace.set_trim_after(4);
  const double* block = nullptr;
  {
    Workspace::Lease lease = workspace.acquire(8, 8);
    block = lease->data();
  }
  // Every reuse fills the whole buffer, refreshing its age: the same heap
  // block serves all 100 acquisitions, far beyond the trim window.
  for (int i = 0; i < 100; ++i) {
    Workspace::Lease lease = workspace.acquire(8, 8);
    EXPECT_EQ(lease->data(), block);
  }
  EXPECT_EQ(workspace.pooled_count(), 1u);
}

TEST(WorkspaceTest, TrimZeroDisablesAging) {
  Workspace workspace;
  workspace.set_trim_after(0);
  { Workspace::Lease big = workspace.acquire(32, 32); }
  for (int i = 0; i < 100; ++i) {
    Workspace::Lease small = workspace.acquire(2, 2);
  }
  // The oversized block survives 100 poor-fit uses: nothing ever trimmed.
  EXPECT_EQ(workspace.pooled_count(), 1u);
  EXPECT_GE(workspace.pooled_capacity(), 1024u);
}

TEST(WorkspaceTest, BytesRetainedGaugeTracksPoolDeltas) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& retained =
      obs::MetricsRegistry::global().gauge("workspace.bytes_retained");
  const double before = retained.value();

  Workspace workspace;
  { Workspace::Lease lease = workspace.acquire(8, 8); }
  EXPECT_EQ(retained.value() - before,
            static_cast<double>(workspace.bytes_retained()));
  EXPECT_GE(workspace.bytes_retained(), 64u * sizeof(double));

  workspace.clear();
  EXPECT_EQ(workspace.bytes_retained(), 0u);
  EXPECT_EQ(retained.value(), before);

  obs::set_metrics_enabled(saved);
}

// The serve regression: heterogeneous graph sizes on one long-lived thread
// must not grow retained bytes without bound. Mixed-size scratch traffic
// with an occasional one-off giant lease plateaus because the giant buffer
// ages out of the pool.
TEST(WorkspaceTest, MixedSizeServingTrafficPlateausRetainedBytes) {
  Workspace workspace;
  workspace.set_trim_after(16);

  auto serve_cycle = [&](std::size_t nodes) {
    // Rough shape of one explanation: a features-sized lease, an
    // embeddings-sized lease, and a scores-sized lease.
    Workspace::Lease f = workspace.acquire(nodes, 12);
    Workspace::Lease e = workspace.acquire(nodes, 32);
    Workspace::Lease s = workspace.acquire(nodes, 1);
  };

  // Warm up with the steady mix, then spike one giant graph.
  const std::size_t sizes[] = {16, 24, 64, 48};
  for (int round = 0; round < 8; ++round) {
    for (std::size_t n : sizes) serve_cycle(n);
  }
  serve_cycle(2048);  // the spike
  const std::size_t after_spike = workspace.bytes_retained();
  ASSERT_GE(after_spike, 2048u * 32u * sizeof(double));

  // Steady mixed traffic again: the spike's buffers age out and retained
  // bytes fall back to the steady working set.
  for (int round = 0; round < 16; ++round) {
    for (std::size_t n : sizes) serve_cycle(n);
  }
  const std::size_t settled = workspace.bytes_retained();
  EXPECT_LT(settled, after_spike);
  EXPECT_LT(settled, 2048u * 32u * sizeof(double));
  // Plateau: the retention peak over one window of continued traffic equals
  // the peak over the next (the deterministic reuse pattern has settled
  // into a bounded cycle — no unbounded growth).
  auto peak_over_rounds = [&](int rounds) {
    std::size_t peak = 0;
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t n : sizes) serve_cycle(n);
      peak = std::max(peak, workspace.bytes_retained());
    }
    return peak;
  };
  const std::size_t first_window = peak_over_rounds(16);
  const std::size_t second_window = peak_over_rounds(16);
  EXPECT_LE(second_window, first_window);
  EXPECT_LT(second_window, after_spike);
}

// Paper-scale regression: steady-state serving traffic that includes one
// giant graph (n = 7352, the largest CFG in the paper's dataset) must run
// allocation-free once warm, and retained bytes must plateau — the giant
// buffers are right-sized every cycle, so they are never trimmed, and the
// pool settles at the giant working set instead of growing without bound.
TEST(WorkspaceTest, PaperScaleGiantGraphSteadyStateIsAllocationFree) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  Workspace workspace;
  workspace.set_trim_after(16);

  auto serve_cycle = [&](std::size_t nodes) {
    // Rough shape of one paper-scale explanation: features, two GCN layer
    // activations, and a score column.
    Workspace::Lease f = workspace.acquire(nodes, 12);
    Workspace::Lease h0 = workspace.acquire(nodes, 32);
    Workspace::Lease h1 = workspace.acquire(nodes, 16);
    Workspace::Lease s = workspace.acquire(nodes, 1);
  };

  const std::size_t sizes[] = {64, 256, 7352, 128};  // giant in the mix
  for (int round = 0; round < 4; ++round) {
    for (std::size_t n : sizes) serve_cycle(n);
  }

  // Steady state: every shape has been seen, so no cycle allocates.
  const std::uint64_t allocated_before = allocated.value();
  const std::size_t retained_before = workspace.bytes_retained();
  std::size_t retained_peak = 0;
  const int cycles = 2 * static_cast<int>(workspace.trim_after());
  for (int round = 0; round < cycles; ++round) {
    for (std::size_t n : sizes) serve_cycle(n);
    retained_peak = std::max(retained_peak, workspace.bytes_retained());
  }
  EXPECT_EQ(allocated.value(), allocated_before)
      << "steady-state paper-scale traffic must not touch the heap";
  // Plateau: after trim_after cycles with the giant still in the mix, the
  // pool neither grows nor sheds the giant's right-sized buffers.
  EXPECT_EQ(workspace.bytes_retained(), retained_before);
  EXPECT_EQ(retained_peak, retained_before);
  EXPECT_GE(retained_before, 7352u * 32u * sizeof(double));

  obs::set_metrics_enabled(saved);
}

TEST(MatrixApply, TemplateAndStdFunctionOverloadsAgree) {
  Matrix a{{-1.5, 0.0, 2.0}, {3.0, -0.25, -0.0}};
  Matrix b = a;
  a.apply([](double v) { return v > 0.0 ? v : 0.0; });  // inlined template
  b.apply(std::function<double(double)>(
      [](double v) { return v > 0.0 ? v : 0.0; }));  // type-erased overload
  EXPECT_TRUE(bit_identical(a, b));
  EXPECT_EQ(a(0, 0), 0.0);
  EXPECT_EQ(a(1, 0), 3.0);
}

TEST(IntoKernels, MatchValueReturningWrappersOnFixedShapes) {
  Matrix a{{1.0, -2.0, 0.5}, {0.0, 3.0, -1.0}};
  Matrix b{{2.0, 0.0}, {1.0, -1.5}, {0.25, 4.0}};

  Matrix out;
  matmul_into(a, b, out);
  EXPECT_TRUE(bit_identical(out, matmul(a, b)));

  Matrix tall{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  matmul_transpose_a_into(tall, tall, out);
  EXPECT_TRUE(bit_identical(out, matmul_transpose_a(tall, tall)));

  matmul_transpose_b_into(a, Matrix{{1.0, 0.5, 2.0}}, out);
  EXPECT_TRUE(bit_identical(out, matmul_transpose_b(a, Matrix{{1.0, 0.5, 2.0}})));

  const CsrMatrix csr = CsrMatrix::from_dense(a);
  spmm_into(csr, b, out);
  EXPECT_TRUE(bit_identical(out, spmm(csr, b)));

  Matrix rhs{{1.0, -1.0}, {2.0, 0.5}};
  spmm_transpose_a_into(csr, rhs, out);
  EXPECT_TRUE(bit_identical(out, spmm_transpose_a(csr, rhs)));
}

TEST(IntoKernels, DirtyDestinationIsFullyOverwritten) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix out(7, 9, 123.0);  // wrong shape AND non-zero contents
  matmul_into(a, a, out);
  EXPECT_TRUE(bit_identical(out, matmul(a, a)));
}

TEST(IntoKernels, EmptyAndOneByOneShapes) {
  Matrix empty(0, 3);
  Matrix b(3, 0);
  Matrix out;
  matmul_into(empty, Matrix(3, 4), out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 4u);
  matmul_into(Matrix(2, 3), b, out);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 0u);

  Matrix one{{2.5}};
  matmul_into(one, one, out);
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.cols(), 1u);
  EXPECT_EQ(out(0, 0), 6.25);
}

TEST(IntoKernels, LiveRowsVariantsSkipMaskedRowsOnly) {
  Matrix a{{1.0, -2.0}, {3.0, 4.0}, {-0.5, 0.25}, {2.0, 2.0}};
  Matrix b{{2.0, 0.5, -1.0}, {1.0, -1.5, 0.0}};
  const std::vector<double> live = {1.0, 0.0, 0.3, 0.0};

  Matrix full, masked(9, 9, 5.0);  // dirty destination
  matmul_into(a, b, full);
  matmul_live_rows_into(a, b, masked, live.data());
  ASSERT_TRUE(masked.same_shape(full));
  for (std::size_t r = 0; r < full.rows(); ++r) {
    for (std::size_t c = 0; c < full.cols(); ++c) {
      EXPECT_EQ(masked(r, c), live[r] != 0.0 ? full(r, c) : 0.0);
    }
  }
  Matrix null_mask;
  matmul_live_rows_into(a, b, null_mask, nullptr);
  EXPECT_TRUE(bit_identical(null_mask, full));

  const CsrMatrix csr = CsrMatrix::from_dense(a);
  Matrix sp_full, sp_masked;
  spmm_into(csr, b, sp_full);
  spmm_live_rows_into(csr, b, sp_masked, live.data());
  ASSERT_TRUE(sp_masked.same_shape(sp_full));
  for (std::size_t r = 0; r < sp_full.rows(); ++r) {
    for (std::size_t c = 0; c < sp_full.cols(); ++c) {
      EXPECT_EQ(sp_masked(r, c), live[r] != 0.0 ? sp_full(r, c) : 0.0);
    }
  }
}

TEST(IntoKernels, MatmulIntoThrowsOnShapeMismatch) {
  Matrix a(2, 3), b(4, 2), out;
  EXPECT_THROW(matmul_into(a, b, out), std::invalid_argument);
}

TEST(ModuleForwardInto, MatchesForwardForEveryHotModule) {
  Rng rng(7);
  Sequential net;
  net.emplace<Dense>(5, 8, rng);
  net.emplace<Relu>();
  net.emplace<Dense>(8, 3, rng);
  net.emplace<Sigmoid>();

  Matrix input(4, 5);
  Rng data_rng(11);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = data_rng.uniform(-2.0, 2.0);
  }

  const Matrix expected = net.forward(input);
  Matrix out;
  net.forward_into(input, out);
  EXPECT_TRUE(bit_identical(out, expected));

  // Single-module and empty Sequentials take the no-ping-pong short cuts.
  Sequential solo;
  solo.emplace<Relu>();
  solo.forward_into(input, out);
  EXPECT_TRUE(bit_identical(out, solo.forward(input)));

  Sequential none;
  none.forward_into(input, out);
  EXPECT_TRUE(bit_identical(out, input));
}

}  // namespace
}  // namespace cfgx
