// Additional coverage for the nn building blocks: Sequential's add() path,
// initializer statistics, matrix row spans, and Parameter bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layers.hpp"

namespace cfgx {
namespace {

TEST(SequentialExtraTest, AddTakesOwnership) {
  Rng rng(1);
  Sequential net;
  net.add(std::make_unique<Dense>(3, 2, rng, "a")).add(std::make_unique<Relu>());
  EXPECT_EQ(net.module_count(), 2u);
  const Matrix out = net.forward(Matrix(1, 3, 1.0));
  EXPECT_EQ(out.cols(), 2u);
}

TEST(SequentialExtraTest, EmptySequentialIsIdentity) {
  Sequential net;
  const Matrix x{{1.0, 2.0}};
  EXPECT_EQ(net.forward(x), x);
  EXPECT_EQ(net.backward(x), x);
  EXPECT_TRUE(net.parameters().empty());
}

TEST(SequentialExtraTest, ZeroGradClearsAllModules) {
  Rng rng(2);
  Sequential net;
  net.emplace<Dense>(2, 2, rng, "a");
  net.emplace<Dense>(2, 2, rng, "b");
  net.forward(Matrix(1, 2, 1.0));
  net.backward(Matrix(1, 2, 1.0));
  net.zero_grad();
  for (Parameter* p : net.parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.max_abs(), 0.0);
  }
}

TEST(GlorotInitTest, MeanNearZeroAndBounded) {
  Rng rng(3);
  const Matrix w = glorot_uniform(200, 100, rng);
  const double mean = w.sum() / static_cast<double>(w.size());
  EXPECT_NEAR(mean, 0.0, 0.005);
  const double limit = std::sqrt(6.0 / 300.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), limit);
  }
}

TEST(GlorotInitTest, DifferentDrawsDiffer) {
  Rng rng(4);
  const Matrix a = glorot_uniform(4, 4, rng);
  const Matrix b = glorot_uniform(4, 4, rng);
  EXPECT_FALSE(approx_equal(a, b, 1e-12));
}

TEST(ParameterTest, GradientMatchesValueShape) {
  Parameter p("w", Matrix(3, 5, 1.0));
  EXPECT_EQ(p.grad.rows(), 3u);
  EXPECT_EQ(p.grad.cols(), 5u);
  EXPECT_DOUBLE_EQ(p.grad.max_abs(), 0.0);
  p.grad(2, 4) = 7.0;
  p.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad.max_abs(), 0.0);
}

TEST(MatrixRowSpanTest, MutationThroughSpan) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
  const Matrix& cm = m;
  EXPECT_DOUBLE_EQ(cm.row(1)[2], 9.0);
}

TEST(DenseExtraTest, BatchRowsAreIndependent) {
  // y_i must depend only on x_i: perturbing row 0 leaves row 1 unchanged.
  Rng rng(5);
  Dense dense(3, 2, rng);
  Matrix x(2, 3, 1.0);
  const Matrix base = dense.forward(x);
  x(0, 0) += 5.0;
  const Matrix perturbed = dense.forward(x);
  EXPECT_DOUBLE_EQ(perturbed(1, 0), base(1, 0));
  EXPECT_DOUBLE_EQ(perturbed(1, 1), base(1, 1));
  EXPECT_NE(perturbed(0, 0), base(0, 0));
}

}  // namespace
}  // namespace cfgx
