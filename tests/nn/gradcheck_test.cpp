// Property-style verification of every analytic gradient against central
// finite differences, parameterized over shapes and seeds.
#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "nn/layers.hpp"

namespace cfgx {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng,
                     double scale = 1.0) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal(0, scale);
  return m;
}

// (batch, in_features, out_features, seed)
using Shape = std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>;

class DenseGradCheck : public ::testing::TestWithParam<Shape> {};

TEST_P(DenseGradCheck, InputGradientMatchesNumeric) {
  const auto [batch, in, out, seed] = GetParam();
  Rng rng(seed);
  Dense dense(in, out, rng);
  const Matrix x = random_matrix(batch, in, rng);
  const Matrix w = random_matrix(batch, out, rng);
  const auto result = check_input_gradient(dense, x, w);
  EXPECT_TRUE(result.passed(1e-5)) << "rel err " << result.max_rel_error;
}

TEST_P(DenseGradCheck, ParameterGradientsMatchNumeric) {
  const auto [batch, in, out, seed] = GetParam();
  Rng rng(seed ^ 0xabcd);
  Dense dense(in, out, rng);
  const Matrix x = random_matrix(batch, in, rng);
  const Matrix w = random_matrix(batch, out, rng);
  const auto result = check_parameter_gradients(dense, x, w);
  EXPECT_TRUE(result.passed(1e-5)) << "rel err " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseGradCheck,
                         ::testing::Values(Shape{1, 3, 2, 11}, Shape{4, 5, 3, 12},
                                           Shape{2, 1, 1, 13}, Shape{7, 8, 4, 14},
                                           Shape{3, 6, 6, 15}));

class ActivationGradCheck
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t,
                                                 std::size_t, std::uint64_t>> {
 protected:
  static std::unique_ptr<Module> make(const std::string& kind) {
    if (kind == "relu") return std::make_unique<Relu>();
    if (kind == "sigmoid") return std::make_unique<Sigmoid>();
    return std::make_unique<SoftmaxRows>();
  }
};

TEST_P(ActivationGradCheck, InputGradientMatchesNumeric) {
  const auto& [kind, rows, cols, seed] = GetParam();
  Rng rng(seed);
  auto module = make(kind);
  // Shift inputs away from ReLU's kink where finite differences are invalid.
  Matrix x = random_matrix(rows, cols, rng);
  if (kind == "relu") {
    x.apply([](double v) { return std::abs(v) < 1e-3 ? v + 0.01 : v; });
  }
  const Matrix w = random_matrix(rows, cols, rng);
  const auto result = check_input_gradient(*module, x, w);
  EXPECT_TRUE(result.passed(1e-5)) << kind << " rel err " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ActivationGradCheck,
    ::testing::Combine(::testing::Values("relu", "sigmoid", "softmax"),
                       ::testing::Values<std::size_t>(1, 3),
                       ::testing::Values<std::size_t>(2, 5),
                       ::testing::Values<std::uint64_t>(21, 22)));

TEST(SequentialGradCheck, MlpInputGradient) {
  Rng rng(31);
  Sequential net;
  net.emplace<Dense>(4, 6, rng, "l0");
  net.emplace<Relu>();
  net.emplace<Dense>(6, 3, rng, "l1");
  net.emplace<SoftmaxRows>();
  const Matrix x = random_matrix(2, 4, rng);
  const Matrix w = random_matrix(2, 3, rng);
  const auto result = check_input_gradient(net, x, w);
  EXPECT_TRUE(result.passed(1e-4)) << "rel err " << result.max_rel_error;
}

TEST(SequentialGradCheck, MlpParameterGradients) {
  Rng rng(32);
  Sequential net;
  net.emplace<Dense>(3, 5, rng, "l0");
  net.emplace<Sigmoid>();
  net.emplace<Dense>(5, 2, rng, "l1");
  const Matrix x = random_matrix(3, 3, rng);
  const Matrix w = random_matrix(3, 2, rng);
  const auto result = check_parameter_gradients(net, x, w);
  EXPECT_TRUE(result.passed(1e-4)) << "rel err " << result.max_rel_error;
}

TEST(GradCheckTest, DetectsWrongGradient) {
  // Sanity of the checker itself: a deliberately corrupted analytic
  // gradient must fail.
  Rng rng(33);
  Matrix x = random_matrix(2, 2, rng);
  Matrix wrong = random_matrix(2, 2, rng);
  Matrix copy = x;
  const auto loss = [&] { return x.sum() * 2.0; };
  // True gradient is all-2; `wrong` is random.
  const auto result = check_gradient_against(x, wrong, loss);
  EXPECT_FALSE(result.passed(1e-5));
  const Matrix right(2, 2, 2.0);
  const auto ok = check_gradient_against(x, right, loss);
  EXPECT_TRUE(ok.passed(1e-6));
  EXPECT_EQ(x, copy);  // checker restores the subject
}

}  // namespace
}  // namespace cfgx
