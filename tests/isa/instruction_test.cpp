#include "isa/instruction.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

TEST(CategoryTest, MovFamily) {
  for (Opcode op : {Opcode::Mov, Opcode::Movzx, Opcode::Lea, Opcode::Xchg,
                    Opcode::Push, Opcode::Pop}) {
    EXPECT_EQ(category_of(op), InstrCategory::Mov) << to_string(op);
  }
}

TEST(CategoryTest, ArithmeticFamily) {
  for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::Shl,
                    Opcode::Inc, Opcode::Neg, Opcode::Idiv}) {
    EXPECT_EQ(category_of(op), InstrCategory::Arithmetic) << to_string(op);
  }
}

TEST(CategoryTest, TransferCompareCallTermination) {
  EXPECT_EQ(category_of(Opcode::Jmp), InstrCategory::Transfer);
  EXPECT_EQ(category_of(Opcode::Jne), InstrCategory::Transfer);
  EXPECT_EQ(category_of(Opcode::Loop), InstrCategory::Transfer);
  EXPECT_EQ(category_of(Opcode::Cmp), InstrCategory::Compare);
  EXPECT_EQ(category_of(Opcode::Test), InstrCategory::Compare);
  EXPECT_EQ(category_of(Opcode::Call), InstrCategory::Call);
  EXPECT_EQ(category_of(Opcode::Ret), InstrCategory::Termination);
  EXPECT_EQ(category_of(Opcode::Hlt), InstrCategory::Termination);
  EXPECT_EQ(category_of(Opcode::Db), InstrCategory::DataDecl);
  EXPECT_EQ(category_of(Opcode::Nop), InstrCategory::Other);
}

TEST(InstructionTest, JumpPredicates) {
  const Instruction jmp(Opcode::Jmp, Operand::make_label("loc_1"));
  EXPECT_TRUE(jmp.is_jump());
  EXPECT_TRUE(jmp.is_unconditional_jump());
  const Instruction je(Opcode::Je, Operand::make_label("loc_1"));
  EXPECT_TRUE(je.is_jump());
  EXPECT_FALSE(je.is_unconditional_jump());
  const Instruction mov(Opcode::Mov);
  EXPECT_FALSE(mov.is_jump());
}

TEST(InstructionTest, CallAndTerminatorPredicates) {
  EXPECT_TRUE(Instruction(Opcode::Call, Operand::make_sym("ds:Sleep")).is_call());
  EXPECT_TRUE(Instruction(Opcode::Ret).is_terminator());
  EXPECT_TRUE(Instruction(Opcode::Int3).is_terminator());
  EXPECT_FALSE(Instruction(Opcode::Nop).is_terminator());
}

TEST(InstructionTest, LabelTargetOnlyForLabelOperands) {
  const Instruction internal(Opcode::Call, Operand::make_label("sub_1"));
  ASSERT_NE(internal.label_target(), nullptr);
  EXPECT_EQ(internal.label_target()->text, "sub_1");

  const Instruction external(Opcode::Call, Operand::make_sym("ds:Sleep"));
  EXPECT_EQ(external.label_target(), nullptr);

  const Instruction mov(Opcode::Mov, Operand::make_reg(Register::Eax),
                        Operand::make_label("x"));
  EXPECT_EQ(mov.label_target(), nullptr);  // not a jump/call
}

TEST(RegisterAliasTest, ByteRegistersAliasParents) {
  EXPECT_TRUE(register_aliases(Register::Al, Register::Eax));
  EXPECT_TRUE(register_aliases(Register::Ah, Register::Eax));
  EXPECT_TRUE(register_aliases(Register::Bl, Register::Ebx));
  EXPECT_TRUE(register_aliases(Register::Cl, Register::Ecx));
  EXPECT_TRUE(register_aliases(Register::Dl, Register::Edx));
  EXPECT_FALSE(register_aliases(Register::Al, Register::Ebx));
  EXPECT_FALSE(register_aliases(Register::Esi, Register::Eax));
  EXPECT_TRUE(register_aliases(Register::Eax, Register::Eax));
}

TEST(InstructionTest, TouchesRegisterThroughAlias) {
  const Instruction instr(Opcode::Xor, Operand::make_reg(Register::Al),
                          Operand::make_imm(0x55));
  EXPECT_TRUE(instr.touches_register(Register::Eax));
  EXPECT_FALSE(instr.touches_register(Register::Ebx));
}

TEST(InstructionTest, ToStringRendersIdaStyle) {
  const Instruction mov(Opcode::Mov, Operand::make_reg(Register::Eax),
                        Operand::make_mem("ebp+var_18"));
  EXPECT_EQ(mov.to_string(), "mov eax, [ebp+var_18]");

  const Instruction call(Opcode::Call, Operand::make_sym("ds:Sleep"));
  EXPECT_EQ(call.to_string(), "call ds:Sleep");

  const Instruction nop(Opcode::Nop);
  EXPECT_EQ(nop.to_string(), "nop");
}

TEST(OperandTest, ImmediateRendering) {
  EXPECT_EQ(Operand::make_imm(5).to_string(), "5");
  EXPECT_EQ(Operand::make_imm(0x55).to_string(), "55h");
  EXPECT_EQ(Operand::make_imm(0x87BDC1D7).to_string(), "87BDC1D7h");
}

TEST(OperandTest, StringAndLabelRendering) {
  EXPECT_EQ(Operand::make_string("cmd.exe").to_string(), "\"cmd.exe\"");
  EXPECT_EQ(Operand::make_label("loc_4").to_string(), "loc_4");
  EXPECT_EQ(Operand::make_mem("ecx").to_string(), "[ecx]");
}

TEST(RegisterTest, Names) {
  EXPECT_STREQ(to_string(Register::Eax), "eax");
  EXPECT_STREQ(to_string(Register::Esp), "esp");
  EXPECT_STREQ(to_string(Register::Dl), "dl");
}

}  // namespace
}  // namespace cfgx
