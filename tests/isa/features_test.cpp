#include "isa/features.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

double feature(const std::array<double, kAcfgFeatureCount>& f, AcfgFeature which) {
  return f[static_cast<std::size_t>(which)];
}

TEST(BlockFeaturesTest, CountsByCategory) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Mov, Operand::make_reg(Register::Eax),
                  Operand::make_imm(5)),
      Instruction(Opcode::Add, Operand::make_reg(Register::Eax),
                  Operand::make_imm(1)),
      Instruction(Opcode::Cmp, Operand::make_reg(Register::Eax),
                  Operand::make_imm(10)),
      Instruction(Opcode::Jne, Operand::make_label("loop")),
      Instruction(Opcode::Call, Operand::make_sym("ds:Sleep")),
      Instruction(Opcode::Ret),
  };
  const auto f = block_features(block, 2);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::MovInstructions), 1.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::ArithmeticInstructions), 1.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::CompareInstructions), 1.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::TransferInstructions), 1.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::CallInstructions), 1.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::TerminationInstructions), 1.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::TotalInstructions), 6.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::Offspring), 2.0);
}

TEST(BlockFeaturesTest, NumericConstantsCountImmediates) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Mov, Operand::make_reg(Register::Eax),
                  Operand::make_imm(5)),
      Instruction(Opcode::Xor, Operand::make_reg(Register::Edx),
                  Operand::make_imm(0x87BDC1D7)),
      Instruction(Opcode::Push, Operand::make_imm(0)),
  };
  const auto f = block_features(block, 0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::NumericConstants), 3.0);
}

TEST(BlockFeaturesTest, StringConstantsCounted) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Push, Operand::make_string("cmd.exe")),
      Instruction(Opcode::Push, Operand::make_string("explorer")),
  };
  const auto f = block_features(block, 0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::StringConstants), 2.0);
}

TEST(BlockFeaturesTest, DataDeclarationsExcludedFromInVertexCount) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Nop),
      Instruction(Opcode::Db, Operand::make_imm(0x90)),
      Instruction(Opcode::Dd, Operand::make_imm(0xdeadbeef)),
  };
  const auto f = block_features(block, 0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::DataDeclInstructions), 2.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::TotalInstructions), 3.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::InstructionsInVertex), 1.0);
}

TEST(BlockFeaturesTest, NopOnlyBumpsTotals) {
  const std::vector<Instruction> block{Instruction(Opcode::Nop),
                                       Instruction(Opcode::Nop)};
  const auto f = block_features(block, 0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::TotalInstructions), 2.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::InstructionsInVertex), 2.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::MovInstructions), 0.0);
  EXPECT_DOUBLE_EQ(feature(f, AcfgFeature::ArithmeticInstructions), 0.0);
}

TEST(ToAcfgTest, NodesMatchBlocksEdgesMatchCfg) {
  ProgramBuilder b;
  b.emit(Opcode::Cmp, Operand::make_reg(Register::Eax), Operand::make_imm(0));
  b.jcc(Opcode::Je, "skip");   // block 0
  b.emit(Opcode::Nop);         // block 1
  b.label("skip");
  b.ret();                     // block 2
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  const Acfg graph = to_acfg(cfg, 3, "Ldpinch");

  EXPECT_EQ(graph.num_nodes(), cfg.block_count());
  EXPECT_EQ(graph.num_edges(), cfg.edges().size());
  EXPECT_EQ(graph.label(), 3);
  EXPECT_EQ(graph.family(), "Ldpinch");
}

TEST(ToAcfgTest, OffspringEqualsOutDegree) {
  ProgramBuilder b;
  b.jcc(Opcode::Je, "a");      // block 0: 2 successors
  b.emit(Opcode::Nop);         // block 1
  b.label("a");
  b.ret();                     // block 2
  const Program program = b.build();
  const Acfg graph = to_acfg(lift_program(program));
  const auto degrees = graph.out_degrees();
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(
        graph.features()(n, static_cast<std::size_t>(AcfgFeature::Offspring)),
        static_cast<double>(degrees[n]));
  }
}

TEST(ToAcfgTest, FeatureRowsSumExceedsZeroForNonEmptyBlocks) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  b.ret();
  const Program program = b.build();
  const Acfg graph = to_acfg(lift_program(program));
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < graph.feature_count(); ++c) {
      row_sum += graph.features()(n, c);
    }
    EXPECT_GT(row_sum, 0.0);
  }
}

TEST(FeatureNamesTest, AllTwelveAreNamed) {
  for (std::size_t i = 0; i < kAcfgFeatureCount; ++i) {
    EXPECT_STRNE(feature_name(static_cast<AcfgFeature>(i)), "?");
  }
}

}  // namespace
}  // namespace cfgx
