#include "isa/patterns.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

std::vector<PatternHit> hits_of_kind(const std::vector<PatternHit>& hits,
                                     MalwarePattern kind) {
  std::vector<PatternHit> out;
  for (const PatternHit& hit : hits) {
    if (hit.pattern == kind) out.push_back(hit);
  }
  return out;
}

TEST(XorObfuscationTest, DistinctRegistersDetected) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Xor, Operand::make_reg(Register::Eax),
                  Operand::make_reg(Register::Ecx)),
  };
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::XorObfuscation).size(), 1u);
}

TEST(XorObfuscationTest, SelfXorZeroingIdiomIgnored) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Xor, Operand::make_reg(Register::Eax),
                  Operand::make_reg(Register::Eax)),
  };
  EXPECT_TRUE(hits_of_kind(detect_patterns(block),
                           MalwarePattern::XorObfuscation).empty());
}

TEST(XorObfuscationTest, NonZeroImmediateKeyDetected) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Xor, Operand::make_reg(Register::Edx),
                  Operand::make_imm(0x87BDC1D7)),
  };
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::XorObfuscation).size(), 1u);
}

TEST(XorObfuscationTest, ZeroImmediateIgnored) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Xor, Operand::make_reg(Register::Edx),
                  Operand::make_imm(0)),
  };
  EXPECT_TRUE(hits_of_kind(detect_patterns(block),
                           MalwarePattern::XorObfuscation).empty());
}

TEST(XorObfuscationTest, MemoryOperandDecoderDetected) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Xor, Operand::make_mem("ecx"),
                  Operand::make_reg(Register::Al)),
  };
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::XorObfuscation).size(), 1u);
}

TEST(SemanticNopTest, PlainNopDetected) {
  const std::vector<Instruction> block{Instruction(Opcode::Nop)};
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::SemanticNop).size(), 1u);
}

TEST(SemanticNopTest, MovSameRegisterDetected) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Mov, Operand::make_reg(Register::Esi),
                  Operand::make_reg(Register::Esi)),
      Instruction(Opcode::Xchg, Operand::make_reg(Register::Dl),
                  Operand::make_reg(Register::Dl)),
  };
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::SemanticNop).size(), 2u);
}

TEST(SemanticNopTest, RealMovIgnored) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Mov, Operand::make_reg(Register::Esi),
                  Operand::make_reg(Register::Edi)),
  };
  EXPECT_TRUE(hits_of_kind(detect_patterns(block),
                           MalwarePattern::SemanticNop).empty());
}

TEST(CodeManipulationTest, CallThenEaxUseDetected) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Call, Operand::make_sym("ds:Sleep")),
      Instruction(Opcode::Mov, Operand::make_reg(Register::Eax),
                  Operand::make_mem("ebp+var_EC.hProcess")),
  };
  const auto hits =
      hits_of_kind(detect_patterns(block), MalwarePattern::CodeManipulation);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].excerpt.find("call ds:Sleep"), std::string::npos);
  EXPECT_NE(hits[0].excerpt.find("mov eax"), std::string::npos);
}

TEST(CodeManipulationTest, PopEaxAfterCallDetected) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Call, Operand::make_label("sub_4010A6")),
      Instruction(Opcode::Pop, Operand::make_reg(Register::Eax)),
  };
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::CodeManipulation).size(), 1u);
}

TEST(CodeManipulationTest, ByteAliasCountsAsEax) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Call, Operand::make_sym("ds:recv")),
      Instruction(Opcode::Xor, Operand::make_reg(Register::Al),
                  Operand::make_imm(0x55)),
  };
  EXPECT_EQ(hits_of_kind(detect_patterns(block),
                         MalwarePattern::CodeManipulation).size(), 1u);
}

TEST(CodeManipulationTest, CallThenUnrelatedInstructionIgnored) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Call, Operand::make_sym("ds:Sleep")),
      Instruction(Opcode::Mov, Operand::make_reg(Register::Ebx),
                  Operand::make_imm(1)),
  };
  EXPECT_TRUE(hits_of_kind(detect_patterns(block),
                           MalwarePattern::CodeManipulation).empty());
}

TEST(ApiCallTest, ExternalCallRecordedWithCanonicalName) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Call, Operand::make_sym("ds:CreateThread")),
      Instruction(Opcode::Call, Operand::make_sym("j_SleepEx")),
  };
  const auto hits = hits_of_kind(detect_patterns(block), MalwarePattern::ApiCall);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].api_name, "CreateThread");
  EXPECT_EQ(hits[1].api_name, "SleepEx");
}

TEST(ApiCallTest, InternalCallNotRecorded) {
  const std::vector<Instruction> block{
      Instruction(Opcode::Call, Operand::make_label("sub_1")),
  };
  EXPECT_TRUE(
      hits_of_kind(detect_patterns(block), MalwarePattern::ApiCall).empty());
}

TEST(ApiClassificationTest, BehaviorGroups) {
  EXPECT_EQ(classify_api("ds:CreateThread"), ApiBehavior::ThreadCreation);
  EXPECT_EQ(classify_api("CreateProcessA"), ApiBehavior::ProcessCreation);
  EXPECT_EQ(classify_api("ds:ReadFile"), ApiBehavior::FileIo);
  EXPECT_EQ(classify_api("ds:send"), ApiBehavior::Network);
  EXPECT_EQ(classify_api("recv"), ApiBehavior::Network);
  EXPECT_EQ(classify_api("RegSetValueA"), ApiBehavior::Registry);
  EXPECT_EQ(classify_api("j_SleepEx"), ApiBehavior::Timing);
  EXPECT_EQ(classify_api("QueryPerformanceCounter"), ApiBehavior::Timing);
  EXPECT_EQ(classify_api("CreatePipe"), ApiBehavior::Pipe);
  EXPECT_EQ(classify_api("ds:LoadLibraryA"), ApiBehavior::LibraryLoading);
  EXPECT_EQ(classify_api("GetModuleFileNameA"), ApiBehavior::LibraryLoading);
  EXPECT_EQ(classify_api("VirtualAlloc"), ApiBehavior::Memory);
  EXPECT_EQ(classify_api("CryptEncrypt"), ApiBehavior::Crypto);
  EXPECT_EQ(classify_api("TotallyUnknownApi"), ApiBehavior::Unknown);
}

TEST(AnalyzeBlocksTest, AggregatesAcrossBlocks) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);                               // block 0: semantic nop
  b.jmp("next");
  b.label("next");
  b.emit(Opcode::Xor, Operand::make_reg(Register::Edi),
         Operand::make_imm(0x68A25749));             // block 1: xor obfuscation
  b.call_api("ds:VirtualAlloc");
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);

  const std::vector<std::uint32_t> all_blocks{0, 1};
  const PatternReport report = analyze_blocks(cfg, all_blocks);
  EXPECT_EQ(report.blocks_analyzed, 2u);
  EXPECT_EQ(report.pattern_counts.at(MalwarePattern::SemanticNop), 1u);
  EXPECT_EQ(report.pattern_counts.at(MalwarePattern::XorObfuscation), 1u);
  EXPECT_EQ(report.pattern_counts.at(MalwarePattern::ApiCall), 1u);
  const auto& memory_apis = report.apis_by_behavior.at(ApiBehavior::Memory);
  ASSERT_EQ(memory_apis.size(), 1u);
  EXPECT_EQ(memory_apis[0], "VirtualAlloc");
}

TEST(AnalyzeBlocksTest, SubsetOnlyScansRequestedBlocks) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);   // block 0
  b.jmp("next");
  b.label("next");
  b.emit(Opcode::Nop);   // block 1
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  const std::vector<std::uint32_t> just_one{1};
  const PatternReport report = analyze_blocks(cfg, just_one);
  EXPECT_EQ(report.blocks_analyzed, 1u);
  EXPECT_EQ(report.pattern_counts.at(MalwarePattern::SemanticNop), 1u);
}

TEST(PatternNamesTest, AllNamed) {
  EXPECT_STREQ(to_string(MalwarePattern::CodeManipulation), "Code manipulation");
  EXPECT_STREQ(to_string(MalwarePattern::XorObfuscation), "XOR obfuscation");
  EXPECT_STRNE(to_string(ApiBehavior::Network), "?");
}

}  // namespace
}  // namespace cfgx
