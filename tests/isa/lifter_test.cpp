#include "isa/lifter.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

bool has_edge(const LiftedCfg& cfg, std::uint32_t src, std::uint32_t dst,
              EdgeKind kind) {
  for (const CfgEdge& e : cfg.edges()) {
    if (e.src == src && e.dst == dst && e.kind == kind) return true;
  }
  return false;
}

TEST(LifterTest, StraightLineIsOneBlock) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  b.emit(Opcode::Mov, Operand::make_reg(Register::Eax), Operand::make_imm(1));
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 1u);
  EXPECT_EQ(cfg.blocks()[0].size(), 3u);
  EXPECT_TRUE(cfg.edges().empty());
}

TEST(LifterTest, EmptyProgramThrows) {
  const Program program = ProgramBuilder{}.build();
  EXPECT_THROW(lift_program(program), std::invalid_argument);
}

TEST(LifterTest, UnconditionalJumpSplitsAndConnects) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);          // block 0
  b.jmp("target");              // ends block 0
  b.emit(Opcode::Inc, Operand::make_reg(Register::Eax));  // block 1 (dead)
  b.label("target");
  b.ret();                      // block 2
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_TRUE(has_edge(cfg, 0, 2, EdgeKind::Flow));
  // jmp has no fall-through: block 0 must not flow into block 1.
  EXPECT_FALSE(has_edge(cfg, 0, 1, EdgeKind::Flow));
}

TEST(LifterTest, ConditionalJumpHasBothSuccessors) {
  ProgramBuilder b;
  b.emit(Opcode::Cmp, Operand::make_reg(Register::Eax), Operand::make_imm(0));
  b.jcc(Opcode::Je, "then");    // block 0
  b.emit(Opcode::Nop);          // block 1: fall-through
  b.label("then");
  b.ret();                      // block 2
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_TRUE(has_edge(cfg, 0, 2, EdgeKind::Flow));  // taken
  EXPECT_TRUE(has_edge(cfg, 0, 1, EdgeKind::Flow));  // not taken
}

TEST(LifterTest, InternalCallProducesCallAndReturnEdges) {
  ProgramBuilder b;
  b.call_label("callee");       // block 0
  b.emit(Opcode::Nop);          // block 1: return site
  b.ret();
  b.label("callee");
  b.ret();                      // block 2
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_TRUE(has_edge(cfg, 0, 2, EdgeKind::Call));
  EXPECT_TRUE(has_edge(cfg, 0, 1, EdgeKind::Flow));
}

TEST(LifterTest, ExternalCallDoesNotSplitBlock) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  b.call_api("ds:Sleep");
  b.emit(Opcode::Mov, Operand::make_reg(Register::Eax), Operand::make_imm(1));
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  EXPECT_EQ(cfg.block_count(), 1u);
}

TEST(LifterTest, TerminatorsHaveNoSuccessors) {
  ProgramBuilder b;
  b.ret();                      // block 0
  b.emit(Opcode::Nop);          // block 1
  b.emit(Opcode::Hlt);
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 2u);
  for (const CfgEdge& e : cfg.edges()) {
    EXPECT_NE(e.src, 0u);  // ret cannot have out-edges
  }
}

TEST(LifterTest, FallThroughBetweenLeaderBlocks) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);          // block 0
  b.label("loop");              // leader from back-jump
  b.emit(Opcode::Dec, Operand::make_reg(Register::Ecx));
  b.jcc(Opcode::Jnz, "loop");   // block 1 -> itself + fall-through
  b.ret();                      // block 2
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_TRUE(has_edge(cfg, 0, 1, EdgeKind::Flow));  // natural fall-through
  EXPECT_TRUE(has_edge(cfg, 1, 1, EdgeKind::Flow));  // loop back-edge
  EXPECT_TRUE(has_edge(cfg, 1, 2, EdgeKind::Flow));  // exit
}

TEST(LifterTest, SelfLoopViaUnconditionalJump) {
  ProgramBuilder b;
  b.label("self");
  b.emit(Opcode::Nop);
  b.jmp("self");
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  ASSERT_EQ(cfg.block_count(), 1u);
  EXPECT_TRUE(has_edge(cfg, 0, 0, EdgeKind::Flow));
}

TEST(LifterTest, BlockOfInstructionMapsCorrectly) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);     // block 0
  b.jmp("next");
  b.label("next");
  b.emit(Opcode::Nop);     // block 1
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  EXPECT_EQ(cfg.block_of_instruction(0), 0u);
  EXPECT_EQ(cfg.block_of_instruction(1), 0u);
  EXPECT_EQ(cfg.block_of_instruction(2), 1u);
  EXPECT_THROW(cfg.block_of_instruction(99), std::out_of_range);
}

TEST(LifterTest, BlockInstructionsSpansAreDisjointAndComplete) {
  ProgramBuilder b;
  b.emit(Opcode::Cmp, Operand::make_reg(Register::Eax), Operand::make_imm(0));
  b.jcc(Opcode::Je, "a");
  b.emit(Opcode::Nop);
  b.label("a");
  b.call_label("f");
  b.ret();
  b.label("f");
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < cfg.block_count(); ++i) {
    total += cfg.block_instructions(i).size();
  }
  EXPECT_EQ(total, cfg.program().size());
}

TEST(LifterTest, BlockToStringListsInstructions) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  const std::string text = cfg.block_to_string(0);
  EXPECT_NE(text.find("nop"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(LifterTest, DuplicateEdgesAreCollapsed) {
  // Two conditional jumps to the same target from one block are impossible
  // (jcc ends the block), but a jcc whose fall-through IS its target would
  // produce the same (src, dst, kind) twice; the lifter must deduplicate.
  ProgramBuilder b;
  b.jcc(Opcode::Je, "next");
  b.label("next");
  b.ret();
  const Program program = b.build();
  const LiftedCfg cfg = lift_program(program);
  EXPECT_EQ(cfg.edges().size(), 1u);
}

}  // namespace
}  // namespace cfgx
