#include "isa/program.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

TEST(ProgramBuilderTest, EmitsInstructionsInOrder) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  b.emit(Opcode::Mov, Operand::make_reg(Register::Eax), Operand::make_imm(1));
  b.ret();
  const Program program = b.build();
  ASSERT_EQ(program.size(), 3u);
  EXPECT_EQ(program.instructions()[0].opcode, Opcode::Nop);
  EXPECT_EQ(program.instructions()[1].opcode, Opcode::Mov);
  EXPECT_EQ(program.instructions()[2].opcode, Opcode::Ret);
}

TEST(ProgramBuilderTest, LabelsPointAtNextInstruction) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  b.label("middle");
  b.emit(Opcode::Ret);
  const Program program = b.build();
  ASSERT_TRUE(program.label_index("middle").has_value());
  EXPECT_EQ(*program.label_index("middle"), 1u);
  EXPECT_FALSE(program.label_index("missing").has_value());
}

TEST(ProgramBuilderTest, RedefinedLabelThrows) {
  ProgramBuilder b;
  b.label("x");
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(ProgramBuilderTest, UndefinedJumpTargetFailsValidation) {
  ProgramBuilder b;
  b.jmp("nowhere");
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(ProgramBuilderTest, UndefinedCallTargetFailsValidation) {
  ProgramBuilder b;
  b.call_label("nowhere");
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(ProgramBuilderTest, ExternalCallNeedsNoLabel) {
  ProgramBuilder b;
  b.call_api("ds:Sleep");
  b.ret();
  EXPECT_NO_THROW(b.build());
}

TEST(ProgramBuilderTest, HelpersEmitExpectedOpcodes) {
  ProgramBuilder b;
  b.label("target");
  b.jmp("target");
  b.jcc(Opcode::Jne, "target");
  b.call_label("target");
  b.ret();
  const Program program = b.build();
  EXPECT_EQ(program.instructions()[0].opcode, Opcode::Jmp);
  EXPECT_EQ(program.instructions()[1].opcode, Opcode::Jne);
  EXPECT_EQ(program.instructions()[2].opcode, Opcode::Call);
  EXPECT_EQ(program.instructions()[3].opcode, Opcode::Ret);
}

TEST(ProgramBuilderTest, BuilderIsReusableAfterBuild) {
  ProgramBuilder b;
  b.emit(Opcode::Nop);
  const Program first = b.build();
  EXPECT_EQ(first.size(), 1u);
  b.emit(Opcode::Ret);
  const Program second = b.build();
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second.instructions()[0].opcode, Opcode::Ret);
}

TEST(ProgramTest, NextIndexTracksEmission) {
  ProgramBuilder b;
  EXPECT_EQ(b.next_index(), 0u);
  b.emit(Opcode::Nop);
  EXPECT_EQ(b.next_index(), 1u);
}

TEST(ProgramTest, ToStringAnnotatesLabels) {
  ProgramBuilder b;
  b.label("start");
  b.emit(Opcode::Nop);
  b.label("end");
  b.ret();
  const std::string listing = b.build().to_string();
  EXPECT_NE(listing.find("start:"), std::string::npos);
  EXPECT_NE(listing.find("end:"), std::string::npos);
  EXPECT_NE(listing.find("nop"), std::string::npos);
}

TEST(ProgramTest, LabelPastEndThrows) {
  std::map<std::string, std::size_t> labels{{"bad", 5}};
  EXPECT_THROW(Program({Instruction(Opcode::Nop)}, labels), std::logic_error);
}

TEST(ProgramTest, EmptyProgram) {
  const Program program = ProgramBuilder{}.build();
  EXPECT_TRUE(program.empty());
  EXPECT_EQ(program.size(), 0u);
}

}  // namespace
}  // namespace cfgx
