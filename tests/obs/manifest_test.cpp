#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace cfgx::obs {
namespace {

TEST(ManifestTest, EmitsSchemaBinaryAndGitRev) {
  RunManifest manifest("unit_test_binary");
  const JsonValue doc = JsonValue::parse(manifest.json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string_value, "cfgx-run-manifest/1");
  EXPECT_EQ(doc.at("binary").string_value, "unit_test_binary");
  EXPECT_FALSE(doc.at("git_rev").string_value.empty());
  EXPECT_GT(doc.at("created_unix").number_value, 0.0);
}

TEST(ManifestTest, ConfigPreservesTypesAndOverwritesByKey) {
  RunManifest manifest("t");
  manifest.set_config("fast", true);
  manifest.set_config("samples", std::int64_t{42});
  manifest.set_config("fraction", 0.75);
  manifest.set_config("cache", "dir_a");
  manifest.set_config("cache", "dir_b");  // same key: overwrite, not append

  const JsonValue config = JsonValue::parse(manifest.json()).at("config");
  EXPECT_EQ(config.at("fast").kind, JsonValue::Kind::Bool);
  EXPECT_TRUE(config.at("fast").bool_value);
  EXPECT_DOUBLE_EQ(config.at("samples").number_value, 42.0);
  EXPECT_DOUBLE_EQ(config.at("fraction").number_value, 0.75);
  EXPECT_EQ(config.at("cache").string_value, "dir_b");
  EXPECT_EQ(config.members.size(), 4u);
}

TEST(ManifestTest, TimingsCarryDistributionFields) {
  RunManifest manifest("t");
  ManifestTiming timing;
  timing.name = "explain.CFGExplainer";
  timing.count = 36;
  timing.total_seconds = 7.2;
  timing.mean_seconds = 0.2;
  timing.stddev_seconds = 0.05;
  timing.p50_seconds = 0.19;
  timing.p95_seconds = 0.31;
  timing.p99_seconds = 0.35;
  manifest.add_timing(timing);

  const JsonValue timings = JsonValue::parse(manifest.json()).at("timings");
  ASSERT_TRUE(timings.is_array());
  ASSERT_EQ(timings.items.size(), 1u);
  const JsonValue& row = timings.items[0];
  EXPECT_EQ(row.at("name").string_value, "explain.CFGExplainer");
  EXPECT_DOUBLE_EQ(row.at("count").number_value, 36.0);
  EXPECT_DOUBLE_EQ(row.at("mean_seconds").number_value, 0.2);
  EXPECT_DOUBLE_EQ(row.at("stddev_seconds").number_value, 0.05);
  EXPECT_DOUBLE_EQ(row.at("p50_seconds").number_value, 0.19);
  EXPECT_DOUBLE_EQ(row.at("p95_seconds").number_value, 0.31);
  EXPECT_DOUBLE_EQ(row.at("p99_seconds").number_value, 0.35);
}

TEST(ManifestTest, ResultsAndTraceFileAppear) {
  RunManifest manifest("t");
  manifest.add_result("accuracy", 0.97);
  manifest.set_trace_file("t_trace.json");
  const JsonValue doc = JsonValue::parse(manifest.json());
  EXPECT_DOUBLE_EQ(doc.at("results").at("accuracy").number_value, 0.97);
  EXPECT_EQ(doc.at("trace_file").string_value, "t_trace.json");
}

TEST(ManifestTest, TraceFileOmittedWhenUnset) {
  RunManifest manifest("t");
  EXPECT_FALSE(JsonValue::parse(manifest.json()).has("trace_file"));
}

TEST(ManifestTest, MetricsSnapshotEmbedsIntoManifest) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("kernel.spmm.calls", 123u);
  snapshot.gauges.emplace_back("gnn.last_epoch_loss", 0.5);
  HistogramStats stats;
  stats.name = "kernel.spmm.seconds";
  stats.count = 123;
  snapshot.histograms.push_back(stats);

  RunManifest manifest("t");
  manifest.set_metrics(snapshot);
  const JsonValue metrics = JsonValue::parse(manifest.json()).at("metrics");
  EXPECT_DOUBLE_EQ(
      metrics.at("counters").at("kernel.spmm.calls").number_value, 123.0);
  EXPECT_DOUBLE_EQ(
      metrics.at("gauges").at("gnn.last_epoch_loss").number_value, 0.5);
  ASSERT_EQ(metrics.at("histograms").items.size(), 1u);
}

TEST(ManifestTest, WriteFileRoundTrips) {
  RunManifest manifest("t");
  manifest.set_config("fast", true);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cfgx_manifest_test.json")
          .string();
  manifest.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const JsonValue doc = JsonValue::parse(contents);
  EXPECT_EQ(doc.at("schema").string_value, "cfgx-run-manifest/1");
  EXPECT_TRUE(doc.at("config").at("fast").bool_value);
  std::remove(path.c_str());
}

TEST(ManifestTest, WriteFileThrowsOnBadPath) {
  RunManifest manifest("t");
  EXPECT_THROW(manifest.write_file("/nonexistent_dir_cfgx/manifest.json"),
               std::runtime_error);
}

TEST(ManifestTest, GitRevEnvOverrideWins) {
  ::setenv("CFGX_GIT_REV", "feedc0de", 1);
  EXPECT_EQ(build_git_revision(), "feedc0de");
  ::unsetenv("CFGX_GIT_REV");
  EXPECT_NE(build_git_revision(), "feedc0de");
}

}  // namespace
}  // namespace cfgx::obs
