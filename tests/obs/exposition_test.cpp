#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cfgx::obs {
namespace {

class ExpositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = metrics_enabled();
    set_metrics_enabled(true);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    MetricsRegistry::global().reset();
    set_metrics_enabled(saved_enabled_);
  }

 private:
  bool saved_enabled_ = true;
};

TEST_F(ExpositionTest, SanitizesMetricNames) {
  EXPECT_EQ(prometheus_name("serve.queue_depth"), "serve_queue_depth");
  EXPECT_EQ(prometheus_name("already_fine:metric"), "already_fine:metric");
  EXPECT_EQ(prometheus_name("weird-name/with spaces"),
            "weird_name_with_spaces");
  EXPECT_EQ(prometheus_name("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "_");
}

// Golden document: a fixed snapshot must render byte-for-byte stably —
// this is the contract /metrics scrapers and the CI golden check rely on.
TEST_F(ExpositionTest, GoldenDocument) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("serve.requests_served", 42);
  snapshot.gauges.emplace_back("engine.uptime_seconds", 1.5);
  HistogramStats h;
  h.name = "serve.request_latency_seconds";
  h.count = 4;
  h.sum = 0.1;
  h.mean = 0.025;
  h.p50 = 0.02;
  h.p95 = 0.04;
  h.p99 = 0.04;
  snapshot.histograms.push_back(h);

  const std::string expected =
      "# TYPE serve_requests_served counter\n"
      "serve_requests_served 42\n"
      "# TYPE engine_uptime_seconds gauge\n"
      "engine_uptime_seconds 1.5\n"
      "# TYPE serve_request_latency_seconds summary\n"
      "serve_request_latency_seconds{quantile=\"0.5\"} 0.02\n"
      "serve_request_latency_seconds{quantile=\"0.95\"} 0.04\n"
      "serve_request_latency_seconds{quantile=\"0.99\"} 0.04\n"
      "serve_request_latency_seconds_sum 0.1\n"
      "serve_request_latency_seconds_count 4\n";
  EXPECT_EQ(render_prometheus(snapshot), expected);
}

TEST_F(ExpositionTest, EmptySnapshotRendersEmptyDocument) {
  EXPECT_EQ(render_prometheus(MetricsSnapshot{}), "");
}

TEST_F(ExpositionTest, DoublesRoundTripShortest) {
  MetricsSnapshot snapshot;
  snapshot.gauges.emplace_back("g.third", 1.0 / 3.0);
  snapshot.gauges.emplace_back("g.whole", 3.0);
  const std::string text = render_prometheus(snapshot);
  EXPECT_NE(text.find("g_third 0.3333333333333333\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("g_whole 3\n"), std::string::npos) << text;
}

// The deterministic-iteration satellite: a live registry snapshot lists
// every section sorted by metric name, so two scrapes of the same state
// are byte-identical.
TEST_F(ExpositionTest, LiveSnapshotIsSortedAndDeterministic) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.counter("m.middle").add(3);
  registry.gauge("z.gauge").set(1.0);
  registry.gauge("a.gauge").set(2.0);
  registry.histogram("m.hist").record(0.5);

  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_TRUE(std::is_sorted(
      snapshot.gauges.begin(), snapshot.gauges.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_TRUE(std::is_sorted(snapshot.histograms.begin(),
                             snapshot.histograms.end(),
                             [](const HistogramStats& a,
                                const HistogramStats& b) {
                               return a.name < b.name;
                             }));
  EXPECT_EQ(render_prometheus(snapshot),
            render_prometheus(registry.snapshot()));

  const std::string text = render_prometheus(snapshot);
  const std::size_t a = text.find("a_first");
  const std::size_t m = text.find("m_middle");
  const std::size_t z = text.find("z_last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST_F(ExpositionTest, HistogramQuantilesComeFromRecordedData) {
  Histogram& hist = MetricsRegistry::global().histogram("t.latency");
  for (int i = 0; i < 100; ++i) hist.record(0.010);
  const std::string text =
      render_prometheus(MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("# TYPE t_latency summary\n"), std::string::npos);
  EXPECT_NE(text.find("t_latency_count 100\n"), std::string::npos) << text;
  // All mass in one log bucket: every quantile reports that bucket's
  // representative value, within the 2^(1/4) bucket-width bound. (The
  // registry may hold histograms registered by other test files; find
  // ours by name.)
  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  const HistogramStats* stats = nullptr;
  for (const HistogramStats& h : snapshot.histograms) {
    if (h.name == "t.latency") stats = &h;
  }
  ASSERT_NE(stats, nullptr);
  EXPECT_NEAR(stats->p50, 0.010, 0.010 * 0.2);
  EXPECT_EQ(stats->p50, stats->p99);
}

}  // namespace
}  // namespace cfgx::obs
