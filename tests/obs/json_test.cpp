#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cfgx::obs {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, WritesNestedDocument) {
  JsonWriter writer;
  writer.begin_object()
      .field("name", "spmm")
      .field("count", std::uint64_t{3})
      .field("ratio", 0.5)
      .field("ok", true)
      .key("items")
      .begin_array()
      .value(std::int64_t{-1})
      .value(std::int64_t{2})
      .end_array()
      .end_object();
  EXPECT_EQ(writer.str(),
            "{\"name\":\"spmm\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"items\":[-1,2]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(writer.str(), "[null,null]");
}

TEST(JsonWriter, ThrowsOnIncompleteDocument) {
  JsonWriter writer;
  writer.begin_object();
  EXPECT_THROW(writer.str(), std::logic_error);
}

TEST(JsonWriter, ThrowsOnValueWithoutKeyInObject) {
  JsonWriter writer;
  writer.begin_object();
  EXPECT_THROW(writer.value(1.0), std::logic_error);
}

TEST(JsonValue, ParsesWriterOutputBack) {
  JsonWriter writer;
  writer.begin_object()
      .field("pi", 3.25)
      .field("neg", std::int64_t{-7})
      .field("text", "a\"b")
      .key("flags")
      .begin_array()
      .value(true)
      .value(false)
      .end_array()
      .end_object();

  const JsonValue doc = JsonValue::parse(writer.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("pi").number_value, 3.25);
  EXPECT_DOUBLE_EQ(doc.at("neg").number_value, -7.0);
  EXPECT_EQ(doc.at("text").string_value, "a\"b");
  ASSERT_TRUE(doc.at("flags").is_array());
  ASSERT_EQ(doc.at("flags").items.size(), 2u);
  EXPECT_TRUE(doc.at("flags").items[0].bool_value);
  EXPECT_FALSE(doc.at("flags").items[1].bool_value);
}

TEST(JsonValue, DecodesUnicodeEscapes) {
  const JsonValue doc = JsonValue::parse("\"\\u0041\\u00e9\"");
  EXPECT_EQ(doc.string_value, "A\xc3\xa9");
}

TEST(JsonValue, ThrowsOnMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::runtime_error);
}

}  // namespace
}  // namespace cfgx::obs
