#include "obs/exporter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace cfgx::obs {
namespace {

// The global registry keeps registrations made by OTHER test files in this
// binary (reset() zeroes values only), so windows carry those metrics with
// zero deltas; every lookup below is by name.
const WindowedCounter* find_counter(const MetricsWindow& window,
                                    const std::string& name) {
  for (const WindowedCounter& c : window.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const WindowedHistogram* find_histogram(const MetricsWindow& window,
                                        const std::string& name) {
  for (const WindowedHistogram& h : window.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double find_gauge(const MetricsWindow& window, const std::string& name) {
  for (const auto& [gauge_name, value] : window.gauges) {
    if (gauge_name == name) return value;
  }
  ADD_FAILURE() << "gauge " << name << " not in window";
  return 0.0;
}

const HistogramStats* find_stats(const MetricsSnapshot& snapshot,
                                 const std::string& name) {
  for (const HistogramStats& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

class ExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = metrics_enabled();
    set_metrics_enabled(true);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    MetricsRegistry::global().reset();
    set_metrics_enabled(saved_enabled_);
  }

 private:
  bool saved_enabled_ = true;
};

TEST_F(ExporterTest, DiffComputesCounterDeltaAndRate) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& requests = registry.counter("t.requests");
  requests.add(10);
  const MetricsSnapshot before = registry.snapshot();
  requests.add(30);
  const MetricsSnapshot after = registry.snapshot();

  const MetricsWindow window = diff_snapshots(before, after, 2.0);
  const WindowedCounter* requests_window = find_counter(window, "t.requests");
  ASSERT_NE(requests_window, nullptr);
  EXPECT_EQ(requests_window->delta, 30u);
  EXPECT_DOUBLE_EQ(requests_window->rate_per_second, 15.0);
  EXPECT_DOUBLE_EQ(window.interval_seconds, 2.0);
}

TEST_F(ExporterTest, DiffReportsGaugesInstantaneously) {
  Gauge& depth = MetricsRegistry::global().gauge("t.depth");
  depth.set(7.0);
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  depth.set(3.0);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();

  const MetricsWindow window = diff_snapshots(before, after, 1.0);
  EXPECT_DOUBLE_EQ(find_gauge(window, "t.depth"), 3.0);
}

TEST_F(ExporterTest, DiffClampsOnRegistryReset) {
  Counter& c = MetricsRegistry::global().counter("t.reset_me");
  c.add(100);
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  c.reset();
  c.add(5);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();

  // cur < prev cannot yield a negative (wrapped) delta; the window treats
  // the current value as the delta since the reset.
  const MetricsWindow window = diff_snapshots(before, after, 1.0);
  const WindowedCounter* reset_window = find_counter(window, "t.reset_me");
  ASSERT_NE(reset_window, nullptr);
  EXPECT_EQ(reset_window->delta, 5u);
}

TEST_F(ExporterTest, DiffComputesIntervalPercentilesFromBucketDiffs) {
  Histogram& hist = MetricsRegistry::global().histogram("t.latency");
  // Old regime: fast responses, fully inside the "before" snapshot.
  for (int i = 0; i < 1000; ++i) hist.record(0.001);
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  // New regime: 10x slower. Cumulative percentiles would still be
  // dominated by the old samples; the WINDOW must see only the new ones.
  for (int i = 0; i < 100; ++i) hist.record(0.010);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();

  const MetricsWindow window = diff_snapshots(before, after, 1.0);
  const WindowedHistogram* w = find_histogram(window, "t.latency");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->count_delta, 100u);
  EXPECT_NEAR(w->sum_delta, 1.0, 1e-9);
  EXPECT_NEAR(w->p50, 0.010, 0.010 * 0.2);  // log-bucket resolution
  EXPECT_NEAR(w->p99, 0.010, 0.010 * 0.2);
  // The cumulative histogram still reports the old regime's median.
  const HistogramStats* cumulative = find_stats(after, "t.latency");
  ASSERT_NE(cumulative, nullptr);
  EXPECT_NEAR(cumulative->p50, 0.001, 0.001 * 0.2);
}

TEST_F(ExporterTest, MetricAppearingMidFlightDiffsAgainstZero) {
  const MetricsSnapshot before = MetricsRegistry::global().snapshot();
  MetricsRegistry::global().counter("t.born_late").add(9);
  const MetricsSnapshot after = MetricsRegistry::global().snapshot();

  const MetricsWindow window = diff_snapshots(before, after, 1.0);
  const WindowedCounter* born = find_counter(window, "t.born_late");
  ASSERT_NE(born, nullptr);
  EXPECT_EQ(born->delta, 9u);
}

TEST_F(ExporterTest, SampleNowCutsConsecutiveWindows) {
  Counter& c = MetricsRegistry::global().counter("t.ticks");
  ExporterConfig config;
  config.interval = std::chrono::hours(1);  // periodic thread stays idle
  MetricsExporter exporter(MetricsRegistry::global(), config);

  c.add(4);
  const MetricsWindow first = exporter.sample_now();
  c.add(6);
  const MetricsWindow second = exporter.sample_now();

  ASSERT_NE(find_counter(first, "t.ticks"), nullptr);
  EXPECT_EQ(find_counter(first, "t.ticks")->delta, 4u);
  ASSERT_NE(find_counter(second, "t.ticks"), nullptr);
  EXPECT_EQ(find_counter(second, "t.ticks")->delta, 6u);

  const std::vector<MetricsWindow> recent = exporter.recent_windows();
  ASSERT_GE(recent.size(), 2u);
  EXPECT_EQ(find_counter(recent[recent.size() - 2], "t.ticks")->delta, 4u);
  EXPECT_EQ(find_counter(recent.back(), "t.ticks")->delta, 6u);
}

TEST_F(ExporterTest, WritesParseableJsonlWindows) {
  const std::string path =
      ::testing::TempDir() + "exporter_test_windows.jsonl";
  std::remove(path.c_str());
  {
    ExporterConfig config;
    config.interval = std::chrono::hours(1);
    config.path = path;
    MetricsExporter exporter(MetricsRegistry::global(), config);
    MetricsRegistry::global().counter("t.jsonl").add(3);
    exporter.sample_now();
    MetricsRegistry::global().histogram("t.jsonl_h").record(0.5);
    exporter.sample_now();
    exporter.stop();  // final tail window also lands in the file
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_counter = false;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue doc = JsonValue::parse(line);
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.at("schema").string_value, "cfgx.metrics.window.v1");
    EXPECT_TRUE(doc.has("counters"));
    EXPECT_TRUE(doc.has("gauges"));
    EXPECT_TRUE(doc.has("histograms"));
    if (doc.at("counters").has("t.jsonl") &&
        doc.at("counters").at("t.jsonl").at("delta").number_value == 3.0) {
      saw_counter = true;
    }
  }
  EXPECT_GE(lines, 3u);
  EXPECT_TRUE(saw_counter);
  std::remove(path.c_str());
}

TEST_F(ExporterTest, ThrowsWhenSinkPathUnwritable) {
  ExporterConfig config;
  config.path = "/nonexistent-dir-for-sure/exporter.jsonl";
  EXPECT_THROW(MetricsExporter(MetricsRegistry::global(), config),
               std::runtime_error);
}

// The consistency property the header promises: windows cut while other
// threads hammer the registry never go negative and stay self-consistent
// (percentiles derive from the same bucket diff that defines the window).
TEST_F(ExporterTest, WindowsStayConsistentUnderConcurrentMutation) {
  Counter& c = MetricsRegistry::global().counter("t.concurrent");
  Histogram& h = MetricsRegistry::global().histogram("t.concurrent_h");
  ExporterConfig config;
  config.interval = std::chrono::milliseconds(1);  // aggressive sampling
  MetricsExporter exporter(MetricsRegistry::global(), config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        h.record(0.002);
      }
    });
  }
  std::uint64_t manual_total = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsWindow window = exporter.sample_now();
    for (const WindowedCounter& wc : window.counters) {
      manual_total += wc.delta;
      EXPECT_GE(wc.rate_per_second, 0.0);
    }
    for (const WindowedHistogram& wh : window.histograms) {
      EXPECT_GE(wh.p50, 0.0);
      EXPECT_LE(wh.p50, wh.p99 * 1.0001 + 1e-12);
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  exporter.stop();

  // Window deltas never double-count: their sum (over the retained ring,
  // which may have evicted early windows) cannot exceed the counter total.
  std::uint64_t windowed_total = 0;
  for (const MetricsWindow& w : exporter.recent_windows()) {
    for (const WindowedCounter& wc : w.counters) windowed_total += wc.delta;
  }
  EXPECT_GT(exporter.windows_sampled(), 50u);
  EXPECT_LE(windowed_total, c.value());
}

}  // namespace
}  // namespace cfgx::obs
