#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "util/thread_pool.hpp"

namespace cfgx::obs {
namespace {

// Tracing state is process-global; every test starts from a clean slate and
// leaves tracing off.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stop_tracing();
    clear_trace_events();
  }

  void TearDown() override {
    stop_tracing();
    clear_trace_events();
  }
};

// The trace document's "X" events for one tid, in emitted order.
struct ParsedEvent {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = 0.0;
};

std::vector<ParsedEvent> complete_events(const JsonValue& doc) {
  std::vector<ParsedEvent> events;
  for (const JsonValue& event : doc.at("traceEvents").items) {
    if (event.at("ph").string_value != "X") continue;
    ParsedEvent parsed;
    parsed.name = event.at("name").string_value;
    parsed.ts = event.at("ts").number_value;
    parsed.dur = event.at("dur").number_value;
    parsed.tid = event.at("tid").number_value;
    events.push_back(std::move(parsed));
  }
  return events;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(tracing_enabled());
  { TraceSpan span("should.not.appear"); }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, EmitsWellFormedChromeTraceJson) {
  start_tracing();
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
  }
  stop_tracing();

  // Must parse cleanly and carry the Chrome trace envelope.
  const JsonValue doc = JsonValue::parse(trace_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string_value, "ms");
  ASSERT_TRUE(doc.at("traceEvents").is_array());

  const auto events = complete_events(doc);
  ASSERT_EQ(events.size(), 2u);
  for (const ParsedEvent& event : events) {
    EXPECT_GE(event.ts, 0.0);
    EXPECT_GE(event.dur, 0.0);
  }
}

TEST_F(TraceTest, NestedSpansAreProperlyParented) {
  start_tracing();
  {
    TraceSpan outer("outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner("inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop_tracing();

  const auto events = complete_events(JsonValue::parse(trace_json()));
  ASSERT_EQ(events.size(), 2u);
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  for (const ParsedEvent& event : events) {
    if (event.name == "outer") outer = &event;
    if (event.name == "inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  // Chrome recovers nesting from interval containment on the same tid: the
  // child must start no earlier and end no later than its parent.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_LT(inner->dur, outer->dur);
}

TEST_F(TraceTest, RuntimeNamesAreCopied) {
  start_tracing();
  {
    std::string name = "dynamic.name";
    TraceSpan span(name, "test");
    name = "clobbered";  // the span must have captured its own copy
  }
  stop_tracing();
  const auto events = complete_events(JsonValue::parse(trace_json()));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "dynamic.name");
}

TEST_F(TraceTest, CollectsSpansFromPoolWorkerThreads) {
  start_tracing();
  {
    ThreadPool pool(4);
    pool.parallel_for(8, [](std::size_t) {
      TraceSpan span("worker.span", "test");
    });
    // Pool destructor joins the workers; their thread-local buffers must
    // still be readable afterwards.
  }
  stop_tracing();

  const auto events = complete_events(JsonValue::parse(trace_json()));
  std::size_t worker_spans = 0;
  for (const ParsedEvent& event : events) {
    if (event.name == "worker.span") ++worker_spans;
  }
  EXPECT_EQ(worker_spans, 8u);
}

TEST_F(TraceTest, StartTracingDiscardsPreviousRun) {
  start_tracing();
  { TraceSpan span("first.run", "test"); }
  stop_tracing();
  EXPECT_EQ(trace_event_count(), 1u);

  start_tracing();
  { TraceSpan span("second.run", "test"); }
  stop_tracing();

  const auto events = complete_events(JsonValue::parse(trace_json()));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "second.run");
}

TEST_F(TraceTest, WriteTraceFileProducesLoadableJson) {
  start_tracing();
  { TraceSpan span("file.span", "test"); }
  stop_tracing();

  const std::string path =
      (std::filesystem::temp_directory_path() / "cfgx_trace_test.json").string();
  ASSERT_TRUE(write_trace_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NO_THROW(JsonValue::parse(contents));
  std::remove(path.c_str());
}

TEST_F(TraceTest, ThreadIdsAreStablePerThread) {
  const std::uint32_t here = thread_id();
  EXPECT_EQ(thread_id(), here);
  std::uint32_t other = here;
  std::thread([&] { other = thread_id(); }).join();
  EXPECT_NE(other, here);
}

}  // namespace
}  // namespace cfgx::obs
