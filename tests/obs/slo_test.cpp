#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cfgx::obs {
namespace {

SloConfig quiet_config() {
  SloConfig config;
  config.alert_sink = [](const std::string&) {};
  return config;
}

TEST(SloTest, EmptyTrackerReportsZeroBurn) {
  SloTracker tracker(quiet_config());
  const SloStatus status = tracker.status(1000.0);
  EXPECT_EQ(status.availability.short_window.total, 0u);
  EXPECT_DOUBLE_EQ(status.availability.short_window.burn, 0.0);
  EXPECT_DOUBLE_EQ(status.latency.long_window.burn, 0.0);
  EXPECT_FALSE(status.availability.alerting);
  EXPECT_FALSE(status.latency.alerting);
}

TEST(SloTest, BurnIsBadFractionOverErrorBudget) {
  SloConfig config = quiet_config();
  config.availability_objective = 0.99;  // budget = 1%
  SloTracker tracker(config);
  // 1000 requests in one second: 20 bad => 2% bad => burn 2.0.
  for (int i = 0; i < 980; ++i) tracker.record(true, 0.001, 5000.0);
  for (int i = 0; i < 20; ++i) tracker.record(false, 0.001, 5000.0);

  const SloStatus status = tracker.status(5000.0);
  EXPECT_EQ(status.availability.short_window.total, 1000u);
  EXPECT_EQ(status.availability.short_window.bad, 20u);
  EXPECT_NEAR(status.availability.short_window.burn, 2.0, 1e-9);
  EXPECT_NEAR(status.availability.long_window.burn, 2.0, 1e-9);
}

TEST(SloTest, LatencyObjectiveCountsSlowRequests) {
  SloConfig config = quiet_config();
  config.latency_objective_seconds = 0.050;
  config.latency_target_ratio = 0.90;  // budget = 10%
  SloTracker tracker(config);
  // All available, but 30% slower than 50ms => latency burn 3.0 while
  // availability burn stays 0.
  for (int i = 0; i < 70; ++i) tracker.record(true, 0.010, 100.0);
  for (int i = 0; i < 30; ++i) tracker.record(true, 0.200, 100.0);

  const SloStatus status = tracker.status(100.0);
  EXPECT_DOUBLE_EQ(status.availability.short_window.burn, 0.0);
  EXPECT_EQ(status.latency.short_window.bad, 30u);
  EXPECT_NEAR(status.latency.short_window.burn, 3.0, 1e-9);
}

TEST(SloTest, RequestsAgeOutOfTheShortWindowFirst) {
  SloConfig config = quiet_config();
  config.short_window = std::chrono::seconds(300);
  config.long_window = std::chrono::seconds(3600);
  SloTracker tracker(config);
  tracker.record(false, 0.001, 1000.0);

  // 6 minutes later the failure has left the 5m window but not the 1h one.
  SloStatus status = tracker.status(1000.0 + 360.0);
  EXPECT_EQ(status.availability.short_window.bad, 0u);
  EXPECT_EQ(status.availability.long_window.bad, 1u);

  // 2 hours later it is gone entirely.
  status = tracker.status(1000.0 + 7200.0);
  EXPECT_EQ(status.availability.long_window.bad, 0u);
}

TEST(SloTest, AlertRequiresBothWindowsOverThreshold) {
  SloConfig config = quiet_config();
  config.availability_objective = 0.999;  // budget 0.1%
  config.burn_alert_threshold = 14.4;
  config.short_window = std::chrono::seconds(300);
  config.long_window = std::chrono::seconds(3600);

  // An hour of clean traffic, then a failure burst in the last seconds:
  // the short window burns far over threshold, but diluted across the 1h
  // window it stays under — no alert (current but not sustained).
  SloTracker tracker(config);
  for (int s = 0; s < 3300; s += 10) {
    for (int i = 0; i < 100; ++i) tracker.record(true, 0.001, 6000.0 + s);
  }
  for (int i = 0; i < 10; ++i) tracker.record(false, 0.001, 6000.0 + 3700.0);
  SloStatus status = tracker.status(6000.0 + 3700.0);
  EXPECT_GT(status.availability.short_window.burn, 14.4);
  EXPECT_LT(status.availability.long_window.burn, 14.4);
  EXPECT_FALSE(status.availability.alerting);

  // Sustained failures push BOTH windows over: alert.
  SloTracker burning(config);
  for (int s = 0; s < 3600; s += 10) {
    for (int i = 0; i < 9; ++i) burning.record(true, 0.001, 20000.0 + s);
    burning.record(false, 0.001, 20000.0 + s);
  }
  status = burning.status(20000.0 + 3599.0);
  EXPECT_GT(status.availability.short_window.burn, 14.4);
  EXPECT_GT(status.availability.long_window.burn, 14.4);
  EXPECT_TRUE(status.availability.alerting);
}

TEST(SloTest, AlertSinkFiresOncePerCrossing) {
  std::vector<std::string> messages;
  SloConfig config;
  config.availability_objective = 0.9;  // budget 10%
  config.burn_alert_threshold = 2.0;
  config.short_window = std::chrono::seconds(10);
  config.long_window = std::chrono::seconds(20);
  config.alert_sink = [&](const std::string& m) { messages.push_back(m); };
  SloTracker tracker(config);

  // Every request fails: burn 10x in both windows -> one CROSSED log,
  // not one per record.
  for (int i = 0; i < 50; ++i) tracker.record(false, 0.001, 100.0);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_NE(messages[0].find("availability"), std::string::npos);
  EXPECT_NE(messages[0].find("CROSSED"), std::string::npos);

  // 30 seconds of silence empties both windows; the next healthy request
  // logs the recovery exactly once.
  tracker.record(true, 0.001, 140.0);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_NE(messages[1].find("recovered"), std::string::npos);
  tracker.record(true, 0.001, 141.0);
  EXPECT_EQ(messages.size(), 2u);
}

TEST(SloTest, TimeNeverRewinds) {
  SloTracker tracker(quiet_config());
  tracker.record(false, 0.001, 500.0);
  // An out-of-order timestamp is clamped forward, not written into the past
  // (which could resurrect an aged-out cell).
  tracker.record(false, 0.001, 100.0);
  const SloStatus status = tracker.status(500.0);
  EXPECT_EQ(status.availability.long_window.bad, 2u);
}

TEST(SloTest, StatusJsonIsParseable) {
  SloTracker tracker(quiet_config());
  tracker.record(true, 0.001, 50.0);
  tracker.record(false, 0.900, 50.0);
  const JsonValue doc = JsonValue::parse(tracker.status(50.0).json());
  ASSERT_TRUE(doc.is_object());
  for (const char* objective : {"availability", "latency"}) {
    ASSERT_TRUE(doc.has(objective));
    const JsonValue& section = doc.at(objective);
    EXPECT_TRUE(section.has("burn_short"));
    EXPECT_TRUE(section.has("burn_long"));
    EXPECT_TRUE(section.has("total_short"));
    EXPECT_TRUE(section.has("alerting"));
  }
  EXPECT_EQ(doc.at("availability").at("bad_short").number_value, 1.0);
  EXPECT_EQ(doc.at("latency").at("bad_short").number_value, 1.0);
}

TEST(SloTest, RejectsNonsenseConfig) {
  SloConfig bad = quiet_config();
  bad.short_window = std::chrono::seconds(3600);
  bad.long_window = std::chrono::seconds(300);
  EXPECT_THROW(SloTracker{bad}, std::invalid_argument);

  SloConfig zero = quiet_config();
  zero.availability_objective = 1.0;  // zero error budget
  EXPECT_THROW(SloTracker{zero}, std::invalid_argument);
}

}  // namespace
}  // namespace cfgx::obs
