#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"
#include "util/thread_pool.hpp"

namespace cfgx::obs {
namespace {

// Every test in this file runs against the process-global registry (the
// references handed to instrumented call sites are cached in function-local
// statics, so a per-test registry is not an option). reset() zeroes values
// between tests; the enable flag is restored on teardown.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = metrics_enabled();
    set_metrics_enabled(true);
    MetricsRegistry::global().reset();
  }

  void TearDown() override {
    MetricsRegistry::global().reset();
    set_metrics_enabled(saved_enabled_);
  }

 private:
  bool saved_enabled_ = true;
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  Counter& counter = MetricsRegistry::global().counter("test.counter");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(MetricsTest, DisabledMetricsDropRecordings) {
  Counter& counter = MetricsRegistry::global().counter("test.gated");
  Histogram& histogram = MetricsRegistry::global().histogram("test.gated_h");
  set_metrics_enabled(false);
  counter.add(5);
  histogram.record(1.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  set_metrics_enabled(true);
  counter.add(5);
  histogram.record(1.0);
  EXPECT_EQ(counter.value(), 5u);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST_F(MetricsTest, RegistryReturnsSameInstanceForSameName) {
  Counter& a = MetricsRegistry::global().counter("test.same");
  Counter& b = MetricsRegistry::global().counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge& gauge = MetricsRegistry::global().gauge("test.gauge");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
}

TEST_F(MetricsTest, HistogramTracksExactCountSumMinMax) {
  Histogram& histogram = MetricsRegistry::global().histogram("test.hist");
  for (double v : {0.001, 0.002, 0.004, 0.008}) histogram.record(v);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_NEAR(histogram.sum(), 0.015, 1e-15);
  EXPECT_NEAR(histogram.mean(), 0.00375, 1e-15);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.001);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.008);
}

TEST_F(MetricsTest, HistogramQuantilesWithinBucketResolution) {
  Histogram& histogram = MetricsRegistry::global().histogram("test.quantile");
  // 100 samples spread over [1ms, 100ms]; the log-bucketed histogram
  // guarantees ~19% relative resolution, so allow 25% slack.
  for (int i = 1; i <= 100; ++i) histogram.record(i * 1e-3);
  EXPECT_NEAR(histogram.quantile(0.5), 0.050, 0.050 * 0.25);
  EXPECT_NEAR(histogram.quantile(0.95), 0.095, 0.095 * 0.25);
  // Extremes clamp to the exact observed min/max.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 0.100);
  EXPECT_THROW(histogram.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(histogram.quantile(-0.1), std::invalid_argument);
}

TEST_F(MetricsTest, HistogramQuantileOnEmptyIsZeroForEveryQ) {
  // An idle histogram (e.g. a serve latency histogram before any request
  // completed) must be snapshot-safe: every quantile is the documented
  // 0.0, no bucket array access, no throw.
  Histogram& histogram = MetricsRegistry::global().histogram("test.empty");
  EXPECT_EQ(histogram.count(), 0u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.quantile(q), 0.0) << "q=" << q;
  }
  // Range validation still applies when empty.
  EXPECT_THROW(histogram.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(histogram.quantile(1.5), std::invalid_argument);
}

TEST_F(MetricsTest, HistogramQuantileWithSingleSampleIsExact) {
  Histogram& histogram = MetricsRegistry::global().histogram("test.single");
  histogram.record(0.042);
  // The [min, max] clamp collapses every quantile onto the one sample.
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.quantile(q), 0.042) << "q=" << q;
  }
}

TEST_F(MetricsTest, HistogramQuantileAllSamplesInOneBucketIsExactRange) {
  Histogram& histogram = MetricsRegistry::global().histogram("test.onebucket");
  // Identical values land in one bucket; quantiles must report that value
  // exactly (clamped), not a bucket midpoint.
  for (int i = 0; i < 50; ++i) histogram.record(0.010);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.quantile(q), 0.010) << "q=" << q;
  }
}

TEST_F(MetricsTest, HistogramBucketBoundsAreMonotone) {
  double previous = Histogram::bucket_lower_bound(0);
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    const double bound = Histogram::bucket_lower_bound(i);
    EXPECT_GT(bound, previous) << "bucket " << i;
    previous = bound;
  }
}

TEST_F(MetricsTest, ScopedDurationTimerRecordsPositiveDuration) {
  Histogram& histogram = MetricsRegistry::global().histogram("test.scoped");
  { ScopedDurationTimer timer(histogram); }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GE(histogram.max(), 0.0);
}

// ISSUE acceptance: hammer one counter and one histogram from many
// ThreadPool workers and assert the totals are exact - no lost updates.
TEST_F(MetricsTest, ConcurrentCounterHammerHasExactTotal) {
  Counter& counter = MetricsRegistry::global().counter("test.hammer");
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kAddsPerTask = 10000;
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kAddsPerTask; ++i) counter.add();
  });
  EXPECT_EQ(counter.value(), kTasks * kAddsPerTask);
}

TEST_F(MetricsTest, ConcurrentHistogramHammerHasExactCountAndBounds) {
  Histogram& histogram = MetricsRegistry::global().histogram("test.hammer_h");
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kRecordsPerTask = 2000;
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kRecordsPerTask; ++i) {
      // Distinct per-task values; every value is in [1e-6, 32e-6].
      histogram.record(static_cast<double>(task + 1) * 1e-6);
    }
  });
  EXPECT_EQ(histogram.count(), kTasks * kRecordsPerTask);
  EXPECT_DOUBLE_EQ(histogram.min(), 1e-6);
  EXPECT_DOUBLE_EQ(histogram.max(), static_cast<double>(kTasks) * 1e-6);
  // Bucket counts must account for every recording.
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : histogram.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kTasks * kRecordsPerTask);
}

TEST_F(MetricsTest, SnapshotJsonRoundTrips) {
  MetricsRegistry::global().counter("test.snap_counter").add(7);
  MetricsRegistry::global().gauge("test.snap_gauge").set(1.25);
  Histogram& histogram = MetricsRegistry::global().histogram("test.snap_hist");
  histogram.record(0.5);
  histogram.record(1.5);

  const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
  const JsonValue doc = JsonValue::parse(snapshot.json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("test.snap_counter").number_value, 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("test.snap_gauge").number_value, 1.25);

  bool found = false;
  for (const JsonValue& h : doc.at("histograms").items) {
    if (h.at("name").string_value != "test.snap_hist") continue;
    found = true;
    EXPECT_DOUBLE_EQ(h.at("count").number_value, 2.0);
    EXPECT_DOUBLE_EQ(h.at("sum").number_value, 2.0);
    EXPECT_DOUBLE_EQ(h.at("min").number_value, 0.5);
    EXPECT_DOUBLE_EQ(h.at("max").number_value, 1.5);
    EXPECT_TRUE(h.has("p50"));
    EXPECT_TRUE(h.has("p95"));
    EXPECT_TRUE(h.has("p99"));
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, ThreadPoolInstrumentationCountsSubmittedTasks) {
  Counter& submitted = MetricsRegistry::global().counter("pool.tasks_submitted");
  Histogram& run_seconds =
      MetricsRegistry::global().histogram("pool.task_run_seconds");
  const std::uint64_t submitted_before = submitted.value();
  const std::uint64_t run_before = run_seconds.count();

  ThreadPool pool(4);
  for (int i = 0; i < 10; ++i) pool.submit([] {}).get();

  EXPECT_EQ(submitted.value() - submitted_before, 10u);
  EXPECT_EQ(run_seconds.count() - run_before, 10u);
}

}  // namespace
}  // namespace cfgx::obs
