#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cfgx {
namespace {

TEST(DurationStatsTest, MeanOfKnownSamples) {
  DurationStats stats;
  stats.add(1.0);
  stats.add(2.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.total(), 6.0);
  EXPECT_EQ(stats.count(), 3u);
}

TEST(DurationStatsTest, SampleStddev) {
  DurationStats stats;
  stats.add(2.0);
  stats.add(4.0);
  stats.add(4.0);
  stats.add(4.0);
  stats.add(5.0);
  stats.add(5.0);
  stats.add(7.0);
  stats.add(9.0);
  // Known dataset: population variance 4, sample variance 32/7.
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DurationStatsTest, StddevOfSingleSampleIsZero) {
  DurationStats stats;
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(DurationStatsTest, EmptyMeanIsZero) {
  DurationStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(DurationStatsTest, MinMax) {
  DurationStats stats;
  stats.add(3.0);
  stats.add(1.0);
  stats.add(2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(DurationStatsTest, MinOnEmptyThrows) {
  DurationStats stats;
  EXPECT_THROW(stats.min(), std::logic_error);
  EXPECT_THROW(stats.max(), std::logic_error);
}

TEST(DurationStatsTest, PercentileInterpolatesOrderStatistics) {
  DurationStats stats;
  for (double v : {4.0, 1.0, 3.0, 2.0}) stats.add(v);  // order-independent
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(stats.percentile(50.0), 2.5);
  EXPECT_DOUBLE_EQ(stats.percentile(25.0), 1.75);
}

TEST(DurationStatsTest, PercentileOfSingleSample) {
  DurationStats stats;
  stats.add(7.0);
  // A single sample is every percentile — including the endpoints, which
  // touch the interpolation code's lo+1 == size boundary.
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(stats.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(stats.percentile(95.0), 7.0);
  EXPECT_DOUBLE_EQ(stats.percentile(100.0), 7.0);
}

TEST(DurationStatsTest, PercentileOnEmptyIsZeroNotAThrow) {
  // The documented empty semantics: metrics-reporting paths (a serving
  // window that completed no requests) call percentile() unconditionally
  // and must not crash the process.
  const DurationStats empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);
}

TEST(DurationStatsTest, PercentileValidatesInput) {
  DurationStats stats;
  stats.add(1.0);
  EXPECT_THROW(stats.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW(stats.percentile(100.5), std::invalid_argument);
  EXPECT_THROW(stats.percentile(std::nan("")), std::invalid_argument);
  // Range validation applies even when empty (bad p is a caller bug).
  const DurationStats empty;
  EXPECT_THROW(empty.percentile(-1.0), std::invalid_argument);
}

TEST(DurationStatsTest, P95OfUniformGrid) {
  DurationStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(static_cast<double>(i));
  // rank = 0.95 * 99 = 94.05 -> 95 + 0.05 * (96 - 95).
  EXPECT_NEAR(stats.percentile(95.0), 95.05, 1e-12);
}

TEST(DurationStatsTest, SummarySelectsUnits) {
  DurationStats ms;
  ms.add(0.0123);
  EXPECT_NE(ms.summary().find("ms"), std::string::npos);

  DurationStats s;
  s.add(2.5);
  const std::string text = s.summary();
  EXPECT_NE(text.find(" s"), std::string::npos);
  EXPECT_EQ(text.find("ms"), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait just a moment.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(watch.elapsed_seconds(), 0.0);
  EXPECT_GE(watch.elapsed_ms(), watch.elapsed_seconds());
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double before = watch.elapsed_seconds();
  watch.restart();
  EXPECT_LT(watch.elapsed_seconds(), before + 1.0);
}

}  // namespace
}  // namespace cfgx
