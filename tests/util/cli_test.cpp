#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(full.size()), full.data());
}

TEST(CliArgsTest, EqualsSyntax) {
  const auto args = make({"--epochs=30"});
  EXPECT_EQ(args.get_int("epochs", 0), 30);
}

TEST(CliArgsTest, SpaceSyntax) {
  const auto args = make({"--epochs", "30"});
  EXPECT_EQ(args.get_int("epochs", 0), 30);
}

TEST(CliArgsTest, BareFlag) {
  const auto args = make({"--fast"});
  EXPECT_TRUE(args.get_flag("fast"));
  EXPECT_FALSE(args.get_flag("slow"));
}

TEST(CliArgsTest, FlagFollowedByFlag) {
  const auto args = make({"--fast", "--epochs=3"});
  EXPECT_TRUE(args.get_flag("fast"));
  EXPECT_EQ(args.get_int("epochs", 0), 3);
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.get_int("epochs", 7), 7);
  EXPECT_EQ(args.get_string("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.5), 0.5);
}

TEST(CliArgsTest, DoubleParsing) {
  const auto args = make({"--lr=0.001"});
  EXPECT_DOUBLE_EQ(args.get_double("lr", 1.0), 0.001);
}

TEST(CliArgsTest, BadIntThrows) {
  const auto args = make({"--epochs=abc"});
  EXPECT_THROW(args.get_int("epochs", 0), std::invalid_argument);
}

TEST(CliArgsTest, BadDoubleThrows) {
  const auto args = make({"--lr=xyz"});
  EXPECT_THROW(args.get_double("lr", 0.0), std::invalid_argument);
}

TEST(CliArgsTest, PositionalCollected) {
  const auto args = make({"input.bin", "--epochs=2", "output.bin"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.bin");
  EXPECT_EQ(args.positional()[1], "output.bin");
}

TEST(CliArgsTest, HasDetectsPresence) {
  const auto args = make({"--x=1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST(CliArgsTest, ExplicitTrueFalseFlagValues) {
  EXPECT_TRUE(make({"--f=true"}).get_flag("f"));
  EXPECT_TRUE(make({"--f=1"}).get_flag("f"));
  EXPECT_FALSE(make({"--f=0"}).get_flag("f"));
}

}  // namespace
}  // namespace cfgx
