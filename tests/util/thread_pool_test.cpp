#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cfgx {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPoolTest, ExplicitWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 42; }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, ParallelForAccumulatesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> partial(1000, 0);
  pool.parallel_for(1000, [&](std::size_t i) {
    partial[i] = static_cast<long>(i);
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 999L * 1000L / 2);
}

// Regression: a parallel_for issued from inside one of the pool's own
// workers used to deadlock — the worker blocked in future.get() while its
// sub-tasks sat behind it in the queue. A 1-thread pool makes the hang
// deterministic; the fix runs reentrant calls inline.
TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(16);
  pool.parallel_for(4, [&](std::size_t outer) {
    pool.parallel_for(4, [&](std::size_t inner) {
      hits[outer * 4 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.submit([&] {
        pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
      })
      .get();
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPoolTest, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.in_worker_thread());
  std::atomic<bool> seen_inside{false};
  pool.submit([&] { seen_inside = pool.in_worker_thread(); }).get();
  EXPECT_TRUE(seen_inside.load());

  // A different pool's worker is NOT a worker of this pool: its
  // parallel_for still dispatches to its own queue.
  ThreadPool other(2);
  std::atomic<bool> cross{true};
  other.submit([&] { cross = pool.in_worker_thread(); }).get();
  EXPECT_FALSE(cross.load());
}

// Chunked dispatch must preserve the exception contract: every index is
// attempted and the first error in index order is rethrown.
TEST(ThreadPoolTest, ChunkedParallelForAttemptsAllIndicesDespiteThrow) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  EXPECT_THROW(pool.parallel_for(50,
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i % 7 == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCountBelowWorkerCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksDrainOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&] { done.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace cfgx
