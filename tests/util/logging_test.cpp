#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cfgx {
namespace {

// Restores the global level after each test so ordering doesn't matter.
class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(global_log_level()) {}
  ~LoggingTest() override { set_global_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_global_log_level(LogLevel::Debug);
  EXPECT_EQ(global_log_level(), LogLevel::Debug);
  set_global_log_level(LogLevel::Error);
  EXPECT_EQ(global_log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::Info), "INFO");
  EXPECT_STREQ(to_string(LogLevel::Warn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::Error), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::Off), "OFF");
}

TEST_F(LoggingTest, ParsesLevelNamesCaseInsensitively) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_string("INFO"), LogLevel::Info);
  EXPECT_EQ(log_level_from_string("Warn"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_string("warning"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::Error);
  EXPECT_EQ(log_level_from_string("off"), LogLevel::Off);
  EXPECT_EQ(log_level_from_string("none"), LogLevel::Off);
}

TEST_F(LoggingTest, ParsesNumericLevels) {
  EXPECT_EQ(log_level_from_string("0"), LogLevel::Debug);
  EXPECT_EQ(log_level_from_string("2"), LogLevel::Warn);
  EXPECT_EQ(log_level_from_string("4"), LogLevel::Off);
}

TEST_F(LoggingTest, DefaultLevelYieldsToEnvironment) {
  ::setenv("CFGX_LOG_LEVEL", "debug", 1);
  set_global_log_level(LogLevel::Info);
  set_default_log_level(LogLevel::Warn);  // env is set -> no-op
  EXPECT_EQ(global_log_level(), LogLevel::Info);
  ::unsetenv("CFGX_LOG_LEVEL");
  set_default_log_level(LogLevel::Warn);  // env unset -> applies
  EXPECT_EQ(global_log_level(), LogLevel::Warn);
}

TEST_F(LoggingTest, RejectsUnknownLevels) {
  EXPECT_THROW(log_level_from_string(""), std::invalid_argument);
  EXPECT_THROW(log_level_from_string("verbose"), std::invalid_argument);
  EXPECT_THROW(log_level_from_string("5"), std::invalid_argument);
}

TEST_F(LoggingTest, FilteredLineDoesNotEvaluateOperands) {
  set_global_log_level(LogLevel::Error);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  CFGX_LOG(Debug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);  // short-circuited by the level check
  CFGX_LOG(Error) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_global_log_level(LogLevel::Off);
  int evaluations = 0;
  CFGX_LOG(Error) << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, MacroIsSafeInUnbracedIf) {
  set_global_log_level(LogLevel::Off);
  bool taken = false;
  // The macro must parse as a single statement.
  if (false)
    CFGX_LOG(Error) << "never";
  else
    taken = true;
  EXPECT_TRUE(taken);
}

}  // namespace
}  // namespace cfgx
