#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace cfgx {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 24);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(42);
  const std::uint64_t first = rng();
  rng();
  rng.reseed(42);
  EXPECT_EQ(rng(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIndexZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntReversedThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(RngTest, NormalMomentsReasonable) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.06);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 10000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  rng.shuffle(values);
  bool any_moved = false;
  for (int i = 0; i < 50; ++i) {
    if (values[static_cast<std::size_t>(i)] != i) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(RngTest, ChoiceReturnsElement) {
  Rng rng(23);
  const std::vector<int> values{10, 20, 30};
  for (int i = 0; i < 20; ++i) {
    const int c = rng.choice(values);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(RngTest, ChoiceEmptyThrows) {
  Rng rng(23);
  const std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), std::invalid_argument);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(29);
  const auto sample = rng.sample_indices(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (std::size_t v : sample) EXPECT_LT(v, 20u);
}

TEST(RngTest, SampleIndicesFullSetIsPermutation) {
  Rng rng(29);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleIndicesTooManyThrows) {
  Rng rng(29);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (child_a() != child_b()) ++differences;
  }
  EXPECT_GT(differences, 24);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng p1(31), p2(31);
  Rng c1 = p1.split(5);
  Rng c2 = p2.split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1(), c2());
}

}  // namespace
}  // namespace cfgx
