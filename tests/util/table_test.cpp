#include "util/table.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"Family", "Acc"});
  table.add_row({"Bagle", "0.75"});
  table.add_row({"Zlob", "0.38"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Family"), std::string::npos);
  EXPECT_NE(out.find("Bagle"), std::string::npos);
  EXPECT_NE(out.find("0.38"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable table({"A", "B"});
  table.add_row({"short", "x"});
  table.add_row({"much-longer-cell", "y"});
  const std::string out = table.render();
  // Every rendered line between rules has equal length.
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected) << line;
    start = end + 1;
  }
}

TEST(TextTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, ArityMismatchThrows) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, AlignmentArityMismatchThrows) {
  EXPECT_THROW(TextTable({"A", "B"}, {Align::Left}), std::invalid_argument);
}

TEST(TextTableTest, RightAlignmentPadsLeft) {
  TextTable table({"Value"}, {Align::Right});
  table.add_row({"7"});
  table.add_row({"1234"});
  const std::string out = table.render();
  EXPECT_NE(out.find("    7 |"), std::string::npos);
}

TEST(TextTableTest, RuleInsertedBetweenRows) {
  TextTable table({"A"});
  table.add_row({"x"});
  table.add_rule();
  table.add_row({"y"});
  const std::string out = table.render();
  // Rules: top, under header, before "y", bottom.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTableTest, RowCount) {
  TextTable table({"A"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"x"});
  table.add_row({"y"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(FormatTest, FixedDecimals) {
  EXPECT_EQ(format_fixed(0.75309, 4), "0.7531");
  EXPECT_EQ(format_fixed(1.0, 2), "1.00");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(format_percent(0.5239, 1), "52.4%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace cfgx
