// Metamorphic explainer oracles: relabeling the nodes of a graph must not
// change what any explainer + the frozen GNN say about it.
//
// Two tiers of invariant (DESIGN.md "Testing strategy"):
//
//  * Pull-back invariance (all four explainers): explain the permuted graph,
//    map the resulting node sets back through the inverse permutation, and
//    the masked GNN predictions at every step-size grid point must match the
//    predictions on the permuted graph — masking commutes with relabeling no
//    matter how the explainer chose its ranking.
//  * Score equivariance (the score-deterministic explainers, CFGExplainer
//    and PGExplainer): the score vectors themselves must permute with the
//    nodes/edges, and CFGExplainer's Interpretation::ordered_nodes must be
//    the permuted image of the original ordering.
//
// GNNExplainer and SubgraphX are deliberately held only to the pull-back
// tier: their internal randomness is coupled to node/edge indices (mask
// initialization order, MCTS expansion), so exact ranking equivariance is
// not a property they promise.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "explain/cfg_explainer.hpp"
#include "explain/gnnexplainer.hpp"
#include "explain/pgexplainer.hpp"
#include "explain/subgraphx.hpp"
#include "gnn/trainer.hpp"
#include "graph/ops.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"

namespace cfgx {
namespace {

// perm[old_id] = new_id.
std::vector<std::uint32_t> random_permutation(std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
  }
  return perm;
}

std::vector<std::uint32_t> invert(const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> inverse(perm.size());
  for (std::uint32_t v = 0; v < perm.size(); ++v) inverse[perm[v]] = v;
  return inverse;
}

Acfg permute_acfg(const Acfg& graph, const std::vector<std::uint32_t>& perm) {
  Acfg out(graph.num_nodes(), graph.feature_count());
  for (const Edge& e : graph.edges()) {
    out.add_edge(perm[e.src], perm[e.dst], e.kind);
  }
  for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) {
    for (std::size_t f = 0; f < graph.feature_count(); ++f) {
      out.features()(perm[v], f) = graph.features()(v, f);
    }
  }
  out.set_label(graph.label());
  out.set_family(graph.family());
  for (std::uint32_t p : graph.planted_nodes()) out.mark_planted(perm[p]);
  return out;
}

// A (graph index, permutation seed) pair drawn per property iteration.
using Case = std::pair<std::int64_t, std::int64_t>;

class MetamorphicTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Miniature but genuinely trained pipeline: the invariants hold for any
    // weights, so small dims + few epochs keep this suite tier-1 fast.
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 4;
    corpus_config.seed = 2023;
    corpus_ = new Corpus(generate_corpus(corpus_config));

    std::vector<std::size_t> all(corpus_->size());
    std::iota(all.begin(), all.end(), 0u);

    Rng rng(17);
    GnnConfig gnn_config;
    gnn_config.gcn_dims = {16, 12, 8};
    gnn_ = new GnnClassifier(gnn_config, rng);
    GnnTrainConfig gnn_train;
    gnn_train.epochs = 40;
    train_gnn(*gnn_, *corpus_, all, gnn_train);

    ExplainerTrainConfig exp_train;
    exp_train.epochs = 200;
    exp_train.validation_fraction = 0.0;  // no checkpoint search needed
    cfg_explainer_ = new CfgExplainer(*gnn_, exp_train);
    cfg_explainer_->fit(*corpus_, all);

    PgExplainerConfig pg_config;
    pg_config.epochs = 6;
    pg_explainer_ = new PgExplainer(*gnn_, pg_config);
    pg_explainer_->fit(*corpus_, all);
  }

  static void TearDownTestSuite() {
    delete pg_explainer_;
    delete cfg_explainer_;
    delete gnn_;
    delete corpus_;
    pg_explainer_ = nullptr;
    cfg_explainer_ = nullptr;
    gnn_ = nullptr;
    corpus_ = nullptr;
  }

  static proptest::Gen<Case> cases() {
    return proptest::pairs(
        proptest::integers(0, static_cast<std::int64_t>(corpus_->size()) - 1),
        proptest::integers(1, 1 << 20));
  }

  // The universal tier: for every step-size grid point, the prediction on
  // the permuted graph masked by the permuted-graph ranking must equal the
  // prediction on the original graph masked by the pulled-back node set.
  static bool pull_back_invariant(Explainer& explainer, const Case& c) {
    const Acfg& graph = corpus_->graph(static_cast<std::size_t>(c.first));
    Rng perm_rng(static_cast<std::uint64_t>(c.second));
    const auto perm = random_permutation(graph.num_nodes(), perm_rng);
    const auto inverse = invert(perm);
    const Acfg permuted = permute_acfg(graph, perm);

    const NodeRanking ranking = explainer.explain(permuted);
    if (ranking.order.size() != graph.num_nodes()) return false;
    // The ranking must be a total ordering of the permuted graph's nodes.
    std::vector<char> seen(graph.num_nodes(), 0);
    for (std::uint32_t v : ranking.order) {
      if (v >= graph.num_nodes() || seen[v]) return false;
      seen[v] = 1;
    }

    const Matrix adjacency = graph.dense_adjacency();
    const Matrix permuted_adjacency = permuted.dense_adjacency();
    for (double fraction : {0.1, 0.2, 0.5, 1.0}) {
      const auto kept = ranking.top_fraction(fraction);
      std::vector<std::uint32_t> pulled_back;
      pulled_back.reserve(kept.size());
      for (std::uint32_t v : kept) pulled_back.push_back(inverse[v]);

      const MaskedGraph masked_permuted =
          keep_only(permuted_adjacency, permuted.features(), kept);
      const MaskedGraph masked_original =
          keep_only(adjacency, graph.features(), pulled_back);
      const Prediction on_permuted = gnn_->predict_masked(
          masked_permuted.adjacency, masked_permuted.features);
      const Prediction on_original = gnn_->predict_masked(
          masked_original.adjacency, masked_original.features);
      if (on_permuted.predicted_class != on_original.predicted_class) {
        return false;
      }
      if (!approx_equal(on_permuted.probabilities, on_original.probabilities,
                        1e-9)) {
        return false;
      }
    }
    return true;
  }

  static Corpus* corpus_;
  static GnnClassifier* gnn_;
  static CfgExplainer* cfg_explainer_;
  static PgExplainer* pg_explainer_;
};

Corpus* MetamorphicTest::corpus_ = nullptr;
GnnClassifier* MetamorphicTest::gnn_ = nullptr;
CfgExplainer* MetamorphicTest::cfg_explainer_ = nullptr;
PgExplainer* MetamorphicTest::pg_explainer_ = nullptr;

TEST_F(MetamorphicTest, GnnPredictionIsPermutationInvariant) {
  CHECK_PROPERTY(
      "predict(pi(G)) == predict(G)", cases(), [](const Case& c) {
        const Acfg& graph = corpus_->graph(static_cast<std::size_t>(c.first));
        Rng perm_rng(static_cast<std::uint64_t>(c.second));
        const auto perm = random_permutation(graph.num_nodes(), perm_rng);
        const Acfg permuted = permute_acfg(graph, perm);
        const Prediction a = gnn_->predict(graph);
        const Prediction b = gnn_->predict(permuted);
        return a.predicted_class == b.predicted_class &&
               approx_equal(a.probabilities, b.probabilities, 1e-9);
      },
      {.iterations = 30});
}

TEST_F(MetamorphicTest, CfgExplainerSatisfiesPullBackInvariance) {
  CHECK_PROPERTY(
      "CFGExplainer pull-back invariance", cases(),
      [](const Case& c) { return pull_back_invariant(*cfg_explainer_, c); },
      {.iterations = 10});
}

TEST_F(MetamorphicTest, GnnExplainerSatisfiesPullBackInvariance) {
  GnnExplainerConfig config;
  config.iterations = 25;  // enough optimization to be non-trivial
  GnnExplainer explainer(*gnn_, config);
  CHECK_PROPERTY(
      "GNNExplainer pull-back invariance", cases(),
      [&explainer](const Case& c) { return pull_back_invariant(explainer, c); },
      {.iterations = 6});
}

TEST_F(MetamorphicTest, PgExplainerSatisfiesPullBackInvariance) {
  CHECK_PROPERTY(
      "PGExplainer pull-back invariance", cases(),
      [](const Case& c) { return pull_back_invariant(*pg_explainer_, c); },
      {.iterations = 10});
}

TEST_F(MetamorphicTest, SubgraphXSatisfiesPullBackInvariance) {
  SubgraphXConfig config;
  config.mcts_iterations = 8;
  config.shapley_samples = 2;
  SubgraphX explainer(*gnn_, config);
  CHECK_PROPERTY(
      "SubgraphX pull-back invariance", cases(),
      [&explainer](const Case& c) { return pull_back_invariant(explainer, c); },
      {.iterations = 6});
}

// Tier two: CFGExplainer's node scores are a deterministic function of the
// embeddings, so they must permute with the nodes (up to FP summation
// noise from the reordered sparse accumulations).
TEST_F(MetamorphicTest, CfgExplainerScoresArePermutationEquivariant) {
  CHECK_PROPERTY(
      "Theta_s(pi(G))[pi(v)] == Theta_s(G)[v]", cases(),
      [](const Case& c) {
        const Acfg& graph = corpus_->graph(static_cast<std::size_t>(c.first));
        Rng perm_rng(static_cast<std::uint64_t>(c.second));
        const auto perm = random_permutation(graph.num_nodes(), perm_rng);
        const Acfg permuted = permute_acfg(graph, perm);

        ExplainerModel& model = cfg_explainer_->model();
        const Matrix scores = model.score_nodes(
            gnn_->embed(graph.dense_adjacency(), graph.features()));
        const Matrix permuted_scores = model.score_nodes(
            gnn_->embed(permuted.dense_adjacency(), permuted.features()));
        for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) {
          if (std::abs(permuted_scores(perm[v], 0) - scores(v, 0)) > 1e-9) {
            return false;
          }
        }
        return true;
      },
      {.iterations = 20});
}

TEST_F(MetamorphicTest, PgExplainerEdgeScoresArePermutationEquivariant) {
  // permute_acfg inserts edges in the original edge-list order, so edge i
  // of pi(G) is the image of edge i of G and the score vectors must agree
  // elementwise.
  CHECK_PROPERTY(
      "PGExplainer edge scores are relabeling-equivariant", cases(),
      [](const Case& c) {
        const Acfg& graph = corpus_->graph(static_cast<std::size_t>(c.first));
        Rng perm_rng(static_cast<std::uint64_t>(c.second));
        const auto perm = random_permutation(graph.num_nodes(), perm_rng);
        const Acfg permuted = permute_acfg(graph, perm);

        const auto scores = pg_explainer_->edge_scores(graph);
        const auto permuted_scores = pg_explainer_->edge_scores(permuted);
        if (scores.size() != permuted_scores.size()) return false;
        for (std::size_t e = 0; e < scores.size(); ++e) {
          if (std::abs(scores[e] - permuted_scores[e]) > 1e-9) return false;
        }
        return true;
      },
      {.iterations = 20});
}

// The headline equivariance from the issue: Algorithm 2's importance
// ordering follows the relabeling, ordered_nodes[i] of pi(G) ==
// pi(ordered_nodes[i] of G) at every position.
//
// Ties are the only legitimate escape: when two surviving nodes carry
// bit-equal scores at some pruning stage (saturated sigmoids on the
// trained model, or ReLU-collapsed embeddings on a random one), the
// index tie-break picks permutation-dependent victims. So each case first
// scans every stage's score vector — reconstructed through the same
// keep_only masking the interpreter applies — and only tie-free cases are
// held to strict equivariance; a counter asserts the guard doesn't make
// the property vacuous.
TEST(MetamorphicOrdering, InterpretationIsPermutationEquivariantWithoutTies) {
  Rng init(913);
  GnnConfig gnn_config;
  gnn_config.gcn_dims = {10, 8};
  GnnClassifier gnn(gnn_config, init);
  ExplainerModelConfig model_config;
  model_config.embedding_dim = 8;
  model_config.num_classes = kFamilyCount;
  ExplainerModel theta(model_config, init);
  Interpreter interpreter(theta, gnn);
  InterpretationConfig interpret_config;
  interpret_config.keep_adjacency_snapshots = false;

  std::size_t checked = 0;
  std::size_t skipped_for_ties = 0;
  const auto stage_has_tie = [&](const Acfg& graph,
                                 const Interpretation& base) {
    const Matrix adjacency = graph.dense_adjacency();
    for (const auto& kept : base.subgraph_nodes) {
      const MaskedGraph masked = keep_only(adjacency, graph.features(), kept);
      const Matrix scores =
          theta.score_nodes(gnn.embed(masked.adjacency, masked.features));
      for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t j = i + 1; j < kept.size(); ++j) {
          if (std::abs(scores(kept[i], 0) - scores(kept[j], 0)) < 1e-9) {
            return true;
          }
        }
      }
    }
    return false;
  };

  CHECK_PROPERTY(
      "interpret(pi(G)).ordered_nodes == pi(interpret(G).ordered_nodes)",
      proptest::pairs(proptest::acfgs(20, 0.2), proptest::integers(1, 1 << 20)),
      [&](const std::pair<Acfg, std::int64_t>& c) {
        const Acfg& graph = c.first;
        Rng perm_rng(static_cast<std::uint64_t>(c.second));
        const auto perm = random_permutation(graph.num_nodes(), perm_rng);
        const Acfg permuted = permute_acfg(graph, perm);

        const Interpretation base = interpreter.interpret(graph, interpret_config);
        if (stage_has_tie(graph, base)) {
          ++skipped_for_ties;
          return true;  // tie-break order is legitimately index-dependent
        }
        ++checked;
        const Interpretation image =
            interpreter.interpret(permuted, interpret_config);
        if (base.ordered_nodes.size() != image.ordered_nodes.size()) {
          return false;
        }
        for (std::size_t i = 0; i < base.ordered_nodes.size(); ++i) {
          if (image.ordered_nodes[i] != perm[base.ordered_nodes[i]]) {
            return false;
          }
        }
        return true;
      },
      {.iterations = 25});
  // The tie guard must stay the exception, not the rule.
  EXPECT_GE(checked, skipped_for_ties) << "tie guard made the check vacuous";
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace cfgx
