// Differential battery for the runtime-dispatched SIMD kernels (DESIGN.md
// decision 14).
//
// Contract split (simd.hpp):
//   * WITHIN one ISA every kernel variant (`_into`, wrapper, live-rows,
//     parallel, batched) is bit-identical — checked by memcmp here under
//     the AVX2 ISA (the scalar side is pinned by the pre-existing suites).
//   * ACROSS ISAs the AVX2 kernels preserve the scalar accumulation order
//     but contract each multiply-add into one fused rounding, so per
//     element |avx2 - scalar| <= 2 * k * u * sum_k |a_ik * b_kj| with
//     u = 2^-53 and k the number of accumulated terms (nnz for spmm rows).
//     No reassociation term — the bound is linear in k, not in the tile
//     shape, and it is what this suite checks on hostile shapes: odd
//     column counts straddling the 8/4/scalar remainder splits, k smaller
//     than one vector, empty CSR rows, degenerate 1xN / Nx1 extremes.
//
// Every AVX2 case GTEST_SKIPs on hosts without AVX2+FMA; the scalar-forced
// CI leg (CFGX_SIMD=scalar) runs the same binary to prove the suite and
// the dispatch degrade cleanly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "nn/sparse.hpp"
#include "nn/workspace.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

using proptest::check_property;
using proptest::debug_string;
using proptest::Gen;

constexpr double kUnitRoundoff = 0x1p-53;

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.same_shape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Per-element forward-error budget separating the FMA-contracted AVX2
// accumulation from the two-rounding scalar one (see header comment).
Matrix contraction_bound(const Matrix& a, const Matrix& b) {
  Matrix bound(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double mag_a = std::abs(a(i, k));
      for (std::size_t j = 0; j < b.cols(); ++j) {
        bound(i, j) += mag_a * std::abs(b(k, j));
      }
    }
  }
  const double scale =
      2.0 * static_cast<double>(a.cols()) * kUnitRoundoff;
  for (std::size_t i = 0; i < bound.size(); ++i) bound.data()[i] *= scale;
  return bound;
}

bool within_bound(const Matrix& avx2, const Matrix& scalar,
                  const Matrix& bound) {
  if (!avx2.same_shape(scalar)) return false;
  for (std::size_t i = 0; i < avx2.size(); ++i) {
    if (!(std::abs(avx2.data()[i] - scalar.data()[i]) <= bound.data()[i])) {
      return false;
    }
  }
  return true;
}

struct MatmulCase {
  Matrix a;
  Matrix b;
};

std::string debug_string(const MatmulCase& value) {
  return "A = " + debug_string(value.a) + "\nB = " + debug_string(value.b);
}

// Shapes hostile to the vector remainder handling: n biased toward odd
// values and the 8/4/scalar split points, k biased below one vector width,
// sparse rows (possibly empty) in A.
Gen<MatmulCase> hostile_cases(std::size_t max_dim) {
  Gen<MatmulCase> gen;
  gen.generate = [max_dim](Rng& rng) {
    const auto dim = [&](void) -> std::size_t {
      if (rng.bernoulli(0.2)) return 1 + rng.uniform_index(9);  // tiny
      std::size_t d = 1 + rng.uniform_index(max_dim);
      if (rng.bernoulli(0.5)) d |= 1;  // force odd (remainder lanes)
      return d;
    };
    const std::size_t m = dim();
    const std::size_t k = rng.bernoulli(0.3) ? 1 + rng.uniform_index(3) : dim();
    const std::size_t n = dim();
    const double density = rng.bernoulli(0.3) ? 0.1 : rng.uniform(0.05, 1.0);
    MatmulCase out{Matrix(m, k), Matrix(k, n)};
    for (std::size_t i = 0; i < out.a.size(); ++i) {
      out.a.data()[i] = rng.bernoulli(density) ? rng.uniform(-3.0, 3.0) : 0.0;
    }
    for (std::size_t i = 0; i < out.b.size(); ++i) {
      out.b.data()[i] = rng.uniform(-3.0, 3.0);
    }
    return out;
  };
  return gen;
}

class SimdOracle : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::avx2_supported()) {
      GTEST_SKIP() << "AVX2+FMA unavailable on this host/build";
    }
  }
};

TEST_F(SimdOracle, MatmulAvx2WithinContractionBoundOfScalar) {
  CHECK_PROPERTY(
      "avx2 matmul within 2*k*u*sum|a*b| of scalar, per element",
      hostile_cases(70),
      [&](const MatmulCase& c) {
        Matrix scalar_out, avx2_out;
        {
          simd::ScopedIsa isa(simd::Isa::Scalar);
          matmul_into(c.a, c.b, scalar_out);
        }
        {
          simd::ScopedIsa isa(simd::Isa::Avx2);
          matmul_into(c.a, c.b, avx2_out);
        }
        return within_bound(avx2_out, scalar_out, contraction_bound(c.a, c.b));
      },
      {.iterations = 60});
}

TEST_F(SimdOracle, Avx2VariantsBitIdenticalWithinIsa) {
  simd::ScopedIsa isa(simd::Isa::Avx2);
  ThreadPool pool(4);
  Matrix out;  // reused: dirty-destination path included
  CHECK_PROPERTY(
      "within AVX2: wrapper == _into == parallel == live-rows == CSR",
      hostile_cases(48),
      [&](const MatmulCase& c) {
        const Matrix expected = matmul(c.a, c.b);
        matmul_into(c.a, c.b, out);
        if (!bit_identical(out, expected)) return false;
        if (!bit_identical(matmul_parallel(c.a, c.b, pool), expected)) {
          return false;
        }
        const std::vector<double> all_live(c.a.rows(), 1.0);
        matmul_live_rows_into(c.a, c.b, out, all_live.data());
        if (!bit_identical(out, expected)) return false;
        // Dense-vs-CSR identity (fma(0, b, acc) == acc mirrors the scalar
        // zero-skip) must keep holding under AVX2.
        const CsrMatrix csr = CsrMatrix::from_dense(c.a);
        spmm_into(csr, c.b, out, nullptr);
        if (!bit_identical(out, expected)) return false;
        spmm_into(csr, c.b, out, &pool);
        return bit_identical(out, expected);
      },
      {.iterations = 40});
}

TEST_F(SimdOracle, SpmmAvx2WithinContractionBoundOfScalar) {
  CHECK_PROPERTY(
      "avx2 spmm within the per-row nnz contraction bound of scalar",
      hostile_cases(70),
      [&](const MatmulCase& c) {
        const CsrMatrix csr = CsrMatrix::from_dense(c.a);
        Matrix scalar_out, avx2_out;
        {
          simd::ScopedIsa isa(simd::Isa::Scalar);
          spmm_into(csr, c.b, scalar_out, nullptr);
        }
        {
          simd::ScopedIsa isa(simd::Isa::Avx2);
          spmm_into(csr, c.b, avx2_out, nullptr);
        }
        // The dense-A bound over-counts rows with structural zeros; the
        // sparse kernels skip exactly those terms on both ISAs, so the
        // dense bound remains an upper bound on the real per-row one.
        return within_bound(avx2_out, scalar_out, contraction_bound(c.a, c.b));
      },
      {.iterations = 60});
}

// Fixed sweep of every vector-remainder split: n crosses the 8-wide and
// 4-wide lane boundaries, k stays at or below one vector, m exercises the
// 2-row pairing remainder.
TEST_F(SimdOracle, RemainderLaneSweepMatchesScalarWithinBound) {
  Rng rng(20260808);
  for (std::size_t m : {1u, 2u, 3u}) {
    for (std::size_t k : {1u, 2u, 3u, 4u, 5u}) {
      for (std::size_t n = 1; n <= 17; ++n) {
        Matrix a(m, k), b(k, n);
        for (std::size_t i = 0; i < a.size(); ++i) {
          a.data()[i] = rng.uniform(-1.0, 1.0);
        }
        for (std::size_t i = 0; i < b.size(); ++i) {
          b.data()[i] = rng.uniform(-1.0, 1.0);
        }
        Matrix scalar_out, avx2_out;
        {
          simd::ScopedIsa isa(simd::Isa::Scalar);
          matmul_into(a, b, scalar_out);
        }
        {
          simd::ScopedIsa isa(simd::Isa::Avx2);
          matmul_into(a, b, avx2_out);
        }
        EXPECT_TRUE(
            within_bound(avx2_out, scalar_out, contraction_bound(a, b)))
            << m << "x" << k << "x" << n;
      }
    }
  }
}

// --- edge cases shared by both ISAs ---

class SpmmEdgeCases : public ::testing::TestWithParam<simd::Isa> {
 protected:
  void SetUp() override {
    if (GetParam() == simd::Isa::Avx2 && !simd::avx2_supported()) {
      GTEST_SKIP() << "AVX2+FMA unavailable on this host/build";
    }
  }
};

TEST_P(SpmmEdgeCases, ZeroNnzAndEmptyShapesProduceExactZeros) {
  simd::ScopedIsa isa(GetParam());

  // All-zero matrix -> zero-nnz CSR: the output is exactly the reshape fill.
  const CsrMatrix zero_nnz = CsrMatrix::from_dense(Matrix(4, 5));
  ASSERT_EQ(zero_nnz.nnz(), 0u);
  Matrix b(5, 7, 3.25);
  Matrix out(1, 1, 99.0);  // dirty destination
  spmm_into(zero_nnz, b, out, nullptr);
  EXPECT_TRUE(bit_identical(out, Matrix(4, 7)));

  // Empty rows interleaved with populated ones.
  Matrix mixed(4, 5);
  mixed(1, 2) = 2.0;
  mixed(3, 0) = -1.5;
  const CsrMatrix csr = CsrMatrix::from_dense(mixed);
  spmm_into(csr, b, out, nullptr);
  EXPECT_TRUE(bit_identical(out, matmul(mixed, b)));

  // Zero-row and zero-column extents.
  const CsrMatrix no_rows = CsrMatrix::from_dense(Matrix(0, 5));
  spmm_into(no_rows, b, out, nullptr);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 7u);

  const Matrix no_cols(5, 0);
  spmm_into(csr, no_cols, out, nullptr);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 0u);

  Matrix dense_out;
  matmul_into(Matrix(0, 3), Matrix(3, 4), dense_out);
  EXPECT_EQ(dense_out.rows(), 0u);
  matmul_into(mixed, no_cols, dense_out);
  EXPECT_EQ(dense_out.cols(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, SpmmEdgeCases,
                         ::testing::Values(simd::Isa::Scalar, simd::Isa::Avx2),
                         [](const auto& info) {
                           return std::string(simd::isa_name(info.param));
                         });

// --- alignment regression (kMatrixAlignment) ---

bool is_aligned(const double* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kMatrixAlignment == 0;
}

TEST(MatrixAlignment, HeapBlocksAre32ByteAligned) {
  for (std::size_t rows : {1u, 2u, 3u, 7u, 64u}) {
    for (std::size_t cols : {1u, 3u, 5u, 8u, 17u}) {
      Matrix m(rows, cols);
      EXPECT_TRUE(is_aligned(m.data())) << rows << "x" << cols;
      m.reshape(cols, rows);  // capacity-reusing path keeps the block
      EXPECT_TRUE(is_aligned(m.data())) << "after reshape";
      Matrix copy = m;
      EXPECT_TRUE(is_aligned(copy.data())) << "copy";
    }
  }
}

TEST(MatrixAlignment, WorkspaceLeasesStayAlignedAcrossRecycling) {
  Workspace& workspace = Workspace::local();
  // Ragged shapes cycling through the pool: every lease, fresh or
  // recycled, must hand out an aligned block (the SIMD kernels tolerate
  // unaligned data, but the allocator contract promises alignment and the
  // bench attribution assumes it).
  for (int round = 0; round < 3; ++round) {
    Workspace::Lease a = workspace.acquire(3, 5);
    Workspace::Lease b = workspace.acquire(17, 1);
    Workspace::Lease c = workspace.acquire(7, 9);
    EXPECT_TRUE(is_aligned(a.get().data()));
    EXPECT_TRUE(is_aligned(b.get().data()));
    EXPECT_TRUE(is_aligned(c.get().data()));
    a.get().reshape(5, 3);
    EXPECT_TRUE(is_aligned(a.get().data()));
  }
}

}  // namespace
}  // namespace cfgx
