// Differential oracles for the zero-allocation hot path: the blocked
// matmul microkernel and every `_into` kernel must be BIT-identical to the
// naive i-k-j reference on random shapes; the incremental CSR masking of
// Algorithm 2 must reproduce the densify-and-renormalize reference after
// arbitrary prune sequences; and repeated interpret() calls recycling the
// thread-local Workspace must stay deterministic and allocation-free.
//
// The bitwise-vs-naive-reference oracles force the SCALAR ISA (ScopedIsa):
// only the scalar blocked kernel promises bit-equality with the reference.
// The AVX2-vs-scalar relationship (FMA-contracted, bounded) is pinned by
// simd_oracle_test.cpp. Every cross-VARIANT oracle below runs under the
// dispatched default on purpose — those identities must hold per ISA.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "core/explainer_model.hpp"
#include "core/interpreter.hpp"
#include "dataset/generator.hpp"
#include "gnn/classifier.hpp"
#include "graph/ops.hpp"
#include "nn/simd.hpp"
#include "nn/sparse.hpp"
#include "nn/workspace.hpp"
#include "obs/metrics.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

using proptest::check_property;
using proptest::debug_string;
using proptest::Gen;

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.same_shape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// The naive reference, driven through the kept oracle entry point.
Matrix reference_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  detail::matmul_reference_rows(a, b, out, 0, a.rows());
  return out;
}

struct MatmulCase {
  Matrix a;
  Matrix b;
};

std::string debug_string(const MatmulCase& value) {
  return "A = " + debug_string(value.a) + "\nB = " + debug_string(value.b);
}

// Shapes biased toward the blocking boundaries (kBlockK = 64): dims are
// drawn from [1, max_dim] with occasional degenerate 1-row/1-col extremes,
// so tall, wide, and tile-remainder cases all occur.
Gen<MatmulCase> matmul_cases(std::size_t max_dim) {
  Gen<MatmulCase> gen;
  gen.generate = [max_dim](Rng& rng) {
    const auto dim = [&](void) -> std::size_t {
      if (rng.bernoulli(0.15)) return 1;  // degenerate edge
      return 1 + rng.uniform_index(max_dim);
    };
    const std::size_t m = dim();
    const std::size_t k = dim();
    const std::size_t n = dim();
    const double density = rng.uniform(0.05, 1.0);
    MatmulCase out{Matrix(m, k), Matrix(k, n)};
    for (std::size_t i = 0; i < out.a.size(); ++i) {
      out.a.data()[i] = rng.bernoulli(density) ? rng.uniform(-2.0, 2.0) : 0.0;
    }
    for (std::size_t i = 0; i < out.b.size(); ++i) {
      out.b.data()[i] = rng.uniform(-2.0, 2.0);
    }
    return out;
  };
  return gen;
}

TEST(IntoKernelsOracle, BlockedMatmulBitIdenticalToNaiveReference) {
  simd::ScopedIsa force_scalar(simd::Isa::Scalar);
  ThreadPool pool(4);
  Matrix out;  // reused across iterations: dirty-destination path included
  CHECK_PROPERTY(
      "blocked matmul_into == naive i-k-j reference, bitwise",
      matmul_cases(90),
      [&](const MatmulCase& c) {
        const Matrix expected = reference_matmul(c.a, c.b);
        matmul_into(c.a, c.b, out);
        if (!bit_identical(out, expected)) return false;
        if (!bit_identical(matmul(c.a, c.b), expected)) return false;
        return bit_identical(matmul_parallel(c.a, c.b, pool), expected);
      },
      {.iterations = 40});
}

TEST(IntoKernelsOracle, TransposeAndSparseIntoKernelsBitIdenticalToWrappers) {
  ThreadPool pool(4);
  Matrix out(3, 3, 99.0);  // starts dirty on purpose
  CHECK_PROPERTY(
      "_into variants == value-returning wrappers, bitwise", matmul_cases(32),
      [&](const MatmulCase& c) {
        matmul_transpose_a_into(c.a, c.a, out);
        if (!bit_identical(out, matmul_transpose_a(c.a, c.a))) return false;
        matmul_transpose_b_into(c.b, c.b, out);
        if (!bit_identical(out, matmul_transpose_b(c.b, c.b))) return false;

        const CsrMatrix csr = CsrMatrix::from_dense(c.a);
        spmm_into(csr, c.b, out, nullptr);
        if (!bit_identical(out, spmm(csr, c.b))) return false;
        spmm_into(csr, c.b, out, &pool);
        if (!bit_identical(out, spmm(csr, c.b))) return false;

        Matrix rhs(c.a.rows(), c.b.cols());
        for (std::size_t i = 0; i < rhs.size(); ++i) {
          rhs.data()[i] = c.b.data()[i % c.b.size()];
        }
        spmm_transpose_a_into(csr, rhs, out, &pool);
        return bit_identical(out, spmm_transpose_a(csr, rhs));
      },
      {.iterations = 40});
}

// Fixed shapes that straddle the kBlockK = 64 / kBlockN = 256 tile edges
// and the 2-row / 4-column unroll remainders.
TEST(IntoKernelsOracle, BlockBoundaryShapesMatchReference) {
  simd::ScopedIsa force_scalar(simd::Isa::Scalar);
  Rng rng(2026);
  const std::size_t shapes[][3] = {{1, 64, 256},  {2, 65, 257}, {3, 128, 1},
                                   {130, 3, 300}, {5, 1, 5},    {64, 64, 64},
                                   {67, 129, 9}};
  for (const auto& s : shapes) {
    Matrix a(s[0], s[1]), b(s[1], s[2]);
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform(-1, 1);
    for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform(-1, 1);
    Matrix out;
    matmul_into(a, b, out);
    EXPECT_TRUE(bit_identical(out, reference_matmul(a, b)))
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

// Random prune schedule for the incremental CSR: victims in random order,
// refresh() at random points (so the dirty set spans multiple prunes).
struct MaskingCase {
  Acfg graph;
  std::vector<std::uint32_t> victims;  // prune order, possibly partial
  std::uint64_t refresh_seed = 0;
};

std::string debug_string(const MaskingCase& value) {
  std::string order;
  for (std::uint32_t v : value.victims) order += std::to_string(v) + " ";
  return debug_string(value.graph) + "\nvictims = [" + order + "]";
}

Gen<MaskingCase> masking_cases() {
  Gen<MaskingCase> gen;
  gen.generate = [](Rng& rng) {
    MaskingCase out{proptest::acfgs(16, 0.25)
                        .generate(rng),
                    {},
                    rng()};
    const std::uint32_t n = out.graph.num_nodes();
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
    for (std::uint32_t i = n; i > 1; --i) {  // Fisher-Yates
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    const std::size_t count = rng.uniform_index(n + 1);  // may prune nothing
    out.victims.assign(order.begin(), order.begin() + count);
    return out;
  };
  return gen;
}

TEST(IntoKernelsOracle, IncrementalMaskingBitIdenticalToDenseRenormalize) {
  CHECK_PROPERTY(
      "MaskedNormalizedAdjacency == densify+renormalize after random prunes",
      masking_cases(),
      [](const MaskingCase& c) {
        Matrix adjacency = c.graph.dense_adjacency();
        Matrix features = c.graph.features();
        MaskedNormalizedAdjacency masked(adjacency, features);
        Rng refresh_rng(c.refresh_seed);

        const auto agrees = [&]() {
          std::vector<double> inv_ref;
          const CsrMatrix reference =
              normalized_adjacency_csr(adjacency, inv_ref, &features);
          if (!bit_identical(inv_ref, masked.inv_sqrt_degree())) return false;
          // Structures differ (the incremental form keeps zeroed slots), so
          // compare densified values and the spmm results they produce.
          if (!bit_identical(masked.a_hat().to_dense(), reference.to_dense())) {
            return false;
          }
          Matrix h(adjacency.rows(), 3);
          Rng h_rng(7);
          for (std::size_t i = 0; i < h.size(); ++i) {
            h.data()[i] = h_rng.uniform(-1.0, 1.0);
          }
          return bit_identical(spmm(masked.a_hat(), h), spmm(reference, h));
        };

        if (!agrees()) return false;  // construction must match
        for (const std::uint32_t victim : c.victims) {
          mask_node(adjacency, features, victim);
          masked.prune(victim);
          if (refresh_rng.bernoulli(0.5)) {
            masked.refresh();
            if (!agrees()) return false;
          }
        }
        masked.refresh();
        return agrees();
      },
      {.iterations = 30});
}

bool interpretations_equal(const Interpretation& a, const Interpretation& b) {
  if (a.ordered_nodes != b.ordered_nodes) return false;
  if (a.subgraph_nodes != b.subgraph_nodes) return false;
  if (a.subgraph_adjacencies.size() != b.subgraph_adjacencies.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.subgraph_adjacencies.size(); ++k) {
    if (!bit_identical(a.subgraph_adjacencies[k], b.subgraph_adjacencies[k])) {
      return false;
    }
  }
  return true;
}

// The seed implementation of Algorithm 2 (per-iteration densify +
// re-normalize + value-returning kernels), kept verbatim as the oracle the
// workspace-backed interpreter must reproduce node for node.
Interpretation dense_reference_interpret(const GnnClassifier& gnn,
                                         ExplainerModel& model,
                                         const Acfg& graph,
                                         const InterpretationConfig& config) {
  const unsigned step = config.step_size_percent;
  const std::uint32_t n_real = graph.num_nodes();
  Matrix adjacency = graph.dense_adjacency();
  Matrix features = graph.features();

  Interpretation result;
  result.step_size_percent = step;
  std::vector<std::uint32_t> remaining(n_real);
  for (std::uint32_t i = 0; i < n_real; ++i) remaining[i] = i;
  std::vector<std::uint32_t> removal_order;

  const unsigned iterations = 100 / step;
  for (unsigned it = 0; it < iterations; ++it) {
    result.subgraph_nodes.push_back(remaining);
    if (config.keep_adjacency_snapshots) {
      result.subgraph_adjacencies.push_back(adjacency);
    }
    const Matrix embeddings = gnn.embed(adjacency, features);
    const Matrix scores = model.score_nodes(embeddings);
    const auto target_remaining = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(n_real) * (100 - (it + 1) * step) + 50) /
        100);
    const std::size_t n_step =
        remaining.size() > target_remaining ? remaining.size() - target_remaining
                                            : 0;
    for (std::size_t k = 0; k < n_step; ++k) {
      std::size_t min_pos = 0;
      double min_score = std::numeric_limits<double>::infinity();
      for (std::size_t pos = 0; pos < remaining.size(); ++pos) {
        const double score = scores(remaining[pos], 0);
        if (score < min_score) {
          min_score = score;
          min_pos = pos;
        }
      }
      const std::uint32_t victim = remaining[min_pos];
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(min_pos));
      removal_order.push_back(victim);
      mask_node(adjacency, features, victim);
    }
  }
  result.ordered_nodes.assign(remaining.begin(), remaining.end());
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    result.ordered_nodes.push_back(*it);
  }
  std::reverse(result.subgraph_nodes.begin(), result.subgraph_nodes.end());
  std::reverse(result.subgraph_adjacencies.begin(),
               result.subgraph_adjacencies.end());
  return result;
}

class InterpreterEquivalence : public ::testing::Test {
 protected:
  InterpreterEquivalence()
      : rng_(99),
        gnn_([this] {
          GnnConfig config;
          config.gcn_dims = {10, 8};
          return GnnClassifier(config, rng_);
        }()),
        model_([this] {
          ExplainerModelConfig config;
          config.embedding_dim = 8;
          config.num_classes = kFamilyCount;
          return ExplainerModel(config, rng_);
        }()) {}

  Rng rng_;
  GnnClassifier gnn_;
  ExplainerModel model_;
};

TEST_F(InterpreterEquivalence, MatchesSeedDensePathOnRandomGraphs) {
  Interpreter interpreter(model_, gnn_);
  CHECK_PROPERTY(
      "incremental-CSR interpret == seed dense interpret",
      proptest::acfgs(20, 0.2),
      [&](const Acfg& graph) {
        for (const bool snapshots : {false, true}) {
          InterpretationConfig config;
          config.step_size_percent = 20;
          config.keep_adjacency_snapshots = snapshots;
          const Interpretation fast = interpreter.interpret(graph, config);
          const Interpretation reference =
              dense_reference_interpret(gnn_, model_, graph, config);
          if (!interpretations_equal(fast, reference)) return false;
        }
        return true;
      },
      {.iterations = 15});
}

TEST_F(InterpreterEquivalence, RepeatedInterpretIsDeterministicAndAllocFree) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  Rng graph_rng(1234);
  const Acfg graph = generate_acfg(Family::Rbot, graph_rng);
  Interpreter interpreter(model_, gnn_);
  InterpretationConfig config;
  config.keep_adjacency_snapshots = false;

  const Interpretation first = interpreter.interpret(graph, config);
  interpreter.interpret(graph, config);  // warm the thread-local pool

  const std::uint64_t allocated_before = allocated.value();
  for (int round = 0; round < 3; ++round) {
    const Interpretation repeat = interpreter.interpret(graph, config);
    EXPECT_TRUE(interpretations_equal(first, repeat)) << "round " << round;
  }
  // Steady state: every scratch request is served from pooled capacity.
  EXPECT_EQ(allocated.value(), allocated_before);

  obs::set_metrics_enabled(saved);
}

}  // namespace
}  // namespace cfgx
