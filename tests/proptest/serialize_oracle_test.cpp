// Serializer oracles: every writer/reader pair round-trips bit-identically
// over randomly generated inputs, and every reader survives a structure-aware
// mutational fuzz pass over valid archives — either accepting the bytes or
// rejecting them with SerializationError, never crashing, hanging, or
// attempting a corrupt-header-sized allocation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/serialize.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "proptest/fuzz.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"

namespace cfgx {
namespace {

std::string serialize_graph(const Acfg& graph) {
  std::ostringstream out(std::ios::binary);
  write_acfg(out, graph);
  return out.str();
}

std::string serialize_collection(const std::vector<Acfg>& graphs) {
  std::ostringstream out(std::ios::binary);
  write_acfg_collection(out, graphs);
  return out.str();
}

TEST(SerializeOracle, AcfgRoundTripIsBitIdentical) {
  CHECK_PROPERTY(
      "write_acfg . read_acfg . write_acfg is bit-identical",
      proptest::acfgs(24), [](const Acfg& graph) {
        const std::string first = serialize_graph(graph);
        std::istringstream in(first, std::ios::binary);
        const Acfg reread = read_acfg(in);
        return serialize_graph(reread) == first &&
               reread.num_nodes() == graph.num_nodes() &&
               reread.num_edges() == graph.num_edges() &&
               reread.label() == graph.label() &&
               reread.planted_nodes() == graph.planted_nodes();
      });
}

TEST(SerializeOracle, AcfgCollectionRoundTripIsBitIdentical) {
  CHECK_PROPERTY(
      "collection round trip preserves bytes and count",
      proptest::vectors(proptest::acfgs(12), 0, 5),
      [](const std::vector<Acfg>& graphs) {
        const std::string first = serialize_collection(graphs);
        std::istringstream in(first, std::ios::binary);
        const std::vector<Acfg> reread = read_acfg_collection(in);
        return reread.size() == graphs.size() &&
               serialize_collection(reread) == first;
      });
}

TEST(SerializeOracle, MatrixRoundTripIsExact) {
  CHECK_PROPERTY("write_matrix . read_matrix == id",
                 proptest::matrices(16, 16, 100.0), [](const Matrix& m) {
                   std::ostringstream out(std::ios::binary);
                   write_matrix(out, m);
                   std::istringstream in(out.str(), std::ios::binary);
                   return read_matrix(in) == m;
                 });
}

TEST(SerializeOracle, ParameterArchiveRoundTripIsExact) {
  CHECK_PROPERTY(
      "save_parameters . load_parameters restores every value",
      proptest::vectors(proptest::matrices(6, 6, 10.0), 1, 4),
      [](const std::vector<Matrix>& values) {
        std::vector<Parameter> original;
        std::vector<Parameter> target;
        for (std::size_t i = 0; i < values.size(); ++i) {
          const std::string name = "param_" + std::to_string(i);
          original.emplace_back(name, values[i]);
          // Same names/shapes, different values: loading must overwrite.
          target.emplace_back(name, Matrix(values[i].rows(), values[i].cols()));
        }
        std::vector<Parameter*> original_ptrs;
        std::vector<Parameter*> target_ptrs;
        for (auto& p : original) original_ptrs.push_back(&p);
        for (auto& p : target) target_ptrs.push_back(&p);

        std::ostringstream out(std::ios::binary);
        save_parameters(out, original_ptrs);
        std::istringstream in(out.str(), std::ios::binary);
        load_parameters(in, target_ptrs);
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (!(target[i].value == values[i])) return false;
        }
        return true;
      });
}

// ---------------------------------------------------------------------------
// Hostile input: mutational fuzzing of the binary readers. The consumer
// contract is "accept or throw SerializationError"; anything else (crash,
// over-allocation abort, foreign exception) fails with a replayable seed.
// ---------------------------------------------------------------------------

std::vector<std::string> graph_archive_corpus() {
  std::vector<std::string> corpus;
  Rng rng(0x5e41'c0de);
  const auto gen = proptest::acfgs(16, 0.2);
  std::vector<Acfg> graphs;
  for (int i = 0; i < 3; ++i) graphs.push_back(gen.generate(rng));
  corpus.push_back(serialize_collection(graphs));
  corpus.push_back(serialize_collection({}));
  corpus.push_back(serialize_graph(graphs.front()));
  return corpus;
}

TEST(SerializeFuzz, GraphReadersRejectHostileInputWithSerializationError) {
  const auto outcome = proptest::fuzz_bytes(
      graph_archive_corpus(),
      [](const std::string& bytes) {
        std::istringstream in(bytes, std::ios::binary);
        if (bytes.size() >= 8 &&
            bytes.compare(0, 8, "CFGXG001") == 0) {
          (void)read_acfg_collection(in);
        } else {
          (void)read_acfg(in);
        }
      },
      {.iterations = 10000, .seed = 0xfa22'0001});
  ASSERT_TRUE(outcome.passed) << outcome.report();
  // The mutator must actually exercise the rejection paths.
  EXPECT_GT(outcome.rejected, 0u);
}

std::vector<std::string> weight_archive_corpus(
    const std::vector<Parameter*>& params) {
  std::ostringstream out(std::ios::binary);
  save_parameters(out, params);
  return {out.str()};
}

TEST(SerializeFuzz, WeightArchiveReaderRejectsHostileInput) {
  Rng rng(0x5e42'c0de);
  Sequential net;
  net.emplace<Dense>(6, 4, rng, "l0");
  net.emplace<Dense>(4, 3, rng, "l1");
  const auto corpus = weight_archive_corpus(net.parameters());

  // A separate target so mutated-but-accepted loads never corrupt the
  // archive source.
  Rng target_rng(0x5e43'c0de);
  Sequential target;
  target.emplace<Dense>(6, 4, target_rng, "l0");
  target.emplace<Dense>(4, 3, target_rng, "l1");
  auto target_params = target.parameters();

  const auto outcome = proptest::fuzz_bytes(
      corpus,
      [&target_params](const std::string& bytes) {
        std::istringstream in(bytes, std::ios::binary);
        load_parameters(in, target_params);
      },
      {.iterations = 10000, .seed = 0xfa22'0002});
  ASSERT_TRUE(outcome.passed) << outcome.report();
  EXPECT_GT(outcome.rejected, 0u);
}

TEST(SerializeFuzz, AdamStateReaderRejectsHostileInput) {
  Rng rng(0x5e44'c0de);
  Sequential net;
  net.emplace<Dense>(5, 3, rng, "l0");
  net.emplace<Dense>(3, 2, rng, "l1");
  Adam adam(net.parameters());
  // Take a step so the saved moments are non-trivial.
  for (Parameter* p : net.parameters()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      p->grad.data()[i] = 0.01 * static_cast<double>(i + 1);
    }
  }
  adam.step();
  std::ostringstream out(std::ios::binary);
  adam.save_state(out);

  const auto outcome = proptest::fuzz_bytes(
      {out.str()},
      [&adam](const std::string& bytes) {
        std::istringstream in(bytes, std::ios::binary);
        adam.load_state(in);
      },
      {.iterations = 10000, .seed = 0xfa22'0003});
  ASSERT_TRUE(outcome.passed) << outcome.report();
  EXPECT_GT(outcome.rejected, 0u);
}

}  // namespace
}  // namespace cfgx
