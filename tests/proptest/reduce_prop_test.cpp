// Property suites for the CFG coarsening subsystem (graph/reduce.hpp) and
// the sparse graph paths it rides on.
//
// Structural invariants (arbitrary random graphs, negative features
// included):
//  * the recorded NodeProjection is a partition of the original node set
//    with per-super weights summing to 1;
//  * projected score mass is conserved;
//  * reducing a reduced graph is a fixpoint (no further merges).
//
// Metamorphic invariant (realistic corpus graphs — integer features, so
// Sum-merged columns are exact and the comparison can be bitwise):
//  * coarsen(permute(G)) == permute(coarsen(G)) as labeled partitions:
//    the member sets correspond through the permutation and corresponding
//    super-blocks carry identical feature rows.
//
// Differential oracles for the edge-list fast paths:
//  * MaskedNormalizedAdjacency(graph) is bit-identical to the dense
//    constructor;
//  * predict(masked_subgraph(G, kept)) is bit-identical to the dense
//    keep_only + predict_masked pipeline;
//  * count_active_nodes(G) matches the dense count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "gnn/classifier.hpp"
#include "graph/ops.hpp"
#include "graph/reduce.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"

namespace cfgx {
namespace {

std::vector<std::uint32_t> random_permutation(std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
  }
  return perm;
}

Acfg permute_acfg(const Acfg& graph, const std::vector<std::uint32_t>& perm) {
  Acfg out(graph.num_nodes(), graph.feature_count());
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    edges.push_back(Edge{perm[e.src], perm[e.dst], e.kind});
  }
  out.set_edges(std::move(edges));
  for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) {
    for (std::size_t f = 0; f < graph.feature_count(); ++f) {
      out.features()(perm[v], f) = graph.features()(v, f);
    }
  }
  out.set_label(graph.label());
  out.set_family(graph.family());
  for (std::uint32_t p : graph.planted_nodes()) out.mark_planted(perm[p]);
  return out;
}

TEST(ReduceProperties, ProjectionIsAPartition) {
  CHECK_PROPERTY(
      "reduce_graph projection partitions the original nodes",
      proptest::acfgs(32, 0.12),
      [](const Acfg& graph) {
        const ReducedGraph r = reduce_graph(graph);
        r.projection.validate();  // throws on any partition violation
        return r.projection.original_nodes() == graph.num_nodes() &&
               r.projection.reduced_nodes() == r.graph.num_nodes() &&
               r.graph.num_nodes() <= graph.num_nodes();
      },
      {.iterations = 120});
}

TEST(ReduceProperties, ProjectedScoreMassIsConserved) {
  CHECK_PROPERTY(
      "sum(project_scores(s)) == sum(s)",
      proptest::pairs(proptest::acfgs(24, 0.15),
                      proptest::integers(1, 1 << 20)),
      [](const std::pair<Acfg, std::int64_t>& c) {
        ReduceConfig config;
        // Exercise both weightings.
        config.weighting = (c.second & 1) != 0
                               ? ProjectionWeighting::InstructionShare
                               : ProjectionWeighting::Uniform;
        const ReducedGraph r = reduce_graph(c.first, config);
        Rng rng(static_cast<std::uint64_t>(c.second));
        std::vector<double> scores(r.projection.reduced_nodes());
        for (double& s : scores) s = rng.uniform() * 10.0;
        const auto projected = r.projection.project_scores(scores);
        const double in =
            std::accumulate(scores.begin(), scores.end(), 0.0);
        const double out =
            std::accumulate(projected.begin(), projected.end(), 0.0);
        return std::abs(in - out) <= 1e-9 * std::max(1.0, std::abs(in));
      },
      {.iterations = 100});
}

TEST(ReduceProperties, ReduceOfReducedIsFixpoint) {
  CHECK_PROPERTY(
      "reduce(reduce(G).graph) performs no further merges",
      proptest::acfgs(32, 0.12),
      [](const Acfg& graph) {
        const ReducedGraph once = reduce_graph(graph);
        const ReducedGraph twice = reduce_graph(once.graph);
        return twice.graph.num_nodes() == once.graph.num_nodes() &&
               twice.rounds == 0;
      },
      {.iterations = 80});
}

// Canonical form of a reduction for cross-permutation comparison: the
// member sets (mapped to a common id space) with their feature rows.
std::map<std::vector<std::uint32_t>, std::vector<double>> partition_signature(
    const ReducedGraph& r, const std::vector<std::uint32_t>& to_common) {
  std::map<std::vector<std::uint32_t>, std::vector<double>> sig;
  for (std::size_t s = 0; s < r.projection.members.size(); ++s) {
    std::vector<std::uint32_t> key;
    key.reserve(r.projection.members[s].size());
    for (const std::uint32_t v : r.projection.members[s]) {
      key.push_back(to_common[v]);
    }
    std::sort(key.begin(), key.end());
    std::vector<double> row(r.graph.feature_count());
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = r.graph.features()(static_cast<std::uint32_t>(s), c);
    }
    sig.emplace(std::move(key), std::move(row));
  }
  return sig;
}

TEST(ReduceProperties, CoarsenCommutesWithRelabeling) {
  // Realistic corpus graphs: integer features make Sum merges exact, so
  // corresponding supers must match bit for bit.
  GeneratorConfig small;
  small.min_benign_functions = 1;
  small.max_benign_functions = 2;
  small.min_motif_repeats = 1;
  small.max_motif_repeats = 2;
  CHECK_PROPERTY(
      "coarsen(pi(G)) == pi(coarsen(G)) as labeled partitions",
      proptest::pairs(proptest::family_acfgs(small),
                      proptest::integers(1, 1 << 20)),
      [](const std::pair<Acfg, std::int64_t>& c) {
        const Acfg& graph = c.first;
        Rng perm_rng(static_cast<std::uint64_t>(c.second));
        const auto perm = random_permutation(graph.num_nodes(), perm_rng);
        const Acfg permuted = permute_acfg(graph, perm);

        const ReducedGraph base = reduce_graph(graph);
        const ReducedGraph image = reduce_graph(permuted);

        // Common id space: original ids of G. base members map through the
        // identity; image members pull back through the permutation.
        std::vector<std::uint32_t> identity(graph.num_nodes());
        std::iota(identity.begin(), identity.end(), 0u);
        std::vector<std::uint32_t> inverse(perm.size());
        for (std::uint32_t v = 0; v < perm.size(); ++v) inverse[perm[v]] = v;

        return partition_signature(base, identity) ==
               partition_signature(image, inverse);
      },
      {.iterations = 25});
}

// ---------- differential oracles for the sparse fast paths ----------

TEST(SparsePathProperties, AcfgConstructorMatchesDenseBitwise) {
  CHECK_PROPERTY(
      "MaskedNormalizedAdjacency(G) == MaskedNormalizedAdjacency(dense(G))",
      proptest::acfgs(24, 0.2),
      [](const Acfg& graph) {
        const MaskedNormalizedAdjacency sparse(graph);
        const MaskedNormalizedAdjacency dense(graph.dense_adjacency(),
                                              graph.features());
        return sparse.a_hat().row_ptr() == dense.a_hat().row_ptr() &&
               sparse.a_hat().col_idx() == dense.a_hat().col_idx() &&
               sparse.a_hat().values() == dense.a_hat().values() &&
               sparse.inv_sqrt_degree() == dense.inv_sqrt_degree();
      },
      {.iterations = 150});
}

TEST(SparsePathProperties, CountActiveNodesMatchesDense) {
  CHECK_PROPERTY(
      "count_active_nodes(G) == count_active_nodes(dense(G), X)",
      proptest::acfgs(24, 0.15),
      [](const Acfg& graph) {
        return count_active_nodes(graph) ==
               count_active_nodes(graph.dense_adjacency(), graph.features());
      },
      {.iterations = 150});
}

TEST(SparsePathProperties, MaskedSubgraphPredictMatchesDenseMaskedPredict) {
  Rng init(2024);
  GnnConfig config;
  config.gcn_dims = {10, 8};
  const GnnClassifier gnn(config, init);
  CHECK_PROPERTY(
      "predict(masked_subgraph(G, kept)) == predict_masked(keep_only(...))",
      proptest::pairs(proptest::acfgs(20, 0.2),
                      proptest::integers(0, 1 << 20)),
      [&gnn](const std::pair<Acfg, std::int64_t>& c) {
        const Acfg& graph = c.first;
        Rng rng(static_cast<std::uint64_t>(c.second) + 1);
        std::vector<std::uint32_t> kept;
        for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) {
          if (rng.bernoulli(0.6)) kept.push_back(v);
        }
        const MaskedGraph dense =
            keep_only(graph.dense_adjacency(), graph.features(), kept);
        const Prediction a = gnn.predict(masked_subgraph(graph, kept));
        const Prediction b = gnn.predict_masked(dense.adjacency, dense.features);
        return a.predicted_class == b.predicted_class &&
               a.probabilities.rows() == b.probabilities.rows() &&
               a.probabilities.cols() == b.probabilities.cols() &&
               [&] {
                 for (std::size_t i = 0; i < a.probabilities.rows(); ++i) {
                   for (std::size_t j = 0; j < a.probabilities.cols(); ++j) {
                     if (a.probabilities(i, j) != b.probabilities(i, j)) {
                       return false;
                     }
                   }
                 }
                 return true;
               }();
      },
      {.iterations = 60});
}

}  // namespace
}  // namespace cfgx
