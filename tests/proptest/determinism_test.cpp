// Determinism oracles: one seed fully determines the pipeline. The corpus,
// the GNN training trajectory, and the explanations must be bit-identical
// across repeated runs and across kernel thread-pool sizes (the sparse
// kernels partition rows into disjoint output regions with a fixed
// accumulation order, so 1 worker and N workers produce the same bits).
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "explain/cfg_explainer.hpp"
#include "explain/gnnexplainer.hpp"
#include "explain/parallel.hpp"
#include "gnn/trainer.hpp"
#include "graph/serialize.hpp"
#include "proptest/proptest.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

CorpusConfig small_corpus_config(std::uint64_t seed) {
  CorpusConfig config;
  config.samples_per_family = 3;
  config.seed = seed;
  return config;
}

std::string corpus_bytes(const Corpus& corpus) {
  std::ostringstream out(std::ios::binary);
  write_acfg_collection(out, corpus.graphs());
  return out.str();
}

TEST(DeterminismOracle, SameSeedProducesBitIdenticalCorpus) {
  CHECK_PROPERTY(
      "generate_corpus(seed) is a pure function of the seed",
      proptest::integers(1, 1 << 24), [](std::int64_t seed) {
        const auto config =
            small_corpus_config(static_cast<std::uint64_t>(seed));
        const Corpus a = generate_corpus(config);
        const Corpus b = generate_corpus(config);
        return a.graphs() == b.graphs() &&
               corpus_bytes(a) == corpus_bytes(b);
      },
      {.iterations = 5});
}

TEST(DeterminismOracle, TrainingTrajectoryIsThreadCountInvariant) {
  const Corpus corpus = generate_corpus(small_corpus_config(2024));
  std::vector<std::size_t> all(corpus.size());
  std::iota(all.begin(), all.end(), 0u);

  GnnConfig gnn_config;
  gnn_config.gcn_dims = {12, 8};
  GnnTrainConfig train_config;
  train_config.epochs = 12;

  const auto train_with_pool =
      [&](ThreadPool* pool) -> std::pair<GnnTrainResult, std::string> {
    Rng rng(99);
    GnnClassifier gnn(gnn_config, rng);
    gnn.set_kernel_pool(pool);
    const GnnTrainResult result = train_gnn(gnn, corpus, all, train_config);
    std::ostringstream weights(std::ios::binary);
    gnn.save(weights);
    return {result, weights.str()};
  };

  ThreadPool pool4(4);
  ThreadPool pool1(1);
  const auto [serial_result, serial_weights] = train_with_pool(nullptr);
  const auto [one_result, one_weights] = train_with_pool(&pool1);
  const auto [four_result, four_weights] = train_with_pool(&pool4);

  // Bitwise equality of every epoch loss and of the final weights.
  EXPECT_EQ(serial_result.epoch_losses, one_result.epoch_losses);
  EXPECT_EQ(serial_result.epoch_losses, four_result.epoch_losses);
  EXPECT_EQ(serial_result.final_train_accuracy,
            four_result.final_train_accuracy);
  EXPECT_EQ(serial_weights, one_weights);
  EXPECT_EQ(serial_weights, four_weights);
}

class BatchDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(generate_corpus(small_corpus_config(2025)));
    std::vector<std::size_t> all(corpus_->size());
    std::iota(all.begin(), all.end(), 0u);

    Rng rng(7);
    GnnConfig gnn_config;
    gnn_config.gcn_dims = {12, 8};
    gnn_ = new GnnClassifier(gnn_config, rng);
    GnnTrainConfig train_config;
    train_config.epochs = 15;
    train_gnn(*gnn_, *corpus_, all, train_config);

    ExplainerTrainConfig exp_train;
    exp_train.epochs = 120;
    exp_train.validation_fraction = 0.0;
    cfg_explainer_ = new CfgExplainer(*gnn_, exp_train);
    cfg_explainer_->fit(*corpus_, all);
  }

  static void TearDownTestSuite() {
    delete cfg_explainer_;
    delete gnn_;
    delete corpus_;
    cfg_explainer_ = nullptr;
    gnn_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<NodeRanking> explain_all(ThreadPool& pool,
                                              const ExplainerFactory& factory) {
    std::vector<std::size_t> all(corpus_->size());
    std::iota(all.begin(), all.end(), 0u);
    return explain_batch(*corpus_, all, pool, factory);
  }

  static Corpus* corpus_;
  static GnnClassifier* gnn_;
  static CfgExplainer* cfg_explainer_;
};

Corpus* BatchDeterminismTest::corpus_ = nullptr;
GnnClassifier* BatchDeterminismTest::gnn_ = nullptr;
CfgExplainer* BatchDeterminismTest::cfg_explainer_ = nullptr;

TEST_F(BatchDeterminismTest, CfgExplainerTrainingIsRepeatable) {
  // Refitting from the same seed reproduces the exact loss trajectory.
  ExplainerTrainConfig exp_train;
  exp_train.epochs = 120;
  exp_train.validation_fraction = 0.0;
  CfgExplainer again(*gnn_, exp_train);
  std::vector<std::size_t> all(corpus_->size());
  std::iota(all.begin(), all.end(), 0u);
  again.fit(*corpus_, all);
  EXPECT_EQ(again.train_result().epoch_losses,
            cfg_explainer_->train_result().epoch_losses);
}

TEST_F(BatchDeterminismTest, ExplainBatchIsThreadCountInvariant) {
  // The paper's Algorithm-2 interpretation, batched over 1 vs 4 workers,
  // must order every node identically.
  // Reuse the already trained Theta via a checkpoint round trip: fit() is
  // deterministic but expensive, and the batch only needs explain().
  const std::string checkpoint = ::testing::TempDir() + "cfgx_batch_theta.bin";
  cfg_explainer_->save_model_file(checkpoint);
  const auto factory = [&]() -> std::unique_ptr<Explainer> {
    auto clone = std::make_unique<CfgExplainer>(*gnn_);
    clone->load_model_file(checkpoint);
    return clone;
  };
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto serial = explain_all(pool1, factory);
  const auto parallel = explain_all(pool4, factory);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].order, parallel[i].order) << "graph " << i;
  }
}

TEST_F(BatchDeterminismTest, GnnExplainerBatchIsThreadCountInvariant) {
  // Seeded per-graph optimization: every worker constructs its own
  // explainer, so thread count cannot leak into the mask trajectories.
  GnnExplainerConfig config;
  config.iterations = 10;
  const auto factory = [&]() -> std::unique_ptr<Explainer> {
    return std::make_unique<GnnExplainer>(*gnn_, config);
  };
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto serial = explain_all(pool1, factory);
  const auto parallel = explain_all(pool4, factory);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].order, parallel[i].order) << "graph " << i;
  }
}

TEST_F(BatchDeterminismTest, KernelPoolDoesNotChangeExplanations) {
  // Same explainer weights, kernels run serial vs pooled: Algorithm 2's
  // ordering is bit-identical (PR 1's row-partitioned kernel guarantee).
  ThreadPool pool(4);
  const Acfg& graph = corpus_->graph(0);
  const NodeRanking serial = cfg_explainer_->explain(graph);
  gnn_->set_kernel_pool(&pool);
  const NodeRanking pooled = cfg_explainer_->explain(graph);
  gnn_->set_kernel_pool(nullptr);
  EXPECT_EQ(serial.order, pooled.order);
}

}  // namespace
}  // namespace cfgx
