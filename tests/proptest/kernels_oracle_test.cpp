// Differential kernel oracles: the dense reference kernels, the CSR sparse
// kernels, and the thread-pool kernels must agree on random sparsity
// patterns, and the analytic gradients of randomly configured
// GcnLayer/ExplainerModel stacks must match central finite differences.
#include <gtest/gtest.h>

#include <cmath>

#include "core/explainer_model.hpp"
#include "gnn/gcn.hpp"
#include "nn/gradcheck.hpp"
#include "nn/sparse.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

using proptest::check_property;
using proptest::debug_string;
using proptest::Gen;

// A multiplication problem: a sparse-ish left operand and a dense right
// operand with matching inner dimension.
struct MatmulCase {
  Matrix a;
  Matrix b;
};

std::string debug_string(const MatmulCase& value) {
  return "A = " + debug_string(value.a) + "\nB = " + debug_string(value.b);
}

Gen<MatmulCase> matmul_cases(std::size_t max_dim) {
  Gen<MatmulCase> gen;
  gen.generate = [max_dim](Rng& rng) {
    const std::size_t m = 1 + rng.uniform_index(max_dim);
    const std::size_t k = 1 + rng.uniform_index(max_dim);
    const std::size_t n = 1 + rng.uniform_index(max_dim);
    // Random sparsity between fully dense and ~95% zeros — the CFG regime.
    const double density = rng.uniform(0.05, 1.0);
    MatmulCase out{Matrix(m, k), Matrix(k, n)};
    for (std::size_t i = 0; i < out.a.size(); ++i) {
      out.a.data()[i] = rng.bernoulli(density) ? rng.uniform(-2.0, 2.0) : 0.0;
    }
    for (std::size_t i = 0; i < out.b.size(); ++i) {
      out.b.data()[i] = rng.uniform(-2.0, 2.0);
    }
    return out;
  };
  return gen;
}

TEST(KernelsOracle, DenseSparseAndParallelMatmulAgree) {
  ThreadPool pool(4);
  CHECK_PROPERTY(
      "matmul == spmm == matmul_parallel over random sparsity",
      matmul_cases(24), [&pool](const MatmulCase& c) {
        const Matrix dense = matmul(c.a, c.b);
        const CsrMatrix csr = CsrMatrix::from_dense(c.a);
        const Matrix sparse_serial = spmm(csr, c.b);
        const Matrix sparse_parallel = spmm(csr, c.b, &pool);
        const Matrix dense_parallel = matmul_parallel(c.a, c.b, pool);
        return approx_equal(dense, sparse_serial, 1e-12) &&
               approx_equal(dense, sparse_parallel, 1e-12) &&
               approx_equal(dense, dense_parallel, 1e-12);
      });
}

TEST(KernelsOracle, TransposedSparseKernelMatchesDenseReference) {
  ThreadPool pool(4);
  CHECK_PROPERTY(
      "spmm_transpose_a == matmul_transpose_a over random sparsity",
      matmul_cases(24), [&pool](const MatmulCase& c) {
        // Inner dimension for A^T * B is A's rows: re-pair shapes by
        // multiplying A^T with a compatible slice of B.
        Matrix rhs(c.a.rows(), c.b.cols());
        for (std::size_t i = 0; i < rhs.size(); ++i) {
          rhs.data()[i] = c.b.data()[i % c.b.size()];
        }
        const Matrix dense = matmul_transpose_a(c.a, rhs);
        const CsrMatrix csr = CsrMatrix::from_dense(c.a);
        return approx_equal(dense, spmm_transpose_a(csr, rhs), 1e-12) &&
               approx_equal(dense, spmm_transpose_a(csr, rhs, &pool), 1e-12);
      });
}

TEST(KernelsOracle, CsrRoundTripIsIdentity) {
  CHECK_PROPERTY("CsrMatrix::from_dense . to_dense == id",
                 proptest::matrices(24, 24, 3.0), [](const Matrix& m) {
                   return CsrMatrix::from_dense(m).to_dense() == m;
                 });
}

// Random GCN layer configuration driven through check_gradient_against: the
// analytic input gradient of a GcnLayer stack must match central finite
// differences of the scalarized output.
struct GcnStackCase {
  Matrix a_hat;     // normalized propagation matrix stand-in
  Matrix features;  // input H
  std::vector<std::size_t> dims;
  std::uint64_t init_seed = 0;
};

std::string debug_string(const GcnStackCase& value) {
  std::string dims;
  for (std::size_t d : value.dims) dims += std::to_string(d) + " ";
  return "dims = [" + dims + "], seed = " + std::to_string(value.init_seed) +
         "\nA_hat = " + debug_string(value.a_hat) +
         "\nH = " + debug_string(value.features);
}

Gen<GcnStackCase> gcn_stack_cases() {
  Gen<GcnStackCase> gen;
  gen.generate = [](Rng& rng) {
    GcnStackCase out;
    const std::size_t nodes = 2 + rng.uniform_index(5);
    const std::size_t in_dim = 2 + rng.uniform_index(4);
    out.a_hat = Matrix(nodes, nodes);
    for (std::size_t i = 0; i < out.a_hat.size(); ++i) {
      out.a_hat.data()[i] = rng.bernoulli(0.4) ? rng.uniform(0.0, 1.0) : 0.0;
    }
    out.features = Matrix(nodes, in_dim);
    for (std::size_t i = 0; i < out.features.size(); ++i) {
      out.features.data()[i] = rng.uniform(-1.0, 1.0);
    }
    const std::size_t layers = 1 + rng.uniform_index(3);
    out.dims.push_back(in_dim);
    for (std::size_t l = 0; l < layers; ++l) {
      out.dims.push_back(2 + rng.uniform_index(4));
    }
    out.init_seed = rng();
    return out;
  };
  return gen;
}

TEST(KernelsOracle, GcnLayerStackGradientsMatchFiniteDifferences) {
  CHECK_PROPERTY(
      "GcnLayer stack input gradient vs central differences",
      gcn_stack_cases(),
      [](const GcnStackCase& c) {
        Rng init(c.init_seed);
        std::vector<GcnLayer> layers;
        for (std::size_t l = 0; l + 1 < c.dims.size(); ++l) {
          layers.emplace_back(c.dims[l], c.dims[l + 1], init);
        }
        // Scalarize with fixed pseudo-random weights to exercise the full
        // Jacobian, as in check_input_gradient.
        Rng weight_rng(c.init_seed ^ 0xabcdef);
        Matrix weights(c.a_hat.rows(), c.dims.back());
        for (std::size_t i = 0; i < weights.size(); ++i) {
          weights.data()[i] = weight_rng.uniform(-1.0, 1.0);
        }

        Matrix features = c.features;
        const CsrMatrix a_hat = CsrMatrix::from_dense(c.a_hat);
        const auto loss_of = [&]() {
          Matrix h = features;
          for (GcnLayer& layer : layers) h = layer.forward(a_hat, h);
          return h.hadamard(weights).sum();
        };

        // Analytic: forward once, backward the scalarization weights.
        for (GcnLayer& layer : layers) layer.zero_grad();
        Matrix h = features;
        for (GcnLayer& layer : layers) h = layer.forward(a_hat, h);
        Matrix grad = weights;
        for (std::size_t l = layers.size(); l-- > 0;) {
          grad = layers[l].backward(grad);
        }

        const GradCheckResult result =
            check_gradient_against(features, grad, loss_of, 1e-6);
        return result.passed(1e-4);
      },
      {.iterations = 40});
}

// ExplainerModel joint pass: dLoss/dEmbeddings of the full Theta_s ->
// weighting -> Theta_c chain vs finite differences of the NLL loss.
TEST(KernelsOracle, ExplainerModelJointGradientsMatchFiniteDifferences) {
  const auto gen =
      proptest::pairs(proptest::sizes(2, 6), proptest::integers(1, 1 << 20));
  CHECK_PROPERTY(
      "ExplainerModel parameter gradients vs central differences", gen,
      [](const std::pair<std::size_t, std::int64_t>& c) {
        const std::size_t nodes = c.first;
        Rng rng(static_cast<std::uint64_t>(c.second));
        ExplainerModelConfig config;
        config.embedding_dim = 2 + rng.uniform_index(4);
        config.scorer_dims = {4, 1};
        config.surrogate_dims = {5, 3};
        config.num_classes = 2 + rng.uniform_index(4);
        ExplainerModel model(config, rng);

        Matrix embeddings(nodes, config.embedding_dim);
        for (std::size_t i = 0; i < embeddings.size(); ++i) {
          embeddings.data()[i] = rng.uniform(-1.0, 1.0);
        }
        const std::size_t target = rng.uniform_index(config.num_classes);

        const auto loss_of = [&]() {
          ExplainerModel probe = model.clone();
          const auto out = probe.joint_forward(embeddings);
          return -std::log(out.probabilities(0, target) + 1e-20);
        };

        // Analytic gradient w.r.t. a probe parameter (first scorer weight).
        ExplainerModel subject = model.clone();
        subject.zero_grad();
        const auto out = subject.joint_forward(embeddings);
        Matrix grad_probs(1, config.num_classes);
        grad_probs(0, target) = -1.0 / (out.probabilities(0, target) + 1e-20);
        subject.joint_backward(grad_probs);

        // Compare on every parameter of the joint model.
        auto params = subject.parameters();
        auto model_params = model.parameters();
        for (std::size_t k = 0; k < params.size(); ++k) {
          const GradCheckResult result = check_gradient_against(
              model_params[k]->value, params[k]->grad, loss_of, 1e-6);
          if (!result.passed(1e-3)) return false;
        }
        return true;
      },
      {.iterations = 15});
}

}  // namespace
}  // namespace cfgx
