// Differential batching oracle: block-diagonal batched inference must be
// BIT-identical to per-graph classifier inference. The serving engine
// packs K normalized adjacencies into one BatchedCsr and runs a single
// forward pass; these properties pin down that a graph's embeddings and
// logits do not depend on which batch it rode in — for the singleton
// batch, the smallest real batch, and a 17-graph batch of ragged node
// counts, over both batch-preparation paths (batch_normalized_graphs and
// the engine's MaskedNormalizedAdjacency-frozen CSRs).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "gnn/classifier.hpp"
#include "graph/ops.hpp"
#include "nn/sparse.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"
#include "util/rng.hpp"

namespace cfgx {
namespace {

using proptest::Gen;

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

Matrix slice_rows(const Matrix& m, const BatchedCsr::Range& range) {
  Matrix out(range.size(), m.cols());
  for (std::size_t r = 0; r < range.size(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out(r, c) = m(range.begin + r, c);
    }
  }
  return out;
}

struct BatchCase {
  std::vector<Acfg> graphs;
};

std::string debug_string(const BatchCase& value) {
  std::string out =
      "batch of " + std::to_string(value.graphs.size()) + ", node counts:";
  for (const Acfg& graph : value.graphs) {
    out += " " + std::to_string(graph.num_nodes());
  }
  return out;
}

Gen<BatchCase> batch_cases() {
  Gen<BatchCase> gen;
  gen.generate = [graph_gen = proptest::acfgs(20, 0.2)](Rng& rng) {
    // The mandated batch sizes: singleton, smallest real batch, and one
    // larger than any dispatch chunk — node counts ragged throughout.
    static constexpr std::size_t kBatchSizes[] = {1, 2, 17};
    const std::size_t count = kBatchSizes[rng.uniform_index(3)];
    BatchCase out;
    out.graphs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.graphs.push_back(graph_gen.generate(rng));
    }
    return out;
  };
  return gen;
}

// One classifier for every property; inference is const. The scaler is
// fitted so the batched path exercises feature scaling like production.
class BatchedInferenceOracle : public ::testing::Test {
 protected:
  BatchedInferenceOracle() : rng_(2718), gnn_(make_config(), rng_) {
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 1;
    corpus_config.seed = 5;
    const Corpus corpus = generate_corpus(corpus_config);
    std::vector<std::size_t> all(corpus.size());
    std::iota(all.begin(), all.end(), 0u);
    FeatureScaler scaler;
    scaler.fit(corpus, all);
    gnn_.set_scaler(scaler);
  }

  static GnnConfig make_config() {
    GnnConfig config;
    config.gcn_dims = {10, 7};
    return config;
  }

  // Shared check: embeddings computed through ONE batched forward over
  // `batched` + `inv_sqrt` + `stacked` must slice back to each graph's
  // per-graph embed()/class_logits() bits.
  bool batched_matches_per_graph(const BatchCase& c, const BatchedCsr& batched,
                                 const std::vector<double>& inv_sqrt,
                                 const Matrix& stacked,
                                 const std::vector<std::size_t>& active) {
    Matrix embeddings;
    gnn_.embed_into(batched.matrix(), inv_sqrt, stacked, embeddings);
    for (std::size_t k = 0; k < c.graphs.size(); ++k) {
      const Acfg& graph = c.graphs[k];
      const Matrix adjacency = graph.dense_adjacency();
      const Matrix expected = gnn_.embed(adjacency, graph.features());
      const Matrix slice = slice_rows(embeddings, batched.range(k));
      if (!bit_identical(slice, expected)) return false;
      const Matrix expected_logits = gnn_.class_logits(
          expected, count_active_nodes(adjacency, graph.features()));
      if (!bit_identical(gnn_.class_logits(slice, active[k]),
                         expected_logits)) {
        return false;
      }
    }
    return true;
  }

  Rng rng_;
  GnnClassifier gnn_;
};

TEST_F(BatchedInferenceOracle, GraphBatchInferenceBitIdenticalToPerGraph) {
  CHECK_PROPERTY(
      "batch_normalized_graphs + one embed_into == per-graph embed/logits",
      batch_cases(), [&](const BatchCase& c) {
        std::vector<const Acfg*> ptrs;
        for (const Acfg& graph : c.graphs) ptrs.push_back(&graph);
        const GraphBatch batch = batch_normalized_graphs(ptrs);
        return batched_matches_per_graph(c, batch.a_hat,
                                         batch.inv_sqrt_degree, batch.features,
                                         batch.active_counts);
      },
      {.iterations = 25});
}

TEST_F(BatchedInferenceOracle, FrozenCsrBatchInferenceBitIdenticalToPerGraph) {
  CHECK_PROPERTY(
      "concat of MaskedNormalizedAdjacency CSRs == per-graph embed/logits",
      batch_cases(), [&](const BatchCase& c) {
        // The serving engine's prepare path: per-graph frozen-structure
        // CSRs (the form the Algorithm-2 interpreter prunes in place).
        std::vector<MaskedNormalizedAdjacency> frozen;
        frozen.reserve(c.graphs.size());
        std::vector<const CsrMatrix*> blocks;
        std::vector<double> inv_sqrt;
        std::vector<std::size_t> active;
        std::size_t total_nodes = 0;
        for (const Acfg& graph : c.graphs) {
          frozen.emplace_back(graph.dense_adjacency(), graph.features());
          blocks.push_back(&frozen.back().a_hat());
          std::size_t graph_active = 0;
          for (double v : frozen.back().inv_sqrt_degree()) {
            if (v != 0.0) ++graph_active;
          }
          active.push_back(graph_active);
          inv_sqrt.insert(inv_sqrt.end(),
                          frozen.back().inv_sqrt_degree().begin(),
                          frozen.back().inv_sqrt_degree().end());
          total_nodes += graph.num_nodes();
        }
        const BatchedCsr batched = BatchedCsr::concat(blocks);

        Matrix stacked(total_nodes, gnn_.config().feature_dim);
        std::size_t row_base = 0;
        for (const Acfg& graph : c.graphs) {
          for (std::size_t r = 0; r < graph.features().rows(); ++r) {
            for (std::size_t col = 0; col < graph.features().cols(); ++col) {
              stacked(row_base + r, col) = graph.features()(r, col);
            }
          }
          row_base += graph.num_nodes();
        }
        return batched_matches_per_graph(c, batched, inv_sqrt, stacked,
                                         active);
      },
      {.iterations = 25});
}

}  // namespace
}  // namespace cfgx
