// Dispatch machinery tests (DESIGN.md decision 14): ISA parsing, the
// set_isa/ScopedIsa override surface, the `kernels.isa` observability
// gauge, per-ISA call counters, and determinism within one ISA. The
// CFGX_SIMD environment override itself resolves once per process before
// any test can intervene, so its end-to-end behaviour (scalar-forced run,
// unknown value rejected) is pinned by the CI scalar job leg rather than
// in-process here; parse_isa below is the exact function that validates it.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace cfgx {
namespace {

TEST(SimdDispatch, IsaNamesRoundTrip) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::Scalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::Avx2), "avx2");
  EXPECT_EQ(simd::parse_isa("scalar"), simd::Isa::Scalar);
  EXPECT_EQ(simd::parse_isa("avx2"), simd::Isa::Avx2);
}

TEST(SimdDispatch, UnknownIsaValuesErrorCleanly) {
  EXPECT_THROW(simd::parse_isa(""), std::invalid_argument);
  EXPECT_THROW(simd::parse_isa("AVX2"), std::invalid_argument);
  EXPECT_THROW(simd::parse_isa("avx512"), std::invalid_argument);
  EXPECT_THROW(simd::parse_isa("sse4.2"), std::invalid_argument);
  EXPECT_THROW(simd::parse_isa(" scalar"), std::invalid_argument);
}

TEST(SimdDispatch, SetIsaForcesScalarFallback) {
  const simd::Isa original = simd::dispatch();
  simd::set_isa(simd::Isa::Scalar);
  EXPECT_EQ(simd::dispatch(), simd::Isa::Scalar);
  simd::set_isa(original);
  EXPECT_EQ(simd::dispatch(), original);
}

TEST(SimdDispatch, SetIsaRejectsUnsupportedIsa) {
  if (simd::avx2_supported()) {
    GTEST_SKIP() << "host supports AVX2; the rejection path is unreachable";
  }
  EXPECT_THROW(simd::set_isa(simd::Isa::Avx2), std::runtime_error);
  EXPECT_EQ(simd::dispatch(), simd::Isa::Scalar);
}

TEST(SimdDispatch, ScopedIsaRestoresPreviousIsa) {
  const simd::Isa original = simd::dispatch();
  {
    simd::ScopedIsa forced(simd::Isa::Scalar);
    EXPECT_EQ(simd::dispatch(), simd::Isa::Scalar);
    if (simd::avx2_supported()) {
      simd::ScopedIsa nested(simd::Isa::Avx2);
      EXPECT_EQ(simd::dispatch(), simd::Isa::Avx2);
    }
    EXPECT_EQ(simd::dispatch(), simd::Isa::Scalar);
  }
  EXPECT_EQ(simd::dispatch(), original);
}

TEST(SimdDispatch, ActiveIsaRecordedInKernelsIsaGauge) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::Gauge& gauge = obs::MetricsRegistry::global().gauge("kernels.isa");

  const simd::Isa original = simd::dispatch();
  simd::set_isa(simd::Isa::Scalar);
  EXPECT_EQ(gauge.value(), 0.0);
  if (simd::avx2_supported()) {
    simd::set_isa(simd::Isa::Avx2);
    EXPECT_EQ(gauge.value(), 1.0);
  }
  simd::set_isa(original);
  EXPECT_EQ(gauge.value(), static_cast<double>(original));

  obs::set_metrics_enabled(was_enabled);
}

TEST(SimdDispatch, PerIsaCallCountersAttributeKernelCalls) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);

  Rng rng(31);
  Matrix a(6, 5), b(5, 7), out;
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform(-1, 1);

  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& scalar_calls = registry.counter("kernel.matmul.calls.scalar");
  obs::Counter& avx2_calls = registry.counter("kernel.matmul.calls.avx2");

  {
    simd::ScopedIsa forced(simd::Isa::Scalar);
    const std::uint64_t before = scalar_calls.value();
    matmul_into(a, b, out);
    EXPECT_EQ(scalar_calls.value(), before + 1);
  }
  if (simd::avx2_supported()) {
    simd::ScopedIsa forced(simd::Isa::Avx2);
    const std::uint64_t before = avx2_calls.value();
    matmul_into(a, b, out);
    EXPECT_EQ(avx2_calls.value(), before + 1);
  }

  obs::set_metrics_enabled(was_enabled);
}

// Same seed, same ISA -> the same bits, run to run. (Cross-ISA equality is
// deliberately NOT promised; the simd_oracle suite bounds that difference.)
TEST(SimdDispatch, DeterministicWithinOneIsa) {
  const auto run = [](simd::Isa isa, Matrix& out) {
    simd::ScopedIsa forced(isa);
    Rng rng(1234);
    Matrix a(9, 11), b(11, 13);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = rng.uniform(-2, 2);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b.data()[i] = rng.uniform(-2, 2);
    }
    matmul_into(a, b, out);
  };
  for (simd::Isa isa : {simd::Isa::Scalar, simd::Isa::Avx2}) {
    if (isa == simd::Isa::Avx2 && !simd::avx2_supported()) continue;
    Matrix first, second;
    run(isa, first);
    run(isa, second);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(std::memcmp(first.data(), second.data(),
                          first.size() * sizeof(double)),
              0)
        << "non-deterministic result under " << simd::isa_name(isa);
  }
}

}  // namespace
}  // namespace cfgx
