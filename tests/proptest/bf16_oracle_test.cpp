// bf16 inference battery (DESIGN.md decision 14).
//
// Numeric layer: float_to_bf16 is round-to-nearest-even on the top 16 bits
// of the fp32 pattern — representable values round-trip bitwise, rounding
// is monotone, NaNs are quieted instead of decaying to Inf. Kernel layer:
// the bf16 matmul accumulates in fp32 via correctly rounded fmas in
// ascending-k order on BOTH ISAs, so scalar and AVX2 results are
// bit-identical (unlike the fp64 kernels, where FMA contraction makes the
// ISAs differ within a documented bound). Model layer: serving Phi at bf16
// must keep predictions within the accuracy-delta gate and keep the top-k
// explanation ranking essentially unchanged — the conditions under which
// the serve engine is allowed to flip ServeConfig::precision.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>
#include <vector>

#include "core/explainer_model.hpp"
#include "dataset/generator.hpp"
#include "gnn/classifier.hpp"
#include "nn/matrix16.hpp"
#include "nn/serialize.hpp"
#include "nn/simd.hpp"
#include "proptest/generators.hpp"
#include "proptest/proptest.hpp"

namespace cfgx {
namespace {

using proptest::check_property;
using proptest::debug_string;
using proptest::Gen;

bool is_nan_pattern(std::uint16_t bits) {
  return (bits & 0x7F80u) == 0x7F80u && (bits & 0x007Fu) != 0;
}

TEST(Bf16Numeric, RepresentableValuesRoundTripBitwise) {
  CHECK_PROPERTY(
      "float_to_bf16(bf16_to_float(x)) == x for non-NaN patterns",
      proptest::integers(0, 0xFFFF),
      [](std::int64_t pattern) {
        const auto bits = static_cast<std::uint16_t>(pattern);
        if (is_nan_pattern(bits)) return true;  // covered separately
        return float_to_bf16(bf16_to_float(bits)) == bits;
      },
      {.iterations = 400});
}

TEST(Bf16Numeric, SpecialValues) {
  EXPECT_EQ(float_to_bf16(0.0f), 0x0000u);
  EXPECT_EQ(float_to_bf16(-0.0f), 0x8000u);
  EXPECT_EQ(float_to_bf16(1.0f), 0x3F80u);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_float(float_to_bf16(inf)), inf);
  EXPECT_EQ(bf16_to_float(float_to_bf16(-inf)), -inf);
  // Finite magnitudes above the largest bf16 finite saturate to Inf (the
  // correct RNE result), never to a garbage finite.
  EXPECT_EQ(bf16_to_float(float_to_bf16(3.5e38f)), inf);
  // NaN stays NaN after the payload truncation (quieting bit forced).
  EXPECT_TRUE(std::isnan(bf16_to_float(
      float_to_bf16(std::numeric_limits<float>::quiet_NaN()))));
  EXPECT_TRUE(std::isnan(bf16_to_float(
      float_to_bf16(std::numeric_limits<float>::signaling_NaN()))));
}

TEST(Bf16Numeric, RoundingIsMonotone) {
  CHECK_PROPERTY(
      "x <= y implies widen(pack(x)) <= widen(pack(y))",
      proptest::pairs(proptest::doubles(-1e30, 1e30),
                      proptest::doubles(-1e30, 1e30)),
      [](const std::pair<double, double>& p) {
        float x = static_cast<float>(p.first);
        float y = static_cast<float>(p.second);
        if (x > y) std::swap(x, y);
        return bf16_to_float(float_to_bf16(x)) <=
               bf16_to_float(float_to_bf16(y));
      },
      {.iterations = 300});
}

TEST(Bf16Numeric, RoundsToNearestEven) {
  // 1.0 + 2^-8 sits exactly between bf16 neighbours 1.0 (even mantissa)
  // and 1 + 2^-7; ties go to even.
  EXPECT_EQ(float_to_bf16(1.0f + 0x1p-8f), float_to_bf16(1.0f));
  // Just above the midpoint rounds up.
  EXPECT_EQ(float_to_bf16(1.0f + 0x1p-8f + 0x1p-16f),
            float_to_bf16(1.0f + 0x1p-7f));
  // The next representable's midpoint has an odd lower neighbour; ties
  // round up to the even 1 + 2^-6.
  EXPECT_EQ(float_to_bf16(1.0f + 0x1p-7f + 0x1p-8f),
            float_to_bf16(1.0f + 0x1p-6f));
}

TEST(Bf16Numeric, PackUnpackRoundTripsRepresentableMatrices) {
  CHECK_PROPERTY(
      "pack(unpack(M16)) == M16",
      proptest::matrices(12, 12, 2.0),
      [](const Matrix& m) {
        Matrix16 packed = Matrix16::pack(m);
        Matrix16 repacked = Matrix16::pack(packed.unpack());
        return packed == repacked;
      },
      {.iterations = 80});
}

TEST(Bf16Numeric, SerializeRoundTripAndTruncationError) {
  Rng rng(11);
  Matrix source(5, 7);
  for (std::size_t i = 0; i < source.size(); ++i) {
    source.data()[i] = rng.uniform(-4.0, 4.0);
  }
  const Matrix16 packed = Matrix16::pack(source);
  std::stringstream buffer;
  write_matrix16(buffer, packed);
  EXPECT_TRUE(read_matrix16(buffer) == packed);

  std::stringstream truncated(buffer.str().substr(0, 24));
  EXPECT_THROW(read_matrix16(truncated), SerializationError);
}

// --- kernel layer ---

bool bit_identical(const Matrix& a, const Matrix& b) {
  return a.same_shape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct Bf16Case {
  Matrix a;
  Matrix16 w;
};

std::string debug_string(const Bf16Case& value) {
  return "A = " + debug_string(value.a) +
         "\nW(unpacked) = " + debug_string(value.w.unpack());
}

Gen<Bf16Case> bf16_cases(std::size_t max_dim) {
  Gen<Bf16Case> gen;
  gen.generate = [max_dim](Rng& rng) {
    const auto dim = [&](void) -> std::size_t {
      std::size_t d = 1 + rng.uniform_index(max_dim);
      if (rng.bernoulli(0.5)) d |= 1;  // odd sizes stress the remainders
      return d;
    };
    const std::size_t m = dim();
    const std::size_t k = rng.bernoulli(0.3) ? 1 + rng.uniform_index(3) : dim();
    const std::size_t n = dim();
    Matrix a(m, k), w(k, n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = rng.uniform(-2.0, 2.0);
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.data()[i] = rng.uniform(-2.0, 2.0);
    }
    return Bf16Case{std::move(a), Matrix16::pack(w)};
  };
  return gen;
}

TEST(Bf16Kernels, BitIdenticalAcrossIsas) {
  if (!simd::avx2_supported()) {
    GTEST_SKIP() << "AVX2+FMA unavailable on this host/build";
  }
  CHECK_PROPERTY(
      "bf16 matmul: scalar and AVX2 produce the same bits",
      bf16_cases(48),
      [](const Bf16Case& c) {
        Matrix scalar_out, avx2_out;
        {
          simd::ScopedIsa isa(simd::Isa::Scalar);
          matmul_bf16_into(c.a, c.w, scalar_out);
        }
        {
          simd::ScopedIsa isa(simd::Isa::Avx2);
          matmul_bf16_into(c.a, c.w, avx2_out);
        }
        return bit_identical(scalar_out, avx2_out);
      },
      {.iterations = 60});
}

TEST(Bf16Kernels, LiveRowsMatchFullKernelAndZeroDeadRows) {
  CHECK_PROPERTY(
      "bf16 live-rows: live rows bit-identical, dead rows exactly zero",
      bf16_cases(24),
      [](const Bf16Case& c) {
        Matrix full;
        matmul_bf16_into(c.a, c.w, full);
        std::vector<double> live(c.a.rows(), 1.0);
        for (std::size_t i = 0; i < live.size(); i += 2) live[i] = 0.0;
        Matrix masked;
        matmul_bf16_live_rows_into(c.a, c.w, masked, live.data());
        for (std::size_t i = 0; i < full.rows(); ++i) {
          for (std::size_t j = 0; j < full.cols(); ++j) {
            const double want = live[i] != 0.0 ? full(i, j) : 0.0;
            if (std::memcmp(&masked(i, j), &want, sizeof want) != 0) {
              return false;
            }
          }
        }
        // nullptr degrades to the full kernel.
        matmul_bf16_live_rows_into(c.a, c.w, masked, nullptr);
        return bit_identical(masked, full);
      },
      {.iterations = 40});
}

TEST(Bf16Kernels, WrapperMatchesIntoAndValidatesShapes) {
  Rng rng(3);
  Matrix a(3, 4);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform(-1, 1);
  Matrix w(4, 5);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = rng.uniform(-1, 1);
  const Matrix16 packed = Matrix16::pack(w);
  Matrix out;
  matmul_bf16_into(a, packed, out);
  EXPECT_TRUE(bit_identical(out, matmul_bf16(a, packed)));
  EXPECT_THROW(matmul_bf16(w, packed), std::invalid_argument);
}

TEST(Bf16Kernels, PrecisionNamesParse) {
  EXPECT_EQ(parse_precision("fp64"), Precision::Fp64);
  EXPECT_EQ(parse_precision("bf16"), Precision::Bf16);
  EXPECT_STREQ(precision_name(Precision::Fp64), "fp64");
  EXPECT_STREQ(precision_name(Precision::Bf16), "bf16");
  EXPECT_THROW(parse_precision("fp32"), std::invalid_argument);
  EXPECT_THROW(parse_precision(""), std::invalid_argument);
}

// --- model layer: the gate that justifies serving Phi at bf16 ---

std::vector<std::size_t> top_k_by_score(const Matrix& scores, std::size_t k) {
  std::vector<std::size_t> order(scores.rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores(a, 0) > scores(b, 0);
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

TEST(Bf16EndToEnd, AccuracyDeltaWithinGateAndTopKStable) {
  Rng rng(20260808);
  GnnConfig config;
  config.gcn_dims = {16, 12, 8};
  const GnnClassifier fp64(config, rng);
  GnnClassifier bf16 = fp64.clone();
  bf16.set_precision(Precision::Bf16);
  ASSERT_EQ(bf16.precision(), Precision::Bf16);
  ASSERT_EQ(fp64.precision(), Precision::Fp64);

  ExplainerModelConfig explainer_config;
  explainer_config.embedding_dim = config.embedding_dim();
  explainer_config.num_classes = config.num_classes;
  ExplainerModel explainer(explainer_config, rng);

  constexpr std::size_t kGraphs = 24;
  constexpr std::size_t kTop = 5;
  std::size_t class_agreements = 0;
  double max_prob_delta = 0.0;
  std::size_t topk_overlap = 0;
  std::size_t topk_total = 0;

  Rng graph_rng(777);
  for (std::size_t g = 0; g < kGraphs; ++g) {
    const Acfg graph =
        generate_acfg(static_cast<Family>(g % kFamilyCount), graph_rng);
    const Matrix adjacency = graph.dense_adjacency();
    const Matrix features = graph.features();

    const Prediction p64 = fp64.predict_masked(adjacency, features);
    const Prediction p16 = bf16.predict_masked(adjacency, features);
    class_agreements += p64.predicted_class == p16.predicted_class ? 1 : 0;
    for (std::size_t c = 0; c < p64.probabilities.cols(); ++c) {
      max_prob_delta =
          std::max(max_prob_delta, std::abs(p64.probabilities(0, c) -
                                            p16.probabilities(0, c)));
    }

    // Explanation stability: CFGExplainer scores nodes from the
    // embeddings; the bf16 embeddings must keep (most of) the same top-k.
    const Matrix scores64 =
        explainer.score_nodes(fp64.embed(adjacency, features));
    const Matrix scores16 =
        explainer.score_nodes(bf16.embed(adjacency, features));
    const std::size_t k = std::min<std::size_t>(kTop, scores64.rows());
    const auto top64 = top_k_by_score(scores64, k);
    const auto top16 = top_k_by_score(scores16, k);
    for (std::size_t node : top16) {
      topk_overlap +=
          std::count(top64.begin(), top64.end(), node) > 0 ? 1 : 0;
    }
    topk_total += k;
  }

  // Accuracy-delta gate: |acc_fp64 - acc_bf16| <= eps with the fp64
  // prediction as the label, i.e. the class may flip on at most eps of the
  // corpus. bf16 carries ~2^-8 relative weight error through 3 GCN layers;
  // flips happen only on near-ties.
  constexpr std::size_t kMaxClassFlips = 1;  // eps = 1/24 ~ 4.2%
  EXPECT_GE(class_agreements, kGraphs - kMaxClassFlips);
  EXPECT_LE(max_prob_delta, 0.08);
  // Top-k explanation agreement: >= 90% of top-5 slots preserved overall.
  EXPECT_GE(static_cast<double>(topk_overlap),
            0.9 * static_cast<double>(topk_total));
}

TEST(Bf16EndToEnd, CloneAndSetPrecisionAreConsistent) {
  Rng rng(5);
  GnnConfig config;
  config.gcn_dims = {8, 6};
  GnnClassifier model(config, rng);
  model.set_precision(Precision::Bf16);

  Rng graph_rng(9);
  const Acfg graph = generate_acfg(Family::Rbot, graph_rng);
  const Prediction original = model.predict(graph);

  // clone() preserves the precision setting and its packed weights.
  const GnnClassifier copy = model.clone();
  EXPECT_EQ(copy.precision(), Precision::Bf16);
  const Prediction cloned = copy.predict(graph);
  EXPECT_EQ(original.predicted_class, cloned.predicted_class);
  EXPECT_TRUE(bit_identical(original.probabilities, cloned.probabilities));

  // Flipping back restores the fp64 reference path exactly (the master
  // weights were never touched by the bf16 packing).
  model.set_precision(Precision::Fp64);
  const GnnClassifier fp64_twin = [] {
    Rng twin_rng(5);
    GnnConfig twin_config;
    twin_config.gcn_dims = {8, 6};
    return GnnClassifier(twin_config, twin_rng);
  }();
  const Prediction back = model.predict(graph);
  const Prediction twin = fp64_twin.predict(graph);
  EXPECT_TRUE(bit_identical(back.probabilities, twin.probabilities));
}

}  // namespace
}  // namespace cfgx
