// Self-tests of the proptest library: generator ranges, greedy shrinking of
// a deliberately planted failing property down to the minimal
// counterexample, deterministic seed replay, and the byte mutator.
#include "proptest/proptest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "proptest/fuzz.hpp"
#include "proptest/generators.hpp"

namespace cfgx::proptest {
namespace {

// RAII guard so replay-env tests cannot leak into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) previous_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (previous_) {
      ::setenv(name_, previous_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

TEST(ProptestGenerators, IntegersStayInRangeAndCoverBounds) {
  const auto gen = integers(-3, 7);
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = gen.generate(rng);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 7);
    saw_lo |= v == -3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ProptestGenerators, VectorsRespectSizeBounds) {
  const auto gen = vectors(integers(0, 9), 2, 5);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto v = gen.generate(rng);
    ASSERT_GE(v.size(), 2u);
    ASSERT_LE(v.size(), 5u);
  }
}

TEST(ProptestGenerators, MatricesHaveBoundedShapeAndAmplitude) {
  const auto gen = matrices(4, 6, 2.5);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Matrix m = gen.generate(rng);
    ASSERT_GE(m.rows(), 1u);
    ASSERT_LE(m.rows(), 4u);
    ASSERT_GE(m.cols(), 1u);
    ASSERT_LE(m.cols(), 6u);
    ASSERT_LE(m.max_abs(), 2.5);
  }
}

TEST(ProptestGenerators, AcfgsValidateAndShrinkToSmallerGraphs) {
  const auto gen = acfgs(12, 0.2);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Acfg graph = gen.generate(rng);
    ASSERT_NO_THROW(graph.validate());
    for (const Acfg& candidate : gen.shrink(graph)) {
      ASSERT_NO_THROW(candidate.validate());
      ASSERT_LE(candidate.num_nodes(), graph.num_nodes());
    }
  }
}

TEST(ProptestGenerators, FamilyAcfgsAndProgramsAreWellFormed) {
  Rng rng(5);
  const auto graph_gen = family_acfgs();
  const auto program_gen = programs();
  for (int i = 0; i < 5; ++i) {
    ASSERT_NO_THROW(graph_gen.generate(rng).validate());
    ASSERT_NO_THROW(program_gen.generate(rng).validate());
  }
}

// The acceptance demonstration: a deliberately planted failing property
// ("no element is >= 100" over vectors that occasionally contain 100..120)
// must shrink to the canonical minimal counterexample — the one-element
// vector [100] — and report a seed that replays deterministically.
TEST(ProptestShrinking, PlantedFailureShrinksToMinimalCounterexample) {
  const auto gen = vectors(integers(0, 120), 0, 24);
  const auto property = [](const std::vector<std::int64_t>& v) {
    return std::all_of(v.begin(), v.end(), [](std::int64_t x) { return x < 100; });
  };

  const auto outcome = check_property(gen, property, {.iterations = 500});
  ASSERT_FALSE(outcome.passed);
  ASSERT_TRUE(outcome.counterexample.has_value());
  ASSERT_EQ(outcome.counterexample->size(), 1u);
  EXPECT_EQ((*outcome.counterexample)[0], 100);
  EXPECT_GT(outcome.shrink_steps, 0u);

  // The report names the failing seed for CFGX_PROPTEST_SEED replay.
  const std::string report = outcome.report(
      [](const auto& v) { return debug_string(v); });
  EXPECT_NE(report.find("CFGX_PROPTEST_SEED=" +
                        std::to_string(outcome.failing_seed)),
            std::string::npos);
  EXPECT_NE(report.find("[100]"), std::string::npos);
}

TEST(ProptestShrinking, ReportedSeedReplaysTheSameCounterexample) {
  const auto gen = vectors(integers(0, 120), 0, 24);
  const auto property = [](const std::vector<std::int64_t>& v) {
    return std::all_of(v.begin(), v.end(), [](std::int64_t x) { return x < 100; });
  };
  const auto first = check_property(gen, property, {.iterations = 500});
  ASSERT_FALSE(first.passed);

  // Replaying the failing seed regenerates the same raw case, so the same
  // minimal counterexample falls out in one iteration.
  ScopedEnv env("CFGX_PROPTEST_SEED", std::to_string(first.failing_seed));
  const auto replayed = check_property(gen, property, {.iterations = 500});
  ASSERT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.iterations_run, 1u);
  EXPECT_EQ(replayed.failing_seed, first.failing_seed);
  EXPECT_EQ(*replayed.counterexample, *first.counterexample);
}

TEST(ProptestShrinking, IterationMultiplierScalesWork) {
  ScopedEnv env("CFGX_PROPTEST_ITERS", "3");
  const auto gen = integers(0, 10);
  const auto outcome =
      check_property(gen, [](std::int64_t) { return true; }, {.iterations = 7});
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.iterations_run, 21u);
}

TEST(ProptestShrinking, PassingPropertyReportsAllIterations) {
  const auto outcome = check_property(
      integers(-5, 5), [](std::int64_t v) { return v >= -5 && v <= 5; },
      {.iterations = 100});
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.iterations_run, 100u);
  EXPECT_FALSE(outcome.counterexample.has_value());
}

TEST(ProptestShrinking, ThrowingPropertyCountsAsFailureWithMessage) {
  const auto outcome = check_property(
      integers(0, 100),
      [](std::int64_t v) -> bool {
        if (v > 10) throw std::runtime_error("boom at " + std::to_string(v));
        return true;
      },
      {.iterations = 200});
  ASSERT_FALSE(outcome.passed);
  // Shrinks to the boundary: smallest value that still throws.
  EXPECT_EQ(*outcome.counterexample, 11);
  EXPECT_NE(outcome.failure_message.find("boom"), std::string::npos);
}

TEST(ProptestFuzz, MutatorChangesBytesDeterministically) {
  const std::string base(64, '\x2a');
  Rng a(9);
  Rng b(9);
  bool changed = false;
  for (int i = 0; i < 50; ++i) {
    const std::string ma = mutate_bytes(base, a);
    const std::string mb = mutate_bytes(base, b);
    ASSERT_EQ(ma, mb);  // same rng state -> same mutation
    changed |= ma != base;
  }
  EXPECT_TRUE(changed);
}

TEST(ProptestFuzz, ConsumerContractViolationIsReportedWithSeed) {
  // A consumer that throws the wrong exception type on a specific byte must
  // fail the run and surface the replayable seed.
  const std::vector<std::string> corpus = {std::string(32, 'a')};
  const auto consumer = [](const std::string& bytes) {
    for (char c : bytes) {
      if (c == '\x7f') throw std::runtime_error("wrong exception type");
    }
  };
  FuzzConfig config;
  config.iterations = 4000;
  const auto outcome = fuzz_bytes(corpus, consumer, config);
  ASSERT_FALSE(outcome.passed);
  EXPECT_NE(outcome.failure_message.find("wrong exception type"),
            std::string::npos);
  EXPECT_NE(outcome.report().find("CFGX_PROPTEST_SEED="), std::string::npos);

  ScopedEnv env("CFGX_PROPTEST_SEED", std::to_string(outcome.failing_seed));
  const auto replayed = fuzz_bytes(corpus, consumer, config);
  ASSERT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.iterations_run, 1u);
  EXPECT_EQ(replayed.failing_bytes, outcome.failing_bytes);
}

TEST(ProptestFuzz, WellBehavedConsumerPasses) {
  const std::vector<std::string> corpus = {std::string(16, 'b')};
  FuzzConfig config;
  config.iterations = 500;
  const auto outcome = fuzz_bytes(corpus, [](const std::string&) {}, config);
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.accepted, outcome.iterations_run);
}

}  // namespace
}  // namespace cfgx::proptest
