#include "dataset/generator.hpp"

#include <gtest/gtest.h>

#include "isa/lifter.hpp"
#include "isa/patterns.hpp"

namespace cfgx {
namespace {

class PerFamilyGenerator : public ::testing::TestWithParam<Family> {};

TEST_P(PerFamilyGenerator, ProgramValidatesAndLifts) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const GeneratedSample sample = generate_program(GetParam(), rng);
  EXPECT_NO_THROW(sample.program.validate());
  const LiftedCfg cfg = lift_program(sample.program);
  EXPECT_GT(cfg.block_count(), 10u);
}

TEST_P(PerFamilyGenerator, DeterministicGivenSeed) {
  Rng rng_a(777), rng_b(777);
  const GeneratedSample a = generate_program(GetParam(), rng_a);
  const GeneratedSample b = generate_program(GetParam(), rng_b);
  EXPECT_EQ(a.program.instructions(), b.program.instructions());
  EXPECT_EQ(a.planted, b.planted);
}

TEST_P(PerFamilyGenerator, DifferentSeedsGiveDifferentPrograms) {
  Rng rng_a(1), rng_b(2);
  const GeneratedSample a = generate_program(GetParam(), rng_a);
  const GeneratedSample b = generate_program(GetParam(), rng_b);
  EXPECT_NE(a.program.instructions(), b.program.instructions());
}

TEST_P(PerFamilyGenerator, AcfgHasLabelFamilyAndFeatures) {
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const Acfg graph = generate_acfg(GetParam(), rng);
  EXPECT_EQ(graph.label(), family_label(GetParam()));
  EXPECT_EQ(graph.family(), to_string(GetParam()));
  EXPECT_EQ(graph.feature_count(), kAcfgFeatureCount);
  EXPECT_NO_THROW(graph.validate());
  // Feature counts are non-negative integers.
  for (std::size_t i = 0; i < graph.features().size(); ++i) {
    EXPECT_GE(graph.features().data()[i], 0.0);
  }
}

TEST_P(PerFamilyGenerator, MalwareHasPlantsBenignDoesNot) {
  Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  const Acfg graph = generate_acfg(GetParam(), rng);
  if (GetParam() == Family::Benign) {
    EXPECT_TRUE(graph.planted_nodes().empty());
  } else {
    EXPECT_FALSE(graph.planted_nodes().empty());
    // Plants are a strict minority: explanations have something to find.
    EXPECT_LT(graph.planted_nodes().size(), graph.num_nodes());
  }
}

TEST_P(PerFamilyGenerator, GraphIsConnectedViaEntryCalls) {
  Rng rng(400 + static_cast<std::uint64_t>(GetParam()));
  const Acfg graph = generate_acfg(GetParam(), rng);
  // The entry block calls every function, so there must be call edges.
  std::size_t call_edges = 0;
  for (const Edge& e : graph.edges()) {
    if (e.kind == EdgeKind::Call) ++call_edges;
  }
  EXPECT_GT(call_edges, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PerFamilyGenerator,
                         ::testing::ValuesIn(kAllFamilies),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(GeneratorTest, PlantedBlocksContainFamilyPatterns) {
  // The planted blocks of a Vundo sample must actually contain the
  // XOR-obfuscation / NOP patterns the family recipe promises.
  Rng rng(55);
  const GeneratedSample sample = generate_program(Family::Vundo, rng);
  const LiftedCfg cfg = lift_program(sample.program);

  std::vector<std::uint32_t> planted_blocks;
  for (const InstrRange& range : sample.planted) {
    for (std::size_t i = range.first; i < range.second; ++i) {
      const std::uint32_t block = cfg.block_of_instruction(i);
      if (planted_blocks.empty() || planted_blocks.back() != block) {
        planted_blocks.push_back(block);
      }
    }
  }
  const PatternReport report = analyze_blocks(cfg, planted_blocks);
  EXPECT_GT(report.pattern_counts.count(MalwarePattern::XorObfuscation), 0u);
  EXPECT_GT(report.pattern_counts.count(MalwarePattern::SemanticNop), 0u);
}

TEST(GeneratorTest, LdpinchPlantsCredentialTheftApis) {
  Rng rng(56);
  const GeneratedSample sample = generate_program(Family::Ldpinch, rng);
  const LiftedCfg cfg = lift_program(sample.program);
  std::vector<std::uint32_t> all_blocks(cfg.block_count());
  for (std::uint32_t i = 0; i < cfg.block_count(); ++i) all_blocks[i] = i;
  const PatternReport report = analyze_blocks(cfg, all_blocks);
  EXPECT_TRUE(report.apis_by_behavior.count(ApiBehavior::ThreadCreation));
  EXPECT_TRUE(report.apis_by_behavior.count(ApiBehavior::Pipe));
  EXPECT_TRUE(report.apis_by_behavior.count(ApiBehavior::Network));
}

TEST(GeneratorTest, InconsistentConfigThrows) {
  Rng rng(1);
  GeneratorConfig config;
  config.min_benign_functions = 5;
  config.max_benign_functions = 3;
  EXPECT_THROW(generate_program(Family::Bagle, rng, config),
               std::invalid_argument);
  GeneratorConfig zero;
  zero.min_benign_functions = 0;
  EXPECT_THROW(generate_program(Family::Bagle, rng, zero),
               std::invalid_argument);
}

TEST(GeneratorTest, GraphSizesFallInExpectedBand) {
  Rng rng(57);
  for (Family family : kAllFamilies) {
    const Acfg graph = generate_acfg(family, rng);
    EXPECT_GE(graph.num_nodes(), 15u) << to_string(family);
    EXPECT_LE(graph.num_nodes(), 400u) << to_string(family);
  }
}

TEST(GeneratorTest, FamiliesDifferStructurally) {
  // Aggregate node counts across a few samples; Swizzor (deep call chains)
  // should produce more blocks than the minimal Hupigon recipe on average.
  double swizzor = 0.0, hupigon = 0.0;
  for (int i = 0; i < 5; ++i) {
    Rng rng_s(1000 + i), rng_h(2000 + i);
    swizzor += generate_acfg(Family::Swizzor, rng_s).num_nodes();
    hupigon += generate_acfg(Family::Hupigon, rng_h).num_nodes();
  }
  EXPECT_GT(swizzor, hupigon);
}

}  // namespace
}  // namespace cfgx
