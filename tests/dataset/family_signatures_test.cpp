// Regression net for the family recipes: every malware family's planted
// blocks must exhibit the Table-V pattern categories its generator promises
// (DESIGN.md section 1), across several seeds.
#include <gtest/gtest.h>

#include <set>

#include "dataset/generator.hpp"
#include "isa/lifter.hpp"
#include "isa/patterns.hpp"

namespace cfgx {
namespace {

struct Signature {
  Family family;
  std::vector<MalwarePattern> required_patterns;
  std::vector<ApiBehavior> required_behaviors;
};

const std::vector<Signature>& signatures() {
  static const std::vector<Signature> table{
      {Family::Bagle,
       {MalwarePattern::SemanticNop, MalwarePattern::CodeManipulation},
       {ApiBehavior::FileIo, ApiBehavior::Network}},
      {Family::Bifrose,
       {MalwarePattern::CodeManipulation, MalwarePattern::XorObfuscation},
       {ApiBehavior::Network}},
      {Family::Hupigon,
       {MalwarePattern::XorObfuscation},
       {ApiBehavior::Registry, ApiBehavior::ProcessCreation}},
      {Family::Ldpinch,
       {MalwarePattern::CodeManipulation},
       {ApiBehavior::ThreadCreation, ApiBehavior::Pipe, ApiBehavior::FileIo,
        ApiBehavior::Network}},
      {Family::Lmir,
       {MalwarePattern::CodeManipulation, MalwarePattern::XorObfuscation},
       {ApiBehavior::FileIo}},
      {Family::Rbot,
       {MalwarePattern::CodeManipulation},
       {ApiBehavior::Network}},
      {Family::Sdbot,
       {MalwarePattern::CodeManipulation},
       {ApiBehavior::Timing, ApiBehavior::Network}},
      {Family::Swizzor,
       {MalwarePattern::CodeManipulation, MalwarePattern::XorObfuscation},
       {ApiBehavior::Network}},
      {Family::Vundo,
       {MalwarePattern::XorObfuscation, MalwarePattern::SemanticNop},
       {ApiBehavior::Memory}},
      {Family::Zbot,
       {MalwarePattern::CodeManipulation, MalwarePattern::XorObfuscation},
       {ApiBehavior::Crypto, ApiBehavior::Registry, ApiBehavior::Timing}},
      {Family::Zlob,
       {MalwarePattern::CodeManipulation},
       {ApiBehavior::Registry, ApiBehavior::ProcessCreation,
        ApiBehavior::LibraryLoading}},
  };
  return table;
}

class FamilySignatures : public ::testing::TestWithParam<Signature> {};

PatternReport planted_report(Family family, std::uint64_t seed,
                             const Program** keep_alive, Program& storage) {
  Rng rng(seed);
  GeneratedSample sample = generate_program(family, rng);
  storage = std::move(sample.program);
  *keep_alive = &storage;
  const LiftedCfg cfg = lift_program(storage);
  std::set<std::uint32_t> planted_blocks;
  for (const InstrRange& range : sample.planted) {
    for (std::size_t i = range.first; i < range.second; ++i) {
      planted_blocks.insert(cfg.block_of_instruction(i));
    }
  }
  const std::vector<std::uint32_t> blocks(planted_blocks.begin(),
                                          planted_blocks.end());
  return analyze_blocks(cfg, blocks);
}

TEST_P(FamilySignatures, PlantedBlocksCarryPromisedPatterns) {
  const Signature& sig = GetParam();
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    Program storage;
    const Program* keep_alive = nullptr;
    const PatternReport report =
        planted_report(sig.family, seed, &keep_alive, storage);

    for (MalwarePattern pattern : sig.required_patterns) {
      EXPECT_GT(report.pattern_counts.count(pattern), 0u)
          << to_string(sig.family) << " seed " << seed << " missing "
          << to_string(pattern);
    }
    for (ApiBehavior behavior : sig.required_behaviors) {
      EXPECT_GT(report.apis_by_behavior.count(behavior), 0u)
          << to_string(sig.family) << " seed " << seed << " missing API "
          << to_string(behavior);
    }
  }
}

TEST_P(FamilySignatures, PaperVerbatimExcerptsAppear) {
  // A handful of families plant the exact instruction idioms quoted in the
  // paper's Table V; assert the strings survive the full pipeline.
  const Signature& sig = GetParam();
  Rng rng(77);
  const GeneratedSample sample = generate_program(sig.family, rng);
  std::string listing = sample.program.to_string();

  switch (sig.family) {
    case Family::Bifrose:
      EXPECT_NE(listing.find("call ds:Sleep"), std::string::npos);
      EXPECT_NE(listing.find("mov eax, [ebp+var_EC.hProcess]"), std::string::npos);
      break;
    case Family::Hupigon:
      EXPECT_NE(listing.find("xor al, 55h"), std::string::npos);
      break;
    case Family::Ldpinch:
      EXPECT_NE(listing.find("call sub_4010A6"), std::string::npos);
      break;
    case Family::Rbot:
      EXPECT_NE(listing.find("call sub_619E4"), std::string::npos);
      EXPECT_NE(listing.find("mov eax, [ebp+var_18]"), std::string::npos);
      break;
    case Family::Vundo:
      EXPECT_NE(listing.find("xor edi, 68A25749h"), std::string::npos);
      break;
    case Family::Zbot:
      EXPECT_NE(listing.find("call j_SleepEx"), std::string::npos);
      EXPECT_NE(listing.find("xor edi, 87BDC1D7h"), std::string::npos);
      break;
    default:
      SUCCEED();  // no verbatim idiom promised for the other families
  }
}

INSTANTIATE_TEST_SUITE_P(AllMalwareFamilies, FamilySignatures,
                         ::testing::ValuesIn(signatures()),
                         [](const auto& info) {
                           return std::string(to_string(info.param.family));
                         });

}  // namespace
}  // namespace cfgx
