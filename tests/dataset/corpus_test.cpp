#include "dataset/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cfgx {
namespace {

CorpusConfig tiny_config() {
  CorpusConfig config;
  config.samples_per_family = 3;
  config.seed = 99;
  return config;
}

TEST(CorpusTest, BalancedAcrossFamilies) {
  const Corpus corpus = generate_corpus(tiny_config());
  EXPECT_EQ(corpus.size(), 3 * kFamilyCount);
  for (Family family : kAllFamilies) {
    EXPECT_EQ(corpus.indices_of(family).size(), 3u) << to_string(family);
  }
}

TEST(CorpusTest, ZeroSamplesThrows) {
  CorpusConfig config;
  config.samples_per_family = 0;
  EXPECT_THROW(generate_corpus(config), std::invalid_argument);
}

TEST(CorpusTest, DeterministicAcrossRuns) {
  const Corpus a = generate_corpus(tiny_config());
  const Corpus b = generate_corpus(tiny_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i), b.graph(i));
  }
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusConfig other = tiny_config();
  other.seed = 100;
  const Corpus a = generate_corpus(tiny_config());
  const Corpus b = generate_corpus(other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.graph(i) == b.graph(i))) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(CorpusTest, SampleSeedsAreDistinct) {
  const Corpus corpus = generate_corpus(tiny_config());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    seeds.insert(corpus.sample_seed(i));
  }
  EXPECT_EQ(seeds.size(), corpus.size());
}

TEST(CorpusTest, RegenerateReproducesGraphStructure) {
  const Corpus corpus = generate_corpus(tiny_config());
  const std::size_t index = 7;
  const GeneratedSample sample = regenerate_sample(corpus, index);
  // Re-lifting the regenerated program must give back the stored ACFG.
  Rng rng(corpus.sample_seed(index));
  const Acfg rebuilt = generate_acfg(
      family_from_label(corpus.graph(index).label()), rng,
      corpus.config().generator);
  EXPECT_EQ(rebuilt, corpus.graph(index));
  EXPECT_FALSE(sample.program.empty());
}

TEST(StratifiedSplitTest, PartitionIsExactAndStratified) {
  const Corpus corpus = generate_corpus(tiny_config());
  const Split split = stratified_split(corpus, 2.0 / 3.0, 5);
  EXPECT_EQ(split.train.size() + split.test.size(), corpus.size());

  // No overlap.
  std::set<std::size_t> train(split.train.begin(), split.train.end());
  for (std::size_t i : split.test) EXPECT_FALSE(train.count(i));

  // Exactly 2 train / 1 test per family.
  for (Family family : kAllFamilies) {
    std::size_t train_count = 0;
    for (std::size_t i : split.train) {
      if (corpus.graph(i).label() == family_label(family)) ++train_count;
    }
    EXPECT_EQ(train_count, 2u) << to_string(family);
  }
}

TEST(StratifiedSplitTest, BadFractionThrows) {
  const Corpus corpus = generate_corpus(tiny_config());
  EXPECT_THROW(stratified_split(corpus, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(stratified_split(corpus, 1.0, 1), std::invalid_argument);
}

TEST(StratifiedSplitTest, SeedChangesAssignment) {
  const Corpus corpus = generate_corpus(tiny_config());
  const Split a = stratified_split(corpus, 2.0 / 3.0, 1);
  const Split b = stratified_split(corpus, 2.0 / 3.0, 2);
  EXPECT_NE(a.train, b.train);
}

TEST(FeatureScalerTest, TransformStandardizesTrainData) {
  const Corpus corpus = generate_corpus(tiny_config());
  std::vector<std::size_t> all(corpus.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  FeatureScaler scaler;
  scaler.fit(corpus, all);
  ASSERT_TRUE(scaler.fitted());

  // Aggregate transformed mean per column ~ 0, stddev ~ 1.
  std::vector<double> mean(kAcfgFeatureCount, 0.0);
  std::vector<double> var(kAcfgFeatureCount, 0.0);
  std::size_t rows = 0;
  for (std::size_t i : all) {
    const Matrix t = scaler.transform(corpus.graph(i).features());
    for (std::size_t r = 0; r < t.rows(); ++r) {
      for (std::size_t c = 0; c < t.cols(); ++c) mean[c] += t(r, c);
    }
    rows += t.rows();
  }
  for (double& m : mean) m /= static_cast<double>(rows);
  for (std::size_t i : all) {
    const Matrix t = scaler.transform(corpus.graph(i).features());
    for (std::size_t r = 0; r < t.rows(); ++r) {
      for (std::size_t c = 0; c < t.cols(); ++c) {
        var[c] += (t(r, c) - mean[c]) * (t(r, c) - mean[c]);
      }
    }
  }
  for (std::size_t c = 0; c < kAcfgFeatureCount; ++c) {
    EXPECT_NEAR(mean[c], 0.0, 1e-9) << "column " << c;
    // Constant raw columns (raw stddev 0) pass through unscaled and keep
    // zero variance; all others must standardize to unit variance.
    const double v = var[c] / static_cast<double>(rows);
    EXPECT_TRUE(std::abs(v - 1.0) < 1e-6 || v < 1e-12) << "column " << c
                                                       << " var " << v;
  }
}

TEST(FeatureScalerTest, UnfittedTransformThrows) {
  FeatureScaler scaler;
  EXPECT_THROW(scaler.transform(Matrix(2, kAcfgFeatureCount)), std::logic_error);
}

TEST(FeatureScalerTest, ColumnMismatchThrows) {
  const Corpus corpus = generate_corpus(tiny_config());
  std::vector<std::size_t> all(corpus.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  FeatureScaler scaler;
  scaler.fit(corpus, all);
  EXPECT_THROW(scaler.transform(Matrix(2, 5)), std::invalid_argument);
}

TEST(FeatureScalerTest, EmptyFitThrows) {
  const Corpus corpus = generate_corpus(tiny_config());
  FeatureScaler scaler;
  EXPECT_THROW(scaler.fit(corpus, {}), std::invalid_argument);
}

TEST(FeatureScalerTest, MatrixRoundTrip) {
  const Corpus corpus = generate_corpus(tiny_config());
  std::vector<std::size_t> all(corpus.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  FeatureScaler scaler;
  scaler.fit(corpus, all);

  const FeatureScaler restored = FeatureScaler::from_matrix(scaler.to_matrix());
  const Matrix x = corpus.graph(0).features();
  EXPECT_TRUE(approx_equal(scaler.transform(x), restored.transform(x), 1e-12));
}

TEST(FeatureScalerTest, FromMatrixValidation) {
  EXPECT_THROW(FeatureScaler::from_matrix(Matrix(3, 4)), std::invalid_argument);
  Matrix bad(2, 2, 1.0);
  bad(1, 0) = -1.0;  // non-positive stddev
  EXPECT_THROW(FeatureScaler::from_matrix(bad), std::invalid_argument);
}

}  // namespace
}  // namespace cfgx
