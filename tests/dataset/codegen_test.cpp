#include "dataset/codegen.hpp"

#include <gtest/gtest.h>

#include "isa/lifter.hpp"
#include "isa/patterns.hpp"

namespace cfgx {
namespace {

// Runs the pattern detectors over every instruction emitted inside the
// planted ranges of `gen`'s program.
std::vector<PatternHit> hits_in_planted(const Program& program,
                                        const std::vector<InstrRange>& planted) {
  std::vector<Instruction> instructions;
  for (const InstrRange& range : planted) {
    for (std::size_t i = range.first; i < range.second; ++i) {
      instructions.push_back(program.instructions()[i]);
    }
  }
  return detect_patterns(instructions);
}

TEST(CodegenTest, FreshLabelsAreUnique) {
  Rng rng(1);
  Codegen gen(rng);
  EXPECT_NE(gen.fresh_label("x"), gen.fresh_label("x"));
}

TEST(CodegenTest, ComputeEmitsRequestedLength) {
  Rng rng(2);
  Codegen gen(rng);
  gen.emit_compute(7);
  gen.builder().ret();
  const Program program = gen.finish();
  EXPECT_EQ(program.size(), 8u);
}

TEST(CodegenTest, BranchDiamondBuildsValidProgram) {
  Rng rng(3);
  Codegen gen(rng);
  gen.emit_branch_diamond(3);
  gen.builder().ret();
  const Program program = gen.finish();
  const LiftedCfg cfg = lift_program(program);
  EXPECT_GE(cfg.block_count(), 3u);  // cond, then-arm, else-arm/join
}

TEST(CodegenTest, CountedLoopHasBackEdge) {
  Rng rng(4);
  Codegen gen(rng);
  gen.emit_counted_loop(2, 10);
  gen.builder().ret();
  const Program program = gen.finish();
  const LiftedCfg cfg = lift_program(program);
  bool has_back_edge = false;
  for (const CfgEdge& e : cfg.edges()) {
    if (e.dst <= e.src) has_back_edge = true;
  }
  EXPECT_TRUE(has_back_edge);
}

TEST(CodegenTest, BenignFunctionIsValidAndReturnsEntry) {
  Rng rng(5);
  Codegen gen(rng);
  const std::string entry = gen.emit_benign_function(6);
  const Program program = gen.finish();
  EXPECT_TRUE(program.label_index(entry).has_value());
  EXPECT_EQ(program.instructions().back().opcode, Opcode::Ret);
  // No malicious plants from benign scaffolding.
  EXPECT_TRUE(gen.planted_ranges().empty());
}

TEST(CodegenTest, BenignFunctionAvoidsCodeManipulationShape) {
  // Benign API calls deliberately store via EBX, not EAX, right after the
  // call; the detector must not flag them.
  Rng rng(6);
  Codegen gen(rng);
  gen.emit_benign_api_call();
  gen.builder().ret();
  const Program program = gen.finish();
  const auto hits = detect_patterns(program.instructions());
  for (const PatternHit& hit : hits) {
    EXPECT_NE(hit.pattern, MalwarePattern::CodeManipulation);
  }
}

TEST(CodegenTest, XorDecoderLoopIsPlantedAndDetectable) {
  Rng rng(7);
  Codegen gen(rng);
  gen.emit_xor_decoder_loop(0x55, /*byte_key=*/true);
  gen.builder().ret();
  ASSERT_EQ(gen.planted_ranges().size(), 1u);
  const Program program = gen.finish();
  EXPECT_NO_THROW(program.validate());

  bool found = false;
  for (const auto& hit :
       hits_in_planted(program, {{0, program.size() - 1}})) {
    if (hit.pattern == MalwarePattern::XorObfuscation) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CodegenTest, XorObfuscationBlockContainsBigKey) {
  Rng rng(8);
  Codegen gen(rng);
  gen.emit_xor_obfuscation_block(0x68A25749);
  gen.builder().ret();
  const Program program = gen.finish();
  bool has_key = false;
  for (const Instruction& instr : program.instructions()) {
    for (const Operand& op : instr.operands) {
      if (op.kind == Operand::Kind::Imm && op.imm == 0x68A25749) has_key = true;
    }
  }
  EXPECT_TRUE(has_key);
}

TEST(CodegenTest, SemanticNopSledAllNops) {
  Rng rng(9);
  Codegen gen(rng);
  gen.emit_semantic_nop_sled(10);
  gen.builder().ret();
  const Program program = gen.finish();
  const auto hits = detect_patterns(
      std::span<const Instruction>(program.instructions().data(), 10));
  std::size_t nops = 0;
  for (const auto& hit : hits) {
    if (hit.pattern == MalwarePattern::SemanticNop) ++nops;
  }
  EXPECT_EQ(nops, 10u);
}

TEST(CodegenTest, SelfLoopBlockJumpsToItself) {
  Rng rng(10);
  Codegen gen(rng);
  gen.emit_self_loop_block(2);
  gen.builder().ret();
  const Program program = gen.finish();
  const LiftedCfg cfg = lift_program(program);
  bool self_loop = false;
  for (const CfgEdge& e : cfg.edges()) {
    if (e.src == e.dst) self_loop = true;
  }
  EXPECT_TRUE(self_loop);
}

TEST(CodegenTest, CodeManipulationDetected) {
  Rng rng(11);
  Codegen gen(rng);
  gen.emit_code_manipulation("ds:Sleep", "ebp+var_EC.hProcess");
  gen.builder().ret();
  const Program program = gen.finish();
  const auto hits = detect_patterns(program.instructions());
  bool found = false;
  for (const auto& hit : hits) {
    if (hit.pattern == MalwarePattern::CodeManipulation) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CodegenTest, CodeManipulationPopVariant) {
  Rng rng(12);
  Codegen gen(rng);
  gen.emit_code_manipulation("sub_414120", "");
  gen.builder().ret();
  const Program program = gen.finish();
  bool pop_eax = false;
  for (std::size_t i = 1; i < program.size(); ++i) {
    const Instruction& prev = program.instructions()[i - 1];
    const Instruction& curr = program.instructions()[i];
    if (prev.is_call() && curr.opcode == Opcode::Pop &&
        curr.touches_register(Register::Eax)) {
      pop_eax = true;
    }
  }
  EXPECT_TRUE(pop_eax);
}

TEST(CodegenTest, ApiChainCallsEveryApi) {
  Rng rng(13);
  Codegen gen(rng);
  static constexpr std::array apis = {"ds:CreateThread", "ds:ReadFile",
                                      "ds:send"};
  gen.emit_api_chain(apis);
  gen.builder().ret();
  const Program program = gen.finish();
  std::size_t call_count = 0;
  for (const Instruction& instr : program.instructions()) {
    if (instr.is_call()) ++call_count;
  }
  EXPECT_EQ(call_count, 3u);
  ASSERT_EQ(gen.planted_ranges().size(), 1u);
}

TEST(CodegenTest, DispatcherFansOut) {
  Rng rng(14);
  Codegen gen(rng);
  gen.emit_dispatcher(5);
  gen.builder().ret();
  const Program program = gen.finish();
  const LiftedCfg cfg = lift_program(program);
  // 5 compare blocks + default jump + 5 cases + exit: comfortably > 8.
  EXPECT_GE(cfg.block_count(), 8u);
  std::size_t compares = 0;
  for (const Instruction& instr : program.instructions()) {
    if (instr.opcode == Opcode::Cmp) ++compares;
  }
  EXPECT_GE(compares, 5u);
}

TEST(CodegenTest, PlantedRangesAreOrderedAndDisjoint) {
  Rng rng(15);
  Codegen gen(rng);
  gen.emit_xor_decoder_loop(0x11, false);
  gen.emit_compute(3);
  gen.emit_semantic_nop_sled(4);
  gen.builder().ret();
  const auto& ranges = gen.planted_ranges();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_LT(ranges[0].first, ranges[0].second);
  EXPECT_LE(ranges[0].second, ranges[1].first);
  EXPECT_LT(ranges[1].first, ranges[1].second);
}

}  // namespace
}  // namespace cfgx
