#include "dataset/families.hpp"

#include <gtest/gtest.h>

namespace cfgx {
namespace {

TEST(FamiliesTest, TwelveFamilies) {
  EXPECT_EQ(kFamilyCount, 12u);
  EXPECT_EQ(kAllFamilies.size(), 12u);
}

TEST(FamiliesTest, NamesMatchPaper) {
  EXPECT_STREQ(to_string(Family::Bagle), "Bagle");
  EXPECT_STREQ(to_string(Family::Bifrose), "Bifrose");
  EXPECT_STREQ(to_string(Family::Hupigon), "Hupigon");
  EXPECT_STREQ(to_string(Family::Ldpinch), "Ldpinch");
  EXPECT_STREQ(to_string(Family::Lmir), "Lmir");
  EXPECT_STREQ(to_string(Family::Rbot), "Rbot");
  EXPECT_STREQ(to_string(Family::Sdbot), "Sdbot");
  EXPECT_STREQ(to_string(Family::Swizzor), "Swizzor");
  EXPECT_STREQ(to_string(Family::Vundo), "Vundo");
  EXPECT_STREQ(to_string(Family::Zbot), "Zbot");
  EXPECT_STREQ(to_string(Family::Zlob), "Zlob");
  EXPECT_STREQ(to_string(Family::Benign), "Benign");
}

TEST(FamiliesTest, RoundTripThroughString) {
  for (Family family : kAllFamilies) {
    EXPECT_EQ(family_from_string(to_string(family)), family);
  }
}

TEST(FamiliesTest, UnknownNameThrows) {
  EXPECT_THROW(family_from_string("NotAFamily"), std::invalid_argument);
  EXPECT_THROW(family_from_string("bagle"), std::invalid_argument);  // case
}

TEST(FamiliesTest, LabelRoundTrip) {
  for (Family family : kAllFamilies) {
    EXPECT_EQ(family_from_label(family_label(family)), family);
  }
}

TEST(FamiliesTest, LabelOutOfRangeThrows) {
  EXPECT_THROW(family_from_label(-1), std::invalid_argument);
  EXPECT_THROW(family_from_label(12), std::invalid_argument);
}

TEST(FamiliesTest, LabelsAreDense) {
  for (std::size_t i = 0; i < kFamilyCount; ++i) {
    EXPECT_EQ(family_label(kAllFamilies[i]), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace cfgx
