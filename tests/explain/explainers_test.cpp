// Contract and behaviour tests for all four explainers plus the trivial
// baselines, sharing one lightly-trained GNN fixture.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "explain/baselines.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/gnnexplainer.hpp"
#include "explain/pgexplainer.hpp"
#include "explain/subgraphx.hpp"
#include "gnn/trainer.hpp"

namespace cfgx {
namespace {

class ExplainerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 3;
    corpus_config.seed = 21;
    corpus_ = new Corpus(generate_corpus(corpus_config));
    split_ = new Split(stratified_split(*corpus_, 2.0 / 3.0, 9));

    GnnConfig gnn_config;
    gnn_config.gcn_dims = {12, 10};
    Rng rng(4);
    gnn_ = new GnnClassifier(gnn_config, rng);
    GnnTrainConfig config;
    config.epochs = 20;
    train_gnn(*gnn_, *corpus_, split_->train, config);
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete split_;
    delete gnn_;
    corpus_ = nullptr;
    split_ = nullptr;
    gnn_ = nullptr;
  }

  static const Acfg& sample_graph() { return corpus_->graph(split_->test[0]); }

  static void expect_valid_ranking(const NodeRanking& ranking,
                                   const Acfg& graph) {
    EXPECT_EQ(ranking.order.size(), graph.num_nodes());
    std::set<std::uint32_t> unique(ranking.order.begin(), ranking.order.end());
    EXPECT_EQ(unique.size(), graph.num_nodes());
    for (std::uint32_t v : ranking.order) EXPECT_LT(v, graph.num_nodes());
  }

  static Corpus* corpus_;
  static Split* split_;
  static GnnClassifier* gnn_;
};

Corpus* ExplainerFixture::corpus_ = nullptr;
Split* ExplainerFixture::split_ = nullptr;
GnnClassifier* ExplainerFixture::gnn_ = nullptr;

// ---------- CFGExplainer adapter ----------

TEST_F(ExplainerFixture, CfgExplainerRequiresFit) {
  CfgExplainer explainer(*gnn_);
  EXPECT_FALSE(explainer.fitted());
  EXPECT_THROW(explainer.explain(sample_graph()), std::logic_error);
}

TEST_F(ExplainerFixture, CfgExplainerProducesValidRanking) {
  ExplainerTrainConfig train_config;
  train_config.epochs = 40;
  CfgExplainer explainer(*gnn_, train_config);
  explainer.fit(*corpus_, split_->train);
  EXPECT_TRUE(explainer.fitted());
  EXPECT_GT(explainer.train_result().epoch_losses.size(), 0u);
  const NodeRanking ranking = explainer.explain(sample_graph());
  expect_valid_ranking(ranking, sample_graph());
}

TEST_F(ExplainerFixture, CfgExplainerInterpretExposesSubgraphs) {
  ExplainerTrainConfig train_config;
  train_config.epochs = 20;
  CfgExplainer explainer(*gnn_, train_config);
  explainer.fit(*corpus_, split_->train);
  const Interpretation interpretation = explainer.interpret(sample_graph());
  EXPECT_EQ(interpretation.subgraph_nodes.size(), 10u);
  // Adapter defaults to skipping adjacency snapshots.
  EXPECT_TRUE(interpretation.subgraph_adjacencies.empty());
}

TEST_F(ExplainerFixture, CfgExplainerName) {
  CfgExplainer explainer(*gnn_);
  EXPECT_EQ(explainer.name(), "CFGExplainer");
}

// ---------- GNNExplainer ----------

TEST_F(ExplainerFixture, GnnExplainerProducesValidRanking) {
  GnnExplainerConfig config;
  config.iterations = 15;  // keep the test fast
  GnnExplainer explainer(*gnn_, config);
  const NodeRanking ranking = explainer.explain(sample_graph());
  expect_valid_ranking(ranking, sample_graph());
  EXPECT_EQ(explainer.last_edge_scores().size(), sample_graph().num_edges());
}

TEST_F(ExplainerFixture, GnnExplainerEdgeScoresAreProbabilities) {
  GnnExplainerConfig config;
  config.iterations = 10;
  GnnExplainer explainer(*gnn_, config);
  explainer.explain(sample_graph());
  for (double score : explainer.last_edge_scores()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_F(ExplainerFixture, GnnExplainerIsDeterministic) {
  GnnExplainerConfig config;
  config.iterations = 10;
  GnnExplainer a(*gnn_, config), b(*gnn_, config);
  EXPECT_EQ(a.explain(sample_graph()).order, b.explain(sample_graph()).order);
}

TEST_F(ExplainerFixture, GnnExplainerHandlesEdgelessGraph) {
  Acfg isolated(4);
  isolated.set_label(0);
  GnnExplainer explainer(*gnn_);
  const NodeRanking ranking = explainer.explain(isolated);
  expect_valid_ranking(ranking, isolated);
}

TEST_F(ExplainerFixture, GnnExplainerSizeRegularizerShrinksMask) {
  // With a crushing size penalty the optimized gates must end lower than
  // with no penalty.
  GnnExplainerConfig open_config;
  open_config.iterations = 40;
  open_config.size_weight = 0.0;
  open_config.entropy_weight = 0.0;
  GnnExplainer open_mask(*gnn_, open_config);
  open_mask.explain(sample_graph());
  double open_mean = 0.0;
  for (double s : open_mask.last_edge_scores()) open_mean += s;
  open_mean /= static_cast<double>(open_mask.last_edge_scores().size());

  GnnExplainerConfig tight_config = open_config;
  tight_config.size_weight = 2.0;
  GnnExplainer tight_mask(*gnn_, tight_config);
  tight_mask.explain(sample_graph());
  double tight_mean = 0.0;
  for (double s : tight_mask.last_edge_scores()) tight_mean += s;
  tight_mean /= static_cast<double>(tight_mask.last_edge_scores().size());

  EXPECT_LT(tight_mean, open_mean);
}

// ---------- PGExplainer ----------

TEST_F(ExplainerFixture, PgExplainerRequiresFit) {
  PgExplainer explainer(*gnn_);
  EXPECT_FALSE(explainer.fitted());
  EXPECT_THROW(explainer.explain(sample_graph()), std::logic_error);
}

TEST_F(ExplainerFixture, PgExplainerProducesValidRanking) {
  PgExplainerConfig config;
  config.epochs = 3;
  PgExplainer explainer(*gnn_, config);
  explainer.fit(*corpus_, split_->train);
  EXPECT_TRUE(explainer.fitted());
  const NodeRanking ranking = explainer.explain(sample_graph());
  expect_valid_ranking(ranking, sample_graph());
}

TEST_F(ExplainerFixture, PgExplainerEdgeScoresAreProbabilities) {
  PgExplainerConfig config;
  config.epochs = 2;
  PgExplainer explainer(*gnn_, config);
  explainer.fit(*corpus_, split_->train);
  const auto scores = explainer.edge_scores(sample_graph());
  EXPECT_EQ(scores.size(), sample_graph().num_edges());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(ExplainerFixture, PgExplainerExplainIsDeterministicAfterFit) {
  PgExplainerConfig config;
  config.epochs = 2;
  PgExplainer explainer(*gnn_, config);
  explainer.fit(*corpus_, split_->train);
  EXPECT_EQ(explainer.explain(sample_graph()).order,
            explainer.explain(sample_graph()).order);
}

// ---------- SubgraphX ----------

TEST_F(ExplainerFixture, SubgraphXProducesValidRanking) {
  SubgraphXConfig config;
  config.mcts_iterations = 5;
  config.shapley_samples = 2;
  SubgraphX explainer(*gnn_, config);
  const NodeRanking ranking = explainer.explain(sample_graph());
  expect_valid_ranking(ranking, sample_graph());
  EXPECT_GT(explainer.last_gnn_evaluations(), 10u);
}

TEST_F(ExplainerFixture, SubgraphXIsDeterministic) {
  SubgraphXConfig config;
  config.mcts_iterations = 4;
  config.shapley_samples = 2;
  SubgraphX a(*gnn_, config), b(*gnn_, config);
  EXPECT_EQ(a.explain(sample_graph()).order, b.explain(sample_graph()).order);
}

TEST_F(ExplainerFixture, SubgraphXEmptyGraphThrows) {
  SubgraphX explainer(*gnn_);
  EXPECT_THROW(explainer.explain(Acfg(0)), std::invalid_argument);
}

TEST_F(ExplainerFixture, SubgraphXConfigValidation) {
  SubgraphXConfig config;
  config.prune_fraction = 0.0;
  EXPECT_THROW(SubgraphX(*gnn_, config), std::invalid_argument);
}

TEST_F(ExplainerFixture, SubgraphXMoreIterationsMoreEvaluations) {
  SubgraphXConfig small_config;
  small_config.mcts_iterations = 3;
  small_config.shapley_samples = 2;
  SubgraphX small(*gnn_, small_config);
  small.explain(sample_graph());

  SubgraphXConfig big_config = small_config;
  big_config.mcts_iterations = 12;
  SubgraphX big(*gnn_, big_config);
  big.explain(sample_graph());

  EXPECT_GT(big.last_gnn_evaluations(), small.last_gnn_evaluations());
}


TEST_F(ExplainerFixture, GnnExplainerFeatureMaskProducesFeatureScores) {
  GnnExplainerConfig config;
  config.iterations = 20;
  config.learn_feature_mask = true;
  GnnExplainer explainer(*gnn_, config);
  const NodeRanking ranking = explainer.explain(sample_graph());
  expect_valid_ranking(ranking, sample_graph());
  const auto& feature_scores = explainer.last_feature_scores();
  ASSERT_EQ(feature_scores.size(), kAcfgFeatureCount);
  for (double s : feature_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(ExplainerFixture, GnnExplainerFeatureMaskOffByDefault) {
  GnnExplainerConfig config;
  config.iterations = 5;
  GnnExplainer explainer(*gnn_, config);
  explainer.explain(sample_graph());
  EXPECT_TRUE(explainer.last_feature_scores().empty());
}

TEST_F(ExplainerFixture, GnnExplainerFeatureMaskDeterministic) {
  GnnExplainerConfig config;
  config.iterations = 10;
  config.learn_feature_mask = true;
  GnnExplainer a(*gnn_, config), b(*gnn_, config);
  a.explain(sample_graph());
  b.explain(sample_graph());
  EXPECT_EQ(a.last_feature_scores(), b.last_feature_scores());
}

// ---------- trivial baselines ----------

TEST_F(ExplainerFixture, RandomExplainerValidAndSeedStable) {
  RandomExplainer explainer(5);
  const NodeRanking a = explainer.explain(sample_graph());
  expect_valid_ranking(a, sample_graph());
  RandomExplainer again(5);
  EXPECT_EQ(a.order, again.explain(sample_graph()).order);
  RandomExplainer other(6);
  EXPECT_NE(a.order, other.explain(sample_graph()).order);
}

TEST_F(ExplainerFixture, DegreeExplainerRanksHubsFirst) {
  Acfg star(5);
  star.add_edge(0, 1, EdgeKind::Flow);
  star.add_edge(0, 2, EdgeKind::Flow);
  star.add_edge(0, 3, EdgeKind::Flow);
  star.add_edge(4, 0, EdgeKind::Call);
  star.set_label(0);
  DegreeExplainer explainer;
  const NodeRanking ranking = explainer.explain(star);
  EXPECT_EQ(ranking.order[0], 0u);  // hub has degree 4
}

TEST_F(ExplainerFixture, ExplainerNamesAreDistinct) {
  GnnExplainer gx(*gnn_);
  PgExplainer pg(*gnn_);
  SubgraphX sx(*gnn_);
  RandomExplainer rnd;
  DegreeExplainer deg;
  const std::set<std::string> names{gx.name(), pg.name(), sx.name(),
                                    rnd.name(), deg.name()};
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace cfgx
