#include "explain/explainer_api.hpp"

#include <gtest/gtest.h>
#include <cmath>

namespace cfgx {
namespace {

TEST(NodeRankingTest, TopFractionTakesPrefix) {
  NodeRanking ranking;
  ranking.order = {4, 2, 0, 1, 3};
  const auto top40 = ranking.top_fraction(0.4);
  ASSERT_EQ(top40.size(), 2u);
  EXPECT_EQ(top40[0], 4u);
  EXPECT_EQ(top40[1], 2u);
}

TEST(NodeRankingTest, TopFractionAtLeastOneNode) {
  NodeRanking ranking;
  ranking.order = {7, 8, 9};
  EXPECT_EQ(ranking.top_fraction(0.01).size(), 1u);
  EXPECT_EQ(ranking.top_fraction(1.0).size(), 3u);
}

TEST(RankingFromScoresTest, DescendingWithStableTies) {
  const NodeRanking ranking = ranking_from_scores({0.3, 0.9, 0.3, 0.1});
  ASSERT_EQ(ranking.order.size(), 4u);
  EXPECT_EQ(ranking.order[0], 1u);
  EXPECT_EQ(ranking.order[1], 0u);  // tie with node 2, lower index first
  EXPECT_EQ(ranking.order[2], 2u);
  EXPECT_EQ(ranking.order[3], 3u);
}

TEST(EdgeToNodeScoresTest, MaxIncidentWins) {
  Acfg graph(4);
  graph.add_edge(0, 1, EdgeKind::Flow);  // edge 0
  graph.add_edge(1, 2, EdgeKind::Flow);  // edge 1
  const auto node_scores = node_scores_from_edge_scores(graph, {0.2, 0.8});
  EXPECT_DOUBLE_EQ(node_scores[0], 0.2);
  EXPECT_DOUBLE_EQ(node_scores[1], 0.8);  // max(0.2, 0.8)
  EXPECT_DOUBLE_EQ(node_scores[2], 0.8);
  // Node 3 is isolated: -inf sorts to the very end.
  EXPECT_TRUE(std::isinf(node_scores[3]));
  EXPECT_LT(node_scores[3], 0.0);
}

TEST(EdgeToNodeScoresTest, ArityMismatchThrows) {
  Acfg graph(2);
  graph.add_edge(0, 1, EdgeKind::Flow);
  EXPECT_THROW(node_scores_from_edge_scores(graph, {0.1, 0.2}),
               std::invalid_argument);
}

TEST(EdgeToNodeScoresTest, IsolatedNodesRankLast) {
  Acfg graph(3);
  graph.add_edge(0, 1, EdgeKind::Flow);
  const auto ranking =
      ranking_from_scores(node_scores_from_edge_scores(graph, {0.5}));
  EXPECT_EQ(ranking.order.back(), 2u);
}

}  // namespace
}  // namespace cfgx
