#include "explain/evaluate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "explain/baselines.hpp"
#include "gnn/trainer.hpp"
#include "graph/ops.hpp"

namespace cfgx {
namespace {

class EvaluateFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 3;
    corpus_config.seed = 33;
    corpus_ = new Corpus(generate_corpus(corpus_config));
    split_ = new Split(stratified_split(*corpus_, 2.0 / 3.0, 2));

    GnnConfig gnn_config;
    gnn_config.gcn_dims = {12, 10};
    Rng rng(8);
    gnn_ = new GnnClassifier(gnn_config, rng);
    GnnTrainConfig config;
    config.epochs = 25;
    train_gnn(*gnn_, *corpus_, split_->train, config);
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete split_;
    delete gnn_;
    corpus_ = nullptr;
    split_ = nullptr;
    gnn_ = nullptr;
  }

  static Corpus* corpus_;
  static Split* split_;
  static GnnClassifier* gnn_;
};

Corpus* EvaluateFixture::corpus_ = nullptr;
Split* EvaluateFixture::split_ = nullptr;
GnnClassifier* EvaluateFixture::gnn_ = nullptr;

TEST_F(EvaluateFixture, CurvesCoverEveryFamilyInTheEvalSet) {
  RandomExplainer explainer(1);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  EXPECT_EQ(eval.per_family.size(), kFamilyCount);
  for (const FamilyCurve& curve : eval.per_family) {
    EXPECT_EQ(curve.fractions.size(), 10u);
    EXPECT_EQ(curve.accuracies.size(), 10u);
    EXPECT_EQ(curve.sample_count, 1u);  // 1 test graph per family here
  }
  EXPECT_EQ(eval.explain_time.count(), split_->test.size());
}

TEST_F(EvaluateFixture, AccuraciesAreProbabilities) {
  RandomExplainer explainer(2);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  for (const FamilyCurve& curve : eval.per_family) {
    for (double acc : curve.accuracies) {
      EXPECT_GE(acc, 0.0);
      EXPECT_LE(acc, 1.0);
    }
    EXPECT_GE(curve.auc, 0.0);
    EXPECT_LE(curve.auc, 1.0);
  }
  EXPECT_GE(eval.average_auc, 0.0);
  EXPECT_LE(eval.average_auc, 1.0);
}

TEST_F(EvaluateFixture, FullSubgraphMatchesFullGraphAccuracy) {
  // At 100% kept nodes the masked graph IS the original graph, so the
  // average accuracy at fraction 1.0 must equal full_graph_accuracy.
  RandomExplainer explainer(3);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);

  double per_family_full = 0.0;
  for (const FamilyCurve& curve : eval.per_family) {
    per_family_full += curve.accuracies.back();
  }
  per_family_full /= static_cast<double>(eval.per_family.size());

  const double full = full_graph_accuracy(*gnn_, *corpus_, split_->test);
  EXPECT_NEAR(per_family_full, full, 1e-9);
  EXPECT_NEAR(eval.average_accuracy_at(1.0), full, 1e-9);
}

TEST_F(EvaluateFixture, FidelityMinusIsConsistent) {
  RandomExplainer explainer(4);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  EXPECT_NEAR(eval.fidelity_minus(0.2),
              eval.average_accuracy_at(1.0) - eval.average_accuracy_at(0.2),
              1e-12);
}

TEST_F(EvaluateFixture, PlantMetricsAreBounded) {
  RandomExplainer explainer(5);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  EXPECT_GE(eval.plant_precision, 0.0);
  EXPECT_LE(eval.plant_precision, 1.0);
  EXPECT_GE(eval.plant_recall, 0.0);
  EXPECT_LE(eval.plant_recall, 1.0);
}

TEST_F(EvaluateFixture, BadStepSizeThrows) {
  RandomExplainer explainer(6);
  EvaluationConfig config;
  config.step_size_percent = 30;
  EXPECT_THROW(
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test, config),
      std::invalid_argument);
}

TEST_F(EvaluateFixture, EmptyEvalSetThrows) {
  RandomExplainer explainer(7);
  EXPECT_THROW(evaluate_explainer(explainer, *gnn_, *corpus_, {}),
               std::invalid_argument);
}

TEST_F(EvaluateFixture, CoarserStepGivesFewerGridPoints) {
  RandomExplainer explainer(8);
  EvaluationConfig config;
  config.step_size_percent = 25;
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test, config);
  for (const FamilyCurve& curve : eval.per_family) {
    EXPECT_EQ(curve.fractions.size(), 4u);
  }
}

TEST_F(EvaluateFixture, AccuracyAtPicksNearestGridPoint) {
  FamilyCurve curve;
  curve.fractions = {0.25, 0.5, 0.75, 1.0};
  curve.accuracies = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(curve.accuracy_at(0.5), 0.2);
  EXPECT_DOUBLE_EQ(curve.accuracy_at(0.55), 0.2);
  EXPECT_DOUBLE_EQ(curve.accuracy_at(0.95), 0.4);
  // Both endpoints are valid requests (0 snaps to the smallest grid point).
  EXPECT_DOUBLE_EQ(curve.accuracy_at(0.0), 0.1);
  EXPECT_DOUBLE_EQ(curve.accuracy_at(1.0), 0.4);
}

TEST_F(EvaluateFixture, AccuracyAtEmptyCurveThrows) {
  const FamilyCurve curve;
  EXPECT_THROW(curve.accuracy_at(0.5), std::logic_error);
}

TEST_F(EvaluateFixture, AccuracyAtMisalignedCurveThrows) {
  FamilyCurve curve;
  curve.fractions = {0.5, 1.0};
  curve.accuracies = {0.2};
  EXPECT_THROW(curve.accuracy_at(0.5), std::logic_error);
}

TEST_F(EvaluateFixture, AccuracyAtOutOfRangeFractionThrows) {
  FamilyCurve curve;
  curve.fractions = {0.5, 1.0};
  curve.accuracies = {0.2, 0.4};
  EXPECT_THROW(curve.accuracy_at(-0.1), std::invalid_argument);
  EXPECT_THROW(curve.accuracy_at(1.1), std::invalid_argument);
  EXPECT_THROW(curve.accuracy_at(std::nan("")), std::invalid_argument);
}

TEST_F(EvaluateFixture, ComplementAccuracyMatchesManualComplementMasking) {
  // Drive one graph through evaluate_explainer and recompute the fidelity+
  // complement prediction by hand: accuracy over a singleton eval set is
  // exactly the 0/1 correctness of the complement-masked prediction.
  DegreeExplainer explainer;
  const std::vector<std::size_t> single = {split_->test.front()};
  const auto eval = evaluate_explainer(explainer, *gnn_, *corpus_, single);

  const Acfg& graph = corpus_->graph(single.front());
  const auto top20 = explainer.explain(graph).top_fraction(0.2);
  std::vector<char> in_top(graph.num_nodes(), 0);
  for (std::uint32_t v : top20) in_top[v] = 1;
  std::vector<std::uint32_t> complement;
  for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) {
    if (!in_top[v]) complement.push_back(v);
  }
  const MaskedGraph masked =
      keep_only(graph.dense_adjacency(), graph.features(), complement);
  const Prediction prediction =
      gnn_->predict_masked(masked.adjacency, masked.features);
  const double expected =
      static_cast<int>(prediction.predicted_class) == graph.label() ? 1.0
                                                                    : 0.0;
  EXPECT_DOUBLE_EQ(eval.complement_accuracy_at_20, expected);
}

TEST_F(EvaluateFixture, ExplainerNameRecorded) {
  RandomExplainer explainer(9);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  EXPECT_EQ(eval.explainer_name, "Random");
}

TEST_F(EvaluateFixture, FullGraphAccuracyEmptySetIsZero) {
  EXPECT_DOUBLE_EQ(full_graph_accuracy(*gnn_, *corpus_, {}), 0.0);
}

TEST_F(EvaluateFixture, SparsityAtTwentyIsAroundPointEight) {
  RandomExplainer explainer(10);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  // top_fraction uses ceil, so sparsity is slightly below 0.8 on average.
  EXPECT_GT(eval.sparsity_at_20, 0.7);
  EXPECT_LT(eval.sparsity_at_20, 0.82);
}

TEST_F(EvaluateFixture, FidelityPlusBoundedAndConsistent) {
  RandomExplainer explainer(11);
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test);
  EXPECT_GE(eval.complement_accuracy_at_20, 0.0);
  EXPECT_LE(eval.complement_accuracy_at_20, 1.0);
  const double full = eval.average_accuracy_at(1.0);
  EXPECT_NEAR(eval.fidelity_plus(full),
              full - eval.complement_accuracy_at_20, 1e-12);
}

TEST_F(EvaluateFixture, FidelityPlusCanBeDisabled) {
  RandomExplainer explainer(12);
  EvaluationConfig config;
  config.measure_fidelity_plus = false;
  const auto eval =
      evaluate_explainer(explainer, *gnn_, *corpus_, split_->test, config);
  EXPECT_DOUBLE_EQ(eval.complement_accuracy_at_20, 0.0);
  // Sparsity is still measured (no extra GNN cost).
  EXPECT_GT(eval.sparsity_at_20, 0.0);
}

}  // namespace
}  // namespace cfgx
