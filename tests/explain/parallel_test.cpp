#include "explain/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "explain/baselines.hpp"

namespace cfgx {
namespace {

Corpus tiny_corpus() {
  CorpusConfig config;
  config.samples_per_family = 2;
  config.seed = 3;
  return generate_corpus(config);
}

TEST(ExplainBatchTest, MatchesSerialExecution) {
  const Corpus corpus = tiny_corpus();
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < corpus.size(); ++i) indices.push_back(i);

  ThreadPool pool(4);
  const auto parallel = explain_batch(
      corpus, indices, pool, [] { return std::make_unique<RandomExplainer>(9); });

  RandomExplainer serial(9);
  ASSERT_EQ(parallel.size(), indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(parallel[i].order, serial.explain(corpus.graph(indices[i])).order)
        << "graph " << i;
  }
}

TEST(ExplainBatchTest, ResultsAlignedWithInputOrder) {
  const Corpus corpus = tiny_corpus();
  std::vector<std::size_t> indices{5, 0, 11};
  ThreadPool pool(2);
  const auto rankings = explain_batch(
      corpus, indices, pool, [] { return std::make_unique<DegreeExplainer>(); });
  ASSERT_EQ(rankings.size(), 3u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(rankings[i].order.size(), corpus.graph(indices[i]).num_nodes());
  }
}

TEST(ExplainBatchTest, EmptyInputGivesEmptyOutput) {
  ThreadPool pool(2);
  const auto rankings = explain_batch(
      std::vector<const Acfg*>{}, pool,
      [] { return std::make_unique<DegreeExplainer>(); });
  EXPECT_TRUE(rankings.empty());
}

TEST(ExplainBatchTest, NullGraphThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(explain_batch(std::vector<const Acfg*>{nullptr}, pool,
                             [] { return std::make_unique<DegreeExplainer>(); }),
               std::invalid_argument);
}

TEST(ExplainBatchTest, NullFactoryResultThrows) {
  const Corpus corpus = tiny_corpus();
  ThreadPool pool(2);
  EXPECT_THROW(explain_batch(corpus, {0}, pool,
                             []() -> std::unique_ptr<Explainer> { return nullptr; }),
               std::logic_error);
}

TEST(ExplainBatchTest, ExplainerExceptionPropagates) {
  class ThrowingExplainer : public Explainer {
   public:
    std::string name() const override { return "Throwing"; }
    NodeRanking explain(const Acfg&) override {
      throw std::runtime_error("boom");
    }
  };
  const Corpus corpus = tiny_corpus();
  ThreadPool pool(2);
  EXPECT_THROW(explain_batch(corpus, {0, 1}, pool,
                             [] { return std::make_unique<ThrowingExplainer>(); }),
               std::runtime_error);
}

// One explainer throwing mid-batch must not cost the other graphs their
// results, leave tasks queued against destroyed synchronization state, or
// poison the pool for later batches.
TEST(ExplainBatchTest, KthGraphThrowingYieldsTypedPerGraphErrors) {
  // Throws on every graph whose node count matches the k-th graph's; other
  // graphs explain normally through a DegreeExplainer.
  class SelectivelyThrowing : public Explainer {
   public:
    explicit SelectivelyThrowing(std::uint32_t poison_nodes)
        : poison_nodes_(poison_nodes) {}
    std::string name() const override { return "SelectivelyThrowing"; }
    NodeRanking explain(const Acfg& graph) override {
      if (graph.num_nodes() == poison_nodes_) {
        throw std::runtime_error("poisoned graph");
      }
      return inner_.explain(graph);
    }

   private:
    std::uint32_t poison_nodes_;
    DegreeExplainer inner_;
  };

  const Corpus corpus = tiny_corpus();
  std::vector<const Acfg*> graphs;
  for (std::size_t i = 0; i < 6; ++i) graphs.push_back(&corpus.graph(i));
  const std::uint32_t poison = graphs[3]->num_nodes();

  ThreadPool pool(3);
  const auto outcomes = explain_batch_outcomes(graphs, pool, [&] {
    return std::make_unique<SelectivelyThrowing>(poison);
  });

  ASSERT_EQ(outcomes.size(), graphs.size());
  DegreeExplainer reference;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (graphs[i]->num_nodes() == poison) {
      EXPECT_FALSE(outcomes[i].ok()) << "graph " << i;
      EXPECT_EQ(outcomes[i].error_message(), "poisoned graph");
      EXPECT_TRUE(outcomes[i].ranking.order.empty());
    } else {
      EXPECT_TRUE(outcomes[i].ok()) << "graph " << i;
      EXPECT_EQ(outcomes[i].error_message(), "");
      EXPECT_EQ(outcomes[i].ranking.order,
                reference.explain(*graphs[i]).order);
    }
  }

  // The pool survived the failing batch: a follow-up batch on the SAME
  // pool completes normally with full results.
  const auto again = explain_batch(graphs, pool, [] {
    return std::make_unique<DegreeExplainer>();
  });
  ASSERT_EQ(again.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(again[i].order.size(), graphs[i]->num_nodes());
  }
}

TEST(ExplainBatchTest, ThrowingFactoryIsAPerGraphError) {
  const Corpus corpus = tiny_corpus();
  std::vector<const Acfg*> graphs{&corpus.graph(0), &corpus.graph(1)};
  ThreadPool pool(1);
  const auto outcomes = explain_batch_outcomes(graphs, pool, []() -> std::unique_ptr<Explainer> {
    throw std::runtime_error("factory down");
  });
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error_message(), "factory down");
  }
  // Pool still functional.
  const auto ok = explain_batch(graphs, pool, [] {
    return std::make_unique<DegreeExplainer>();
  });
  EXPECT_EQ(ok.size(), 2u);
}

TEST(ExplainBatchTest, FactoryCalledAtMostOncePerWorker) {
  const Corpus corpus = tiny_corpus();
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < corpus.size(); ++i) indices.push_back(i);

  std::atomic<int> constructions{0};
  ThreadPool pool(3);
  explain_batch(corpus, indices, pool, [&] {
    ++constructions;
    return std::make_unique<DegreeExplainer>();
  });
  EXPECT_LE(constructions.load(), 3);
  EXPECT_GE(constructions.load(), 1);
}

}  // namespace
}  // namespace cfgx
