#include "explain/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "explain/baselines.hpp"

namespace cfgx {
namespace {

Corpus tiny_corpus() {
  CorpusConfig config;
  config.samples_per_family = 2;
  config.seed = 3;
  return generate_corpus(config);
}

TEST(ExplainBatchTest, MatchesSerialExecution) {
  const Corpus corpus = tiny_corpus();
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < corpus.size(); ++i) indices.push_back(i);

  ThreadPool pool(4);
  const auto parallel = explain_batch(
      corpus, indices, pool, [] { return std::make_unique<RandomExplainer>(9); });

  RandomExplainer serial(9);
  ASSERT_EQ(parallel.size(), indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(parallel[i].order, serial.explain(corpus.graph(indices[i])).order)
        << "graph " << i;
  }
}

TEST(ExplainBatchTest, ResultsAlignedWithInputOrder) {
  const Corpus corpus = tiny_corpus();
  std::vector<std::size_t> indices{5, 0, 11};
  ThreadPool pool(2);
  const auto rankings = explain_batch(
      corpus, indices, pool, [] { return std::make_unique<DegreeExplainer>(); });
  ASSERT_EQ(rankings.size(), 3u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(rankings[i].order.size(), corpus.graph(indices[i]).num_nodes());
  }
}

TEST(ExplainBatchTest, EmptyInputGivesEmptyOutput) {
  ThreadPool pool(2);
  const auto rankings = explain_batch(
      std::vector<const Acfg*>{}, pool,
      [] { return std::make_unique<DegreeExplainer>(); });
  EXPECT_TRUE(rankings.empty());
}

TEST(ExplainBatchTest, NullGraphThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(explain_batch(std::vector<const Acfg*>{nullptr}, pool,
                             [] { return std::make_unique<DegreeExplainer>(); }),
               std::invalid_argument);
}

TEST(ExplainBatchTest, NullFactoryResultThrows) {
  const Corpus corpus = tiny_corpus();
  ThreadPool pool(2);
  EXPECT_THROW(explain_batch(corpus, {0}, pool,
                             []() -> std::unique_ptr<Explainer> { return nullptr; }),
               std::logic_error);
}

TEST(ExplainBatchTest, ExplainerExceptionPropagates) {
  class ThrowingExplainer : public Explainer {
   public:
    std::string name() const override { return "Throwing"; }
    NodeRanking explain(const Acfg&) override {
      throw std::runtime_error("boom");
    }
  };
  const Corpus corpus = tiny_corpus();
  ThreadPool pool(2);
  EXPECT_THROW(explain_batch(corpus, {0, 1}, pool,
                             [] { return std::make_unique<ThrowingExplainer>(); }),
               std::runtime_error);
}

TEST(ExplainBatchTest, FactoryCalledAtMostOncePerWorker) {
  const Corpus corpus = tiny_corpus();
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < corpus.size(); ++i) indices.push_back(i);

  std::atomic<int> constructions{0};
  ThreadPool pool(3);
  explain_batch(corpus, indices, pool, [&] {
    ++constructions;
    return std::make_unique<DegreeExplainer>();
  });
  EXPECT_LE(constructions.load(), 3);
  EXPECT_GE(constructions.load(), 1);
}

}  // namespace
}  // namespace cfgx
