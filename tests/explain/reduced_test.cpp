// ReducedExplainer contract + differential tests: every explainer wrapped
// in reduce-then-explain mode must return a ranking over ORIGINAL basic
// blocks, and on an irreducible graph the wrapper must reproduce the
// full-graph explanation exactly (the reduction is the identity there, so
// any disagreement is a projection bug).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "explain/baselines.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/gnnexplainer.hpp"
#include "explain/pgexplainer.hpp"
#include "explain/reduced.hpp"
#include "explain/subgraphx.hpp"
#include "gnn/trainer.hpp"

namespace cfgx {
namespace {

class ReducedExplainerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 3;
    corpus_config.seed = 33;
    corpus_ = new Corpus(generate_corpus(corpus_config));
    std::vector<std::size_t> all(corpus_->size());
    std::iota(all.begin(), all.end(), 0u);
    train_ = new std::vector<std::size_t>(all);

    GnnConfig gnn_config;
    gnn_config.gcn_dims = {12, 10};
    Rng rng(7);
    gnn_ = new GnnClassifier(gnn_config, rng);
    GnnTrainConfig config;
    config.epochs = 15;
    train_gnn(*gnn_, *corpus_, all, config);
  }

  static void TearDownTestSuite() {
    delete train_;
    delete corpus_;
    delete gnn_;
    train_ = nullptr;
    corpus_ = nullptr;
    gnn_ = nullptr;
  }

  // The first corpus graph the coarsener genuinely shrinks, so the
  // "ranking covers ORIGINAL ids" assertions exercise a real reduction.
  static const Acfg& sample_graph() {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      const Acfg& g = corpus_->graph(i);
      if (reduce_graph(g).graph.num_nodes() < g.num_nodes()) return g;
    }
    throw std::logic_error("no reducible graph in the test corpus");
  }

  // An irreducible graph (every block has branching flow or calls and
  // semantic features; the 1 -> 2 cross edge keeps the 0 -> {1,2} -> 3
  // region from matching the diamond pass) whose edges are ALREADY in the
  // canonical sorted order reduce_graph emits, so reduction is the exact
  // identity.
  static Acfg irreducible_graph() {
    Acfg g(5);
    g.set_edges({Edge{0, 1, EdgeKind::Flow}, Edge{0, 2, EdgeKind::Flow},
                 Edge{1, 2, EdgeKind::Flow}, Edge{1, 3, EdgeKind::Flow},
                 Edge{2, 3, EdgeKind::Flow}, Edge{3, 4, EdgeKind::Call},
                 Edge{4, 0, EdgeKind::Call}});
    for (std::uint32_t v = 0; v < 5; ++v) {
      g.features()(v, 4) = 1.0 + v;  // #arithmetic: never NOP-like
      g.features()(v, 9) = 2.0 + v;
    }
    g.set_label(0);
    return g;
  }

  static void expect_valid_original_ranking(const NodeRanking& ranking,
                                            const Acfg& graph) {
    ASSERT_EQ(ranking.order.size(), graph.num_nodes());
    std::set<std::uint32_t> unique(ranking.order.begin(), ranking.order.end());
    EXPECT_EQ(unique.size(), graph.num_nodes());
    for (std::uint32_t v : ranking.order) EXPECT_LT(v, graph.num_nodes());
  }

  static Corpus* corpus_;
  static std::vector<std::size_t>* train_;
  static GnnClassifier* gnn_;
};

Corpus* ReducedExplainerFixture::corpus_ = nullptr;
std::vector<std::size_t>* ReducedExplainerFixture::train_ = nullptr;
GnnClassifier* ReducedExplainerFixture::gnn_ = nullptr;

TEST_F(ReducedExplainerFixture, NameAndNullChecks) {
  ReducedExplainer reduced(std::make_unique<DegreeExplainer>());
  EXPECT_EQ(reduced.name(), "Degree+coarsen");
  EXPECT_THROW(ReducedExplainer(nullptr), std::invalid_argument);
  EXPECT_THROW(reduced.last_reduction(), std::logic_error);
}

// All four explainers: the reduced-mode ranking is a permutation of the
// ORIGINAL node ids of a corpus graph (which reduction genuinely shrinks).
TEST_F(ReducedExplainerFixture, CfgExplainerRanksOriginalBlocks) {
  ExplainerTrainConfig train_config;
  train_config.epochs = 30;
  auto inner = std::make_unique<CfgExplainer>(*gnn_, train_config);
  ReducedExplainer reduced(std::move(inner));
  reduced.fit(*corpus_, *train_);
  const NodeRanking ranking = reduced.explain(sample_graph());
  expect_valid_original_ranking(ranking, sample_graph());
  EXPECT_LT(reduced.last_reduction().graph.num_nodes(),
            sample_graph().num_nodes());
  EXPECT_LT(reduced.last_reduction().reduction_ratio(), 1.0);
}

TEST_F(ReducedExplainerFixture, GnnExplainerRanksOriginalBlocks) {
  GnnExplainerConfig config;
  config.iterations = 10;
  ReducedExplainer reduced(std::make_unique<GnnExplainer>(*gnn_, config));
  const NodeRanking ranking = reduced.explain(sample_graph());
  expect_valid_original_ranking(ranking, sample_graph());
}

TEST_F(ReducedExplainerFixture, PgExplainerRanksOriginalBlocks) {
  PgExplainerConfig config;
  config.epochs = 2;
  ReducedExplainer reduced(std::make_unique<PgExplainer>(*gnn_, config));
  reduced.fit(*corpus_, *train_);
  const NodeRanking ranking = reduced.explain(sample_graph());
  expect_valid_original_ranking(ranking, sample_graph());
}

TEST_F(ReducedExplainerFixture, SubgraphXRanksOriginalBlocks) {
  SubgraphXConfig config;
  config.mcts_iterations = 4;
  config.shapley_samples = 2;
  ReducedExplainer reduced(std::make_unique<SubgraphX>(*gnn_, config));
  const NodeRanking ranking = reduced.explain(sample_graph());
  expect_valid_original_ranking(ranking, sample_graph());
}

// Differential: on an irreducible graph the wrapper must equal the inner
// explainer's full-graph output exactly, for every deterministic explainer.
TEST_F(ReducedExplainerFixture, IrreducibleGraphIsExactDifferentialMatch) {
  const Acfg g = irreducible_graph();
  {
    const ReducedGraph r = reduce_graph(g);
    ASSERT_EQ(r.graph.num_nodes(), g.num_nodes());
    ASSERT_EQ(r.graph, g);  // identity reduction, bit for bit
  }

  {
    ExplainerTrainConfig train_config;
    train_config.epochs = 30;
    CfgExplainer full(*gnn_, train_config);
    full.fit(*corpus_, *train_);
    auto inner = std::make_unique<CfgExplainer>(*gnn_, train_config);
    ReducedExplainer reduced(std::move(inner));
    reduced.fit(*corpus_, *train_);
    EXPECT_EQ(reduced.explain(g).order, full.explain(g).order);
  }
  {
    GnnExplainerConfig config;
    config.iterations = 10;
    GnnExplainer full(*gnn_, config);
    ReducedExplainer reduced(std::make_unique<GnnExplainer>(*gnn_, config));
    EXPECT_EQ(reduced.explain(g).order, full.explain(g).order);
  }
  {
    PgExplainerConfig config;
    config.epochs = 2;
    PgExplainer full(*gnn_, config);
    full.fit(*corpus_, *train_);
    ReducedExplainer reduced(std::make_unique<PgExplainer>(*gnn_, config));
    reduced.fit(*corpus_, *train_);
    EXPECT_EQ(reduced.explain(g).order, full.explain(g).order);
  }
  {
    SubgraphXConfig config;
    config.mcts_iterations = 4;
    config.shapley_samples = 2;
    SubgraphX full(*gnn_, config);
    ReducedExplainer reduced(std::make_unique<SubgraphX>(*gnn_, config));
    EXPECT_EQ(reduced.explain(g).order, full.explain(g).order);
  }
}

// project_ranking rejects a ranking that does not cover the supers.
TEST_F(ReducedExplainerFixture, ProjectRankingSizeMismatchThrows) {
  const ReducedGraph r = reduce_graph(sample_graph());
  NodeRanking wrong;
  wrong.order = {0};
  if (r.graph.num_nodes() > 1) {
    EXPECT_THROW(project_ranking(wrong, r.projection), std::invalid_argument);
  }
}

// Members of one super-block expand contiguously, in descending weight.
TEST_F(ReducedExplainerFixture, ExpansionKeepsSuperMembersAdjacent) {
  ReducedExplainer reduced(std::make_unique<DegreeExplainer>());
  const NodeRanking ranking = reduced.explain(sample_graph());
  const NodeProjection& projection = reduced.last_reduction().projection;
  std::size_t pos = 0;
  while (pos < ranking.order.size()) {
    const std::uint32_t super = projection.super_of[ranking.order[pos]];
    const std::size_t size = projection.members[super].size();
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_EQ(projection.super_of[ranking.order[pos + i]], super);
    }
    pos += size;
  }
}

}  // namespace
}  // namespace cfgx
