#include "tools/compare.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace cfgx::tools {
namespace {

using obs::JsonValue;

const char* kServeBaseline = R"({
  "schema": "cfgx.bench.serve.v1",
  "totals": {"ok": 256, "queue_full_rejections": 3, "explain_errors": 0,
             "other": 0},
  "explanations_per_second": 1000.0,
  "latency": {"p50_s": 0.002, "p95_s": 0.004},
  "workspace": {"bytes_allocated_delta": 0}
})";

const char* kKernelsBaseline = R"({
  "schema": "cfgx.bench.kernels.v2",
  "isa": "avx2",
  "cases": [
    {"name": "matmul", "n": 64, "speedup_mean": 3.0,
     "workspace_after_loop": {"bytes_allocated_delta": 0}},
    {"name": "matmul", "n": 128, "speedup_mean": 3.5,
     "workspace_after_loop": {"bytes_allocated_delta": 0}}
  ]
})";

const char* kScalingBaseline = R"({
  "schema": "cfgx.bench.scaling.v1",
  "isa": "avx2",
  "cases": [
    {"name": "full", "n": 256, "reduction_ratio": 1.0,
     "fidelity_at_20": 1.0, "per_explanation": {"mean_ms": 8.0}},
    {"name": "reduced", "n": 256, "reduction_ratio": 0.58,
     "fidelity_at_20": 0.67, "per_explanation": {"mean_ms": 4.0}},
    {"name": "full", "n": 7352, "reduction_ratio": 1.0,
     "fidelity_at_20": 1.0, "per_explanation": {"mean_ms": 280.0}},
    {"name": "reduced", "n": 7352, "reduction_ratio": 0.58,
     "fidelity_at_20": 1.0, "per_explanation": {"mean_ms": 64.0}}
  ],
  "summary": {"full_smallest_mean_ms": 8.0, "reduced_largest_mean_ms": 64.0,
              "reduced_largest_over_full_smallest": 8.0}
})";

JsonValue parse(const std::string& text) { return JsonValue::parse(text); }

TEST(BenchCompareTest, IdenticalServeRunsPass) {
  const JsonValue doc = parse(kServeBaseline);
  const CompareReport report = compare_bench_json(doc, doc, 2.0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_EQ(report.schema, "cfgx.bench.serve.v1");
  EXPECT_GE(report.checks.size(), 6u);
}

TEST(BenchCompareTest, ThroughputCollapseIsARegression) {
  JsonValue fresh = parse(kServeBaseline);
  fresh.members["explanations_per_second"].number_value = 400.0;  // > 2x down
  const CompareReport report =
      compare_bench_json(parse(kServeBaseline), fresh, 2.0);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.regressions(), 1u);
  // 500.0 would be exactly baseline/tolerance: inside the band.
  fresh.members["explanations_per_second"].number_value = 501.0;
  EXPECT_EQ(compare_bench_json(parse(kServeBaseline), fresh, 2.0).exit_code(),
            0);
}

TEST(BenchCompareTest, LatencyGrowthIsARegression) {
  JsonValue fresh = parse(kServeBaseline);
  fresh.members["latency"].members["p95_s"].number_value = 0.1;
  const CompareReport report =
      compare_bench_json(parse(kServeBaseline), fresh, 2.0);
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(BenchCompareTest, ZeroInvariantsIgnoreTolerance) {
  JsonValue fresh = parse(kServeBaseline);
  // One stray explain error: within any ratio tolerance of 0, but exact
  // invariants don't do ratios.
  fresh.members["totals"].members["explain_errors"].number_value = 1.0;
  EXPECT_EQ(compare_bench_json(parse(kServeBaseline), fresh, 100.0)
                .exit_code(),
            1);

  JsonValue alloc = parse(kServeBaseline);
  alloc.members["workspace"].members["bytes_allocated_delta"].number_value =
      64.0;
  EXPECT_EQ(compare_bench_json(parse(kServeBaseline), alloc, 100.0)
                .exit_code(),
            1);
}

TEST(BenchCompareTest, SchemaDriftIsAStructureFailure) {
  JsonValue fresh = parse(kServeBaseline);
  fresh.members["schema"].string_value = "cfgx.bench.serve.v2";
  const CompareReport report =
      compare_bench_json(parse(kServeBaseline), fresh, 2.0);
  EXPECT_EQ(report.exit_code(), 2);
  EXPECT_EQ(report.structure_failures(), 1u);

  JsonValue no_schema = parse(kServeBaseline);
  no_schema.members.erase("schema");
  EXPECT_EQ(compare_bench_json(parse(kServeBaseline), no_schema, 2.0)
                .exit_code(),
            2);
  EXPECT_EQ(
      compare_bench_json(parse(R"({"schema": "cfgx.bench.unknown.v9"})"),
                         parse(R"({"schema": "cfgx.bench.unknown.v9"})"), 2.0)
          .exit_code(),
      2);
}

TEST(BenchCompareTest, MissingMetricIsAStructureFailure) {
  JsonValue fresh = parse(kServeBaseline);
  fresh.members.erase("explanations_per_second");
  EXPECT_EQ(compare_bench_json(parse(kServeBaseline), fresh, 2.0).exit_code(),
            2);
}

TEST(BenchCompareTest, EmptyFreshServeRunIsAStructureFailure) {
  JsonValue fresh = parse(kServeBaseline);
  fresh.members["totals"].members["ok"].number_value = 0.0;
  EXPECT_EQ(compare_bench_json(parse(kServeBaseline), fresh, 2.0).exit_code(),
            2);
}

TEST(BenchCompareTest, KernelCasesMatchByNameAndSize) {
  const JsonValue baseline = parse(kKernelsBaseline);
  EXPECT_EQ(compare_bench_json(baseline, baseline, 2.0).exit_code(), 0);

  // Slowing ONLY the n=128 case past tolerance trips exactly one check.
  JsonValue fresh = parse(kKernelsBaseline);
  fresh.members["cases"].items[1].members["speedup_mean"].number_value = 1.0;
  const CompareReport report = compare_bench_json(baseline, fresh, 2.0);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.regressions(), 1u);
  bool found = false;
  for (const MetricCheck& check : report.checks) {
    if (check.status == CheckStatus::Regressed) {
      EXPECT_EQ(check.name, "cases.matmul@n128.speedup_mean");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchCompareTest, MissingKernelCaseIsAStructureFailure) {
  JsonValue fresh = parse(kKernelsBaseline);
  fresh.members["cases"].items.pop_back();
  EXPECT_EQ(compare_bench_json(parse(kKernelsBaseline), fresh, 2.0)
                .exit_code(),
            2);
}

TEST(BenchCompareTest, IsaMismatchIsAStructureFailure) {
  JsonValue fresh = parse(kKernelsBaseline);
  fresh.members["isa"].string_value = "scalar";
  const CompareReport report =
      compare_bench_json(parse(kKernelsBaseline), fresh, 2.0);
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(BenchCompareTest, KernelZeroAllocInvariantIsExact) {
  JsonValue fresh = parse(kKernelsBaseline);
  fresh.members["cases"]
      .items[0]
      .members["workspace_after_loop"]
      .members["bytes_allocated_delta"]
      .number_value = 1024.0;
  EXPECT_EQ(compare_bench_json(parse(kKernelsBaseline), fresh, 100.0)
                .exit_code(),
            1);
}

TEST(BenchCompareTest, IdenticalScalingRunsPass) {
  const JsonValue doc = parse(kScalingBaseline);
  const CompareReport report = compare_bench_json(doc, doc, 2.0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.schema, "cfgx.bench.scaling.v1");
  // 3 checks per sweep case + the headline ceiling.
  EXPECT_EQ(report.checks.size(), 13u);
}

TEST(BenchCompareTest, ScalingLatencyIsBandedPerSweepPoint) {
  JsonValue fresh = parse(kScalingBaseline);
  fresh.members["cases"]
      .items[3]
      .members["per_explanation"]
      .members["mean_ms"]
      .number_value = 200.0;  // > 2x up at reduced@n7352 only
  const CompareReport report =
      compare_bench_json(parse(kScalingBaseline), fresh, 2.0);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.regressions(), 1u);
  for (const MetricCheck& check : report.checks) {
    if (check.status == CheckStatus::Regressed) {
      EXPECT_EQ(check.name, "cases.reduced@n7352.per_explanation.mean_ms");
    }
  }
}

TEST(BenchCompareTest, ScalingReductionRatioIsExact) {
  // The sweep's graphs are seeded: the coarsener must reduce them
  // identically run over run, regardless of timing tolerance.
  JsonValue fresh = parse(kScalingBaseline);
  fresh.members["cases"].items[1].members["reduction_ratio"].number_value =
      0.60;
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), fresh, 100.0)
                .exit_code(),
            1);

  JsonValue empty = parse(kScalingBaseline);
  empty.members["cases"].items[1].members["reduction_ratio"].number_value =
      0.0;
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), empty, 100.0)
                .exit_code(),
            1);
}

TEST(BenchCompareTest, ScalingFidelityAllowsOneGraphFlip) {
  JsonValue fresh = parse(kScalingBaseline);
  // 1.0 -> 0.67: one of three graphs flipped — inside the noise band.
  fresh.members["cases"].items[2].members["fidelity_at_20"].number_value =
      0.67;
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), fresh, 2.0)
                .exit_code(),
            0);
  // 1.0 -> 0.33: two flips is a real quality regression.
  fresh.members["cases"].items[2].members["fidelity_at_20"].number_value =
      0.33;
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), fresh, 2.0)
                .exit_code(),
            1);
}

TEST(BenchCompareTest, ScalingPaperScaleCeilingIsHard) {
  // The headline ratio has an absolute ceiling (10x at tolerance 1), not
  // just a baseline-relative band.
  JsonValue fresh = parse(kScalingBaseline);
  fresh.members["summary"]
      .members["reduced_largest_over_full_smallest"]
      .number_value = 11.0;
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), fresh, 1.0)
                .exit_code(),
            1);
  fresh.members["summary"]
      .members["reduced_largest_over_full_smallest"]
      .number_value = 9.5;
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), fresh, 1.0)
                .exit_code(),
            0);
}

TEST(BenchCompareTest, ScalingIsaMismatchIsAStructureFailure) {
  JsonValue fresh = parse(kScalingBaseline);
  fresh.members["isa"].string_value = "scalar";
  EXPECT_EQ(compare_bench_json(parse(kScalingBaseline), fresh, 2.0)
                .exit_code(),
            2);
}

TEST(BenchCompareTest, StructureOutranksRegressionInExitCode) {
  JsonValue fresh = parse(kServeBaseline);
  fresh.members["explanations_per_second"].number_value = 1.0;  // regression
  fresh.members["latency"].members.erase("p50_s");              // structure
  const CompareReport report =
      compare_bench_json(parse(kServeBaseline), fresh, 2.0);
  EXPECT_GE(report.regressions(), 1u);
  EXPECT_GE(report.structure_failures(), 1u);
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(BenchCompareTest, PrintReportListsEveryCheck) {
  const JsonValue doc = parse(kServeBaseline);
  const CompareReport report = compare_bench_json(doc, doc, 2.0);
  std::ostringstream out;
  print_report(out, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("schema: cfgx.bench.serve.v1"), std::string::npos);
  EXPECT_NE(text.find("explanations_per_second"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace cfgx::tools
