// Tests for the initial learning stage (Algorithm 1).
#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "gnn/trainer.hpp"

namespace cfgx {
namespace {

// Shared fixture: a tiny corpus and a lightly trained GNN.
class ExplainerTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusConfig corpus_config;
    corpus_config.samples_per_family = 4;
    corpus_config.seed = 11;
    corpus_ = new Corpus(generate_corpus(corpus_config));
    split_ = new Split(stratified_split(*corpus_, 0.75, 5));

    GnnConfig gnn_config;
    gnn_config.gcn_dims = {16, 12};
    Rng rng(3);
    gnn_ = new GnnClassifier(gnn_config, rng);
    GnnTrainConfig train_config;
    train_config.epochs = 25;
    train_gnn(*gnn_, *corpus_, split_->train, train_config);
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete split_;
    delete gnn_;
    corpus_ = nullptr;
    split_ = nullptr;
    gnn_ = nullptr;
  }

  static ExplainerModel fresh_model(std::uint64_t seed) {
    ExplainerModelConfig config;
    config.embedding_dim = gnn_->config().embedding_dim();
    config.num_classes = gnn_->config().num_classes;
    Rng rng(seed);
    return ExplainerModel(config, rng);
  }

  static Corpus* corpus_;
  static Split* split_;
  static GnnClassifier* gnn_;
};

Corpus* ExplainerTrainerTest::corpus_ = nullptr;
Split* ExplainerTrainerTest::split_ = nullptr;
GnnClassifier* ExplainerTrainerTest::gnn_ = nullptr;

TEST_F(ExplainerTrainerTest, LossDecreases) {
  ExplainerModel model = fresh_model(1);
  ExplainerTrainConfig config;
  config.epochs = 150;
  const auto result =
      train_explainer(model, *gnn_, *corpus_, split_->train, config);
  ASSERT_EQ(result.epoch_losses.size(), 150u);
  // Compare the mean of the first and last 10 epochs (mini-batch noise).
  double head = 0.0, tail = 0.0;
  for (int i = 0; i < 10; ++i) {
    head += result.epoch_losses[i];
    tail += result.epoch_losses[result.epoch_losses.size() - 1 - i];
  }
  EXPECT_LT(tail, head);
}

TEST_F(ExplainerTrainerTest, SurrogateLearnsToMimicGnn) {
  ExplainerModel model = fresh_model(2);
  ExplainerTrainConfig config;
  config.epochs = 300;
  const auto result =
      train_explainer(model, *gnn_, *corpus_, split_->train, config);
  // The surrogate must agree with the GNN far above chance (1/12).
  EXPECT_GT(result.surrogate_fidelity, 0.4);
}

TEST_F(ExplainerTrainerTest, EmptyTrainingSetThrows) {
  ExplainerModel model = fresh_model(3);
  EXPECT_THROW(train_explainer(model, *gnn_, *corpus_, {}, {}),
               std::invalid_argument);
}

TEST_F(ExplainerTrainerTest, ZeroBatchSizeThrows) {
  ExplainerModel model = fresh_model(4);
  ExplainerTrainConfig config;
  config.batch_size = 0;
  EXPECT_THROW(train_explainer(model, *gnn_, *corpus_, split_->train, config),
               std::invalid_argument);
}

TEST_F(ExplainerTrainerTest, EmbeddingDimMismatchThrows) {
  ExplainerModelConfig config;
  config.embedding_dim = gnn_->config().embedding_dim() + 1;
  config.num_classes = gnn_->config().num_classes;
  Rng rng(5);
  ExplainerModel model(config, rng);
  EXPECT_THROW(train_explainer(model, *gnn_, *corpus_, split_->train, {}),
               std::invalid_argument);
}

TEST_F(ExplainerTrainerTest, TrainingIsDeterministic) {
  ExplainerTrainConfig config;
  config.epochs = 20;
  ExplainerModel model_a = fresh_model(6);
  const auto result_a =
      train_explainer(model_a, *gnn_, *corpus_, split_->train, config);
  ExplainerModel model_b = fresh_model(6);
  const auto result_b =
      train_explainer(model_b, *gnn_, *corpus_, split_->train, config);
  for (std::size_t i = 0; i < result_a.epoch_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(result_a.epoch_losses[i], result_b.epoch_losses[i]);
  }
}

TEST_F(ExplainerTrainerTest, OnEpochCallbackFires) {
  ExplainerModel model = fresh_model(7);
  ExplainerTrainConfig config;
  config.epochs = 5;
  std::size_t calls = 0;
  config.on_epoch = [&](std::size_t, double) { ++calls; };
  train_explainer(model, *gnn_, *corpus_, split_->train, config);
  EXPECT_EQ(calls, 5u);
}

TEST_F(ExplainerTrainerTest, BatchLargerThanDatasetIsClamped) {
  ExplainerModel model = fresh_model(8);
  ExplainerTrainConfig config;
  config.epochs = 2;
  config.batch_size = 100000;
  EXPECT_NO_THROW(
      train_explainer(model, *gnn_, *corpus_, split_->train, config));
}

}  // namespace
}  // namespace cfgx
