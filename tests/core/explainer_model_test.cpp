#include "core/explainer_model.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"

namespace cfgx {
namespace {

ExplainerModelConfig tiny_config() {
  ExplainerModelConfig config;
  config.embedding_dim = 6;
  config.scorer_dims = {8, 4, 1};
  config.surrogate_dims = {8, 4};
  config.num_classes = 3;
  return config;
}

Matrix random_embeddings(std::size_t n, std::size_t f, Rng& rng) {
  Matrix z(n, f);
  // GNN embeddings are ReLU outputs: non-negative.
  for (std::size_t i = 0; i < z.size(); ++i) {
    z.data()[i] = std::max(0.0, rng.normal(0.5, 1.0));
  }
  return z;
}

TEST(ExplainerModelTest, ScoresAreProbabilities) {
  Rng rng(1);
  ExplainerModel model(tiny_config(), rng);
  const Matrix z = random_embeddings(9, 6, rng);
  const Matrix psi = model.score_nodes(z);
  ASSERT_EQ(psi.rows(), 9u);
  ASSERT_EQ(psi.cols(), 1u);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    EXPECT_GT(psi.data()[i], 0.0);
    EXPECT_LT(psi.data()[i], 1.0);
  }
}

TEST(ExplainerModelTest, JointForwardShapes) {
  Rng rng(2);
  ExplainerModel model(tiny_config(), rng);
  const Matrix z = random_embeddings(5, 6, rng);
  const auto forward = model.joint_forward(z);
  EXPECT_EQ(forward.scores.rows(), 5u);
  EXPECT_EQ(forward.probabilities.rows(), 1u);
  EXPECT_EQ(forward.probabilities.cols(), 3u);
  EXPECT_NEAR(forward.probabilities.sum(), 1.0, 1e-9);
}

TEST(ExplainerModelTest, ScorerMustEndInSingleUnit) {
  Rng rng(3);
  ExplainerModelConfig bad = tiny_config();
  bad.scorer_dims = {8, 4, 2};
  EXPECT_THROW(ExplainerModel(bad, rng), std::invalid_argument);
  bad.scorer_dims = {};
  EXPECT_THROW(ExplainerModel(bad, rng), std::invalid_argument);
}

TEST(ExplainerModelTest, EmbeddingDimMismatchThrows) {
  Rng rng(4);
  ExplainerModel model(tiny_config(), rng);
  EXPECT_THROW(model.score_nodes(Matrix(4, 7)), std::invalid_argument);
  EXPECT_THROW(model.joint_forward(Matrix(4, 7)), std::invalid_argument);
}

TEST(ExplainerModelTest, BackwardBeforeForwardThrows) {
  Rng rng(5);
  ExplainerModel model(tiny_config(), rng);
  EXPECT_THROW(model.joint_backward(Matrix(1, 3)), std::logic_error);
}

TEST(ExplainerModelTest, JointGradientsMatchNumeric) {
  // Full joint chain: NLL -> Theta_c -> weighting -> Theta_s. Checks every
  // parameter of both networks against central differences.
  Rng rng(6);
  ExplainerModel model(tiny_config(), rng);
  const Matrix z = random_embeddings(4, 6, rng);
  const std::vector<std::size_t> target{1};

  model.zero_grad();
  const auto forward = model.joint_forward(z);
  const LossResult loss = nll_from_probabilities(forward.probabilities, target);
  model.joint_backward(loss.grad);

  const auto loss_value = [&] {
    const auto f = model.joint_forward(z);
    return nll_from_probabilities(f.probabilities, target).value;
  };
  for (Parameter* param : model.parameters()) {
    const Matrix analytic = param->grad;
    const auto result =
        check_gradient_against(param->value, analytic, loss_value);
    EXPECT_TRUE(result.passed(2e-4))
        << param->name << " rel err " << result.max_rel_error;
  }
}

TEST(ExplainerModelTest, ScorerReceivesGradientThroughWeighting) {
  // The defining property of Algorithm 1: the classification loss reaches
  // Theta_s. After one backward, at least one scorer parameter must have a
  // non-zero gradient.
  Rng rng(7);
  ExplainerModel model(tiny_config(), rng);
  const Matrix z = random_embeddings(6, 6, rng);
  model.zero_grad();
  const auto forward = model.joint_forward(z);
  const LossResult loss = nll_from_probabilities(forward.probabilities, {0});
  model.joint_backward(loss.grad);

  double scorer_grad_mass = 0.0;
  for (Parameter* param : model.parameters()) {
    if (param->name.rfind("theta_s.", 0) == 0) {
      scorer_grad_mass += param->grad.max_abs();
    }
  }
  EXPECT_GT(scorer_grad_mass, 0.0);
}

TEST(ExplainerModelTest, ParameterCountMatchesArchitecture) {
  Rng rng(8);
  ExplainerModel model(tiny_config(), rng);
  // Scorer: 3 dense layers; surrogate: 2 hidden + 1 output = 3 dense layers.
  // Total (W, b) pairs: 6 -> 12 parameters.
  EXPECT_EQ(model.parameters().size(), 12u);
}

TEST(ExplainerModelTest, SaveLoadRoundTrip) {
  Rng rng(9);
  ExplainerModel model(tiny_config(), rng);
  const Matrix z = random_embeddings(5, 6, rng);
  const Matrix before = model.score_nodes(z);

  std::stringstream buffer;
  model.save(buffer);
  ExplainerModel restored = ExplainerModel::load(buffer);
  EXPECT_TRUE(approx_equal(before, restored.score_nodes(z), 1e-12));
}

TEST(ExplainerModelTest, LoadRejectsGarbage) {
  std::stringstream buffer("garbage bytes here............");
  EXPECT_THROW(ExplainerModel::load(buffer), SerializationError);
}

TEST(ExplainerModelTest, CloneMatchesAndIsIndependent) {
  Rng rng(10);
  ExplainerModel model(tiny_config(), rng);
  ExplainerModel copy = model.clone();
  const Matrix z = random_embeddings(3, 6, rng);
  EXPECT_TRUE(approx_equal(model.score_nodes(z), copy.score_nodes(z), 1e-12));
  copy.parameters()[0]->value(0, 0) += 1.0;
  EXPECT_FALSE(approx_equal(model.score_nodes(z), copy.score_nodes(z), 1e-12));
}

TEST(ExplainerModelTest, WeightingTiesScoresToClassification) {
  // Scaling a node's score to ~0 must change the predicted distribution
  // relative to leaving it untouched (the surrogate consumes weighted
  // embeddings, not raw ones).
  Rng rng(11);
  ExplainerModel model(tiny_config(), rng);
  Matrix z = random_embeddings(4, 6, rng);
  const auto baseline = model.joint_forward(z);

  // Zero a high-magnitude embedding row: equivalent to score 0 for it.
  Matrix z_zeroed = z;
  for (std::size_t c = 0; c < z_zeroed.cols(); ++c) z_zeroed(0, c) = 0.0;
  const auto altered = model.joint_forward(z_zeroed);
  EXPECT_FALSE(
      approx_equal(baseline.probabilities, altered.probabilities, 1e-9));
}

TEST(ExplainerModelScaleTest, ScaleInvarianceOfScores) {
  // Scaling the embeddings by k and the model's embedding_scale by k must
  // give identical scores — the conditioning contract.
  Rng rng(12);
  ExplainerModelConfig config;
  config.embedding_dim = 6;
  config.num_classes = 3;
  ExplainerModel model(config, rng);
  Matrix z(4, 6);
  for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] = 0.1 * (i + 1);

  const Matrix base = model.score_nodes(z);
  Matrix scaled_z = z;
  scaled_z *= 100.0;
  model.set_embedding_scale(100.0);
  const Matrix scaled = model.score_nodes(scaled_z);
  EXPECT_TRUE(approx_equal(base, scaled, 1e-12));
}

TEST(ExplainerModelScaleTest, NonPositiveScaleThrows) {
  Rng rng(13);
  ExplainerModelConfig config;
  config.embedding_dim = 4;
  config.num_classes = 2;
  ExplainerModel model(config, rng);
  EXPECT_THROW(model.set_embedding_scale(0.0), std::invalid_argument);
  EXPECT_THROW(model.set_embedding_scale(-1.0), std::invalid_argument);
}

TEST(ExplainerModelScaleTest, ScaleSurvivesSaveLoad) {
  Rng rng(14);
  ExplainerModelConfig config;
  config.embedding_dim = 4;
  config.num_classes = 2;
  ExplainerModel model(config, rng);
  model.set_embedding_scale(42.5);
  std::stringstream buffer;
  model.save(buffer);
  const ExplainerModel restored = ExplainerModel::load(buffer);
  EXPECT_DOUBLE_EQ(restored.embedding_scale(), 42.5);
}

}  // namespace
}  // namespace cfgx
