// Tests for the interpretation stage (Algorithm 2).
#include "core/interpreter.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include <set>

#include "dataset/generator.hpp"
#include "graph/ops.hpp"

namespace cfgx {
namespace {

// The interpreter only needs *a* GNN and *a* scorer; untrained instances
// exercise every algorithmic invariant.
class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest()
      : rng_(42),
        gnn_([this] {
          GnnConfig config;
          config.gcn_dims = {10, 8};
          return GnnClassifier(config, rng_);
        }()),
        model_([this] {
          ExplainerModelConfig config;
          config.embedding_dim = 8;
          config.num_classes = kFamilyCount;
          return ExplainerModel(config, rng_);
        }()),
        graph_(generate_acfg(Family::Rbot, rng_)) {}

  Rng rng_;
  GnnClassifier gnn_;
  ExplainerModel model_;
  Acfg graph_;
};

TEST_F(InterpreterTest, OrderingIsAPermutationOfAllNodes) {
  Interpreter interpreter(model_, gnn_);
  const Interpretation result = interpreter.interpret(graph_);
  EXPECT_EQ(result.ordered_nodes.size(), graph_.num_nodes());
  std::set<std::uint32_t> unique(result.ordered_nodes.begin(),
                                 result.ordered_nodes.end());
  EXPECT_EQ(unique.size(), graph_.num_nodes());
}

TEST_F(InterpreterTest, SubgraphCountMatchesStepSize) {
  Interpreter interpreter(model_, gnn_);
  InterpretationConfig config;
  config.step_size_percent = 10;
  const Interpretation result = interpreter.interpret(graph_, config);
  EXPECT_EQ(result.subgraph_nodes.size(), 10u);
  EXPECT_EQ(result.subgraph_adjacencies.size(), 10u);
}

TEST_F(InterpreterTest, SubgraphSizesFollowTheGrid) {
  Interpreter interpreter(model_, gnn_);
  const Interpretation result = interpreter.interpret(graph_);
  const double n = graph_.num_nodes();
  for (std::size_t k = 0; k < result.subgraph_nodes.size(); ++k) {
    const double expected = std::round(n * static_cast<double>(k + 1) / 10.0);
    EXPECT_NEAR(static_cast<double>(result.subgraph_nodes[k].size()), expected,
                1.0)
        << "subgraph " << k;
  }
  // The last snapshot is the full graph.
  EXPECT_EQ(result.subgraph_nodes.back().size(), graph_.num_nodes());
}

TEST_F(InterpreterTest, SubgraphsAreNested) {
  Interpreter interpreter(model_, gnn_);
  const Interpretation result = interpreter.interpret(graph_);
  for (std::size_t k = 1; k < result.subgraph_nodes.size(); ++k) {
    std::set<std::uint32_t> larger(result.subgraph_nodes[k].begin(),
                                   result.subgraph_nodes[k].end());
    for (std::uint32_t v : result.subgraph_nodes[k - 1]) {
      EXPECT_TRUE(larger.count(v)) << "node " << v << " lost at level " << k;
    }
  }
}

TEST_F(InterpreterTest, SmallestSubgraphIsPrefixOfOrdering) {
  Interpreter interpreter(model_, gnn_);
  const Interpretation result = interpreter.interpret(graph_);
  const auto& smallest = result.subgraph_nodes.front();
  std::set<std::uint32_t> prefix(
      result.ordered_nodes.begin(),
      result.ordered_nodes.begin() +
          static_cast<std::ptrdiff_t>(smallest.size()));
  for (std::uint32_t v : smallest) {
    EXPECT_TRUE(prefix.count(v));
  }
}

TEST_F(InterpreterTest, AdjacencySnapshotsMatchNodeSets) {
  Interpreter interpreter(model_, gnn_);
  const Interpretation result = interpreter.interpret(graph_);
  for (std::size_t k = 0; k < result.subgraph_nodes.size(); ++k) {
    const Matrix& a = result.subgraph_adjacencies[k];
    std::set<std::uint32_t> kept(result.subgraph_nodes[k].begin(),
                                 result.subgraph_nodes[k].end());
    for (std::uint32_t v = 0; v < graph_.num_nodes(); ++v) {
      if (!kept.count(v)) {
        EXPECT_TRUE(node_is_masked(a, v))
            << "level " << k << " node " << v << " should be masked";
      }
    }
  }
}

TEST_F(InterpreterTest, SnapshotsCanBeDisabled) {
  Interpreter interpreter(model_, gnn_);
  InterpretationConfig config;
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph_, config);
  EXPECT_TRUE(result.subgraph_adjacencies.empty());
  EXPECT_EQ(result.subgraph_nodes.size(), 10u);
}

TEST_F(InterpreterTest, StepSizeValidation) {
  Interpreter interpreter(model_, gnn_);
  InterpretationConfig config;
  config.step_size_percent = 0;
  EXPECT_THROW(interpreter.interpret(graph_, config), std::invalid_argument);
  config.step_size_percent = 30;  // does not divide 100
  EXPECT_THROW(interpreter.interpret(graph_, config), std::invalid_argument);
  config.step_size_percent = 101;
  EXPECT_THROW(interpreter.interpret(graph_, config), std::invalid_argument);
}

TEST_F(InterpreterTest, EmptyGraphThrows) {
  Interpreter interpreter(model_, gnn_);
  EXPECT_THROW(interpreter.interpret(Acfg(0)), std::invalid_argument);
}

TEST_F(InterpreterTest, SingleNodeGraph) {
  Acfg one(1);
  one.set_label(0);
  Interpreter interpreter(model_, gnn_);
  const Interpretation result = interpreter.interpret(one);
  ASSERT_EQ(result.ordered_nodes.size(), 1u);
  EXPECT_EQ(result.ordered_nodes[0], 0u);
  EXPECT_EQ(result.subgraph_nodes.back().size(), 1u);
}

TEST_F(InterpreterTest, DeterministicAcrossCalls) {
  Interpreter interpreter(model_, gnn_);
  const Interpretation a = interpreter.interpret(graph_);
  const Interpretation b = interpreter.interpret(graph_);
  EXPECT_EQ(a.ordered_nodes, b.ordered_nodes);
}

class InterpreterStepSize : public ::testing::TestWithParam<unsigned> {};

TEST_P(InterpreterStepSize, GridSizesForEveryDivisorStep) {
  Rng rng(7);
  GnnConfig gnn_config;
  gnn_config.gcn_dims = {8, 6};
  GnnClassifier gnn(gnn_config, rng);
  ExplainerModelConfig model_config;
  model_config.embedding_dim = 6;
  model_config.num_classes = kFamilyCount;
  ExplainerModel model(model_config, rng);
  const Acfg graph = generate_acfg(Family::Zbot, rng);

  Interpreter interpreter(model, gnn);
  InterpretationConfig config;
  config.step_size_percent = GetParam();
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph, config);
  EXPECT_EQ(result.subgraph_nodes.size(), 100u / GetParam());
  EXPECT_EQ(result.ordered_nodes.size(), graph.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Steps, InterpreterStepSize,
                         ::testing::Values(5u, 10u, 20u, 25u, 50u, 100u));

TEST(InterpreterReadouts, WorksWithSortPoolClassifier) {
  // CFGExplainer's interpretation must function unchanged under the
  // DGCNN-style SortPool readout (model-agnosticism at the unit level).
  Rng rng(91);
  GnnConfig gnn_config;
  gnn_config.gcn_dims = {10, 8};
  gnn_config.readout = ReadoutKind::SortPool;
  gnn_config.sortpool_k = 6;
  GnnClassifier gnn(gnn_config, rng);
  ExplainerModelConfig model_config;
  model_config.embedding_dim = 8;
  model_config.num_classes = kFamilyCount;
  ExplainerModel theta(model_config, rng);
  const Acfg graph = generate_acfg(Family::Swizzor, rng);

  Interpreter interpreter(theta, gnn);
  InterpretationConfig config;
  config.keep_adjacency_snapshots = false;
  const Interpretation result = interpreter.interpret(graph, config);
  EXPECT_EQ(result.ordered_nodes.size(), graph.num_nodes());
  std::set<std::uint32_t> unique(result.ordered_nodes.begin(),
                                 result.ordered_nodes.end());
  EXPECT_EQ(unique.size(), graph.num_nodes());
}

}  // namespace
}  // namespace cfgx
