// Stability ablation: how consistent are CFGExplainer's explanations when
// only the initialization / mini-batch seed of Algorithm 1 changes?
//
// A useful explainer should point different retrainings at largely the same
// blocks. Reported: mean pairwise Jaccard overlap of the top-20% node sets
// across three independently trained Theta instances, the same overlap for
// the Random baseline (floor), and per-seed explanation quality.
#include <cstdio>

#include <set>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

namespace {

double jaccard(const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  const std::set<std::uint32_t> sa(a.begin(), a.end());
  std::size_t shared = 0;
  for (std::uint32_t v : b) {
    if (sa.count(v)) ++shared;
  }
  const std::size_t unioned = sa.size() + b.size() - shared;
  return unioned == 0 ? 0.0 : static_cast<double>(shared) / unioned;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("ablation_stability", args, bench_config);
  BenchContext ctx(bench_config);

  std::printf("=== Stability: top-20%% agreement across Theta retrainings ===\n\n");

  constexpr std::array<std::uint64_t, 3> kSeeds = {99, 100, 101};
  std::vector<std::unique_ptr<CfgExplainer>> explainers;
  std::vector<double> aucs;
  for (std::uint64_t seed : kSeeds) {
    std::fprintf(stderr, "[bench] training Theta with init seed %llu...\n",
                 static_cast<unsigned long long>(seed));
    ExplainerTrainConfig train_config;
    train_config.epochs = ctx.config().explainer_epochs;
    train_config.score_sparsity_weight = ctx.config().score_sparsity;
    train_config.sample_seed = seed * 31 + 1;
    InterpretationConfig interpret_config;
    interpret_config.keep_adjacency_snapshots = false;
    auto explainer = std::make_unique<CfgExplainer>(ctx.gnn(), train_config,
                                                    interpret_config, seed);
    explainer->fit(ctx.corpus(), ctx.split().train);

    EvaluationConfig eval_config;
    eval_config.step_size_percent = ctx.config().step_size_percent;
    aucs.push_back(evaluate_explainer(*explainer, ctx.gnn(), ctx.corpus(),
                                      ctx.eval_indices(), eval_config)
                       .average_auc);
    explainers.push_back(std::move(explainer));
  }

  // Mean pairwise Jaccard of top-20% sets over the evaluation graphs.
  double cfgx_overlap = 0.0;
  double random_overlap = 0.0;
  std::size_t pair_count = 0;
  RandomExplainer random_a(1), random_b(2), random_c(3);
  std::array<RandomExplainer*, 3> randoms{&random_a, &random_b, &random_c};
  for (std::size_t index : ctx.eval_indices()) {
    const Acfg& graph = ctx.corpus().graph(index);
    std::array<std::vector<std::uint32_t>, 3> cfgx_tops, random_tops;
    for (std::size_t s = 0; s < 3; ++s) {
      cfgx_tops[s] = explainers[s]->explain(graph).top_fraction(0.2);
      random_tops[s] = randoms[s]->explain(graph).top_fraction(0.2);
    }
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = i + 1; j < 3; ++j) {
        cfgx_overlap += jaccard(cfgx_tops[i], cfgx_tops[j]);
        random_overlap += jaccard(random_tops[i], random_tops[j]);
        ++pair_count;
      }
    }
  }
  cfgx_overlap /= static_cast<double>(pair_count);
  random_overlap /= static_cast<double>(pair_count);

  TextTable table({"quantity", "value"}, {Align::Left, Align::Right});
  for (std::size_t s = 0; s < 3; ++s) {
    table.add_row({"AUC (seed " + std::to_string(kSeeds[s]) + ")",
                   format_fixed(aucs[s])});
  }
  table.add_rule();
  table.add_row({"mean pairwise Jaccard, CFGExplainer top-20%",
                 format_fixed(cfgx_overlap)});
  table.add_row({"mean pairwise Jaccard, random top-20% (floor)",
                 format_fixed(random_overlap)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Reading: CFGX overlap well above the random floor means the\n"
              "method converges to the same evidence, not a seed artifact.\n");
  return 0;
}
