// Figure 2 (a)-(l): classification accuracy of subgraphs containing
// 10%..100% of nodes, per ACFG family, for CFGExplainer, GNNExplainer,
// SubgraphX and PGExplainer.
//
// The paper plots twelve line charts; this binary prints one table per
// family with the four explainers as columns, plus the fleet average.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("figure2_accuracy_curves", args, bench_config);
  BenchContext ctx(bench_config);

  std::printf("=== Figure 2: subgraph classification accuracy vs size ===\n");
  std::printf("corpus: %zu graphs, eval set: %zu graphs, GNN accuracy on eval: %s\n\n",
              ctx.corpus().size(), ctx.eval_indices().size(),
              format_percent(ctx.gnn_accuracy_on_eval()).c_str());

  std::vector<NamedEvaluation> evals;
  for (const std::string& name : BenchContext::paper_explainers()) {
    evals.push_back(ctx.evaluate(name));
  }

  const auto& fractions = evals.front().evaluation.per_family.front().fractions;

  const char* panel = "abcdefghijkl";
  std::size_t panel_index = 0;
  for (Family family : kAllFamilies) {
    std::vector<std::string> header{"size"};
    for (const auto& eval : evals) {
      header.push_back(eval.evaluation.explainer_name);
    }
    TextTable table(std::move(header),
                    std::vector<Align>(evals.size() + 1, Align::Right));
    for (std::size_t g = 0; g < fractions.size(); ++g) {
      std::vector<std::string> row{format_percent(fractions[g], 0)};
      for (const auto& eval : evals) {
        double acc = 0.0;
        for (const FamilyCurve& curve : eval.evaluation.per_family) {
          if (curve.family == family) acc = curve.accuracies[g];
        }
        row.push_back(format_fixed(acc, 3));
      }
      table.add_row(std::move(row));
    }
    std::printf("Figure 2(%c) — %s\n%s\n", panel[panel_index++],
                to_string(family), table.render().c_str());
  }

  // Average over families at every size (the shape headline).
  TextTable avg({"size", "CFGExplainer", "GNNExplainer", "SubgraphX",
                 "PGExplainer"},
                std::vector<Align>(5, Align::Right));
  for (std::size_t g = 0; g < fractions.size(); ++g) {
    std::vector<std::string> row{format_percent(fractions[g], 0)};
    for (const auto& eval : evals) {
      row.push_back(
          format_fixed(eval.evaluation.average_accuracy_at(fractions[g]), 3));
    }
    avg.add_row(std::move(row));
  }
  std::printf("Average over all families\n%s\n", avg.render().c_str());
  return 0;
}
