// Micro-benchmarks (google-benchmark) for the numeric kernels that dominate
// the experiment wall-clock: matrix products, adjacency normalization, GCN
// layer forward/backward, full-model embedding, one Algorithm-2
// interpretation and corpus sample generation.
//
// Besides google-benchmark's own flags this binary accepts
// --manifest=path (default micro_kernels_manifest.json) and honors
// CFGX_METRICS=0, which disables the in-process metrics registry - the
// configuration used to measure observability overhead on the matmul
// throughput numbers.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/interpreter.hpp"
#include "dataset/corpus.hpp"
#include "gnn/classifier.hpp"
#include "graph/ops.hpp"
#include "isa/features.hpp"
#include "nn/sparse.hpp"
#include "obs/manifest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

// Adjacency at typical CFG edge density: a fallthrough chain plus sparse
// branch/call edges, ~2 out-edges per basic block regardless of n.
Matrix cfg_adjacency(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const double p = 1.0 / static_cast<double>(n);  // ~1 extra edge per node
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(p)) a(i, j) = 1.0;
    }
  }
  return a;
}

ThreadPool& kernel_pool() {
  static ThreadPool pool;
  return pool;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 64));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// --- dense vs CSR vs parallel on the GCN hot-path product A_hat * H ---
// Same normalized CFG-density adjacency and feature width (64) in all
// variants so the reported times are directly comparable; the acceptance
// bar is >= 2x for CSR over dense matmul at n = 256.

void BM_AdjacencyMatmulDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix a_hat = normalized_adjacency(cfg_adjacency(n, rng));
  const Matrix h = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a_hat, h));
  }
}
BENCHMARK(BM_AdjacencyMatmulDense)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencyMatmulDenseParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix a_hat = normalized_adjacency(cfg_adjacency(n, rng));
  const Matrix h = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_parallel(a_hat, h, kernel_pool()));
  }
}
BENCHMARK(BM_AdjacencyMatmulDenseParallel)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix h = random_matrix(n, 64, rng);
  state.counters["density"] = a_hat.density();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(a_hat, h));
  }
}
BENCHMARK(BM_AdjacencySpmmCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmCsrParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix h = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(a_hat, h, &kernel_pool()));
  }
}
BENCHMARK(BM_AdjacencySpmmCsrParallel)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmTransposeCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix g = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm_transpose_a(a_hat, g));
  }
}
BENCHMARK(BM_AdjacencySpmmTransposeCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_CsrFromDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix a_hat = normalized_adjacency(cfg_adjacency(n, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::from_dense(a_hat));
  }
}
BENCHMARK(BM_CsrFromDense)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerForwardCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const CsrMatrix a_hat = CsrMatrix::from_dense(normalized_adjacency(a));
  const Matrix h = random_matrix(n, 12, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.infer(a_hat, h));
  }
}
BENCHMARK(BM_GcnLayerForwardCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_NormalizedAdjacency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.05)) a(i, j) = 1.0;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(normalized_adjacency(a));
  }
}
BENCHMARK(BM_NormalizedAdjacency)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const Matrix a_hat = normalized_adjacency(a);
  const Matrix h = random_matrix(n, 12, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.infer(a_hat, h));
  }
}
BENCHMARK(BM_GcnLayerForward)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerBackward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const Matrix a_hat = normalized_adjacency(a);
  const Matrix h = random_matrix(n, 12, rng);
  const Matrix grad = random_matrix(n, 64, rng);
  layer.forward(a_hat, h);
  for (auto _ : state) {
    layer.zero_grad();
    benchmark::DoNotOptimize(layer.backward(grad));
  }
}
BENCHMARK(BM_GcnLayerBackward)->Arg(64)->Arg(128)->Arg(256);

// Shared fixture state for model-level benchmarks: one graph + one model.
struct ModelFixture {
  ModelFixture() : rng(5), gnn(GnnConfig{}, rng) {
    Rng graph_rng(99);
    graph = generate_acfg(Family::Rbot, graph_rng);
    adjacency = graph.dense_adjacency();
  }
  Rng rng;
  GnnClassifier gnn;
  Acfg graph;
  Matrix adjacency;
};

ModelFixture& fixture() {
  static ModelFixture instance;
  return instance;
}

void BM_GnnEmbed(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.gnn.embed(f.adjacency, f.graph.features()));
  }
}
BENCHMARK(BM_GnnEmbed);

void BM_GnnPredictMasked(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.gnn.predict_masked(f.adjacency, f.graph.features()));
  }
}
BENCHMARK(BM_GnnPredictMasked);

void BM_AlgorithmTwoInterpretation(benchmark::State& state) {
  auto& f = fixture();
  Rng model_rng(6);
  ExplainerModelConfig config;
  config.embedding_dim = f.gnn.config().embedding_dim();
  config.num_classes = f.gnn.config().num_classes;
  ExplainerModel theta(config, model_rng);
  Interpreter interpreter(theta, f.gnn);
  InterpretationConfig interpret_config;
  interpret_config.keep_adjacency_snapshots = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interpreter.interpret(f.graph, interpret_config));
  }
}
BENCHMARK(BM_AlgorithmTwoInterpretation);

void BM_GenerateSample(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(generate_acfg(Family::Zbot, rng));
  }
}
BENCHMARK(BM_GenerateSample);

void BM_BlockFeatureExtraction(benchmark::State& state) {
  Rng rng(7);
  const GeneratedSample sample = generate_program(Family::Vundo, rng);
  const LiftedCfg cfg = lift_program(sample.program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_acfg(cfg, 0, "Vundo"));
  }
}
BENCHMARK(BM_BlockFeatureExtraction);

}  // namespace
}  // namespace cfgx

// BENCHMARK_MAIN() plus a run manifest carrying the metrics snapshot, so
// kernel call counts / time-in-kernel are machine readable alongside the
// google-benchmark numbers.
int main(int argc, char** argv) {
  std::string manifest_path = "micro_kernels_manifest.json";
  std::vector<char*> benchmark_args;
  for (int i = 0; i < argc; ++i) {
    constexpr char kManifestFlag[] = "--manifest=";
    if (std::strncmp(argv[i], kManifestFlag, sizeof kManifestFlag - 1) == 0) {
      manifest_path = argv[i] + sizeof kManifestFlag - 1;
      continue;  // google-benchmark rejects flags it does not know
    }
    benchmark_args.push_back(argv[i]);
  }
  int benchmark_argc = static_cast<int>(benchmark_args.size());
  benchmark::Initialize(&benchmark_argc, benchmark_args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  cfgx::obs::RunManifest manifest("micro_kernels");
  manifest.set_config("metrics_enabled", cfgx::obs::metrics_enabled());
  manifest.set_metrics(cfgx::obs::MetricsRegistry::global().snapshot());
  manifest.write_file(manifest_path);
  return 0;
}
