// Micro-benchmarks (google-benchmark) for the numeric kernels that dominate
// the experiment wall-clock: matrix products, adjacency normalization, GCN
// layer forward/backward, full-model embedding, one Algorithm-2
// interpretation and corpus sample generation.
//
// Besides google-benchmark's own flags this binary accepts
// --manifest=path (default micro_kernels_manifest.json) and honors
// CFGX_METRICS=0, which disables the in-process metrics registry - the
// configuration used to measure observability overhead on the matmul
// throughput numbers.
//
// --kernels-baseline[=path] (default BENCH_kernels.json) switches to a
// self-contained comparison mode instead of running google-benchmark: it
// times blocked-vs-naive matmul, `_into`-vs-allocating kernel pairs,
// scalar-vs-AVX2 matmul/spmm (when the host supports AVX2+FMA), and
// fp64-vs-bf16 matmul at n in {64, 128, 256} with DurationStats (p50/p95),
// records the workspace counter deltas proving the `_into` loops are
// allocation-free in steady state, attributes every case to the ISA that
// ran it, then writes the result as JSON and exits.
//
// --simd=I ("scalar" | "avx2") forces the kernel ISA for the
// google-benchmark mode and for the non-differential baseline cases; the
// active ISA lands in the run manifest as `simd_isa`.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/interpreter.hpp"
#include "dataset/corpus.hpp"
#include "gnn/classifier.hpp"
#include "graph/ops.hpp"
#include "isa/features.hpp"
#include "nn/matrix16.hpp"
#include "nn/simd.hpp"
#include "nn/sparse.hpp"
#include "nn/workspace.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cfgx {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

// Adjacency at typical CFG edge density: a fallthrough chain plus sparse
// branch/call edges, ~2 out-edges per basic block regardless of n.
Matrix cfg_adjacency(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const double p = 1.0 / static_cast<double>(n);  // ~1 extra edge per node
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(p)) a(i, j) = 1.0;
    }
  }
  return a;
}

ThreadPool& kernel_pool() {
  static ThreadPool pool;
  return pool;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 64));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// The pre-blocking i-k-j loop, kept as detail::matmul_reference_rows. The
// explicit reshape matches the zero-fill matmul_into performs internally, so
// the delta against BM_MatmulInto is purely blocked-vs-naive.
void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, 64, rng);
  Matrix out(n, 64);
  for (auto _ : state) {
    out.reshape(n, 64);
    detail::matmul_reference_rows(a, b, out, 0, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 64));
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128)->Arg(256);

// Destination-passing variant writing into a persistent buffer: the delta
// against BM_Matmul is the per-call heap allocation of the returned Matrix.
void BM_MatmulInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, 64, rng);
  Matrix out;
  for (auto _ : state) {
    matmul_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 64));
}
BENCHMARK(BM_MatmulInto)->Arg(64)->Arg(128)->Arg(256);

// --- dense vs CSR vs parallel on the GCN hot-path product A_hat * H ---
// Same normalized CFG-density adjacency and feature width (64) in all
// variants so the reported times are directly comparable; the acceptance
// bar is >= 2x for CSR over dense matmul at n = 256.

void BM_AdjacencyMatmulDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix a_hat = normalized_adjacency(cfg_adjacency(n, rng));
  const Matrix h = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a_hat, h));
  }
}
BENCHMARK(BM_AdjacencyMatmulDense)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencyMatmulDenseParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix a_hat = normalized_adjacency(cfg_adjacency(n, rng));
  const Matrix h = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_parallel(a_hat, h, kernel_pool()));
  }
}
BENCHMARK(BM_AdjacencyMatmulDenseParallel)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix h = random_matrix(n, 64, rng);
  state.counters["density"] = a_hat.density();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(a_hat, h));
  }
}
BENCHMARK(BM_AdjacencySpmmCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmCsrParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix h = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(a_hat, h, &kernel_pool()));
  }
}
BENCHMARK(BM_AdjacencySpmmCsrParallel)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmCsrInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix h = random_matrix(n, 64, rng);
  Matrix out;
  for (auto _ : state) {
    spmm_into(a_hat, h, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AdjacencySpmmCsrInto)->Arg(64)->Arg(128)->Arg(256);

void BM_AdjacencySpmmTransposeCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const CsrMatrix a_hat =
      CsrMatrix::from_dense(normalized_adjacency(cfg_adjacency(n, rng)));
  const Matrix g = random_matrix(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm_transpose_a(a_hat, g));
  }
}
BENCHMARK(BM_AdjacencySpmmTransposeCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_CsrFromDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Matrix a_hat = normalized_adjacency(cfg_adjacency(n, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CsrMatrix::from_dense(a_hat));
  }
}
BENCHMARK(BM_CsrFromDense)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerForwardCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const CsrMatrix a_hat = CsrMatrix::from_dense(normalized_adjacency(a));
  const Matrix h = random_matrix(n, 12, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.infer(a_hat, h));
  }
}
BENCHMARK(BM_GcnLayerForwardCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerInferIntoCsr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const CsrMatrix a_hat = CsrMatrix::from_dense(normalized_adjacency(a));
  const Matrix h = random_matrix(n, 12, rng);
  Matrix out;
  for (auto _ : state) {
    layer.infer_into(a_hat, h, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GcnLayerInferIntoCsr)->Arg(64)->Arg(128)->Arg(256);

void BM_NormalizedAdjacency(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.05)) a(i, j) = 1.0;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(normalized_adjacency(a));
  }
}
BENCHMARK(BM_NormalizedAdjacency)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const Matrix a_hat = normalized_adjacency(a);
  const Matrix h = random_matrix(n, 12, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.infer(a_hat, h));
  }
}
BENCHMARK(BM_GcnLayerForward)->Arg(64)->Arg(128)->Arg(256);

void BM_GcnLayerBackward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  GcnLayer layer(12, 64, rng);
  Matrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  const Matrix a_hat = normalized_adjacency(a);
  const Matrix h = random_matrix(n, 12, rng);
  const Matrix grad = random_matrix(n, 64, rng);
  layer.forward(a_hat, h);
  for (auto _ : state) {
    layer.zero_grad();
    benchmark::DoNotOptimize(layer.backward(grad));
  }
}
BENCHMARK(BM_GcnLayerBackward)->Arg(64)->Arg(128)->Arg(256);

// Shared fixture state for model-level benchmarks: one graph + one model.
struct ModelFixture {
  ModelFixture() : rng(5), gnn(GnnConfig{}, rng) {
    Rng graph_rng(99);
    graph = generate_acfg(Family::Rbot, graph_rng);
    adjacency = graph.dense_adjacency();
  }
  Rng rng;
  GnnClassifier gnn;
  Acfg graph;
  Matrix adjacency;
};

ModelFixture& fixture() {
  static ModelFixture instance;
  return instance;
}

void BM_GnnEmbed(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.gnn.embed(f.adjacency, f.graph.features()));
  }
}
BENCHMARK(BM_GnnEmbed);

void BM_GnnPredictMasked(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.gnn.predict_masked(f.adjacency, f.graph.features()));
  }
}
BENCHMARK(BM_GnnPredictMasked);

void BM_AlgorithmTwoInterpretation(benchmark::State& state) {
  auto& f = fixture();
  Rng model_rng(6);
  ExplainerModelConfig config;
  config.embedding_dim = f.gnn.config().embedding_dim();
  config.num_classes = f.gnn.config().num_classes;
  ExplainerModel theta(config, model_rng);
  Interpreter interpreter(theta, f.gnn);
  InterpretationConfig interpret_config;
  interpret_config.keep_adjacency_snapshots = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interpreter.interpret(f.graph, interpret_config));
  }
}
BENCHMARK(BM_AlgorithmTwoInterpretation);

void BM_GenerateSample(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(generate_acfg(Family::Zbot, rng));
  }
}
BENCHMARK(BM_GenerateSample);

void BM_BlockFeatureExtraction(benchmark::State& state) {
  Rng rng(7);
  const GeneratedSample sample = generate_program(Family::Vundo, rng);
  const LiftedCfg cfg = lift_program(sample.program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_acfg(cfg, 0, "Vundo"));
  }
}
BENCHMARK(BM_BlockFeatureExtraction);

// --- --kernels-baseline mode -------------------------------------------
// Manual DurationStats-timed before/after pairs, independent of
// google-benchmark so the output schema is ours (p50/p95 seconds plus the
// workspace counter deltas for the `_into` loops). Committed at the repo
// root as BENCH_kernels.json and uploaded by the CI perf-artifacts job.

DurationStats time_loop(std::size_t iters, const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < 5; ++i) fn();  // warm caches and workspace
  DurationStats stats;
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = clock::now();
    fn();
    stats.add(std::chrono::duration<double>(clock::now() - start).count());
  }
  return stats;
}

void write_stats(obs::JsonWriter& json, const char* label,
                 const DurationStats& stats) {
  json.key(label).begin_object();
  json.field("iterations", static_cast<std::uint64_t>(stats.count()));
  json.field("mean_s", stats.mean());
  json.field("p50_s", stats.percentile(50.0));
  json.field("p95_s", stats.percentile(95.0));
  json.field("stddev_s", stats.stddev());
  json.end_object();
}

int run_kernels_baseline(const std::string& out_path) {
  obs::set_metrics_enabled(true);
  obs::Counter& reused =
      obs::MetricsRegistry::global().counter("workspace.bytes_reused");
  obs::Counter& allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  const char* active_isa = simd::isa_name(simd::dispatch());

  obs::JsonWriter json;
  json.begin_object();
  json.field("schema", "cfgx.bench.kernels.v2");
  json.field("binary", "micro_kernels");
  json.field("feature_cols", std::uint64_t{64});
  json.field("isa", active_isa);
  json.field("avx2_supported", simd::avx2_supported());
  json.key("cases").begin_array();

  // Time one before/after pair and emit a case object, attributing each
  // side to the ISA that ran it (the differential scalar-vs-avx2 cases
  // force one side each; everything else runs under the active ISA). The
  // workspace counter deltas are sampled around the AFTER loop only (the
  // warm-up inside time_loop runs first, so a non-zero bytes_allocated
  // delta here means the optimized path still allocates in steady state).
  const auto emit_case = [&](const char* name, std::size_t n,
                             std::size_t iters,
                             const std::function<void()>& before,
                             const std::function<void()>& after,
                             const char* before_isa = nullptr,
                             const char* after_isa = nullptr) {
    const DurationStats before_stats = time_loop(iters, before);
    const std::uint64_t reused_before = reused.value();
    const std::uint64_t allocated_before = allocated.value();
    const DurationStats after_stats = time_loop(iters, after);
    json.begin_object();
    json.field("name", name);
    json.field("n", static_cast<std::uint64_t>(n));
    json.field("before_isa", before_isa ? before_isa : active_isa);
    json.field("after_isa", after_isa ? after_isa : active_isa);
    write_stats(json, "before", before_stats);
    write_stats(json, "after", after_stats);
    json.field("speedup_mean",
               after_stats.mean() > 0.0
                   ? before_stats.mean() / after_stats.mean()
                   : 0.0);
    json.key("workspace_after_loop").begin_object();
    json.field("bytes_reused_delta", reused.value() - reused_before);
    json.field("bytes_allocated_delta", allocated.value() - allocated_before);
    json.end_object();
    json.end_object();
    std::cerr << name << " n=" << n << ": before mean " << before_stats.mean()
              << "s, after mean " << after_stats.mean() << "s\n";
  };

  for (const std::size_t n : {std::size_t{64}, std::size_t{128},
                              std::size_t{256}}) {
    const std::size_t iters = n <= 64 ? 400 : (n <= 128 ? 120 : 40);
    Rng rng(1);
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, 64, rng);
    Rng adj_rng(11);
    const CsrMatrix a_hat = CsrMatrix::from_dense(
        normalized_adjacency(cfg_adjacency(n, adj_rng)));
    const Matrix h = random_matrix(n, 64, adj_rng);
    Rng layer_rng(3);
    GcnLayer layer(64, 64, layer_rng);
    Matrix out(n, 64);

    emit_case("matmul_naive_vs_blocked", n, iters,
              [&] {
                out.reshape(n, 64);
                detail::matmul_reference_rows(a, b, out, 0, n);
                benchmark::DoNotOptimize(out.data());
              },
              [&] {
                matmul_into(a, b, out);
                benchmark::DoNotOptimize(out.data());
              });
    emit_case("matmul_alloc_vs_into", n, iters,
              [&] { benchmark::DoNotOptimize(matmul(a, b)); },
              [&] {
                matmul_into(a, b, out);
                benchmark::DoNotOptimize(out.data());
              });
    emit_case("spmm_alloc_vs_into", n, iters,
              [&] { benchmark::DoNotOptimize(spmm(a_hat, h)); },
              [&] {
                spmm_into(a_hat, h, out);
                benchmark::DoNotOptimize(out.data());
              });
    emit_case("gcn_infer_alloc_vs_into", n, iters,
              [&] { benchmark::DoNotOptimize(layer.infer(a_hat, h)); },
              [&] {
                layer.infer_into(a_hat, h, out);
                benchmark::DoNotOptimize(out.data());
              });

    // --- scalar vs AVX2 (acceptance bar: >= 2x for matmul AND spmm at
    // n = 256). Each side forces its ISA; the spmm runs at CFG density.
    // Skipped when dispatch resolved to scalar — either the host lacks
    // AVX2+FMA or the user forced scalar (CFGX_SIMD/--simd), and a forced
    // run must never sneak vector kernels in.
    if (simd::dispatch() == simd::Isa::Avx2) {
      emit_case("matmul_scalar_vs_avx2", n, iters,
                [&] {
                  simd::ScopedIsa isa(simd::Isa::Scalar);
                  matmul_into(a, b, out);
                  benchmark::DoNotOptimize(out.data());
                },
                [&] {
                  simd::ScopedIsa isa(simd::Isa::Avx2);
                  matmul_into(a, b, out);
                  benchmark::DoNotOptimize(out.data());
                },
                "scalar", "avx2");
      emit_case("spmm_scalar_vs_avx2", n, iters,
                [&] {
                  simd::ScopedIsa isa(simd::Isa::Scalar);
                  spmm_into(a_hat, h, out);
                  benchmark::DoNotOptimize(out.data());
                },
                [&] {
                  simd::ScopedIsa isa(simd::Isa::Avx2);
                  spmm_into(a_hat, h, out);
                  benchmark::DoNotOptimize(out.data());
                },
                "scalar", "avx2");
    }

    // --- fp64 vs bf16 feature transform under the active ISA.
    const Matrix16 b16 = Matrix16::pack(b);
    emit_case("matmul_fp64_vs_bf16", n, iters,
              [&] {
                matmul_into(a, b, out);
                benchmark::DoNotOptimize(out.data());
              },
              [&] {
                matmul_bf16_into(a, b16, out);
                benchmark::DoNotOptimize(out.data());
              });
  }

  json.end_array();
  json.end_object();

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "kernels-baseline: cannot open " << out_path << "\n";
    return 1;
  }
  file << json.str() << "\n";
  std::cerr << "kernels-baseline: wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace cfgx

// BENCHMARK_MAIN() plus a run manifest carrying the metrics snapshot, so
// kernel call counts / time-in-kernel are machine readable alongside the
// google-benchmark numbers.
int main(int argc, char** argv) {
  std::string manifest_path = "micro_kernels_manifest.json";
  bool kernels_baseline = false;
  std::string kernels_baseline_path = "BENCH_kernels.json";
  std::vector<char*> benchmark_args;
  for (int i = 0; i < argc; ++i) {
    constexpr char kManifestFlag[] = "--manifest=";
    constexpr char kBaselineFlag[] = "--kernels-baseline";
    constexpr char kSimdFlag[] = "--simd=";
    if (std::strncmp(argv[i], kManifestFlag, sizeof kManifestFlag - 1) == 0) {
      manifest_path = argv[i] + sizeof kManifestFlag - 1;
      continue;  // google-benchmark rejects flags it does not know
    }
    if (std::strncmp(argv[i], kSimdFlag, sizeof kSimdFlag - 1) == 0) {
      try {
        cfgx::simd::set_isa(
            cfgx::simd::parse_isa(argv[i] + sizeof kSimdFlag - 1));
      } catch (const std::exception& error) {
        std::cerr << "--simd: " << error.what() << "\n";
        return 1;
      }
      continue;
    }
    if (std::strncmp(argv[i], kBaselineFlag, sizeof kBaselineFlag - 1) == 0) {
      kernels_baseline = true;
      const char* rest = argv[i] + sizeof kBaselineFlag - 1;
      if (*rest == '=') kernels_baseline_path = rest + 1;
      continue;
    }
    benchmark_args.push_back(argv[i]);
  }
  if (kernels_baseline) {
    return cfgx::run_kernels_baseline(kernels_baseline_path);
  }
  int benchmark_argc = static_cast<int>(benchmark_args.size());
  benchmark::Initialize(&benchmark_argc, benchmark_args.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  cfgx::obs::RunManifest manifest("micro_kernels");
  manifest.set_config("metrics_enabled", cfgx::obs::metrics_enabled());
  manifest.set_config(
      "simd_isa", std::string(cfgx::simd::isa_name(cfgx::simd::dispatch())));
  manifest.set_metrics(cfgx::obs::MetricsRegistry::global().snapshot());
  manifest.write_file(manifest_path);
  return 0;
}
