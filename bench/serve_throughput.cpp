// Serving-engine throughput bench: concurrent clients hammer an
// ExplanationEngine and the run reports explanations/sec plus client-side
// latency percentiles (p50/p95/p99). Output is committed at the repo root
// as BENCH_serve.json and uploaded by the CI perf-artifacts job.
//
// The GNN and Theta are randomly initialized, NOT trained: inference and
// Algorithm-2 cost are independent of the weight values, so throughput
// numbers are identical to a trained model's while the bench stays fast
// enough for CI. Graphs come from the synthetic corpus generator, so node
// counts and sparsity follow the realistic ACFG regime.
//
// Flags:
//   --out=PATH      output path               (default BENCH_serve.json)
//   --clients=N     concurrent client threads (default 4)
//   --requests=N    requests per client       (default 64)
//   --queue=N       engine queue capacity     (default 32)
//   --batch=N       engine max batch size     (default 8)
//   --workers=N     explainer pool workers    (default hardware)
//   --fast          quarter-size run (smoke)
// Telemetry (live-observability demo / CI artifacts):
//   --admin-port=N          serve /metrics, /healthz, /statusz on
//                           127.0.0.1:N (0 = ephemeral; bound port goes
//                           to stderr). Default: disabled.
//   --exporter-out=PATH     append windowed metric deltas as JSONL
//   --exporter-interval-ms=N  exporter sampling period (default 1000)
//   --slow-ms=N             capture slow-request exemplars above N ms
//   --linger-seconds=N      keep the engine (and admin endpoint) alive N
//                           seconds after the measured round, for
//                           interactive scraping
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dataset/corpus.hpp"
#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cfgx {
namespace {

using Clock = std::chrono::steady_clock;

struct ClientTotals {
  DurationStats latency;
  std::uint64_t ok = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t explain_error = 0;
  std::uint64_t other = 0;
};

int run(const CliArgs& args) {
  const bool fast = args.get_flag("fast");
  const std::string out_path = args.get_string("out", "BENCH_serve.json");
  const std::size_t clients =
      static_cast<std::size_t>(args.get_int("clients", 4));
  const std::size_t requests_per_client =
      static_cast<std::size_t>(args.get_int("requests", fast ? 16 : 64));
  serve::ServeConfig serve_config;
  serve_config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 32));
  serve_config.max_batch = static_cast<std::size_t>(args.get_int("batch", 8));
  serve_config.explain_workers =
      static_cast<std::size_t>(args.get_int("workers", 0));
  if (args.has("admin-port")) {
    serve_config.admin_port = static_cast<int>(args.get_int("admin-port", 0));
  }
  serve_config.slow_request_threshold_seconds =
      args.get_double("slow-ms", 0.0) / 1000.0;
  const std::string exporter_out = args.get_string("exporter-out", "");
  const std::int64_t exporter_interval_ms =
      args.get_int("exporter-interval-ms", 1000);
  const double linger_seconds = args.get_double("linger-seconds", 0.0);

  obs::set_metrics_enabled(true);

  // Model at the repo's default (paper-scaled-down) dimensions.
  Rng rng(2022);
  GnnClassifier gnn(GnnConfig{}, rng);

  ExplainerModelConfig theta_config;
  theta_config.embedding_dim = gnn.config().embedding_dim();
  theta_config.num_classes = gnn.config().num_classes;
  Rng theta_rng(7);
  ExplainerModel theta(theta_config, theta_rng);

  // Realistic request mix: one corpus graph per family and variant.
  CorpusConfig corpus_config;
  corpus_config.samples_per_family = fast ? 1 : 2;
  corpus_config.seed = 99;
  const Corpus corpus = generate_corpus(corpus_config);

  serve::ExplanationEngine engine(
      gnn, serve::make_cfg_explainer_factory(gnn, std::move(theta)),
      serve_config);
  if (serve_config.admin_port >= 0) {
    std::cerr << "serve_throughput: admin endpoint on 127.0.0.1:"
              << engine.admin_port() << "\n";
  }

  std::mutex totals_mutex;
  ClientTotals totals;

  // One full client round: `record` selects whether results land in
  // `totals` (the measured round) or are discarded (warm-up).
  const auto run_round = [&](bool record) {
    std::vector<std::thread> client_threads;
    for (std::size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        ClientTotals local;
        for (std::size_t i = 0; i < requests_per_client; ++i) {
          const Acfg& graph =
              corpus.graph((c * requests_per_client + i) % corpus.size());
          const Clock::time_point submitted = Clock::now();
          for (;;) {
            serve::ExplanationResponse response = engine.submit(graph).get();
            if (response.status == serve::ResponseStatus::QueueFull) {
              // Backpressure: retry after a short pause; the rejection is
              // counted so the report shows how hard the queue pushed back.
              ++local.queue_full;
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              continue;
            }
            if (response.status == serve::ResponseStatus::Ok) {
              ++local.ok;
            } else if (response.status ==
                       serve::ResponseStatus::ExplainError) {
              ++local.explain_error;
            } else {
              ++local.other;
            }
            local.latency.add(std::chrono::duration<double>(Clock::now() -
                                                            submitted)
                                  .count());
            break;
          }
        }
        if (!record) return;
        std::lock_guard<std::mutex> lock(totals_mutex);
        totals.ok += local.ok;
        totals.queue_full += local.queue_full;
        totals.explain_error += local.explain_error;
        totals.other += local.other;
        for (double sample : local.latency.samples()) {
          totals.latency.add(sample);
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
  };

  // Warm-up: untimed rounds with the full concurrent mix prime the
  // workspace pools (dispatcher + explainer workers) at load-shaped batch
  // sizes. One round is usually enough, but worker scheduling is
  // nondeterministic — a worker that missed the largest graph shape in
  // round one still grows its pool later — so repeat until a whole round
  // allocates nothing fresh (bounded, in case trim_after aging keeps
  // recycling pools).
  obs::Counter& ws_allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");
  // Two CONSECUTIVE zero-allocation rounds required: batch packing is
  // timing-dependent, so a single quiet round can still precede a fresh
  // high-water batch shape in the next one.
  std::size_t warmup_rounds = 0;
  std::size_t zero_rounds = 0;
  while (warmup_rounds < 8 && zero_rounds < 2) {
    const std::uint64_t before = ws_allocated.value();
    run_round(/*record=*/false);
    ++warmup_rounds;
    zero_rounds = ws_allocated.value() == before ? zero_rounds + 1 : 0;
  }

  // The measured round starts from a clean registry so serve_metrics (and
  // any exporter/admin scrape) describe steady-state traffic only, not the
  // warm-up rounds mixed in.
  obs::MetricsRegistry::global().reset();

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!exporter_out.empty()) {
    obs::ExporterConfig exporter_config;
    exporter_config.interval = std::chrono::milliseconds(exporter_interval_ms);
    exporter_config.path = exporter_out;
    exporter = std::make_unique<obs::MetricsExporter>(
        obs::MetricsRegistry::global(), exporter_config);
  }

  const std::uint64_t ws_allocated_before = ws_allocated.value();

  const Clock::time_point start = Clock::now();
  run_round(/*record=*/true);
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (linger_seconds > 0.0) {
    std::cerr << "serve_throughput: lingering " << linger_seconds
              << "s (scrape the admin endpoint now)\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_seconds));
  }
  const std::vector<serve::SlowRequestExemplar> slow = engine.slow_exemplars();
  engine.stop();
  if (exporter) exporter->stop();
  const std::uint64_t ws_allocated_delta =
      ws_allocated.value() - ws_allocated_before;

  obs::JsonWriter json;
  json.begin_object();
  json.field("schema", "cfgx.bench.serve.v1");
  json.field("binary", "serve_throughput");
  json.key("config").begin_object();
  json.field("clients", static_cast<std::uint64_t>(clients));
  json.field("requests_per_client",
             static_cast<std::uint64_t>(requests_per_client));
  json.field("queue_capacity",
             static_cast<std::uint64_t>(serve_config.queue_capacity));
  json.field("max_batch", static_cast<std::uint64_t>(serve_config.max_batch));
  json.field("explain_workers",
             static_cast<std::uint64_t>(serve_config.explain_workers));
  json.field("distinct_graphs", static_cast<std::uint64_t>(corpus.size()));
  json.field("fast", fast);
  json.field("warmup_rounds", static_cast<std::uint64_t>(warmup_rounds));
  json.end_object();

  json.key("totals").begin_object();
  json.field("ok", totals.ok);
  json.field("queue_full_rejections", totals.queue_full);
  json.field("explain_errors", totals.explain_error);
  json.field("other", totals.other);
  json.end_object();

  json.field("wall_seconds", wall_seconds);
  json.field("explanations_per_second",
             wall_seconds > 0.0 ? static_cast<double>(totals.ok) / wall_seconds
                                : 0.0);

  json.key("latency").begin_object();
  json.field("mean_s", totals.latency.mean());
  json.field("p50_s", totals.latency.percentile(50.0));
  json.field("p95_s", totals.latency.percentile(95.0));
  json.field("p99_s", totals.latency.percentile(99.0));
  json.field("stddev_s", totals.latency.stddev());
  json.end_object();

  // Steady-state property: after warm-up, serving performs no fresh
  // workspace allocation (heterogeneous graph sizes may still grow pools
  // on the first pass; the committed run should show 0 or near-0).
  json.key("workspace").begin_object();
  json.field("bytes_allocated_delta", ws_allocated_delta);
  json.end_object();

  // Slow-request exemplars (empty unless --slow-ms was set and tripped).
  json.key("slow_requests").begin_array();
  for (const serve::SlowRequestExemplar& s : slow) {
    json.begin_object();
    json.field("request_id", s.request_id);
    json.field("status", serve::to_string(s.status));
    json.field("queue_seconds", s.queue_seconds);
    json.field("total_seconds", s.total_seconds);
    json.field("predicted_class", static_cast<std::uint64_t>(s.predicted_class));
    json.field("confidence", s.confidence);
    json.key("top_nodes").begin_array();
    for (std::uint32_t node : s.top_nodes) {
      json.value(static_cast<std::uint64_t>(node));
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  // Engine-side view from the metrics registry (queue histograms etc.).
  json.key("serve_metrics").begin_object();
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("serve.", 0) == 0) json.field(name, value);
  }
  for (const obs::HistogramStats& h : snapshot.histograms) {
    if (h.name.rfind("serve.", 0) != 0) continue;
    json.key(h.name).begin_object();
    json.field("count", h.count);
    json.field("mean", h.mean);
    json.field("p50", h.p50);
    json.field("p95", h.p95);
    json.field("p99", h.p99);
    json.end_object();
  }
  json.end_object();
  json.end_object();

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "serve_throughput: cannot open " << out_path << "\n";
    return 1;
  }
  file << json.str() << "\n";
  std::cerr << "serve_throughput: " << totals.ok << " explanations in "
            << wall_seconds << "s ("
            << (wall_seconds > 0.0 ? totals.ok / wall_seconds : 0.0)
            << "/s), p50 " << totals.latency.percentile(50.0) << "s, p95 "
            << totals.latency.percentile(95.0) << "s, p99 "
            << totals.latency.percentile(99.0) << "s; wrote " << out_path
            << "\n";
  return 0;
}

}  // namespace
}  // namespace cfgx

int main(int argc, char** argv) {
  const cfgx::CliArgs args(argc, argv);
  return cfgx::run(args);
}
