#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "nn/simd.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cfgx::bench {
namespace {

constexpr char kEvalMagic[] = "CFGXE002";
constexpr std::size_t kMagicLen = 8;

void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("bench eval cache: truncated stream");
  return value;
}

void write_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

double read_f64(std::istream& in) {
  double value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("bench eval cache: truncated stream");
  return value;
}

void write_doubles(std::ostream& out, const std::vector<double>& values) {
  write_u64(out, values.size());
  for (double v : values) write_f64(out, v);
}

std::vector<double> read_doubles(std::istream& in) {
  const std::uint64_t count = read_u64(in);
  if (count > (1u << 24)) {
    throw SerializationError("bench eval cache: implausible array size");
  }
  std::vector<double> values(count);
  for (double& v : values) v = read_f64(in);
  return values;
}

}  // namespace

BenchConfig BenchConfig::from_cli(const CliArgs& args) {
  BenchConfig config;
  config.fast = args.get_flag("fast");
  config.fresh = args.get_flag("fresh");
  config.cache_dir = args.get_string("cache-dir", config.cache_dir);
  if (config.fast) {
    config.samples_per_family = 12;
    config.gnn_epochs = 100;
    config.explainer_epochs = 800;
    config.pg_epochs = 4;
    config.gnnx_iterations = 25;
    config.subx_iterations = 8;
    config.eval_per_family = 3;
    config.cache_dir += "_fast";
  }
  config.samples_per_family = static_cast<std::size_t>(
      args.get_int("samples", static_cast<std::int64_t>(config.samples_per_family)));
  config.gnn_epochs = static_cast<std::size_t>(
      args.get_int("gnn-epochs", static_cast<std::int64_t>(config.gnn_epochs)));
  config.explainer_epochs = static_cast<std::size_t>(args.get_int(
      "explainer-epochs", static_cast<std::int64_t>(config.explainer_epochs)));
  config.eval_per_family = static_cast<std::size_t>(args.get_int(
      "eval-per-family", static_cast<std::int64_t>(config.eval_per_family)));
  config.nodes = static_cast<std::size_t>(
      args.get_int("nodes", static_cast<std::int64_t>(config.nodes)));
  if (config.nodes != 0) {
    config.cache_dir += "_n" + std::to_string(config.nodes);
  }

  // Failing-seed replay hook: when a property/fuzz suite reports a seed,
  // `--replay-seed S` (or the same CFGX_PROPTEST_SEED variable the test
  // runner honors) re-derives the bench corpus from that seed so the exact
  // graphs involved in the failure can be regenerated and profiled. The
  // explicit flag wins over the environment.
  std::int64_t replay = args.get_int("replay-seed", -1);
  if (replay < 0) {
    if (const char* env = std::getenv("CFGX_PROPTEST_SEED")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end && *end == '\0') replay = static_cast<std::int64_t>(parsed);
    }
  }
  if (replay >= 0) {
    config.corpus_seed = static_cast<std::uint64_t>(replay);
    config.fresh = true;  // a cached corpus from another seed would lie
    std::fprintf(stderr,
                 "[bench] replaying failing seed %lld as corpus seed "
                 "(cache bypassed)\n",
                 static_cast<long long>(replay));
  }

  // Kernel ISA override: `--simd=I` beats CFGX_SIMD beats runtime dispatch.
  // Applied here so every kernel call in every bench binary runs under the
  // requested ISA; bad values throw before any measurement happens.
  config.simd = args.get_string("simd", "");
  if (!config.simd.empty()) {
    simd::set_isa(simd::parse_isa(config.simd));
  }
  return config;
}

BenchContext::BenchContext(BenchConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.cache_dir);
  if (config_.fresh) {
    for (const auto& entry :
         std::filesystem::directory_iterator(config_.cache_dir)) {
      std::filesystem::remove(entry.path());
    }
  }
}

std::string BenchContext::cache_path(const std::string& filename) const {
  return (std::filesystem::path(config_.cache_dir) / filename).string();
}

const Corpus& BenchContext::corpus() {
  if (!corpus_) {
    CorpusConfig cc;
    cc.samples_per_family = config_.samples_per_family;
    cc.seed = config_.corpus_seed;
    cc.generator.target_blocks = config_.nodes;
    std::fprintf(stderr, "[bench] generating corpus (%zu graphs)...\n",
                 cc.samples_per_family * kFamilyCount);
    corpus_.emplace(generate_corpus(cc));
  }
  return *corpus_;
}

const Split& BenchContext::split() {
  if (!split_) {
    split_.emplace(
        stratified_split(corpus(), config_.train_fraction, config_.split_seed));
  }
  return *split_;
}

const std::vector<std::size_t>& BenchContext::eval_indices() {
  if (eval_indices_.empty()) {
    std::map<int, std::size_t> taken;
    for (std::size_t index : split().test) {
      const int label = corpus().graph(index).label();
      if (taken[label] < config_.eval_per_family) {
        ++taken[label];
        eval_indices_.push_back(index);
      }
    }
  }
  return eval_indices_;
}

GnnClassifier& BenchContext::gnn() {
  if (!gnn_) {
    const std::string path = cache_path("gnn.bin");
    if (std::filesystem::exists(path)) {
      try {
        gnn_ = std::make_unique<GnnClassifier>(GnnClassifier::load_file(path));
        std::fprintf(stderr, "[bench] loading GNN from %s\n", path.c_str());
      } catch (const SerializationError&) {
        std::fprintf(stderr, "[bench] cached GNN is stale; retraining\n");
      }
    }
    if (!gnn_) {
      std::fprintf(stderr, "[bench] training GNN (%zu epochs)...\n",
                   config_.gnn_epochs);
      Rng rng(7);
      gnn_ = std::make_unique<GnnClassifier>(GnnConfig{}, rng);
      GnnTrainConfig train_config;
      train_config.epochs = config_.gnn_epochs;
      train_gnn(*gnn_, corpus(), split().train, train_config);
      gnn_->save_file(path);
    }
  }
  return *gnn_;
}

CfgExplainer& BenchContext::cfg_explainer() {
  if (!cfg_explainer_) {
    ExplainerTrainConfig train_config;
    train_config.epochs = config_.explainer_epochs;
    train_config.score_sparsity_weight = config_.score_sparsity;
    InterpretationConfig interpret_config;
    interpret_config.step_size_percent = config_.step_size_percent;
    interpret_config.keep_adjacency_snapshots = false;
    cfg_explainer_ = std::make_unique<CfgExplainer>(gnn(), train_config,
                                                    interpret_config);
    const std::string path = cache_path("theta.bin");
    const std::string time_path = cache_path("theta_time.bin");
    if (std::filesystem::exists(path) && std::filesystem::exists(time_path)) {
      std::fprintf(stderr, "[bench] loading CFGExplainer Theta from %s\n",
                   path.c_str());
      cfg_explainer_->load_model_file(path);
      std::ifstream in(time_path, std::ios::binary);
      cfg_offline_seconds_ = read_f64(in);
    } else {
      std::fprintf(stderr, "[bench] training CFGExplainer (%zu epochs)...\n",
                   config_.explainer_epochs);
      Stopwatch watch;
      cfg_explainer_->fit(corpus(), split().train);
      cfg_offline_seconds_ = watch.elapsed_seconds();
      cfg_explainer_->save_model_file(path);
      std::ofstream out(time_path, std::ios::binary);
      write_f64(out, cfg_offline_seconds_);
    }
  }
  return *cfg_explainer_;
}

PgExplainer& BenchContext::pg_explainer() {
  if (!pg_explainer_) {
    PgExplainerConfig pg_config;
    pg_config.epochs = config_.pg_epochs;
    pg_explainer_ = std::make_unique<PgExplainer>(gnn(), pg_config);
    const std::string path = cache_path("pgx.bin");
    const std::string time_path = cache_path("pgx_time.bin");
    if (std::filesystem::exists(path) && std::filesystem::exists(time_path)) {
      std::fprintf(stderr, "[bench] loading PGExplainer from %s\n", path.c_str());
      pg_explainer_->load_file(path);
      std::ifstream in(time_path, std::ios::binary);
      pg_offline_seconds_ = read_f64(in);
    } else {
      std::fprintf(stderr, "[bench] training PGExplainer (%zu epochs)...\n",
                   config_.pg_epochs);
      Stopwatch watch;
      pg_explainer_->fit(corpus(), split().train);
      pg_offline_seconds_ = watch.elapsed_seconds();
      pg_explainer_->save_file(path);
      std::ofstream out(time_path, std::ios::binary);
      write_f64(out, pg_offline_seconds_);
    }
  }
  return *pg_explainer_;
}

GnnExplainer& BenchContext::gnn_explainer() {
  if (!gnn_explainer_) {
    GnnExplainerConfig config;
    config.iterations = config_.gnnx_iterations;
    gnn_explainer_ = std::make_unique<GnnExplainer>(gnn(), config);
  }
  return *gnn_explainer_;
}

SubgraphX& BenchContext::subgraphx() {
  if (!subgraphx_) {
    SubgraphXConfig config;
    config.mcts_iterations = config_.subx_iterations;
    subgraphx_ = std::make_unique<SubgraphX>(gnn(), config);
  }
  return *subgraphx_;
}

double BenchContext::gnn_accuracy_on_eval() {
  return full_graph_accuracy(gnn(), corpus(), eval_indices());
}

Explainer& BenchContext::explainer_by_name(const std::string& name) {
  if (name == "CFGExplainer") return cfg_explainer();
  if (name == "GNNExplainer") return gnn_explainer();
  if (name == "SubgraphX") return subgraphx();
  if (name == "PGExplainer") return pg_explainer();
  if (name == "Random") {
    if (!random_) random_ = std::make_unique<RandomExplainer>(17);
    return *random_;
  }
  if (name == "Degree") {
    if (!degree_) degree_ = std::make_unique<DegreeExplainer>();
    return *degree_;
  }
  throw std::invalid_argument("unknown explainer: " + name);
}

double BenchContext::offline_seconds(const std::string& name) const {
  if (name == "CFGExplainer") return cfg_offline_seconds_;
  if (name == "PGExplainer") return pg_offline_seconds_;
  return 0.0;
}

NamedEvaluation BenchContext::evaluate(const std::string& name) {
  const std::string path = cache_path("eval_" + name + ".bin");
  if (std::filesystem::exists(path)) {
    try {
      NamedEvaluation cached = load_evaluation_file(path);
      std::fprintf(stderr, "[bench] loading cached evaluation for %s\n",
                   name.c_str());
      return cached;
    } catch (const SerializationError&) {
      std::fprintf(stderr,
                   "[bench] cached evaluation for %s is stale; recomputing\n",
                   name.c_str());
    }
  }
  std::fprintf(stderr, "[bench] evaluating %s on %zu graphs...\n", name.c_str(),
               eval_indices().size());
  Explainer& explainer = explainer_by_name(name);
  EvaluationConfig eval_config;
  eval_config.step_size_percent = config_.step_size_percent;
  NamedEvaluation result;
  result.evaluation =
      evaluate_explainer(explainer, gnn(), corpus(), eval_indices(), eval_config);
  result.offline_training_seconds = offline_seconds(name);
  save_evaluation_file(path, result);
  return result;
}

const std::vector<std::string>& BenchContext::paper_explainers() {
  static const std::vector<std::string> names{"CFGExplainer", "GNNExplainer",
                                              "SubgraphX", "PGExplainer"};
  return names;
}

void save_evaluation_file(const std::string& path, const NamedEvaluation& eval) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  out.write(kEvalMagic, kMagicLen);
  write_string(out, eval.evaluation.explainer_name);
  write_f64(out, eval.offline_training_seconds);
  write_f64(out, eval.evaluation.average_auc);
  write_f64(out, eval.evaluation.plant_precision);
  write_f64(out, eval.evaluation.plant_recall);
  write_f64(out, eval.evaluation.complement_accuracy_at_20);
  write_f64(out, eval.evaluation.sparsity_at_20);
  write_doubles(out, eval.evaluation.explain_time.samples());
  write_u64(out, eval.evaluation.per_family.size());
  for (const FamilyCurve& curve : eval.evaluation.per_family) {
    write_u64(out, static_cast<std::uint64_t>(family_label(curve.family)));
    write_u64(out, curve.sample_count);
    write_f64(out, curve.auc);
    write_doubles(out, curve.fractions);
    write_doubles(out, curve.accuracies);
  }
}

NamedEvaluation load_evaluation_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  char magic[kMagicLen] = {};
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kEvalMagic) {
    throw SerializationError("not a bench evaluation cache file");
  }
  NamedEvaluation eval;
  eval.evaluation.explainer_name = read_string(in);
  eval.offline_training_seconds = read_f64(in);
  eval.evaluation.average_auc = read_f64(in);
  eval.evaluation.plant_precision = read_f64(in);
  eval.evaluation.plant_recall = read_f64(in);
  eval.evaluation.complement_accuracy_at_20 = read_f64(in);
  eval.evaluation.sparsity_at_20 = read_f64(in);
  for (double sample : read_doubles(in)) eval.evaluation.explain_time.add(sample);
  const std::uint64_t families = read_u64(in);
  if (families > kFamilyCount) {
    throw SerializationError("bench eval cache: too many families");
  }
  for (std::uint64_t i = 0; i < families; ++i) {
    FamilyCurve curve;
    curve.family = family_from_label(static_cast<int>(read_u64(in)));
    curve.sample_count = read_u64(in);
    curve.auc = read_f64(in);
    curve.fractions = read_doubles(in);
    curve.accuracies = read_doubles(in);
    eval.evaluation.per_family.push_back(std::move(curve));
  }
  return eval;
}

obs::ManifestTiming timing_from_stats(const std::string& name,
                                      const DurationStats& stats) {
  obs::ManifestTiming timing;
  timing.name = name;
  timing.count = stats.count();
  if (stats.count() > 0) {
    timing.total_seconds = stats.total();
    timing.mean_seconds = stats.mean();
    timing.stddev_seconds = stats.stddev();
    timing.p50_seconds = stats.percentile(50.0);
    timing.p95_seconds = stats.percentile(95.0);
    timing.p99_seconds = stats.percentile(99.0);
  }
  return timing;
}

namespace {

// CFGX_TRACE=0/off/false means "no trace"; 1/on/true means "trace to the
// default path"; anything else is itself the output path.
bool env_requests_trace(const char* value, std::string& path_out) {
  const std::string text(value);
  if (text.empty() || text == "0" || text == "off" || text == "false") {
    return false;
  }
  if (text != "1" && text != "on" && text != "true") path_out = text;
  return true;
}

}  // namespace

RunReport::RunReport(const std::string& binary_name, const CliArgs& args,
                     const BenchConfig& config)
    : manifest_(binary_name) {
  // Log level: explicit flag > CFGX_LOG_LEVEL (already applied at static
  // init) > quiet-by-default so tables stay clean.
  if (args.has("log-level")) {
    try {
      set_global_log_level(log_level_from_string(args.get_string("log-level", "")));
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "[bench] %s; keeping current level\n", error.what());
    }
  } else {
    set_default_log_level(LogLevel::Warn);
  }

  trace_path_ = binary_name + "_trace.json";
  bool want_trace = false;
  if (args.has("trace")) {
    const std::string value = args.get_string("trace", "");
    want_trace = true;
    if (!value.empty() && value != "true" && value != "1") trace_path_ = value;
  } else if (const char* env = std::getenv("CFGX_TRACE")) {
    want_trace = env_requests_trace(env, trace_path_);
  }

  manifest_path_ =
      args.get_string("manifest", binary_name + "_manifest.json");

  manifest_.set_config("fast", config.fast);
  manifest_.set_config("fresh", config.fresh);
  manifest_.set_config("samples_per_family",
                       static_cast<std::uint64_t>(config.samples_per_family));
  manifest_.set_config("corpus_seed", config.corpus_seed);
  manifest_.set_config("train_fraction", config.train_fraction);
  manifest_.set_config("gnn_epochs",
                       static_cast<std::uint64_t>(config.gnn_epochs));
  manifest_.set_config("explainer_epochs",
                       static_cast<std::uint64_t>(config.explainer_epochs));
  manifest_.set_config("pg_epochs",
                       static_cast<std::uint64_t>(config.pg_epochs));
  manifest_.set_config("gnnx_iterations",
                       static_cast<std::uint64_t>(config.gnnx_iterations));
  manifest_.set_config("subx_iterations",
                       static_cast<std::uint64_t>(config.subx_iterations));
  manifest_.set_config("eval_per_family",
                       static_cast<std::uint64_t>(config.eval_per_family));
  manifest_.set_config("step_size_percent",
                       static_cast<std::uint64_t>(config.step_size_percent));
  manifest_.set_config("node_cap", static_cast<std::uint64_t>(config.nodes));
  manifest_.set_config("cache_dir", config.cache_dir);
  // Per-ISA attribution: every manifest names the kernel ISA that produced
  // its numbers (dispatch() resolves CFGX_SIMD / --simd / CPUID here).
  manifest_.set_config("simd_isa", std::string(simd::isa_name(simd::dispatch())));
  simd::record_isa_metric();

  if (want_trace) {
    obs::start_tracing();
    tracing_ = true;
    std::fprintf(stderr, "[bench] tracing to %s\n", trace_path_.c_str());
  }
}

RunReport::~RunReport() {
  if (finished_) return;
  try {
    finish();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "[bench] run report failed: %s\n", error.what());
  }
}

void RunReport::add_result(const std::string& key, double value) {
  manifest_.add_result(key, value);
}

void RunReport::add_timing(const std::string& name, const DurationStats& stats) {
  manifest_.add_timing(timing_from_stats(name, stats));
}

void RunReport::finish() {
  if (finished_) return;
  finished_ = true;
  if (tracing_) {
    obs::stop_tracing();
    if (obs::write_trace_file(trace_path_)) {
      manifest_.set_trace_file(trace_path_);
      std::fprintf(stderr, "[bench] wrote trace (%zu events) to %s\n",
                   obs::trace_event_count(), trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[bench] FAILED to write trace to %s\n",
                   trace_path_.c_str());
    }
  }
  manifest_.set_metrics(obs::MetricsRegistry::global().snapshot());
  manifest_.write_file(manifest_path_);
  std::fprintf(stderr, "[bench] wrote manifest to %s\n", manifest_path_.c_str());
}

std::string format_minutes(double seconds) {
  char buf[64];
  if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f s", seconds);
  }
  return buf;
}

}  // namespace cfgx::bench
