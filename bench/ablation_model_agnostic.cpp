// Model-agnosticism ablation.
//
// The paper argues CFGExplainer is model agnostic because it consumes only
// the GNN's node embeddings (Section IV). This bench backs that claim by
// running the identical Theta pipeline against TWO different classifiers:
// the default mean-pool GCN and a DGCNN-style SortPool GCN (the readout of
// MAGIC, the classifier the paper explains). CFGExplainer should beat the
// random baseline under both, without any explainer-side changes.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

namespace {

struct PipelineResult {
  double gnn_accuracy = 0.0;
  ExplainerEvaluation cfgx;
  ExplainerEvaluation random;
};

PipelineResult run_pipeline(BenchContext& ctx, GnnClassifier& gnn) {
  PipelineResult result;
  result.gnn_accuracy =
      full_graph_accuracy(gnn, ctx.corpus(), ctx.eval_indices());

  ExplainerTrainConfig train_config;
  train_config.epochs = ctx.config().explainer_epochs;
  train_config.score_sparsity_weight = ctx.config().score_sparsity;
  InterpretationConfig interpret_config;
  interpret_config.keep_adjacency_snapshots = false;
  CfgExplainer explainer(gnn, train_config, interpret_config);
  explainer.fit(ctx.corpus(), ctx.split().train);

  EvaluationConfig eval_config;
  eval_config.step_size_percent = ctx.config().step_size_percent;
  result.cfgx = evaluate_explainer(explainer, gnn, ctx.corpus(),
                                   ctx.eval_indices(), eval_config);
  RandomExplainer random(17);
  result.random = evaluate_explainer(random, gnn, ctx.corpus(),
                                     ctx.eval_indices(), eval_config);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("ablation_model_agnostic", args, bench_config);
  BenchContext ctx(bench_config);

  std::printf("=== Model agnosticism: identical Theta pipeline on two "
              "classifier architectures ===\n\n");

  // Pipeline A: the cached mean-pool GCN.
  std::fprintf(stderr, "[bench] pipeline A: mean-pool GCN\n");
  PipelineResult mean_pool = run_pipeline(ctx, ctx.gnn());

  // Pipeline B: DGCNN-style SortPool readout, trained from scratch.
  std::fprintf(stderr, "[bench] pipeline B: training SortPool (DGCNN) GCN\n");
  Rng rng(71);
  GnnConfig sort_config;
  sort_config.readout = ReadoutKind::SortPool;
  sort_config.sortpool_k = 16;
  GnnClassifier sortpool_gnn(sort_config, rng);
  GnnTrainConfig gnn_train;
  gnn_train.epochs = ctx.config().gnn_epochs;
  train_gnn(sortpool_gnn, ctx.corpus(), ctx.split().train, gnn_train);
  PipelineResult sort_pool = run_pipeline(ctx, sortpool_gnn);

  TextTable table({"classifier", "GNN acc", "CFGX AUC", "CFGX @20%",
                   "Random AUC", "Random @20%", "CFGX plant recall"},
                  {Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right, Align::Right});
  const auto add = [&](const char* name, const PipelineResult& r) {
    table.add_row({name, format_percent(r.gnn_accuracy),
                   format_fixed(r.cfgx.average_auc),
                   format_fixed(r.cfgx.average_accuracy_at(0.2)),
                   format_fixed(r.random.average_auc),
                   format_fixed(r.random.average_accuracy_at(0.2)),
                   format_fixed(r.cfgx.plant_recall)});
  };
  add("GCN + mean-pool", mean_pool);
  add("GCN + SortPool (DGCNN)", sort_pool);
  std::printf("%s\n", table.render().c_str());

  std::printf("Reading: the explainer never touches classifier internals — "
              "only embeddings —\nso it should outperform random under both "
              "readouts (paper Section IV's\nmodel-agnosticism argument).\n");
  return 0;
}
