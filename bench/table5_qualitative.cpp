// Table V: qualitative analysis of the top-20% subgraphs produced by
// CFGExplainer — per-family malware patterns (code manipulation, XOR
// obfuscation, semantic NOPs) with representative instruction excerpts,
// plus the macro-level Windows-API behaviour summary of Section V-D.
#include <cstdio>

#include <map>

#include "common.hpp"
#include "isa/patterns.hpp"

using namespace cfgx;
using namespace cfgx::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("table5_qualitative", args, bench_config);
  BenchContext ctx(bench_config);

  CfgExplainer& explainer = ctx.cfg_explainer();
  const Corpus& corpus = ctx.corpus();

  std::printf("=== Table V: malware patterns in CFGExplainer's top-20%% subgraphs ===\n\n");

  TextTable table({"No.", "Malware Family", "Type of unique patterns", "Examples"},
                  {Align::Right, Align::Left, Align::Left, Align::Left});

  std::map<Family, std::map<ApiBehavior, std::vector<std::string>>> api_summary;

  int row_number = 0;
  for (Family family : kAllFamilies) {
    if (family == Family::Benign) continue;
    ++row_number;

    // Aggregate patterns over the family's evaluation samples (the paper
    // hand-analyzed 11-15 samples per family).
    std::map<MalwarePattern, std::size_t> counts;
    std::map<MalwarePattern, std::string> examples;
    for (std::size_t index : ctx.eval_indices()) {
      const Acfg& graph = corpus.graph(index);
      if (graph.label() != family_label(family)) continue;

      const NodeRanking ranking = explainer.explain(graph);
      const auto top20 = ranking.top_fraction(0.2);
      const GeneratedSample sample = regenerate_sample(corpus, index);
      const LiftedCfg cfg = lift_program(sample.program);
      const PatternReport report = analyze_blocks(cfg, top20);

      for (const auto& [pattern, count] : report.pattern_counts) {
        counts[pattern] += count;
        examples.emplace(pattern, report.examples.at(pattern));
      }
      for (const auto& [behavior, names] : report.apis_by_behavior) {
        auto& bucket = api_summary[family][behavior];
        for (const std::string& name : names) {
          if (std::find(bucket.begin(), bucket.end(), name) == bucket.end()) {
            bucket.push_back(name);
          }
        }
      }
    }

    bool first = true;
    for (const auto& [pattern, count] : counts) {
      if (pattern == MalwarePattern::ApiCall) continue;  // macro section below
      table.add_row({first ? std::to_string(row_number) : "",
                     first ? to_string(family) : "", to_string(pattern),
                     examples.at(pattern)});
      first = false;
    }
    if (first) {
      table.add_row({std::to_string(row_number), to_string(family),
                     "(no micro patterns surfaced)", ""});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Macro-level analysis: Windows API behaviours in top-20%% blocks\n");
  for (const auto& [family, behaviors] : api_summary) {
    std::printf("  %-8s:", to_string(family));
    for (const auto& [behavior, names] : behaviors) {
      if (behavior == ApiBehavior::Unknown) continue;
      std::printf(" %s(", to_string(behavior));
      for (std::size_t i = 0; i < names.size(); ++i) {
        std::printf("%s%s", i ? "," : "", names[i].c_str());
      }
      std::printf(")");
    }
    std::printf("\n");
  }
  return 0;
}
