// Table III: per-family classification accuracy of the top-10% and top-20%
// subgraphs plus the AUC of the accuracy-vs-size curve, for all four
// explainers, with the paper's Average row and headline ratios.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

namespace {

double family_metric(const ExplainerEvaluation& eval, Family family,
                     double fraction) {
  for (const FamilyCurve& curve : eval.per_family) {
    if (curve.family == family) {
      return fraction < 0 ? curve.auc : curve.accuracy_at(fraction);
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("table3_summary", args, bench_config);
  BenchContext ctx(bench_config);

  std::vector<NamedEvaluation> evals;
  for (const std::string& name : BenchContext::paper_explainers()) {
    evals.push_back(ctx.evaluate(name));
  }

  std::printf("=== Table III: top-10%% / top-20%% subgraph accuracy and AUC ===\n\n");

  std::vector<std::string> header{"Family"};
  for (const auto& eval : evals) {
    const std::string& name = eval.evaluation.explainer_name;
    header.push_back(name + " 10%");
    header.push_back(name + " 20%");
    header.push_back(name + " AUC");
  }
  std::vector<Align> aligns(header.size(), Align::Right);
  aligns[0] = Align::Left;
  TextTable table(header, aligns);

  for (Family family : kAllFamilies) {
    std::vector<std::string> row{to_string(family)};
    for (const auto& eval : evals) {
      row.push_back(format_fixed(family_metric(eval.evaluation, family, 0.1)));
      row.push_back(format_fixed(family_metric(eval.evaluation, family, 0.2)));
      row.push_back(format_fixed(family_metric(eval.evaluation, family, -1.0)));
    }
    table.add_row(std::move(row));
  }

  table.add_rule();
  std::vector<std::string> avg_row{"Average"};
  for (const auto& eval : evals) {
    avg_row.push_back(format_fixed(eval.evaluation.average_accuracy_at(0.1)));
    avg_row.push_back(format_fixed(eval.evaluation.average_accuracy_at(0.2)));
    avg_row.push_back(format_fixed(eval.evaluation.average_auc));
    const std::string& name = eval.evaluation.explainer_name;
    report.add_result("accuracy_at_20." + name,
                      eval.evaluation.average_accuracy_at(0.2));
    report.add_result("auc." + name, eval.evaluation.average_auc);
    report.add_timing("explain." + name, eval.evaluation.explain_time);
  }
  table.add_row(std::move(avg_row));

  std::printf("%s\n", table.render().c_str());

  // Headline ratios (paper Section V-B: CFGExplainer's top-20% accuracy is
  // 4.2x GNNExplainer, 3.6x SubgraphX, 2x PGExplainer; AUC 1.6/1.6/1.5x).
  const auto& cfgx_eval = evals[0].evaluation;
  std::printf("Headline ratios (CFGExplainer vs baseline):\n");
  for (std::size_t i = 1; i < evals.size(); ++i) {
    const auto& other = evals[i].evaluation;
    const double acc20_ratio =
        other.average_accuracy_at(0.2) > 0
            ? cfgx_eval.average_accuracy_at(0.2) / other.average_accuracy_at(0.2)
            : 0.0;
    const double auc_ratio =
        other.average_auc > 0 ? cfgx_eval.average_auc / other.average_auc : 0.0;
    std::printf("  vs %-13s top-20%% accuracy x%.1f, AUC x%.1f\n",
                other.explainer_name.c_str(), acc20_ratio, auc_ratio);
  }

  // Extra metrics the synthetic ground truth enables.
  std::printf("\nPlant recovery of top-20%% subgraphs (precision / recall):\n");
  for (const auto& eval : evals) {
    std::printf("  %-13s %.3f / %.3f\n", eval.evaluation.explainer_name.c_str(),
                eval.evaluation.plant_precision, eval.evaluation.plant_recall);
  }
  std::printf("\nSurvey metrics at the 20%% operating point (Yuan et al.):\n");
  std::printf("  %-13s %9s %9s %9s\n", "", "fidelity-", "fidelity+", "sparsity");
  for (const auto& eval : evals) {
    const double full = eval.evaluation.average_accuracy_at(1.0);
    std::printf("  %-13s %9.3f %9.3f %9.3f\n",
                eval.evaluation.explainer_name.c_str(),
                eval.evaluation.fidelity_minus(0.2),
                eval.evaluation.fidelity_plus(full),
                eval.evaluation.sparsity_at_20);
  }
  return 0;
}
