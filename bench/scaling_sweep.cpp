// Near-linear size sweep: per-explanation wall-clock at n in {256, 1024,
// 4096, 7352} (the paper's largest CFG has 7352 basic blocks) in two modes:
//   full     explain the original graph directly;
//   reduced  coarsen first (graph/reduce.hpp), explain the coarse graph,
//            project node scores back to original basic blocks.
//
// Each sweep point reports the per-explanation latency distribution, the
// coarsener's reduction ratio, and fidelity@k (k = top 20%): the fraction
// of graphs whose prediction survives keeping only the top-ranked 20% of
// ORIGINAL basic blocks — measured identically in both modes, so the
// reduced column quantifies what projection costs in explanation quality.
//
// Emits the machine-readable cfgx.bench.scaling.v1 document consumed by
// tools/bench_compare (committed baseline: BENCH_scaling.json); the CI
// perf job regenerates it fresh and gates on the committed trajectory.
//
// Flags:
//   --out=PATH    output path (default BENCH_scaling.json)
//   --graphs=N    graphs measured per sweep point (default 3)
//   --fast        half-size sweep {256, 1024} for smoke runs
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "explain/cfg_explainer.hpp"
#include "explain/reduced.hpp"
#include "dataset/generator.hpp"
#include "graph/ops.hpp"
#include "graph/reduce.hpp"
#include "nn/simd.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cfgx {
namespace {

using Clock = std::chrono::steady_clock;

struct SweepCase {
  std::string mode;          // "full" | "reduced"
  std::size_t requested_nodes = 0;
  double mean_nodes = 0.0;
  double mean_reduced_nodes = 0.0;  // == mean_nodes in full mode
  double mean_reduction_ratio = 1.0;
  double fidelity_at_20 = 0.0;
  DurationStats per_explanation;
};

// The sweep's request mix: one malware-family graph per repetition, grown
// to at least `nodes` basic blocks. Seeds are pure functions of (n, rep)
// so baseline and fresh CI runs measure the exact same graphs.
std::vector<Acfg> sweep_graphs(std::size_t nodes, std::size_t count) {
  std::vector<Acfg> graphs;
  GeneratorConfig config;
  config.target_blocks = nodes;
  for (std::size_t rep = 0; rep < count; ++rep) {
    const Family family = static_cast<Family>(rep % (kFamilyCount - 1));
    Rng rng(0x5ca11u * (nodes + 1) + rep);
    graphs.push_back(generate_acfg(family, rng, config));
  }
  return graphs;
}

// Does the prediction survive keeping only the top 20% of the ranking's
// ORIGINAL node ids? Both modes are scored against the same full-graph
// verdict, so the two columns are directly comparable.
bool prediction_survives_top20(const GnnClassifier& gnn, const Acfg& graph,
                               const NodeRanking& ranking,
                               std::size_t full_class) {
  const std::size_t keep =
      std::max<std::size_t>(1, graph.num_nodes() / 5);
  std::vector<std::uint32_t> kept(ranking.order.begin(),
                                  ranking.order.begin() + keep);
  return gnn.predict(masked_subgraph(graph, kept)).predicted_class ==
         full_class;
}

SweepCase run_point(const GnnClassifier& gnn, const ExplainerModel& theta,
                    const std::vector<Acfg>& graphs, std::size_t nodes,
                    bool reduced) {
  SweepCase result;
  result.mode = reduced ? "reduced" : "full";
  result.requested_nodes = nodes;

  std::size_t survived = 0;
  double node_sum = 0.0, coarse_sum = 0.0, ratio_sum = 0.0;
  for (const Acfg& graph : graphs) {
    // A fresh explainer per graph keeps per-call state out of the timing.
    CfgExplainer inner(gnn);
    inner.set_model(theta.clone());

    NodeRanking ranking;
    const auto start = Clock::now();
    if (reduced) {
      const ReducedGraph r = reduce_graph(graph);
      ranking = project_ranking(inner.explain(r.graph), r.projection);
      coarse_sum += static_cast<double>(r.graph.num_nodes());
      ratio_sum += r.reduction_ratio();
    } else {
      ranking = inner.explain(graph);
      coarse_sum += static_cast<double>(graph.num_nodes());
      ratio_sum += 1.0;
    }
    result.per_explanation.add(
        std::chrono::duration<double>(Clock::now() - start).count());

    node_sum += static_cast<double>(graph.num_nodes());
    const std::size_t full_class = gnn.predict(graph).predicted_class;
    if (prediction_survives_top20(gnn, graph, ranking, full_class)) {
      ++survived;
    }
  }
  const double count = static_cast<double>(graphs.size());
  result.mean_nodes = node_sum / count;
  result.mean_reduced_nodes = coarse_sum / count;
  result.mean_reduction_ratio = ratio_sum / count;
  result.fidelity_at_20 = static_cast<double>(survived) / count;
  return result;
}

void write_stats(obs::JsonWriter& json, const DurationStats& stats) {
  json.begin_object();
  json.field("mean_ms", stats.mean() * 1e3);
  json.field("p50_ms", stats.percentile(50.0) * 1e3);
  json.field("p95_ms", stats.percentile(95.0) * 1e3);
  json.field("count", static_cast<std::uint64_t>(stats.count()));
  json.end_object();
}

int run(const CliArgs& args) {
  const bool fast = args.get_flag("fast");
  const std::string out_path = args.get_string("out", "BENCH_scaling.json");
  const std::size_t graphs_per_point =
      static_cast<std::size_t>(args.get_int("graphs", 3));
  std::vector<std::size_t> sizes = {256, 1024, 4096, 7352};
  if (fast) sizes = {256, 1024};

  // Untrained model at the repo's default dimensions: explanation cost is
  // a pure function of graph size and architecture, not of training, so
  // the sweep needs no cached corpus or fitted Theta.
  Rng rng(2022);
  GnnClassifier gnn(GnnConfig{}, rng);
  ExplainerModelConfig theta_config;
  theta_config.embedding_dim = gnn.config().embedding_dim();
  theta_config.num_classes = gnn.config().num_classes;
  Rng theta_rng(7);
  const ExplainerModel theta(theta_config, theta_rng);

  std::vector<SweepCase> cases;
  for (std::size_t nodes : sizes) {
    std::fprintf(stderr, "[scaling] generating %zu graphs at n>=%zu...\n",
                 graphs_per_point, nodes);
    const std::vector<Acfg> graphs = sweep_graphs(nodes, graphs_per_point);
    for (const bool reduced : {false, true}) {
      SweepCase c = run_point(gnn, theta, graphs, nodes, reduced);
      std::fprintf(stderr,
                   "[scaling] %7s@n%-5zu mean %8.2f ms  ratio %.3f  "
                   "fidelity@20%% %.2f\n",
                   c.mode.c_str(), nodes, c.per_explanation.mean() * 1e3,
                   c.mean_reduction_ratio, c.fidelity_at_20);
      cases.push_back(std::move(c));
    }
  }

  obs::JsonWriter json;
  json.begin_object();
  json.field("schema", "cfgx.bench.scaling.v1");
  json.field("binary", "scaling_sweep");
  json.field("isa", std::string(simd::isa_name(simd::dispatch())));
  json.key("config").begin_object();
  json.field("graphs_per_point", static_cast<std::uint64_t>(graphs_per_point));
  json.field("top_fraction", 0.2);
  json.field("fast", fast);
  json.end_object();
  json.key("cases").begin_array();
  for (const SweepCase& c : cases) {
    json.begin_object();
    json.field("name", c.mode);
    json.field("n", static_cast<std::uint64_t>(c.requested_nodes));
    json.field("mean_nodes", c.mean_nodes);
    json.field("mean_reduced_nodes", c.mean_reduced_nodes);
    json.field("reduction_ratio", c.mean_reduction_ratio);
    json.field("fidelity_at_20", c.fidelity_at_20);
    json.key("per_explanation");
    write_stats(json, c.per_explanation);
    json.end_object();
  }
  json.end_array();
  // The acceptance headline: coarsening must hold the paper-scale cost
  // within an order of magnitude of the smallest full-graph sweep point.
  double full_smallest = 0.0, reduced_largest = 0.0;
  for (const SweepCase& c : cases) {
    if (c.mode == "full" && c.requested_nodes == sizes.front()) {
      full_smallest = c.per_explanation.mean();
    }
    if (c.mode == "reduced" && c.requested_nodes == sizes.back()) {
      reduced_largest = c.per_explanation.mean();
    }
  }
  json.key("summary").begin_object();
  json.field("full_smallest_mean_ms", full_smallest * 1e3);
  json.field("reduced_largest_mean_ms", reduced_largest * 1e3);
  json.field("reduced_largest_over_full_smallest",
             full_smallest > 0.0 ? reduced_largest / full_smallest : 0.0);
  json.end_object();
  json.end_object();

  std::ofstream out(out_path);
  out << json.str() << "\n";
  if (!out) {
    std::fprintf(stderr, "[scaling] FAILED to write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[scaling] wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace cfgx

int main(int argc, char** argv) {
  const cfgx::CliArgs args(argc, argv);
  return cfgx::run(args);
}
