// Table IV: offline training time and mean +/- std wall-clock per single
// explanation for the four explainers.
//
// Absolute numbers are CPU-scale (the paper used a Xeon + P100 on graphs up
// to 7352 nodes); the reproduced *shape* is the ordering
// CFGExplainer < PGExplainer << GNNExplainer << SubgraphX and the fact that
// only CFGExplainer and PGExplainer pay an offline training phase.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "graph/reduce.hpp"
#include "nn/matrix16.hpp"
#include "nn/simd.hpp"

using namespace cfgx;
using namespace cfgx::bench;

namespace {

// Phi inference wall-clock over the eval graphs at one precision. The
// manifest rows this feeds carry the active `simd_isa` config entry, so a
// scalar-forced run (--simd=scalar / CFGX_SIMD=scalar) is attributable
// next to the default-dispatch one.
DurationStats time_predictions(const GnnClassifier& gnn, BenchContext& ctx) {
  using clock = std::chrono::steady_clock;
  DurationStats stats;
  for (std::size_t index : ctx.eval_indices()) {
    const Acfg& graph = ctx.corpus().graph(index);
    const auto start = clock::now();
    const Prediction prediction = gnn.predict(graph);
    stats.add(std::chrono::duration<double>(clock::now() - start).count());
    (void)prediction;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig config = BenchConfig::from_cli(args);
  RunReport report("table4_explanation_time", args, config);
  BenchContext ctx(config);

  std::vector<NamedEvaluation> evals;
  for (const std::string& name : BenchContext::paper_explainers()) {
    evals.push_back(ctx.evaluate(name));
  }

  std::printf("=== Table IV: explanation time ===\n");
  std::printf("(per-explanation stats over %zu graphs)\n\n",
              evals.front().evaluation.explain_time.count());

  TextTable table({"Explainer", "Offline Training Time",
                   "Avg Time per Explanation", "p95",
                   "Slowdown vs CFGExplainer"},
                  {Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right});
  const double reference = evals.front().evaluation.explain_time.mean();
  for (const auto& eval : evals) {
    const DurationStats& stats = eval.evaluation.explain_time;
    std::string offline = eval.offline_training_seconds > 0.0
                              ? format_minutes(eval.offline_training_seconds)
                              : "-";
    const double p95 = stats.percentile(95.0);
    char p95_text[32];
    if (p95 >= 1.0) {
      std::snprintf(p95_text, sizeof p95_text, "%.2f s", p95);
    } else {
      std::snprintf(p95_text, sizeof p95_text, "%.2f ms", p95 * 1e3);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "x%.1f",
                  reference > 0 ? stats.mean() / reference : 0.0);
    table.add_row({eval.evaluation.explainer_name, std::move(offline),
                   stats.summary(), p95_text, ratio});

    report.add_timing("explain." + eval.evaluation.explainer_name, stats);
    if (eval.offline_training_seconds > 0.0) {
      report.add_result("offline_seconds." + eval.evaluation.explainer_name,
                        eval.offline_training_seconds);
    }
  }
  std::printf("%s\n", table.render().c_str());

  // fp64-vs-bf16 Phi inference on the same eval set: the serving-precision
  // comparison Table IV's wall-clock discussion leans on, recorded in the
  // manifest with per-ISA attribution (`simd_isa` + the timing pair).
  {
    GnnClassifier bf16 = ctx.gnn().clone();
    bf16.set_precision(Precision::Bf16);
    const DurationStats fp64_stats = time_predictions(ctx.gnn(), ctx);
    const DurationStats bf16_stats = time_predictions(bf16, ctx);
    report.add_timing("gnn_predict.fp64", fp64_stats);
    report.add_timing("gnn_predict.bf16", bf16_stats);
    std::printf("Phi inference (%s kernels): fp64 %s, bf16 %s per graph.\n",
                simd::isa_name(simd::dispatch()), fp64_stats.summary().c_str(),
                bf16_stats.summary().c_str());
  }

  // Manifest attribution for paper-scale runs (`--nodes N`): alongside the
  // node_cap config entry, record how far the coarsener would shrink the
  // eval graphs — the reduce-then-explain speedup these timings leave on
  // the table (see bench/scaling_sweep.cpp for the measured sweep).
  {
    double ratio_sum = 0.0;
    std::size_t node_sum = 0;
    for (std::size_t index : ctx.eval_indices()) {
      const Acfg& graph = ctx.corpus().graph(index);
      ratio_sum += reduce_graph(graph).reduction_ratio();
      node_sum += graph.num_nodes();
    }
    const double count = static_cast<double>(ctx.eval_indices().size());
    report.add_result("eval.mean_nodes", static_cast<double>(node_sum) / count);
    report.add_result("eval.mean_reduction_ratio", ratio_sum / count);
  }

  std::printf("Paper (Table IV, 7352-node graphs, GPU): CFGExplainer 3.9 min,\n"
              "PGExplainer 6.4 min, GNNExplainer 42.8 min, SubgraphX 127.8 min\n"
              "per explanation; offline 2h11m (CFGX) and 2h46m (PGX).\n");
  return 0;
}
