// Table IV: offline training time and mean +/- std wall-clock per single
// explanation for the four explainers.
//
// Absolute numbers are CPU-scale (the paper used a Xeon + P100 on graphs up
// to 7352 nodes); the reproduced *shape* is the ordering
// CFGExplainer < PGExplainer << GNNExplainer << SubgraphX and the fact that
// only CFGExplainer and PGExplainer pay an offline training phase.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

int main(int argc, char** argv) {
  set_global_log_level(LogLevel::Warn);
  const CliArgs args(argc, argv);
  BenchContext ctx(BenchConfig::from_cli(args));

  std::vector<NamedEvaluation> evals;
  for (const std::string& name : BenchContext::paper_explainers()) {
    evals.push_back(ctx.evaluate(name));
  }

  std::printf("=== Table IV: explanation time ===\n");
  std::printf("(per-explanation stats over %zu graphs)\n\n",
              evals.front().evaluation.explain_time.count());

  TextTable table({"Explainer", "Offline Training Time",
                   "Avg Time per Explanation", "Slowdown vs CFGExplainer"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  const double reference = evals.front().evaluation.explain_time.mean();
  for (const auto& eval : evals) {
    const DurationStats& stats = eval.evaluation.explain_time;
    std::string offline = eval.offline_training_seconds > 0.0
                              ? format_minutes(eval.offline_training_seconds)
                              : "-";
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "x%.1f",
                  reference > 0 ? stats.mean() / reference : 0.0);
    table.add_row({eval.evaluation.explainer_name, std::move(offline),
                   stats.summary(), ratio});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper (Table IV, 7352-node graphs, GPU): CFGExplainer 3.9 min,\n"
              "PGExplainer 6.4 min, GNNExplainer 42.8 min, SubgraphX 127.8 min\n"
              "per explanation; offline 2h11m (CFGX) and 2h46m (PGX).\n");
  return 0;
}
