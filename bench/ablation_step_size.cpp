// Ablation: sensitivity of CFGExplainer's interpretation stage to the user
// step size (Section IV discusses the trade-off: large steps -> coarse
// subgraphs, small steps -> more GNN re-embeddings per explanation).
#include <cstdio>

#include "common.hpp"
#include "core/interpreter.hpp"
#include "graph/ops.hpp"

using namespace cfgx;
using namespace cfgx::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("ablation_step_size", args, bench_config);
  BenchContext ctx(bench_config);

  CfgExplainer& explainer = ctx.cfg_explainer();
  const GnnClassifier& gnn = ctx.gnn();
  const Corpus& corpus = ctx.corpus();

  std::printf("=== Ablation: interpretation step size ===\n\n");

  TextTable table({"step size", "pruning iterations", "Acc@20%",
                   "AUC (own grid)", "time / explanation"},
                  {Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Right});

  for (unsigned step : {5u, 10u, 20u, 25u, 50u}) {
    Interpreter interpreter(explainer.model(), gnn);
    InterpretationConfig config;
    config.step_size_percent = step;
    config.keep_adjacency_snapshots = false;

    DurationStats timing;
    std::vector<double> fractions;
    for (unsigned f = step; f <= 100; f += step) {
      fractions.push_back(static_cast<double>(f) / 100.0);
    }
    std::vector<double> correct(fractions.size(), 0.0);
    double acc20 = 0.0;
    std::size_t samples = 0;

    for (std::size_t index : ctx.eval_indices()) {
      const Acfg& graph = corpus.graph(index);
      Stopwatch watch;
      const Interpretation result = interpreter.interpret(graph, config);
      timing.add(watch.elapsed_seconds());
      ++samples;

      const Matrix adjacency = graph.dense_adjacency();
      for (std::size_t g = 0; g < fractions.size(); ++g) {
        const std::size_t k =
            nodes_for_fraction(graph.num_nodes(), fractions[g]);
        std::vector<std::uint32_t> kept(
            result.ordered_nodes.begin(),
            result.ordered_nodes.begin() + static_cast<std::ptrdiff_t>(k));
        const MaskedGraph masked = keep_only(adjacency, graph.features(), kept);
        const Prediction prediction =
            gnn.predict_masked(masked.adjacency, masked.features);
        if (static_cast<int>(prediction.predicted_class) == graph.label()) {
          correct[g] += 1.0;
        }
      }
      const std::size_t k20 = nodes_for_fraction(graph.num_nodes(), 0.2);
      std::vector<std::uint32_t> kept20(
          result.ordered_nodes.begin(),
          result.ordered_nodes.begin() + static_cast<std::ptrdiff_t>(k20));
      const MaskedGraph masked20 =
          keep_only(adjacency, graph.features(), kept20);
      if (static_cast<int>(
              gnn.predict_masked(masked20.adjacency, masked20.features)
                  .predicted_class) == graph.label()) {
        acc20 += 1.0;
      }
    }

    for (double& c : correct) c /= static_cast<double>(samples);
    acc20 /= static_cast<double>(samples);
    const double auc = curve_auc(fractions, correct);

    table.add_row({std::to_string(step) + "%", std::to_string(100 / step),
                   format_fixed(acc20, 3), format_fixed(auc, 3),
                   timing.summary()});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: smaller steps re-score more often (higher cost, finer\n"
      "ordering); very large steps prune half the graph on stale scores.\n");
  return 0;
}
