// Ablation: where does CFGExplainer's signal come from?
//
//   * CFGExplainer        — full method (score sparsity + checkpoint selection)
//   * CFGX-NoSparsity     — Algorithm 1 exactly as printed (no L1 on Psi)
//   * CFGX-NoValidation   — sparsity but last-epoch weights (no selection)
//   * Degree              — keep the highest-degree blocks
//   * Random              — seeded random ordering
//
// Reports AUC, top-10%/20% accuracy and plant recovery for each variant.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

namespace {

ExplainerEvaluation evaluate_variant(BenchContext& ctx, Explainer& explainer) {
  EvaluationConfig config;
  config.step_size_percent = ctx.config().step_size_percent;
  return evaluate_explainer(explainer, ctx.gnn(), ctx.corpus(),
                            ctx.eval_indices(), config);
}

CfgExplainer make_variant(BenchContext& ctx, double sparsity,
                          double validation_fraction) {
  ExplainerTrainConfig train_config;
  train_config.epochs = ctx.config().explainer_epochs;
  train_config.score_sparsity_weight = sparsity;
  train_config.validation_fraction = validation_fraction;
  InterpretationConfig interpret_config;
  interpret_config.keep_adjacency_snapshots = false;
  CfgExplainer variant(ctx.gnn(), train_config, interpret_config);
  variant.fit(ctx.corpus(), ctx.split().train);
  return variant;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("ablation_scoring", args, bench_config);
  BenchContext ctx(bench_config);

  std::printf("=== Ablation: scoring components of CFGExplainer ===\n\n");

  std::vector<std::pair<std::string, ExplainerEvaluation>> results;

  results.emplace_back("CFGExplainer (full)",
                       ctx.evaluate("CFGExplainer").evaluation);

  std::fprintf(stderr, "[bench] training no-sparsity variant...\n");
  CfgExplainer no_sparsity = make_variant(ctx, 0.0, 0.15);
  results.emplace_back("CFGX-NoSparsity", evaluate_variant(ctx, no_sparsity));

  std::fprintf(stderr, "[bench] training no-validation variant...\n");
  CfgExplainer no_validation =
      make_variant(ctx, ctx.config().score_sparsity, 0.0);
  results.emplace_back("CFGX-NoValidation", evaluate_variant(ctx, no_validation));

  DegreeExplainer degree;
  results.emplace_back("Degree", evaluate_variant(ctx, degree));
  RandomExplainer random(17);
  results.emplace_back("Random", evaluate_variant(ctx, random));

  TextTable table({"Variant", "AUC", "Acc@10%", "Acc@20%", "Plant precision",
                   "Plant recall"},
                  {Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right});
  for (const auto& [name, eval] : results) {
    table.add_row({name, format_fixed(eval.average_auc),
                   format_fixed(eval.average_accuracy_at(0.1)),
                   format_fixed(eval.average_accuracy_at(0.2)),
                   format_fixed(eval.plant_precision),
                   format_fixed(eval.plant_recall)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: the full method should dominate; dropping the sparsity\n"
      "penalty lets Psi saturate at 1 (arbitrary top-of-ranking), and\n"
      "dropping checkpoint selection exposes late-training co-adaptation.\n");
  return 0;
}
