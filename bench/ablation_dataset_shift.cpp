// Dataset-shift experiment (the paper's future work proposes extending the
// evaluation to further datasets, e.g. MSKCFG).
//
// The GNN and CFGExplainer are trained on the standard corpus, then
// evaluated — without retraining — on an out-of-distribution corpus
// variant: a different generation seed and substantially larger programs
// (more functions, bigger blocks, more motif instances). Reported:
// the GNN's transfer accuracy and CFGExplainer-vs-Random explanation
// quality under shift.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

namespace {

Corpus shifted_corpus(const BenchConfig& config) {
  CorpusConfig cc;
  cc.samples_per_family = std::max<std::size_t>(4, config.eval_per_family);
  cc.seed = config.corpus_seed + 7777;  // disjoint sample seeds
  cc.generator.min_benign_functions = 6;
  cc.generator.max_benign_functions = 10;
  cc.generator.min_block_budget = 7;
  cc.generator.max_block_budget = 13;
  cc.generator.min_motif_repeats = 3;
  cc.generator.max_motif_repeats = 6;
  return generate_corpus(cc);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("ablation_dataset_shift", args, bench_config);
  BenchContext ctx(bench_config);

  std::printf("=== Dataset shift: train on standard corpus, explain a larger "
              "out-of-distribution corpus ===\n\n");

  const Corpus shifted = shifted_corpus(ctx.config());
  std::vector<std::size_t> all(shifted.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  // Size comparison.
  double standard_nodes = 0.0, shifted_nodes = 0.0;
  for (const Acfg& graph : ctx.corpus().graphs()) {
    standard_nodes += graph.num_nodes();
  }
  for (const Acfg& graph : shifted.graphs()) shifted_nodes += graph.num_nodes();
  std::printf("mean graph size: standard %.1f nodes -> shifted %.1f nodes\n",
              standard_nodes / static_cast<double>(ctx.corpus().size()),
              shifted_nodes / static_cast<double>(shifted.size()));

  const double transfer_accuracy =
      full_graph_accuracy(ctx.gnn(), shifted, all);
  std::printf("GNN transfer accuracy on shifted corpus: %s "
              "(in-distribution: %s)\n\n",
              format_percent(transfer_accuracy).c_str(),
              format_percent(ctx.gnn_accuracy_on_eval()).c_str());

  EvaluationConfig eval_config;
  eval_config.step_size_percent = ctx.config().step_size_percent;
  auto cfgx_eval = evaluate_explainer(ctx.cfg_explainer(), ctx.gnn(), shifted,
                                      all, eval_config);
  RandomExplainer random(17);
  auto random_eval =
      evaluate_explainer(random, ctx.gnn(), shifted, all, eval_config);

  TextTable table({"explainer", "AUC", "Acc@20%", "plant recall"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  for (const auto* eval : {&cfgx_eval, &random_eval}) {
    table.add_row({eval->explainer_name, format_fixed(eval->average_auc),
                   format_fixed(eval->average_accuracy_at(0.2)),
                   format_fixed(eval->plant_recall)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: CFGExplainer's scorer consumes GNN embeddings, so it\n"
      "transfers exactly as far as the GNN does — explanation quality under\n"
      "shift is bounded by the classifier's transfer accuracy above.\n");
  return 0;
}
