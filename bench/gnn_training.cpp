// Section V-A model quality: the GNN classifier's accuracy on the full
// (unmasked) graphs — the paper reports 98% across all ACFG types — plus
// the per-family confusion matrix.
#include <cstdio>

#include "common.hpp"

using namespace cfgx;
using namespace cfgx::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchConfig bench_config = BenchConfig::from_cli(args);
  RunReport report("gnn_training", args, bench_config);
  BenchContext ctx(bench_config);

  GnnClassifier& gnn = ctx.gnn();
  const Corpus& corpus = ctx.corpus();
  const Split& split = ctx.split();

  const ConfusionMatrix train_cm = evaluate_gnn(gnn, corpus, split.train);
  const ConfusionMatrix test_cm = evaluate_gnn(gnn, corpus, split.test);

  std::printf("=== GNN classifier quality (paper Section V-A: 98%%) ===\n\n");
  std::printf("architecture: GCN %zu", gnn.config().gcn_dims[0]);
  for (std::size_t i = 1; i < gnn.config().gcn_dims.size(); ++i) {
    std::printf("/%zu", gnn.config().gcn_dims[i]);
  }
  std::printf(" + dense readout over %zu classes (paper: 1024/512/128)\n",
              gnn.config().num_classes);
  std::printf("train accuracy: %s over %zu graphs\n",
              format_percent(train_cm.accuracy()).c_str(), split.train.size());
  std::printf("test accuracy:  %s over %zu graphs\n\n",
              format_percent(test_cm.accuracy()).c_str(), split.test.size());
  report.add_result("train_accuracy", train_cm.accuracy());
  report.add_result("test_accuracy", test_cm.accuracy());

  TextTable table({"Family", "Test recall", "Train recall"},
                  {Align::Left, Align::Right, Align::Right});
  for (Family family : kAllFamilies) {
    const auto label = static_cast<std::size_t>(family_label(family));
    table.add_row({to_string(family),
                   format_percent(test_cm.class_accuracy(label)),
                   format_percent(train_cm.class_accuracy(label))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("test confusion matrix (rows = truth, cols = prediction):\n%s",
              test_cm
                  .to_string({"Bagle", "Bifrose", "Hupigon", "Ldpinch", "Lmir",
                              "Rbot", "Sdbot", "Swizzor", "Vundo", "Zbot",
                              "Zlob", "Benign"})
                  .c_str());
  return 0;
}
