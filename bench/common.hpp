// Shared experiment context for the benchmark harness.
//
// Every table/figure binary needs the same expensive artifacts: the
// synthetic corpus, the trained GNN classifier, the trained CFGExplainer
// Theta, the trained PGExplainer mask predictor, and per-explainer
// evaluation results. BenchContext builds them on first use and caches
// them under ./cfgx_bench_cache so that running all binaries in sequence
// (`for b in build/bench/*; do $b; done`) trains each model exactly once.
//
// Flags accepted by every binary:
//   --fast          quarter-size corpus + shorter training (smoke runs)
//   --fresh         ignore and overwrite the cache
//   --cache-dir D   cache directory (default ./cfgx_bench_cache)
//   --simd=I        force the kernel ISA ("scalar" | "avx2"); default is
//                   the runtime-dispatched widest supported ISA (also
//                   overridable by CFGX_SIMD). The resolved ISA is recorded
//                   as `simd_isa` in every run manifest.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explain/baselines.hpp"
#include "explain/cfg_explainer.hpp"
#include "explain/evaluate.hpp"
#include "explain/gnnexplainer.hpp"
#include "explain/pgexplainer.hpp"
#include "explain/subgraphx.hpp"
#include "gnn/trainer.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace cfgx::bench {

struct BenchConfig {
  // Corpus (paper: 1056 graphs = 88/family; here 480 = 40/family).
  std::size_t samples_per_family = 40;
  std::uint64_t corpus_seed = 2022;
  double train_fraction = 0.75;
  std::uint64_t split_seed = 41;

  // Model training.
  std::size_t gnn_epochs = 250;
  std::size_t explainer_epochs = 3000;
  double score_sparsity = 0.05;
  std::size_t pg_epochs = 20;

  // Baseline explainer budgets (relative costs chosen so the Table IV
  // ordering CFGX < PGX << GNNX << SubX emerges, as in the paper).
  std::size_t gnnx_iterations = 120;
  std::size_t subx_iterations = 60;

  // Evaluation set: at most this many test graphs per family.
  std::size_t eval_per_family = 8;

  // Paper-scale node floor (`--nodes N`): every generated graph is grown
  // until it has at least N basic blocks (GeneratorConfig::target_blocks);
  // 0 keeps the natural motif-driven sizes. The paper's largest CFG has
  // 7352 nodes. A non-zero cap suffixes the cache dir (`_n<N>`) so
  // differently-sized corpora never share trained models.
  std::size_t nodes = 0;

  unsigned step_size_percent = 10;
  bool fast = false;
  bool fresh = false;
  std::string cache_dir = "cfgx_bench_cache";
  // Kernel ISA override ("scalar" | "avx2"); empty keeps runtime dispatch.
  std::string simd;

  static BenchConfig from_cli(const CliArgs& args);
};

// Evaluation result + the offline training time of the explainer that
// produced it (0 for local explainers).
struct NamedEvaluation {
  ExplainerEvaluation evaluation;
  double offline_training_seconds = 0.0;
};

class BenchContext {
 public:
  explicit BenchContext(BenchConfig config);

  const BenchConfig& config() const { return config_; }
  const Corpus& corpus();
  const Split& split();
  // Evaluation subset: up to eval_per_family test graphs per family.
  const std::vector<std::size_t>& eval_indices();

  GnnClassifier& gnn();                // cached: gnn.bin
  CfgExplainer& cfg_explainer();       // cached: theta.bin
  PgExplainer& pg_explainer();         // cached: pgx.bin
  GnnExplainer& gnn_explainer();       // local, no offline phase
  SubgraphX& subgraphx();              // local, no offline phase

  double gnn_accuracy_on_eval();

  // Cached evaluation of one explainer (cache key = explainer name).
  NamedEvaluation evaluate(const std::string& name);

  // The four paper explainers in Table III column order.
  static const std::vector<std::string>& paper_explainers();

 private:
  std::string cache_path(const std::string& filename) const;
  Explainer& explainer_by_name(const std::string& name);
  double offline_seconds(const std::string& name) const;

  BenchConfig config_;
  std::optional<Corpus> corpus_;
  std::optional<Split> split_;
  std::vector<std::size_t> eval_indices_;
  std::unique_ptr<GnnClassifier> gnn_;
  std::unique_ptr<CfgExplainer> cfg_explainer_;
  std::unique_ptr<PgExplainer> pg_explainer_;
  std::unique_ptr<GnnExplainer> gnn_explainer_;
  std::unique_ptr<SubgraphX> subgraphx_;
  std::unique_ptr<RandomExplainer> random_;
  std::unique_ptr<DegreeExplainer> degree_;
  double cfg_offline_seconds_ = 0.0;
  double pg_offline_seconds_ = 0.0;
};

// Converts accumulated DurationStats into a manifest timing row
// (mean/std/p50/p95/p99); count 0 yields an all-zero row.
obs::ManifestTiming timing_from_stats(const std::string& name,
                                      const DurationStats& stats);

// Per-run observability harness shared by every bench main. Construct it
// right after CliArgs, before any real work:
//
//   const CliArgs args(argc, argv);
//   BenchConfig config = BenchConfig::from_cli(args);
//   RunReport report("table4_explanation_time", args, config);
//   ...
//   report.finish();   // or rely on the destructor
//
// It owns the observability flags every binary accepts:
//   --log-level=L     log verbosity (else CFGX_LOG_LEVEL, else warn)
//   --trace[=path]    collect a Chrome trace (else CFGX_TRACE env);
//                     default path <binary>_trace.json
//   --manifest=path   manifest output path (default <binary>_manifest.json)
//
// finish() stops tracing, writes the trace file (when tracing ran) and the
// JSON run manifest: CLI config, git revision, added timings/results, and a
// snapshot of the global metrics registry.
class RunReport {
 public:
  RunReport(const std::string& binary_name, const CliArgs& args,
            const BenchConfig& config);
  ~RunReport();  // best-effort finish(); errors are reported, not thrown

  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  obs::RunManifest& manifest() { return manifest_; }
  void add_result(const std::string& key, double value);
  void add_timing(const std::string& name, const DurationStats& stats);
  void finish();

 private:
  std::string trace_path_;
  std::string manifest_path_;
  bool tracing_ = false;
  bool finished_ = false;
  obs::RunManifest manifest_;
};

// (De)serialization of evaluation results for the cross-binary cache.
void save_evaluation_file(const std::string& path, const NamedEvaluation& eval);
NamedEvaluation load_evaluation_file(const std::string& path);

// "3.9 +/- 0.5 min"-style rendering for Table IV.
std::string format_minutes(double seconds);

}  // namespace cfgx::bench
