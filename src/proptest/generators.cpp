#include "proptest/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "dataset/families.hpp"

namespace cfgx::proptest {
namespace {

// Rebuilds a graph from explicit parts (the shrink helpers edit parts, not
// the Acfg, so invariants are re-established through the public API).
Acfg build_acfg(std::uint32_t num_nodes, const std::vector<Edge>& edges,
                const Matrix& features, int label,
                const std::vector<std::uint32_t>& planted) {
  Acfg graph(num_nodes, features.cols());
  for (const Edge& e : edges) {
    if (e.src < num_nodes && e.dst < num_nodes && !graph.has_edge(e.src, e.dst)) {
      graph.add_edge(e.src, e.dst, e.kind);
    }
  }
  Matrix trimmed(num_nodes, features.cols());
  for (std::uint32_t r = 0; r < num_nodes && r < features.rows(); ++r) {
    for (std::size_t c = 0; c < features.cols(); ++c) {
      trimmed(r, c) = features(r, c);
    }
  }
  graph.features() = std::move(trimmed);
  graph.set_label(label);
  std::set<std::uint32_t> unique_planted;
  for (std::uint32_t v : planted) {
    if (v < num_nodes) unique_planted.insert(v);
  }
  for (std::uint32_t v : unique_planted) graph.mark_planted(v);
  return graph;
}

}  // namespace

Gen<Matrix> matrices(std::size_t max_rows, std::size_t max_cols,
                     double amplitude) {
  if (max_rows == 0 || max_cols == 0) {
    throw std::invalid_argument("proptest::matrices: zero max dimension");
  }
  Gen<Matrix> gen;
  gen.generate = [max_rows, max_cols, amplitude](Rng& rng) {
    const std::size_t rows = 1 + rng.uniform_index(max_rows);
    const std::size_t cols = 1 + rng.uniform_index(max_cols);
    Matrix out(rows, cols);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = rng.uniform(-amplitude, amplitude);
    }
    return out;
  };
  gen.shrink = [](const Matrix& value) {
    std::vector<Matrix> out;
    if (value.rows() > 1) {
      Matrix fewer_rows(value.rows() - 1, value.cols());
      for (std::size_t r = 0; r < fewer_rows.rows(); ++r) {
        for (std::size_t c = 0; c < fewer_rows.cols(); ++c) {
          fewer_rows(r, c) = value(r, c);
        }
      }
      out.push_back(std::move(fewer_rows));
    }
    if (value.cols() > 1) {
      Matrix fewer_cols(value.rows(), value.cols() - 1);
      for (std::size_t r = 0; r < fewer_cols.rows(); ++r) {
        for (std::size_t c = 0; c < fewer_cols.cols(); ++c) {
          fewer_cols(r, c) = value(r, c);
        }
      }
      out.push_back(std::move(fewer_cols));
    }
    // Zero the largest-magnitude entry (drives values toward the all-zero
    // matrix one element at a time).
    std::size_t largest = value.size();
    double largest_abs = 0.0;
    for (std::size_t i = 0; i < value.size(); ++i) {
      const double a = std::abs(value.data()[i]);
      if (a > largest_abs) {
        largest_abs = a;
        largest = i;
      }
    }
    if (largest < value.size()) {
      Matrix zeroed = value;
      zeroed.data()[largest] = 0.0;
      out.push_back(std::move(zeroed));
    }
    return out;
  };
  return gen;
}

Gen<Acfg> acfgs(std::uint32_t max_nodes, double edge_prob,
                double feature_amplitude) {
  if (max_nodes == 0) throw std::invalid_argument("proptest::acfgs: max_nodes == 0");
  Gen<Acfg> gen;
  gen.generate = [max_nodes, edge_prob, feature_amplitude](Rng& rng) {
    const auto num_nodes =
        static_cast<std::uint32_t>(1 + rng.uniform_index(max_nodes));
    Acfg graph(num_nodes);
    for (std::uint32_t src = 0; src < num_nodes; ++src) {
      for (std::uint32_t dst = 0; dst < num_nodes; ++dst) {
        if (!rng.bernoulli(edge_prob)) continue;
        graph.add_edge(src, dst,
                       rng.bernoulli(0.2) ? EdgeKind::Call : EdgeKind::Flow);
      }
    }
    for (std::size_t i = 0; i < graph.features().size(); ++i) {
      graph.features().data()[i] =
          rng.uniform(-feature_amplitude, feature_amplitude);
    }
    graph.set_label(static_cast<int>(rng.uniform_index(kFamilyCount)));
    graph.set_family(to_string(family_from_label(graph.label())));
    const std::size_t plants = rng.uniform_index(num_nodes + 1) / 4;
    for (std::uint32_t v : rng.sample_indices(num_nodes, plants)) {
      graph.mark_planted(v);
    }
    return graph;
  };
  gen.shrink = [](const Acfg& value) {
    std::vector<Acfg> out;
    // Drop the last node (incident edges and plants go with it).
    if (value.num_nodes() > 1) {
      out.push_back(build_acfg(value.num_nodes() - 1, value.edges(),
                               value.features(), value.label(),
                               value.planted_nodes()));
    }
    // Drop single edges (bounded fan-out).
    const std::size_t edge_positions = std::min<std::size_t>(value.num_edges(), 24);
    for (std::size_t i = 0; i < edge_positions; ++i) {
      std::vector<Edge> fewer = value.edges();
      fewer.erase(fewer.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(build_acfg(value.num_nodes(), fewer, value.features(),
                               value.label(), value.planted_nodes()));
    }
    // Zero the largest feature entry.
    const Matrix& features = value.features();
    std::size_t largest = features.size();
    double largest_abs = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      const double a = std::abs(features.data()[i]);
      if (a > largest_abs) {
        largest_abs = a;
        largest = i;
      }
    }
    if (largest < features.size()) {
      Matrix zeroed = features;
      zeroed.data()[largest] = 0.0;
      out.push_back(build_acfg(value.num_nodes(), value.edges(), zeroed,
                               value.label(), value.planted_nodes()));
    }
    return out;
  };
  return gen;
}

Gen<Acfg> family_acfgs(GeneratorConfig config) {
  Gen<Acfg> gen;
  gen.generate = [config](Rng& rng) {
    const Family family = kAllFamilies[rng.uniform_index(kFamilyCount)];
    return generate_acfg(family, rng, config);
  };
  return gen;
}

Gen<Program> programs(GeneratorConfig config) {
  Gen<Program> gen;
  gen.generate = [config](Rng& rng) {
    const Family family = kAllFamilies[rng.uniform_index(kFamilyCount)];
    return generate_program(family, rng, config).program;
  };
  return gen;
}

}  // namespace cfgx::proptest

namespace cfgx {

std::string debug_string(const Matrix& value) {
  std::ostringstream out;
  out << "Matrix " << value.rows() << "x" << value.cols();
  if (value.size() > 0 && value.size() <= 64) {
    out << "\n" << value.to_string(6);
  } else if (value.size() > 0) {
    out << " (max|x| = " << value.max_abs() << ")";
  }
  return out.str();
}

std::string debug_string(const Acfg& value) {
  std::ostringstream out;
  out << "Acfg{nodes=" << value.num_nodes() << ", edges=" << value.num_edges()
      << ", label=" << value.label() << ", family=" << value.family()
      << ", plants=" << value.planted_nodes().size() << "}";
  if (value.num_edges() > 0 && value.num_edges() <= 32) {
    out << " edges:";
    for (const Edge& e : value.edges()) {
      out << " " << e.src << (e.kind == EdgeKind::Call ? "=>" : "->") << e.dst;
    }
  }
  return out.str();
}

std::string debug_string(const Program& value) {
  std::ostringstream out;
  out << "Program{" << value.size() << " instruction(s), " << value.labels().size()
      << " label(s)}";
  if (value.size() <= 48) out << "\n" << value.to_string();
  return out.str();
}

}  // namespace cfgx
