// Property-based testing: typed generator combinators over cfgx::Rng,
// greedy shrinking, and deterministic failing-seed replay.
//
// A property is checked over `iterations` generated cases. Case i draws its
// value from Rng(case_seed_i) where case_seed_i is derived from the base
// seed, so a failure is fully described by ONE 64-bit number: re-running
// with CFGX_PROPTEST_SEED=<that number> regenerates the exact failing value
// (no corpus files, no global state). On failure the runner greedily shrinks
// the counterexample through the generator's candidate function and reports
// the minimal value that still fails.
//
// Environment knobs (read once per check):
//   CFGX_PROPTEST_SEED=<u64>   replay exactly this case seed (1 iteration)
//   CFGX_PROPTEST_ITERS=<k>    multiply iteration counts by k (CI soak runs)
//
// Usage with gtest:
//   CHECK_PROPERTY("sort is idempotent", proptest::vectors(proptest::integers(-9, 9)),
//                  [](std::vector<std::int64_t> v) {
//                    std::sort(v.begin(), v.end());
//                    auto once = v;
//                    std::sort(v.begin(), v.end());
//                    return v == once;
//                  });
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cfgx::proptest {

// A generator bundles the sampling function with a shrink-candidate
// function. Candidates must be "smaller" values ordered most-aggressive
// first; the runner keeps the first candidate that still fails and repeats.
// An empty candidate list terminates shrinking.
template <typename T>
struct Gen {
  using value_type = T;

  std::function<T(Rng&)> generate;
  std::function<std::vector<T>(const T&)> shrink =
      [](const T&) { return std::vector<T>{}; };
};

struct PropertyConfig {
  std::size_t iterations = 200;
  // Base seed for case-seed derivation; distinct properties in one binary
  // may share it (case values still differ through the generator).
  std::uint64_t seed = 0xcf6e'5eed'0001ULL;
  // Upper bound on property evaluations spent shrinking one failure.
  std::size_t max_shrink_steps = 2000;
};

// Environment overrides, applied by check_property:
//   replay seed (nullopt when CFGX_PROPTEST_SEED is unset / unparsable)
std::optional<std::uint64_t> replay_seed_from_env();
//   iteration multiplier (1 when CFGX_PROPTEST_ITERS is unset / unparsable)
std::size_t iteration_multiplier_from_env();

// Derives the i-th case seed from the base seed (splitmix64 chain, so
// neighbouring iterations get uncorrelated generator streams).
std::uint64_t derive_case_seed(std::uint64_t base_seed, std::size_t iteration);

template <typename T>
struct PropertyOutcome {
  bool passed = true;
  std::size_t iterations_run = 0;
  // Valid when !passed:
  std::uint64_t failing_seed = 0;
  std::size_t shrink_steps = 0;      // accepted shrinks (not candidates tried)
  std::optional<T> counterexample;   // minimal shrunk failing value
  std::string failure_message;       // from the property (exception text)

  // Human-readable failure report including the replay instructions.
  // `render` turns the counterexample into text.
  std::string report(const std::function<std::string(const T&)>& render) const {
    if (passed) return "property passed";
    std::ostringstream out;
    out << "property failed after " << iterations_run << " case(s)";
    if (!failure_message.empty()) out << ": " << failure_message;
    out << "\nminimal counterexample (after " << shrink_steps << " shrink step(s)):\n";
    if (counterexample) out << render(*counterexample);
    out << "\nreplay with: CFGX_PROPTEST_SEED=" << failing_seed;
    return out.str();
  }
};

namespace detail {

// Evaluates the property on one value; any exception counts as a failure
// and its message is captured.
template <typename T, typename Property>
bool holds(const Property& property, const T& value, std::string& message) {
  try {
    if (property(value)) return true;
    message = "property returned false";
    return false;
  } catch (const std::exception& e) {
    message = e.what();
    return false;
  }
}

}  // namespace detail

// Runs the property over generated cases. Deterministic in (config, env).
template <typename T, typename Property>
PropertyOutcome<T> check_property(const Gen<T>& gen, const Property& property,
                                  PropertyConfig config = {}) {
  const auto replay = replay_seed_from_env();
  std::size_t iterations = replay ? 1 : config.iterations * iteration_multiplier_from_env();

  PropertyOutcome<T> outcome;
  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t case_seed =
        replay ? *replay : derive_case_seed(config.seed, i);
    Rng rng(case_seed);
    T value = gen.generate(rng);
    ++outcome.iterations_run;

    std::string message;
    if (detail::holds(property, value, message)) continue;

    // Failure: greedily shrink. A candidate that also fails becomes the
    // current counterexample; restart from its own candidate list.
    outcome.passed = false;
    outcome.failing_seed = case_seed;
    outcome.failure_message = message;
    std::size_t budget = config.max_shrink_steps;
    bool made_progress = true;
    while (made_progress && budget > 0) {
      made_progress = false;
      for (T& candidate : gen.shrink(value)) {
        if (budget == 0) break;
        --budget;
        std::string candidate_message;
        if (!detail::holds(property, candidate, candidate_message)) {
          value = std::move(candidate);
          outcome.failure_message = candidate_message;
          ++outcome.shrink_steps;
          made_progress = true;
          break;
        }
      }
    }
    outcome.counterexample = std::move(value);
    return outcome;
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Primitive generators & combinators
// ---------------------------------------------------------------------------

// Uniform integer in [lo, hi], shrinking toward the in-range value closest
// to zero.
Gen<std::int64_t> integers(std::int64_t lo, std::int64_t hi);

// Uniform size in [lo, hi], shrinking toward lo.
Gen<std::size_t> sizes(std::size_t lo, std::size_t hi);

// Uniform double in [lo, hi), shrinking toward the in-range value closest
// to zero (then toward shorter decimal representations via truncation).
Gen<double> doubles(double lo, double hi);

// One of the given values; shrinks toward earlier list positions.
template <typename T>
Gen<T> elements(std::vector<T> choices) {
  if (choices.empty()) throw std::invalid_argument("proptest::elements: empty");
  auto shared = std::make_shared<std::vector<T>>(std::move(choices));
  Gen<T> gen;
  gen.generate = [shared](Rng& rng) {
    return (*shared)[rng.uniform_index(shared->size())];
  };
  gen.shrink = [shared](const T& value) {
    std::vector<T> out;
    for (const T& choice : *shared) {
      if (choice == value) break;
      out.push_back(choice);
    }
    return out;
  };
  return gen;
}

// Vector of elem-generated values with size uniform in [min_size, max_size].
// Shrinks by dropping the back half, dropping single elements, and
// shrinking individual elements (bounded fan-out per step).
template <typename T>
Gen<std::vector<T>> vectors(Gen<T> elem, std::size_t min_size = 0,
                            std::size_t max_size = 16) {
  if (min_size > max_size) {
    throw std::invalid_argument("proptest::vectors: min_size > max_size");
  }
  auto shared = std::make_shared<Gen<T>>(std::move(elem));
  Gen<std::vector<T>> gen;
  gen.generate = [shared, min_size, max_size](Rng& rng) {
    const std::size_t n =
        min_size + rng.uniform_index(max_size - min_size + 1);
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(shared->generate(rng));
    return out;
  };
  gen.shrink = [shared, min_size](const std::vector<T>& value) {
    std::vector<std::vector<T>> out;
    // Halve from the back (aggressive first).
    if (value.size() > min_size) {
      const std::size_t keep =
          std::max(min_size, value.size() - (value.size() - min_size + 1) / 2);
      out.emplace_back(value.begin(), value.begin() + static_cast<std::ptrdiff_t>(keep));
    }
    // Drop one element at a time (bounded).
    constexpr std::size_t kMaxPositions = 24;
    if (value.size() > min_size) {
      const std::size_t positions = std::min(value.size(), kMaxPositions);
      for (std::size_t i = 0; i < positions; ++i) {
        std::vector<T> smaller = value;
        smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(smaller));
      }
    }
    // Shrink individual elements in place.
    const std::size_t positions = std::min(value.size(), kMaxPositions);
    for (std::size_t i = 0; i < positions; ++i) {
      for (T& candidate : shared->shrink(value[i])) {
        std::vector<T> mutated = value;
        mutated[i] = std::move(candidate);
        out.push_back(std::move(mutated));
      }
    }
    return out;
  };
  return gen;
}

// Applies fn to generated values. Shrinking does not survive the mapping
// (fn has no inverse); compose before mapping when shrinking matters.
template <typename T, typename Fn>
auto map(Gen<T> inner, Fn fn) -> Gen<decltype(fn(std::declval<T>()))> {
  using U = decltype(fn(std::declval<T>()));
  auto shared = std::make_shared<Gen<T>>(std::move(inner));
  Gen<U> gen;
  gen.generate = [shared, fn](Rng& rng) { return fn(shared->generate(rng)); };
  return gen;
}

// Pair of two independent generators; shrinks each side independently.
template <typename A, typename B>
Gen<std::pair<A, B>> pairs(Gen<A> first, Gen<B> second) {
  auto fa = std::make_shared<Gen<A>>(std::move(first));
  auto fb = std::make_shared<Gen<B>>(std::move(second));
  Gen<std::pair<A, B>> gen;
  gen.generate = [fa, fb](Rng& rng) {
    // Evaluation order of pair-brace elements is unspecified; force it.
    A a = fa->generate(rng);
    B b = fb->generate(rng);
    return std::pair<A, B>{std::move(a), std::move(b)};
  };
  gen.shrink = [fa, fb](const std::pair<A, B>& value) {
    std::vector<std::pair<A, B>> out;
    for (A& a : fa->shrink(value.first)) out.emplace_back(std::move(a), value.second);
    for (B& b : fb->shrink(value.second)) out.emplace_back(value.first, std::move(b));
    return out;
  };
  return gen;
}

// ---------------------------------------------------------------------------
// Debug rendering for failure reports
// ---------------------------------------------------------------------------

std::string debug_string(std::int64_t value);
std::string debug_string(std::uint64_t value);
std::string debug_string(double value);
std::string debug_string(const std::string& value);  // hex-escaped bytes

template <typename T>
std::string debug_string(const std::vector<T>& value) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (i) out << ", ";
    if (i == 32) {
      out << "... (" << value.size() << " total)";
      break;
    }
    out << debug_string(value[i]);
  }
  out << "]";
  return out.str();
}

template <typename A, typename B>
std::string debug_string(const std::pair<A, B>& value) {
  return "(" + debug_string(value.first) + ", " + debug_string(value.second) + ")";
}

}  // namespace cfgx::proptest

// Runs a property under gtest: on failure the test fails with the shrunk
// counterexample and the CFGX_PROPTEST_SEED replay line.
#define CHECK_PROPERTY(name, gen, ...)                                        \
  do {                                                                        \
    const auto& check_property_gen_ = (gen);                                  \
    auto check_property_outcome_ =                                            \
        ::cfgx::proptest::check_property(check_property_gen_, __VA_ARGS__);   \
    ASSERT_TRUE(check_property_outcome_.passed)                               \
        << "property \"" << (name) << "\": "                                  \
        << check_property_outcome_.report([](const auto& v) {                 \
             using ::cfgx::proptest::debug_string;                            \
             return debug_string(v);                                          \
           });                                                                \
  } while (0)
