// Domain generators for the repository's core value types: Matrix, Acfg,
// and Program. Built on the primitive combinators of proptest.hpp so the
// same shrinking / seed-replay machinery applies to whole graphs.
#pragma once

#include "dataset/generator.hpp"
#include "graph/acfg.hpp"
#include "isa/program.hpp"
#include "nn/matrix.hpp"
#include "proptest/proptest.hpp"

namespace cfgx::proptest {

// Dense matrix with uniform entries in [-amplitude, amplitude), rows in
// [1, max_rows], cols in [1, max_cols]. Shrinks by dropping the last
// row/column and zeroing the largest-magnitude entry.
Gen<Matrix> matrices(std::size_t max_rows, std::size_t max_cols,
                     double amplitude = 1.0);

// Arbitrary ACFG: node count in [1, max_nodes], each ordered node pair is
// an edge with probability edge_prob (kind Flow or Call at random),
// features uniform in [-feature_amplitude, feature_amplitude), random label
// and planted nodes. Shrinks by dropping the last node (with incident
// edges), dropping single edges, and zeroing feature entries.
Gen<Acfg> acfgs(std::uint32_t max_nodes = 24, double edge_prob = 0.15,
                double feature_amplitude = 4.0);

// Realistic corpus graph: a uniformly chosen family run through the full
// generate->lift->features pipeline. Not shrinkable (the generator is a
// black box in (family, seed)); use `acfgs` when shrinking matters.
Gen<Acfg> family_acfgs(GeneratorConfig config = {});

// Realistic program (assembly listing) for a uniformly chosen family.
Gen<Program> programs(GeneratorConfig config = {});

}  // namespace cfgx::proptest

namespace cfgx {

// Failure-report rendering for the domain types. Declared in the types'
// own namespace so proptest's generic containers (vectors of graphs,
// pairs of matrices, ...) can reach them through argument-dependent
// lookup from the debug_string templates in proptest.hpp.
std::string debug_string(const Matrix& value);
std::string debug_string(const Acfg& value);
std::string debug_string(const Program& value);

}  // namespace cfgx
