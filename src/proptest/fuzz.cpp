#include "proptest/fuzz.hpp"

#include <cstring>
#include <sstream>

#include "nn/serialize.hpp"
#include "proptest/proptest.hpp"

namespace cfgx::proptest {
namespace {

// Boundary values a corrupted u64 length/count field is most likely to
// expose: zero, off-by-one, and the allocation-bomb magnitudes.
constexpr std::uint64_t kInterestingU64[] = {
    0ULL,
    1ULL,
    2ULL,
    0xffULL,
    1ULL << 16,
    1ULL << 24,
    (1ULL << 31) - 1,
    1ULL << 32,
    1ULL << 48,
    (1ULL << 63) - 1,
    ~0ULL,
};

}  // namespace

std::string mutate_bytes(std::string bytes, Rng& rng) {
  if (bytes.empty()) return bytes;
  switch (rng.uniform_index(7)) {
    case 0: {  // single bit flip
      const std::size_t pos = rng.uniform_index(bytes.size());
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^ (1u << rng.uniform_index(8)));
      break;
    }
    case 1: {  // byte rewrite
      bytes[rng.uniform_index(bytes.size())] =
          static_cast<char>(rng.uniform_index(256));
      break;
    }
    case 2: {  // truncate a random tail
      bytes.resize(rng.uniform_index(bytes.size()));
      break;
    }
    case 3: {  // drop an interior chunk
      const std::size_t begin = rng.uniform_index(bytes.size());
      const std::size_t len = 1 + rng.uniform_index(bytes.size() - begin);
      bytes.erase(begin, len);
      break;
    }
    case 4: {  // duplicate an interior chunk (grows the buffer)
      const std::size_t begin = rng.uniform_index(bytes.size());
      const std::size_t len =
          1 + rng.uniform_index(std::min<std::size_t>(bytes.size() - begin, 64));
      bytes.insert(begin, bytes.substr(begin, len));
      break;
    }
    case 5: {  // overwrite an aligned u64 with a boundary value (length fields)
      if (bytes.size() >= sizeof(std::uint64_t)) {
        const std::size_t slots = bytes.size() / sizeof(std::uint64_t);
        const std::size_t offset = rng.uniform_index(slots) * sizeof(std::uint64_t);
        const std::uint64_t value =
            kInterestingU64[rng.uniform_index(std::size(kInterestingU64))];
        std::memcpy(bytes.data() + offset, &value, sizeof value);
      }
      break;
    }
    case 6: {  // magic mutation: perturb one of the leading 8 bytes
      const std::size_t pos =
          rng.uniform_index(std::min<std::size_t>(bytes.size(), 8));
      bytes[pos] = static_cast<char>(rng.uniform_index(256));
      break;
    }
  }
  return bytes;
}

FuzzOutcome fuzz_bytes(const std::vector<std::string>& corpus,
                       const std::function<void(const std::string&)>& consumer,
                       const FuzzConfig& config) {
  if (corpus.empty()) throw std::invalid_argument("fuzz_bytes: empty corpus");

  const auto replay = replay_seed_from_env();
  const std::size_t iterations =
      replay ? 1 : config.iterations * iteration_multiplier_from_env();

  FuzzOutcome outcome;
  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t case_seed =
        replay ? *replay : derive_case_seed(config.seed, i);
    Rng rng(case_seed);
    std::string bytes = corpus[rng.uniform_index(corpus.size())];
    const std::size_t mutations = 1 + rng.uniform_index(config.max_stacked_mutations);
    for (std::size_t m = 0; m < mutations; ++m) bytes = mutate_bytes(std::move(bytes), rng);
    ++outcome.iterations_run;

    try {
      consumer(bytes);
      ++outcome.accepted;
    } catch (const SerializationError&) {
      ++outcome.rejected;
    } catch (const std::exception& e) {
      outcome.passed = false;
      outcome.failing_seed = case_seed;
      outcome.failure_message =
          std::string("consumer threw non-SerializationError: ") + e.what();
      outcome.failing_bytes = std::move(bytes);
      return outcome;
    }
  }
  return outcome;
}

std::string FuzzOutcome::report() const {
  std::ostringstream out;
  if (passed) {
    out << "fuzz passed: " << iterations_run << " case(s), " << accepted
        << " accepted, " << rejected << " rejected";
    return out.str();
  }
  out << "fuzz failed after " << iterations_run << " case(s): " << failure_message
      << "\ninput: " << debug_string(failing_bytes)
      << "\nreplay with: CFGX_PROPTEST_SEED=" << failing_seed;
  return out.str();
}

}  // namespace cfgx::proptest
