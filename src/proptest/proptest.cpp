#include "proptest/proptest.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>

namespace cfgx::proptest {
namespace {

std::optional<std::uint64_t> parse_u64(const char* text) {
  if (!text || !*text) return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

std::optional<std::uint64_t> replay_seed_from_env() {
  return parse_u64(std::getenv("CFGX_PROPTEST_SEED"));
}

std::size_t iteration_multiplier_from_env() {
  const auto value = parse_u64(std::getenv("CFGX_PROPTEST_ITERS"));
  if (!value || *value == 0) return 1;
  return static_cast<std::size_t>(*value);
}

std::uint64_t derive_case_seed(std::uint64_t base_seed, std::size_t iteration) {
  // splitmix64 over (base, i): neighbouring iterations get uncorrelated
  // streams and seed 0 is as good as any other.
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * (iteration + 1);
  return splitmix64(state);
}

Gen<std::int64_t> integers(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("proptest::integers: lo > hi");
  Gen<std::int64_t> gen;
  gen.generate = [lo, hi](Rng& rng) { return rng.uniform_int(lo, hi); };
  // Shrink toward the in-range value closest to zero.
  const std::int64_t origin = lo > 0 ? lo : (hi < 0 ? hi : 0);
  gen.shrink = [origin](const std::int64_t& value) {
    std::vector<std::int64_t> out;
    if (value == origin) return out;
    out.push_back(origin);
    const std::int64_t half = origin + (value - origin) / 2;
    if (half != origin && half != value) out.push_back(half);
    const std::int64_t step = value > origin ? value - 1 : value + 1;
    if (step != origin && step != half) out.push_back(step);
    return out;
  };
  return gen;
}

Gen<std::size_t> sizes(std::size_t lo, std::size_t hi) {
  if (lo > hi) throw std::invalid_argument("proptest::sizes: lo > hi");
  Gen<std::size_t> gen;
  gen.generate = [lo, hi](Rng& rng) { return lo + rng.uniform_index(hi - lo + 1); };
  gen.shrink = [lo](const std::size_t& value) {
    std::vector<std::size_t> out;
    if (value == lo) return out;
    out.push_back(lo);
    const std::size_t half = lo + (value - lo) / 2;
    if (half != lo && half != value) out.push_back(half);
    if (value - 1 != lo && value - 1 != half) out.push_back(value - 1);
    return out;
  };
  return gen;
}

Gen<double> doubles(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("proptest::doubles: lo >= hi");
  Gen<double> gen;
  gen.generate = [lo, hi](Rng& rng) { return rng.uniform(lo, hi); };
  const double origin = lo > 0.0 ? lo : (hi <= 0.0 ? hi : 0.0);
  gen.shrink = [origin](const double& value) {
    std::vector<double> out;
    if (value == origin) return out;
    out.push_back(origin);
    const double half = origin + (value - origin) / 2.0;
    if (half != origin && half != value) out.push_back(half);
    const double truncated = std::trunc(value);
    if (truncated != value && truncated != origin && truncated != half) {
      out.push_back(truncated);
    }
    return out;
  };
  return gen;
}

std::string debug_string(std::int64_t value) { return std::to_string(value); }

std::string debug_string(std::uint64_t value) { return std::to_string(value); }

std::string debug_string(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

std::string debug_string(const std::string& value) {
  std::ostringstream out;
  out << value.size() << " byte(s): \"";
  const std::size_t shown = std::min<std::size_t>(value.size(), 96);
  for (std::size_t i = 0; i < shown; ++i) {
    const unsigned char c = static_cast<unsigned char>(value[i]);
    if (c >= 0x20 && c < 0x7f && c != '"' && c != '\\') {
      out << static_cast<char>(c);
    } else {
      out << "\\x" << std::hex << std::setw(2) << std::setfill('0')
          << static_cast<unsigned>(c) << std::dec << std::setfill(' ');
    }
  }
  if (shown < value.size()) out << "...";
  out << "\"";
  return out.str();
}

}  // namespace cfgx::proptest
