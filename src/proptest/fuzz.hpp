// Structure-aware mutational fuzzing for the binary serializers.
//
// Every iteration picks a valid buffer from the caller's corpus, stacks a
// few random mutations on it (bit flips, byte rewrites, truncations,
// chunk drops/duplications, 8-byte length-field overwrites with boundary
// values, magic rewrites) and feeds it to the consumer. The consumer must
// either accept the buffer (return) or reject it by throwing
// SerializationError; any other exception — or a crash, caught by the
// sanitizer jobs — fails the run. Like check_property, a failure is fully
// described by one case seed replayable via CFGX_PROPTEST_SEED.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cfgx::proptest {

struct FuzzConfig {
  std::size_t iterations = 10000;
  std::uint64_t seed = 0xfa22'5eed'0002ULL;
  // Mutations stacked per case: uniform in [1, max_stacked_mutations].
  std::size_t max_stacked_mutations = 4;
};

struct FuzzOutcome {
  bool passed = true;
  std::size_t iterations_run = 0;
  std::size_t accepted = 0;  // consumer returned normally
  std::size_t rejected = 0;  // consumer threw SerializationError
  // Valid when !passed:
  std::uint64_t failing_seed = 0;
  std::string failure_message;
  std::string failing_bytes;

  std::string report() const;
};

// Applies one random mutation; exposed for tests and corpus building.
std::string mutate_bytes(std::string bytes, Rng& rng);

// Runs the consumer over `iterations` mutated buffers (CFGX_PROPTEST_ITERS
// multiplies, CFGX_PROPTEST_SEED replays one case). The corpus must be
// non-empty; buffers are chosen uniformly per case.
FuzzOutcome fuzz_bytes(const std::vector<std::string>& corpus,
                       const std::function<void(const std::string&)>& consumer,
                       const FuzzConfig& config = {});

}  // namespace cfgx::proptest
