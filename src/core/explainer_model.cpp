#include "core/explainer_model.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "nn/workspace.hpp"

namespace cfgx {
namespace {

constexpr char kCheckpointMagic[] = "CFGXT002";
constexpr std::size_t kMagicLen = 8;

void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("ExplainerModel: truncated checkpoint");
  return value;
}

void write_dims(std::ostream& out, const std::vector<std::size_t>& dims) {
  write_u64(out, dims.size());
  for (std::size_t d : dims) write_u64(out, d);
}

std::vector<std::size_t> read_dims(std::istream& in) {
  const std::uint64_t count = read_u64(in);
  if (count == 0 || count > 64) {
    throw SerializationError("ExplainerModel: implausible layer count");
  }
  std::vector<std::size_t> dims(count);
  for (auto& d : dims) d = read_u64(in);
  return dims;
}

// Builds an MLP stem: dense(d0) ReLU dense(d1) ReLU ... dense(dk).
// When `sigmoid_tail` the final layer is followed by Sigmoid; otherwise the
// layers end with a ReLU so a final projection can be appended.
void build_mlp(Sequential& net, std::size_t in_dim,
               const std::vector<std::size_t>& dims, bool sigmoid_tail,
               Rng& rng, const std::string& stem) {
  std::size_t current = in_dim;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    net.emplace<Dense>(current, dims[i], rng, stem + std::to_string(i));
    const bool last = i + 1 == dims.size();
    if (last && sigmoid_tail) {
      net.emplace<Sigmoid>();
    } else {
      net.emplace<Relu>();
    }
    current = dims[i];
  }
}

}  // namespace

ExplainerModel::ExplainerModel(ExplainerModelConfig config, Rng& rng)
    : config_(std::move(config)) {
  if (config_.scorer_dims.empty() || config_.scorer_dims.back() != 1) {
    throw std::invalid_argument(
        "ExplainerModel: scorer must end in a single output unit");
  }
  if (config_.surrogate_dims.empty() || config_.num_classes == 0) {
    throw std::invalid_argument("ExplainerModel: bad surrogate configuration");
  }
  build_mlp(scorer_, config_.embedding_dim, config_.scorer_dims,
            /*sigmoid_tail=*/true, rng, "theta_s.");
  build_mlp(surrogate_, config_.embedding_dim, config_.surrogate_dims,
            /*sigmoid_tail=*/false, rng, "theta_c.");
  surrogate_.emplace<Dense>(config_.surrogate_dims.back(), config_.num_classes,
                            rng, "theta_c.out");
}

Matrix ExplainerModel::pool(const Matrix& weighted) const {
  Matrix pooled = weighted.col_sums();
  pooled *= 1.0 / static_cast<double>(weighted.rows());
  return pooled;
}

void ExplainerModel::set_embedding_scale(double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("ExplainerModel: embedding scale must be > 0");
  }
  embedding_scale_ = scale;
}

Matrix ExplainerModel::conditioned(const Matrix& embeddings) const {
  Matrix scaled = embeddings;
  scaled *= 1.0 / embedding_scale_;
  return scaled;
}

void ExplainerModel::conditioned_into(const Matrix& embeddings,
                                      Matrix& out) const {
  out.reshape(embeddings.rows(), embeddings.cols());
  const double inv_scale = 1.0 / embedding_scale_;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = embeddings.data()[i] * inv_scale;
  }
}

Matrix ExplainerModel::score_nodes(const Matrix& embeddings) {
  Matrix out;
  score_nodes_into(embeddings, out);
  return out;
}

void ExplainerModel::score_nodes_into(const Matrix& embeddings, Matrix& out) {
  if (embeddings.cols() != config_.embedding_dim) {
    throw std::invalid_argument("ExplainerModel::score_nodes: embedding dim mismatch");
  }
  Workspace::Lease scaled =
      Workspace::local().acquire(embeddings.rows(), embeddings.cols());
  conditioned_into(embeddings, scaled.get());
  scorer_.forward_into(scaled.get(), out);
}

ExplainerModel ExplainerModel::clone() const {
  std::stringstream buffer;
  save(buffer);
  return load(buffer);
}

ExplainerModel::JointForward ExplainerModel::joint_forward(
    const Matrix& embeddings) {
  if (embeddings.cols() != config_.embedding_dim) {
    throw std::invalid_argument("ExplainerModel::joint_forward: embedding dim mismatch");
  }
  cached_embeddings_ = conditioned(embeddings);
  cached_scores_ = scorer_.forward(cached_embeddings_);  // [N, 1]

  cached_weighted_ = cached_embeddings_;
  for (std::size_t j = 0; j < cached_weighted_.rows(); ++j) {
    const double psi = cached_scores_(j, 0);
    for (std::size_t c = 0; c < cached_weighted_.cols(); ++c) {
      cached_weighted_(j, c) *= psi;
    }
  }

  JointForward result;
  result.scores = cached_scores_;
  // Theta_c runs row-wise over the weighted embeddings (dense layers applied
  // to the [N, f] matrix), yielding per-node class logits; the graph-level
  // distribution is the softmax of the mean node logit. This keeps a
  // per-node decision signal flowing into each Psi_j.
  const Matrix node_logits = surrogate_.forward(cached_weighted_);  // [N, C]
  result.probabilities = softmax_.forward(pool(node_logits));       // [1, C]
  return result;
}

void ExplainerModel::joint_backward(const Matrix& grad_probabilities,
                                    double score_l1_grad) {
  if (cached_embeddings_.empty()) {
    throw std::logic_error("ExplainerModel::joint_backward before joint_forward");
  }
  // Softmax -> mean-pool backward: every node's logit row receives
  // grad_pooled_logits / N.
  const Matrix grad_pooled_logits = softmax_.backward(grad_probabilities);
  const std::size_t n = cached_embeddings_.rows();
  const double inv_n = 1.0 / static_cast<double>(n);
  Matrix grad_node_logits(n, grad_pooled_logits.cols());
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t c = 0; c < grad_node_logits.cols(); ++c) {
      grad_node_logits(j, c) = grad_pooled_logits(0, c) * inv_n;
    }
  }

  // Theta_c chain down to the weighted embeddings.
  const Matrix grad_weighted = surrogate_.backward(grad_node_logits);

  // Weighting backward:
  //   dL/dPsi_j = sum_c dL/dZw[j,c] * Z[j,c]
  // (dL/dZ is not needed: the embeddings are fixed inputs).
  Matrix grad_scores(n, 1);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cached_embeddings_.cols(); ++c) {
      acc += grad_weighted(j, c) * cached_embeddings_(j, c);
    }
    grad_scores(j, 0) = acc + score_l1_grad;
  }
  scorer_.backward(grad_scores);
}

std::vector<Parameter*> ExplainerModel::parameters() {
  std::vector<Parameter*> params = scorer_.parameters();
  for (Parameter* p : surrogate_.parameters()) params.push_back(p);
  return params;
}

void ExplainerModel::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

void ExplainerModel::save(std::ostream& out) const {
  out.write(kCheckpointMagic, kMagicLen);
  write_u64(out, config_.embedding_dim);
  write_dims(out, config_.scorer_dims);
  write_dims(out, config_.surrogate_dims);
  write_u64(out, config_.num_classes);
  out.write(reinterpret_cast<const char*>(&embedding_scale_),
            sizeof embedding_scale_);
  auto& self = const_cast<ExplainerModel&>(*this);
  save_parameters(out, self.parameters());
}

ExplainerModel ExplainerModel::load(std::istream& in) {
  char magic[kMagicLen] = {};
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kCheckpointMagic) {
    throw SerializationError("not an ExplainerModel checkpoint");
  }
  ExplainerModelConfig config;
  config.embedding_dim = read_u64(in);
  config.scorer_dims = read_dims(in);
  config.surrogate_dims = read_dims(in);
  config.num_classes = read_u64(in);
  double scale = 1.0;
  in.read(reinterpret_cast<char*>(&scale), sizeof scale);
  if (!in || !(scale > 0.0)) {
    throw SerializationError("ExplainerModel: bad embedding scale");
  }

  Rng rng(0);
  ExplainerModel model(config, rng);
  model.set_embedding_scale(scale);
  load_parameters(in, model.parameters());
  return model;
}

void ExplainerModel::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  save(out);
}

ExplainerModel ExplainerModel::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  return load(in);
}

}  // namespace cfgx
