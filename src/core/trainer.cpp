#include "core/trainer.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "graph/ops.hpp"
#include "nn/loss.hpp"
#include "nn/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace cfgx {
namespace {

// Retention-at-20%: fraction of validation graphs whose top-20%-scored
// subgraph is still assigned the GNN's full-graph class. Single-pass scores
// (no iterative re-scoring) keep this cheap; it tracks the Algorithm-2
// outcome closely enough for checkpoint selection.
double validation_retention(ExplainerModel& model, const GnnClassifier& gnn,
                            const Corpus& corpus,
                            const std::vector<std::size_t>& indices,
                            const std::vector<Matrix>& embeddings,
                            const std::vector<std::size_t>& gnn_labels) {
  if (indices.empty()) return 0.0;
  std::size_t retained = 0;
  Workspace::Lease psi_lease = Workspace::local().acquire(0, 0);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const Acfg& graph = corpus.graph(indices[k]);
    model.score_nodes_into(embeddings[k], psi_lease.get());
    const Matrix& psi = psi_lease.get();
    std::vector<double> scores(graph.num_nodes());
    for (std::uint32_t j = 0; j < graph.num_nodes(); ++j) scores[j] = psi(j, 0);
    const auto kept =
        top_k_nodes(scores, nodes_for_fraction(graph.num_nodes(), 0.2));
    const MaskedGraph masked =
        keep_only(graph.dense_adjacency(), graph.features(), kept);
    const Prediction prediction =
        gnn.predict_masked(masked.adjacency, masked.features);
    if (prediction.predicted_class == gnn_labels[k]) ++retained;
  }
  return static_cast<double>(retained) / static_cast<double>(indices.size());
}

}  // namespace

ExplainerTrainResult train_explainer(
    ExplainerModel& model, const GnnClassifier& gnn, const Corpus& corpus,
    const std::vector<std::size_t>& train_indices,
    const ExplainerTrainConfig& config) {
  if (train_indices.empty()) {
    throw std::invalid_argument("train_explainer: empty training set");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("train_explainer: batch_size must be > 0");
  }
  if (config.validation_fraction < 0.0 || config.validation_fraction >= 1.0) {
    throw std::invalid_argument(
        "train_explainer: validation_fraction must be in [0, 1)");
  }
  if (model.config().embedding_dim != gnn.config().embedding_dim()) {
    throw std::invalid_argument(
        "train_explainer: explainer embedding_dim != GNN embedding dim");
  }

  Rng sample_rng(config.sample_seed);

  // Split off the validation slice used for checkpoint selection.
  std::vector<std::size_t> fit_indices = train_indices;
  std::vector<std::size_t> validation_indices;
  const auto validation_count = static_cast<std::size_t>(
      std::floor(config.validation_fraction *
                 static_cast<double>(train_indices.size())));
  const bool use_validation =
      validation_count > 0 && config.validation_interval > 0;
  if (use_validation) {
    sample_rng.shuffle(fit_indices);
    validation_indices.assign(fit_indices.end() - validation_count,
                              fit_indices.end());
    fit_indices.resize(fit_indices.size() - validation_count);
  }

  // Algorithm 1 lines 6-7 hoisted out of the epoch loop: Phi is frozen, so
  // Z_i = Phi_e(A_i, X_i) and C_i = Phi_c(Z_i) never change.
  const auto prepare = [&](const std::vector<std::size_t>& indices,
                           std::vector<Matrix>& embeddings,
                           std::vector<std::size_t>& labels) {
    embeddings.reserve(indices.size());
    labels.reserve(indices.size());
    for (std::size_t index : indices) {
      const Acfg& graph = corpus.graph(index);
      Matrix z = gnn.embed(graph.dense_adjacency(), graph.features());
      labels.push_back(argmax_rows(gnn.class_logits(z))[0]);
      embeddings.push_back(std::move(z));
    }
  };
  std::vector<Matrix> embeddings, val_embeddings;
  std::vector<std::size_t> gnn_labels, val_labels;
  prepare(fit_indices, embeddings, gnn_labels);
  prepare(validation_indices, val_embeddings, val_labels);

  // Condition Theta's inputs: normalize by the RMS of the training
  // embeddings so learning rates are meaningful regardless of the GNN's
  // embedding magnitude.
  double sum_sq = 0.0;
  std::size_t entry_count = 0;
  for (const Matrix& z : embeddings) {
    for (std::size_t i = 0; i < z.size(); ++i) {
      sum_sq += z.data()[i] * z.data()[i];
    }
    entry_count += z.size();
  }
  const double rms =
      entry_count == 0 ? 1.0 : std::sqrt(sum_sq / static_cast<double>(entry_count));
  model.set_embedding_scale(std::max(rms, 1e-9));

  Adam optimizer(model.parameters(), config.adam);

  static obs::Counter& epochs_metric =
      obs::MetricsRegistry::global().counter("explainer.epochs");
  static obs::Histogram& epoch_seconds =
      obs::MetricsRegistry::global().histogram("explainer.epoch_seconds");
  static obs::Gauge& last_loss =
      obs::MetricsRegistry::global().gauge("explainer.last_epoch_loss");

  obs::TraceSpan train_span("explainer.train", "train");
  ExplainerTrainResult result;
  std::stringstream best_checkpoint;
  double best_retention = -1.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    obs::TraceSpan epoch_span("explainer.train.epoch", "train");
    obs::ScopedDurationTimer epoch_timer(epoch_seconds);
    // Algorithm 1 line 3: random mini-batch D' of m samples.
    const std::size_t m = std::min(config.batch_size, fit_indices.size());
    const std::vector<std::size_t> batch =
        sample_rng.sample_indices(fit_indices.size(), m);

    model.zero_grad();
    double loss_sum = 0.0;  // Algorithm 1 line 4
    for (std::size_t i : batch) {
      // Lines 8-12: Psi = Theta_s(Z); Z_weighted = Psi .* Z; Y = Theta_c(...).
      const auto forward = model.joint_forward(embeddings[i]);
      // Lines 13-14: loss += log(Y[C_i]); loss = -loss/m (with the 1e-20 bias).
      const LossResult loss =
          nll_from_probabilities(forward.probabilities, {gnn_labels[i]});
      double mean_score = 0.0;
      for (std::size_t j = 0; j < forward.scores.rows(); ++j) {
        mean_score += forward.scores(j, 0);
      }
      mean_score /= static_cast<double>(forward.scores.rows());
      loss_sum += loss.value + config.score_sparsity_weight * mean_score;

      Matrix grad = loss.grad;
      grad *= 1.0 / static_cast<double>(m);  // mean over the mini-batch
      const double l1_grad =
          config.score_sparsity_weight /
          (static_cast<double>(m) * static_cast<double>(forward.scores.rows()));
      model.joint_backward(grad, l1_grad);
    }
    optimizer.step();  // line 15

    const double epoch_loss = loss_sum / static_cast<double>(m);
    result.epoch_losses.push_back(epoch_loss);
    epochs_metric.add();
    last_loss.set(epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
    CFGX_LOG(Debug) << "explainer epoch " << epoch << " loss " << epoch_loss;

    // Checkpoint selection on validation retention.
    const bool last_epoch = epoch + 1 == config.epochs;
    if (use_validation &&
        ((epoch + 1) % config.validation_interval == 0 || last_epoch)) {
      obs::TraceSpan validation_span("explainer.validation", "train");
      const double retention = validation_retention(
          model, gnn, corpus, validation_indices, val_embeddings, val_labels);
      CFGX_LOG(Debug) << "explainer epoch " << epoch << " retention "
                      << retention;
      if (retention > best_retention) {
        best_retention = retention;
        result.best_checkpoint_epoch = epoch;
        best_checkpoint.str({});
        best_checkpoint.clear();
        model.save(best_checkpoint);
      }
    }
  }

  // Surrogate fidelity: how often Theta_c agrees with Phi on the train set,
  // measured on the FINAL weights (the training-quality signal) before the
  // checkpoint restore below swaps in the best-retention weights.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < embeddings.size(); ++i) {
    const auto forward = model.joint_forward(embeddings[i]);
    if (argmax_rows(forward.probabilities)[0] == gnn_labels[i]) ++agree;
  }
  result.surrogate_fidelity =
      static_cast<double>(agree) / static_cast<double>(embeddings.size());

  if (use_validation && best_retention >= 0.0) {
    ExplainerModel best = ExplainerModel::load(best_checkpoint);
    // Copy the best weights back into the caller's model object.
    auto dst = model.parameters();
    auto src = best.parameters();
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k]->value = src[k]->value;
    result.best_validation_retention = best_retention;
  }
  return result;
}

}  // namespace cfgx
