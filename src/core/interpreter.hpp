// The interpretation stage of CFGExplainer (paper Algorithm 2).
//
// Iteratively prunes the graph: at each step the current (masked) graph is
// re-embedded by the frozen GNN, re-scored by Theta_s, and the
// lowest-scoring surviving nodes are masked out (adjacency row+column and
// feature row zeroed — DESIGN.md decision 3). The removal order, reversed,
// is the node importance ranking; the retained adjacency snapshots,
// reversed, are the subgraph sequence from smallest (top step_size% nodes)
// to the full graph.
#pragma once

#include <cstdint>
#include <vector>

#include "core/explainer_model.hpp"
#include "gnn/classifier.hpp"
#include "graph/acfg.hpp"

namespace cfgx {

struct InterpretationConfig {
  // Percentage of the graph pruned per iteration; must divide 100
  // (Algorithm 2 precondition: 100 % step_size == 0).
  unsigned step_size_percent = 10;
  // When false, only node sets are returned and the (N x N) adjacency
  // snapshots are skipped — the evaluation harness re-masks on demand.
  bool keep_adjacency_snapshots = true;
};

struct Interpretation {
  // All nodes, most important first (V_ordered reversed, line 19).
  std::vector<std::uint32_t> ordered_nodes;
  // Kept-node sets per retained size: subgraph_nodes[k] holds the nodes of
  // the subgraph with (k+1)*step_size% of the graph; the last entry is the
  // full node set.
  std::vector<std::vector<std::uint32_t>> subgraph_nodes;
  // Matching adjacency snapshots (smallest first), empty when disabled.
  std::vector<Matrix> subgraph_adjacencies;
  unsigned step_size_percent = 10;
};

class Interpreter {
 public:
  // Both references are borrowed; the caller keeps them alive. `model`
  // must be trained (Algorithm 1) against `gnn`'s embeddings.
  Interpreter(ExplainerModel& model, const GnnClassifier& gnn)
      : model_(&model), gnn_(&gnn) {}

  Interpretation interpret(const Acfg& graph,
                           const InterpretationConfig& config = {}) const;

 private:
  ExplainerModel* model_;
  const GnnClassifier* gnn_;
};

}  // namespace cfgx
