#include "core/interpreter.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/ops.hpp"
#include "nn/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cfgx {

Interpretation Interpreter::interpret(const Acfg& graph,
                                      const InterpretationConfig& config) const {
  const unsigned step = config.step_size_percent;
  if (step == 0 || step > 100 || 100 % step != 0) {
    throw std::invalid_argument(
        "Interpreter: step_size must be in (0,100] and divide 100");
  }
  const std::uint32_t n_real = graph.num_nodes();
  if (n_real == 0) throw std::invalid_argument("Interpreter: empty graph");

  // The masked graph lives as an incrementally-renormalized CSR: pruning a
  // node zeroes its edge values in place and re-normalizes only the touched
  // rows, so the per-iteration cost tracks surviving edges instead of the
  // O(N^2) densify + renormalize of the previous implementation. The dense
  // adjacency working copy is kept only when snapshots are requested.
  Matrix features = graph.features();
  MaskedNormalizedAdjacency masked(graph);  // edge-list ctor, no densify
  Matrix adjacency;  // dense mirror, snapshot path only
  if (config.keep_adjacency_snapshots) adjacency = graph.dense_adjacency();

  Interpretation result;
  result.step_size_percent = step;

  // all_node_indices (Algorithm 2 line 2): nodes not yet pruned.
  std::vector<std::uint32_t> remaining(n_real);
  for (std::uint32_t i = 0; i < n_real; ++i) remaining[i] = i;

  std::vector<std::uint32_t> removal_order;  // V_ordered before the reverse
  removal_order.reserve(n_real);

  static obs::Counter& iterations_metric =
      obs::MetricsRegistry::global().counter("alg2.iterations");
  static obs::Histogram& renorm_seconds =
      obs::MetricsRegistry::global().histogram("alg2.csr_renorm.seconds");

  // Embeddings/scores are workspace leases: repeated interpret() calls on
  // the same thread recycle the same buffers (workspace.bytes_allocated
  // stays flat after warm-up).
  Workspace& workspace = Workspace::local();
  Workspace::Lease embeddings = workspace.acquire(0, 0);
  Workspace::Lease scores = workspace.acquire(0, 0);

  obs::TraceSpan interpret_span("alg2.interpret", "explain");
  const unsigned iterations = 100 / step;
  for (unsigned it = 0; it < iterations; ++it) {
    iterations_metric.add();
    // graph_size runs 100, 100-step, ..., step (Algorithm 2 line 4).
    // Snapshot the current subgraph (line 5).
    result.subgraph_nodes.push_back(remaining);
    if (config.keep_adjacency_snapshots) {
      result.subgraph_adjacencies.push_back(adjacency);
    }

    // Re-embed and re-score the masked graph (lines 6-7).
    {
      obs::TraceSpan embed_span("alg2.embed", "explain");
      gnn_->embed_into(masked.a_hat(), masked.inv_sqrt_degree(), features,
                       embeddings.get());
    }
    {
      obs::TraceSpan score_span("alg2.score", "explain");
      model_->score_nodes_into(embeddings.get(), scores.get());
    }

    // Number of nodes to prune this iteration. Fractional step sizes are
    // distributed so the remaining count after iteration `it` equals
    // round(n_real * (100 - (it+1)*step) / 100); the final iteration
    // always drains the graph, so V_ordered covers every node.
    const auto target_remaining = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(n_real) * (100 - (it + 1) * step) + 50) /
        100);
    const std::size_t n_step =
        remaining.size() > target_remaining ? remaining.size() - target_remaining
                                            : 0;

    // Lines 8-18: repeatedly remove the lowest-scoring surviving node.
    obs::TraceSpan prune_span("alg2.prune", "explain");
    for (std::size_t k = 0; k < n_step; ++k) {
      std::size_t min_pos = 0;
      double min_score = std::numeric_limits<double>::infinity();
      for (std::size_t pos = 0; pos < remaining.size(); ++pos) {
        const double score = scores.get()(remaining[pos], 0);
        if (score < min_score) {
          min_score = score;
          min_pos = pos;
        }
      }
      const std::uint32_t victim = remaining[min_pos];
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(min_pos));
      removal_order.push_back(victim);
      // Lines 17-18 (+ feature zeroing, DESIGN decision 3).
      masked.prune(victim);
      for (std::size_t c = 0; c < features.cols(); ++c) {
        features(victim, c) = 0.0;
      }
      if (config.keep_adjacency_snapshots) {
        for (std::size_t j = 0; j < adjacency.cols(); ++j) {
          adjacency(victim, j) = 0.0;
          adjacency(j, victim) = 0.0;
        }
      }
    }
    {
      obs::ScopedDurationTimer renorm_timer(renorm_seconds);
      masked.refresh();
    }
  }

  // Any survivors of rounding join the front of the importance order.
  // (With exact division `remaining` is empty here.)
  result.ordered_nodes.assign(remaining.begin(), remaining.end());
  for (auto it = removal_order.rbegin(); it != removal_order.rend(); ++it) {
    result.ordered_nodes.push_back(*it);  // line 19: reverse V_ordered
  }

  // Line 20: smallest subgraph first.
  std::reverse(result.subgraph_nodes.begin(), result.subgraph_nodes.end());
  std::reverse(result.subgraph_adjacencies.begin(),
               result.subgraph_adjacencies.end());
  return result;
}

}  // namespace cfgx
