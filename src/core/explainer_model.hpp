// The CFGExplainer deep-learning model Theta = {Theta_s, Theta_c}
// (paper Section IV, Figure 1).
//
//   Theta_s (node scorer): dense 64 -> ReLU -> dense 32 -> ReLU -> dense 1
//       -> sigmoid, applied per node embedding, producing Psi in [0,1]^N.
//   Theta_c (surrogate classifier): dense 64 -> ReLU -> dense 32 -> ReLU ->
//       dense 16 -> ReLU -> dense num_classes applied ROW-WISE to the
//       score-weighted embeddings (dense layers over the [N, f] matrix, the
//       natural reading of the paper's architecture), then the mean node
//       logit is softmaxed into the graph-level distribution Y.
//
// The coupling Z_weighted[j,:] = Psi_j * Z[j,:] ties the scores to the
// embeddings: when Theta_c learns to classify from Z_weighted, Theta_s is
// forced to assign high scores to the node embeddings that matter
// (Section IV-A). joint_backward() implements exactly that chain rule.
//
// Pooling note: the paper leaves Theta_c's reduction over N nodes implicit;
// we mean-pool the weighted embeddings before the MLP (DESIGN.md, matching
// the Phi_c readout convention), with the denominator fixed at the graph's
// node count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace cfgx {

struct ExplainerModelConfig {
  std::size_t embedding_dim = 32;         // f — must match Phi_e's output
  std::vector<std::size_t> scorer_dims = {64, 32, 1};     // paper Section V-A
  std::vector<std::size_t> surrogate_dims = {64, 32, 16};  // + final -> classes
  std::size_t num_classes = 12;
};

class ExplainerModel {
 public:
  ExplainerModel(ExplainerModelConfig config, Rng& rng);

  const ExplainerModelConfig& config() const noexcept { return config_; }

  // --- Theta_s ---

  // Node scores Psi [N, 1] from embeddings Z [N, f]. Reuses the training
  // caches of Theta_s, so do not interleave with a pending
  // joint_forward/joint_backward pair; clone() per thread for parallel use.
  Matrix score_nodes(const Matrix& embeddings);

  // Destination-passing variant: the conditioned embeddings live in a
  // Workspace scratch buffer and the scorer ping-pongs through the pool,
  // so steady-state calls allocate nothing. `out` must not alias
  // `embeddings`. Bit-identical to score_nodes().
  void score_nodes_into(const Matrix& embeddings, Matrix& out);

  // --- joint training pass ---

  struct JointForward {
    Matrix scores;         // Psi [N, 1]
    Matrix probabilities;  // Y   [1, num_classes]
  };

  // Cached forward through Theta_s, the weighting, and Theta_c.
  JointForward joint_forward(const Matrix& embeddings);

  // Backward from dLoss/dY. Accumulates gradients in BOTH sub-networks
  // (the paper's joint training, Algorithm 1 line 15).
  // `score_l1_grad` adds a constant dLoss/dPsi_j to every node score — the
  // gradient of an L1 sparsity penalty on Psi. Without it the NLL objective
  // admits the degenerate solution Psi == 1 (keep everything), which leaves
  // the ranking among top nodes arbitrary; a small penalty keeps scores in
  // the informative region (documented deviation, DESIGN.md).
  void joint_backward(const Matrix& grad_probabilities,
                      double score_l1_grad = 0.0);

  std::vector<Parameter*> parameters();
  void zero_grad();

  // Input conditioning: embeddings are divided by this scale before either
  // network sees them. The trainer sets it to the RMS of the training
  // embeddings so Theta is invariant to the GNN's embedding magnitude
  // (different classifiers/corpora produce wildly different scales).
  void set_embedding_scale(double scale);
  double embedding_scale() const noexcept { return embedding_scale_; }

  // Deep copy (used for per-thread instances in parallel evaluation).
  ExplainerModel clone() const;

  // Checkpointing (config + weights).
  void save(std::ostream& out) const;
  static ExplainerModel load(std::istream& in);
  void save_file(const std::string& path) const;
  static ExplainerModel load_file(const std::string& path);

 private:
  Matrix pool(const Matrix& weighted) const;

  Matrix conditioned(const Matrix& embeddings) const;
  void conditioned_into(const Matrix& embeddings, Matrix& out) const;

  ExplainerModelConfig config_;
  double embedding_scale_ = 1.0;
  Sequential scorer_;     // Theta_s
  Sequential surrogate_;  // Theta_c: row-wise MLP -> per-node class logits
  SoftmaxRows softmax_;   // over the mean-pooled node logits

  // Caches for joint_backward.
  Matrix cached_embeddings_;
  Matrix cached_scores_;
  Matrix cached_weighted_;
};

}  // namespace cfgx
