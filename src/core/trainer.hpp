// The initial learning stage of CFGExplainer (paper Algorithm 1).
//
// Jointly trains Theta = {Theta_s, Theta_c} with the negative log-likelihood
// loss  -(1/m) * sum_i log(Y[C_i] + 1e-20)  where C_i is the class label
// *predicted by the frozen GNN* Phi (Algorithm 1 line 7) — the surrogate
// learns to reproduce Phi's decisions from score-weighted embeddings, which
// forces Theta_s to rank node embeddings by their usefulness to Phi.
//
// Because Phi is frozen, every graph's embeddings Z_i and GNN label C_i are
// computed once up front and reused across epochs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/explainer_model.hpp"
#include "dataset/corpus.hpp"
#include "gnn/classifier.hpp"
#include "nn/optimizer.hpp"

namespace cfgx {

struct ExplainerTrainConfig {
  std::size_t epochs = 400;     // num_epoch in Algorithm 1
  std::size_t batch_size = 16;  // m, the mini-batch size
  AdamConfig adam{.learning_rate = 2e-3};
  // L1 sparsity pressure on the node scores: loss += weight * mean(Psi).
  // Keeps Psi out of the degenerate all-ones solution so the top of the
  // importance ranking stays meaningful (DESIGN.md deviation note).
  double score_sparsity_weight = 0.05;
  // Checkpoint selection: every `validation_interval` epochs, measure on a
  // held-out slice of the training graphs how often the top-20%-scored
  // subgraph retains the GNN's full-graph prediction, and keep the best
  // checkpoint. Counters the late-training co-adaptation where the
  // surrogate stays faithful but the scores stop transferring to hard
  // masking. Set validation_fraction to 0 to disable.
  double validation_fraction = 0.15;
  std::size_t validation_interval = 50;
  std::uint64_t sample_seed = 13;
  std::function<void(std::size_t, double)> on_epoch;
};

struct ExplainerTrainResult {
  std::vector<double> epoch_losses;
  // Fraction of training graphs whose surrogate prediction matches the
  // GNN's prediction after training (sanity signal, not a paper metric).
  double surrogate_fidelity = 0.0;
  // Validation retention score of the selected checkpoint (0 when
  // checkpoint selection is disabled).
  double best_validation_retention = 0.0;
  std::size_t best_checkpoint_epoch = 0;
};

ExplainerTrainResult train_explainer(ExplainerModel& model,
                                     const GnnClassifier& gnn,
                                     const Corpus& corpus,
                                     const std::vector<std::size_t>& train_indices,
                                     const ExplainerTrainConfig& config = {});

}  // namespace cfgx
