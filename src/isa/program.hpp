// A Program is the synthetic stand-in for a disassembled binary: a linear
// instruction stream plus a label table (label -> instruction index).
// The ProgramBuilder offers the emission API used by the per-family corpus
// generators in src/dataset.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace cfgx {

class Program {
 public:
  Program() = default;
  Program(std::vector<Instruction> instructions,
          std::map<std::string, std::size_t> labels);

  const std::vector<Instruction>& instructions() const noexcept {
    return instructions_;
  }
  std::size_t size() const noexcept { return instructions_.size(); }
  bool empty() const noexcept { return instructions_.empty(); }

  const std::map<std::string, std::size_t>& labels() const noexcept {
    return labels_;
  }

  // Instruction index of a label; nullopt when undefined.
  std::optional<std::size_t> label_index(const std::string& label) const;

  // Throws std::logic_error when a jump/call targets an undefined label or
  // a label points past the end of the stream.
  void validate() const;

  // Full listing with label annotations (debugging / examples).
  std::string to_string() const;

 private:
  std::vector<Instruction> instructions_;
  std::map<std::string, std::size_t> labels_;
};

class ProgramBuilder {
 public:
  // Defines `label` at the next instruction index. Redefinition throws.
  ProgramBuilder& label(const std::string& name);

  ProgramBuilder& emit(Instruction instruction);
  ProgramBuilder& emit(Opcode opcode) { return emit(Instruction{opcode}); }
  ProgramBuilder& emit(Opcode opcode, Operand a) {
    return emit(Instruction{opcode, std::move(a)});
  }
  ProgramBuilder& emit(Opcode opcode, Operand a, Operand b) {
    return emit(Instruction{opcode, std::move(a), std::move(b)});
  }

  // Common idioms used by the generators.
  ProgramBuilder& jmp(const std::string& target) {
    return emit(Opcode::Jmp, Operand::make_label(target));
  }
  ProgramBuilder& jcc(Opcode cc, const std::string& target) {
    return emit(cc, Operand::make_label(target));
  }
  ProgramBuilder& call_label(const std::string& target) {
    return emit(Opcode::Call, Operand::make_label(target));
  }
  ProgramBuilder& call_api(const std::string& api_name) {
    return emit(Opcode::Call, Operand::make_sym(api_name));
  }
  ProgramBuilder& ret() { return emit(Opcode::Ret); }

  std::size_t next_index() const noexcept { return instructions_.size(); }

  // Finalizes; the builder is left empty. Validates label integrity.
  Program build();

 private:
  std::vector<Instruction> instructions_;
  std::map<std::string, std::size_t> labels_;
};

}  // namespace cfgx
