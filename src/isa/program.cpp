#include "isa/program.hpp"

#include <sstream>
#include <stdexcept>

namespace cfgx {

Program::Program(std::vector<Instruction> instructions,
                 std::map<std::string, std::size_t> labels)
    : instructions_(std::move(instructions)), labels_(std::move(labels)) {
  validate();
}

std::optional<std::size_t> Program::label_index(const std::string& label) const {
  const auto it = labels_.find(label);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

void Program::validate() const {
  for (const auto& [name, index] : labels_) {
    if (index > instructions_.size()) {
      throw std::logic_error("Program: label '" + name + "' past end of stream");
    }
  }
  for (const Instruction& instr : instructions_) {
    if (const Operand* target = instr.label_target()) {
      if (labels_.find(target->text) == labels_.end()) {
        throw std::logic_error("Program: undefined label '" + target->text + "'");
      }
    }
  }
}

std::string Program::to_string() const {
  // Invert the label table for annotation.
  std::map<std::size_t, std::vector<std::string>> by_index;
  for (const auto& [name, index] : labels_) by_index[index].push_back(name);

  std::ostringstream out;
  for (std::size_t i = 0; i < instructions_.size(); ++i) {
    const auto it = by_index.find(i);
    if (it != by_index.end()) {
      for (const std::string& name : it->second) out << name << ":\n";
    }
    out << "    " << instructions_[i].to_string() << '\n';
  }
  return out.str();
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, instructions_.size()).second) {
    throw std::invalid_argument("ProgramBuilder: label '" + name + "' redefined");
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::emit(Instruction instruction) {
  instructions_.push_back(std::move(instruction));
  return *this;
}

Program ProgramBuilder::build() {
  Program program(std::move(instructions_), std::move(labels_));
  instructions_ = {};
  labels_ = {};
  return program;
}

}  // namespace cfgx
