// Mini x86-like instruction model.
//
// The YANCFG corpus used by the paper consists of real Windows binaries
// disassembled by IDA Pro. Binaries cannot be redistributed, so this module
// models the slice of x86 that the paper's pipeline actually consumes:
// enough instruction categories to compute every Table-I block feature and
// enough operand structure to express every Table-V malware pattern
// (XOR obfuscation, semantic NOPs, call-result manipulation, Windows API
// call chains).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cfgx {

enum class Register : std::uint8_t {
  Eax, Ebx, Ecx, Edx, Esi, Edi, Ebp, Esp,
  Al, Ah, Bl, Cl, Dl,
};

const char* to_string(Register reg) noexcept;

enum class Opcode : std::uint8_t {
  // data movement
  Mov, Movzx, Lea, Xchg, Push, Pop,
  // arithmetic / logic
  Add, Sub, Imul, Idiv, Inc, Dec, Neg, Not, Xor, And, Or, Shl, Shr,
  // comparison
  Cmp, Test,
  // control transfer
  Jmp, Je, Jne, Jg, Jl, Jge, Jle, Jz, Jnz, Loop,
  // calls
  Call,
  // termination
  Ret, Hlt, Int3,
  // misc
  Nop,
  // pseudo: data declarations emitted by the disassembler
  Db, Dw, Dd,
};

const char* to_string(Opcode opcode) noexcept;

// Table-I instruction categories.
enum class InstrCategory : std::uint8_t {
  Mov,           // mov/movzx/lea/xchg/push/pop
  Arithmetic,    // add..shr
  Compare,       // cmp/test
  Transfer,      // jmp/jcc/loop (control transfer)
  Call,          // call
  Termination,   // ret/hlt/int3
  DataDecl,      // db/dw/dd
  Other,         // nop
};

InstrCategory category_of(Opcode opcode) noexcept;

struct Operand {
  enum class Kind : std::uint8_t {
    Reg,        // a general-purpose register
    Imm,        // numeric constant
    Mem,        // memory reference, rendered as the text field
    Sym,        // external symbol (Windows API name, e.g. "ds:Sleep")
    StringLit,  // string constant
    Label,      // internal code label (jump/call target)
  };

  Kind kind = Kind::Imm;
  Register reg = Register::Eax;  // valid when kind == Reg
  std::int64_t imm = 0;          // valid when kind == Imm
  std::string text;              // valid for Mem / Sym / StringLit / Label

  static Operand make_reg(Register r) {
    Operand op;
    op.kind = Kind::Reg;
    op.reg = r;
    return op;
  }
  static Operand make_imm(std::int64_t value) {
    Operand op;
    op.kind = Kind::Imm;
    op.imm = value;
    return op;
  }
  static Operand make_mem(std::string expr) {
    Operand op;
    op.kind = Kind::Mem;
    op.text = std::move(expr);
    return op;
  }
  static Operand make_sym(std::string name) {
    Operand op;
    op.kind = Kind::Sym;
    op.text = std::move(name);
    return op;
  }
  static Operand make_string(std::string value) {
    Operand op;
    op.kind = Kind::StringLit;
    op.text = std::move(value);
    return op;
  }
  static Operand make_label(std::string name) {
    Operand op;
    op.kind = Kind::Label;
    op.text = std::move(name);
    return op;
  }

  std::string to_string() const;
  bool operator==(const Operand&) const = default;
};

struct Instruction {
  Opcode opcode = Opcode::Nop;
  std::vector<Operand> operands;

  Instruction() = default;
  explicit Instruction(Opcode op) : opcode(op) {}
  Instruction(Opcode op, Operand a) : opcode(op), operands{std::move(a)} {}
  Instruction(Opcode op, Operand a, Operand b)
      : opcode(op), operands{std::move(a), std::move(b)} {}

  InstrCategory category() const noexcept { return category_of(opcode); }

  // True for unconditional control transfer (jmp) — no fall-through.
  bool is_unconditional_jump() const noexcept { return opcode == Opcode::Jmp; }
  // True for any jump (conditional or not).
  bool is_jump() const noexcept { return category() == InstrCategory::Transfer; }
  bool is_call() const noexcept { return opcode == Opcode::Call; }
  bool is_terminator() const noexcept {
    return category() == InstrCategory::Termination;
  }

  // The Label operand of a jump/call, or nullptr when the target is not an
  // internal label (e.g. an external API symbol).
  const Operand* label_target() const noexcept;

  // True when any operand reads or writes `reg` (sub-registers of EAX
  // count as EAX for the pattern detectors: al/ah alias eax).
  bool touches_register(Register reg) const noexcept;

  // IDA-like rendering, e.g. "mov eax, [ebp+var_18]" or "call ds:Sleep".
  std::string to_string() const;

  bool operator==(const Instruction&) const = default;
};

// True when `sub` is the same register as `full` or one of its 8-bit
// aliases (al/ah alias eax; bl aliases ebx; cl ecx; dl edx).
bool register_aliases(Register sub, Register full) noexcept;

}  // namespace cfgx
