#include "isa/patterns.hpp"

#include <algorithm>
#include <array>

namespace cfgx {
namespace {

bool is_semantic_nop(const Instruction& instr) {
  if (instr.opcode == Opcode::Nop) return true;
  // One-byte aliases: "mov r, r" and "xchg r, r" with identical registers.
  if ((instr.opcode == Opcode::Mov || instr.opcode == Opcode::Xchg) &&
      instr.operands.size() == 2 &&
      instr.operands[0].kind == Operand::Kind::Reg &&
      instr.operands[1].kind == Operand::Kind::Reg &&
      instr.operands[0].reg == instr.operands[1].reg) {
    return true;
  }
  return false;
}

bool is_xor_obfuscation(const Instruction& instr) {
  if (instr.opcode != Opcode::Xor || instr.operands.size() != 2) return false;
  const Operand& a = instr.operands[0];
  const Operand& b = instr.operands[1];
  // xor r, r with the SAME register is the common zeroing idiom — benign.
  if (a.kind == Operand::Kind::Reg && b.kind == Operand::Kind::Reg) {
    return a.reg != b.reg;
  }
  // xor <reg or mem>, imm with a non-zero key.
  if (b.kind == Operand::Kind::Imm) return b.imm != 0;
  // xor involving a memory operand and a register (decoder loops).
  return a.kind == Operand::Kind::Mem || b.kind == Operand::Kind::Mem;
}

bool is_external_call(const Instruction& instr) {
  if (!instr.is_call()) return false;
  return std::any_of(instr.operands.begin(), instr.operands.end(),
                     [](const Operand& op) {
                       return op.kind == Operand::Kind::Sym;
                     });
}

std::string external_call_name(const Instruction& instr) {
  for (const Operand& op : instr.operands) {
    if (op.kind == Operand::Kind::Sym) return op.text;
  }
  return {};
}

// Strips "ds:" and the IDA thunk prefix "j_".
std::string canonical_api(std::string name) {
  if (name.rfind("ds:", 0) == 0) name.erase(0, 3);
  if (name.rfind("j_", 0) == 0) name.erase(0, 2);
  return name;
}

bool contains_token(const std::string& name, const char* token) {
  return name.find(token) != std::string::npos;
}

}  // namespace

const char* to_string(MalwarePattern pattern) noexcept {
  switch (pattern) {
    case MalwarePattern::CodeManipulation: return "Code manipulation";
    case MalwarePattern::XorObfuscation: return "XOR obfuscation";
    case MalwarePattern::SemanticNop: return "Semantic-NOP obfuscation";
    case MalwarePattern::ApiCall: return "Windows API call";
  }
  return "?";
}

const char* to_string(ApiBehavior behavior) noexcept {
  switch (behavior) {
    case ApiBehavior::ThreadCreation: return "thread creation";
    case ApiBehavior::ProcessCreation: return "process creation";
    case ApiBehavior::FileIo: return "file I/O";
    case ApiBehavior::Network: return "network";
    case ApiBehavior::Registry: return "registry";
    case ApiBehavior::Timing: return "timing/delay";
    case ApiBehavior::Pipe: return "pipe";
    case ApiBehavior::LibraryLoading: return "library loading";
    case ApiBehavior::Memory: return "memory";
    case ApiBehavior::Crypto: return "crypto";
    case ApiBehavior::Unknown: return "unknown";
  }
  return "?";
}

ApiBehavior classify_api(const std::string& api_name) {
  const std::string name = canonical_api(api_name);
  if (contains_token(name, "CreateThread") || contains_token(name, "CreateRemoteThread")) {
    return ApiBehavior::ThreadCreation;
  }
  if (contains_token(name, "CreateProcess") || contains_token(name, "WinExec") ||
      contains_token(name, "ShellExecute")) {
    return ApiBehavior::ProcessCreation;
  }
  if (contains_token(name, "ReadFile") || contains_token(name, "WriteFile") ||
      contains_token(name, "CreateFile") || contains_token(name, "DeleteFile") ||
      contains_token(name, "CopyFile")) {
    return ApiBehavior::FileIo;
  }
  if (contains_token(name, "send") || contains_token(name, "recv") ||
      contains_token(name, "socket") || contains_token(name, "connect") ||
      contains_token(name, "WSAStartup") || contains_token(name, "gethostbyname") ||
      contains_token(name, "InternetOpen") || contains_token(name, "HttpSendRequest")) {
    return ApiBehavior::Network;
  }
  if (contains_token(name, "RegOpenKey") || contains_token(name, "RegSetValue") ||
      contains_token(name, "RegQueryValue") || contains_token(name, "RegCreateKey")) {
    return ApiBehavior::Registry;
  }
  if (contains_token(name, "Sleep") || contains_token(name, "QueryPerformanceCounter") ||
      contains_token(name, "GetTickCount")) {
    return ApiBehavior::Timing;
  }
  if (contains_token(name, "CreatePipe") || contains_token(name, "PeekNamedPipe")) {
    return ApiBehavior::Pipe;
  }
  if (contains_token(name, "LoadLibrary") || contains_token(name, "GetProcAddress") ||
      contains_token(name, "GetModuleFileName") || contains_token(name, "GetModuleHandle")) {
    return ApiBehavior::LibraryLoading;
  }
  if (contains_token(name, "VirtualAlloc") || contains_token(name, "VirtualProtect") ||
      contains_token(name, "HeapAlloc") || contains_token(name, "WriteProcessMemory")) {
    return ApiBehavior::Memory;
  }
  if (contains_token(name, "Crypt") || contains_token(name, "Hash")) {
    return ApiBehavior::Crypto;
  }
  return ApiBehavior::Unknown;
}

std::vector<PatternHit> detect_patterns(std::span<const Instruction> block) {
  std::vector<PatternHit> hits;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const Instruction& instr = block[i];

    if (is_xor_obfuscation(instr)) {
      hits.push_back(PatternHit{MalwarePattern::XorObfuscation, i,
                                instr.to_string() + ";", {}});
    }
    if (is_semantic_nop(instr)) {
      hits.push_back(PatternHit{MalwarePattern::SemanticNop, i,
                                instr.to_string() + ";", {}});
    }
    if (instr.is_call()) {
      if (is_external_call(instr)) {
        hits.push_back(PatternHit{MalwarePattern::ApiCall, i,
                                  instr.to_string() + ";",
                                  canonical_api(external_call_name(instr))});
      }
      // Code manipulation: the very next instruction touches EAX (or an
      // alias), i.e. the malware consumes or clobbers the return value.
      if (i + 1 < block.size() &&
          block[i + 1].touches_register(Register::Eax)) {
        hits.push_back(PatternHit{
            MalwarePattern::CodeManipulation, i,
            instr.to_string() + "; " + block[i + 1].to_string() + ";", {}});
      }
    }
  }
  return hits;
}

PatternReport analyze_blocks(const LiftedCfg& cfg,
                             std::span<const std::uint32_t> block_ids) {
  PatternReport report;
  for (std::uint32_t block_id : block_ids) {
    ++report.blocks_analyzed;
    for (const PatternHit& hit : detect_patterns(cfg.block_instructions(block_id))) {
      ++report.pattern_counts[hit.pattern];
      report.examples.emplace(hit.pattern, hit.excerpt);
      if (hit.pattern == MalwarePattern::ApiCall) {
        auto& names = report.apis_by_behavior[classify_api(hit.api_name)];
        if (std::find(names.begin(), names.end(), hit.api_name) == names.end()) {
          names.push_back(hit.api_name);
        }
      }
    }
  }
  return report;
}

}  // namespace cfgx
