// Table-I block feature extraction: LiftedCfg -> Acfg.
//
// The 12 features per basic block (paper Section II-A, Table I):
//   from the code sequence — #numeric constants, #string constants,
//   #transfer, #call, #arithmetic, #compare, #mov, #termination,
//   #data declaration, #total instructions;
//   from the node structure — #offspring (out-degree), #instructions in
//   the vertex (executable, i.e. non-data-declaration, instructions).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "graph/acfg.hpp"
#include "isa/lifter.hpp"

namespace cfgx {

// Feature indices into the 12-dim vector; order mirrors Table I.
enum class AcfgFeature : std::size_t {
  NumericConstants = 0,
  StringConstants = 1,
  TransferInstructions = 2,
  CallInstructions = 3,
  ArithmeticInstructions = 4,
  CompareInstructions = 5,
  MovInstructions = 6,
  TerminationInstructions = 7,
  DataDeclInstructions = 8,
  TotalInstructions = 9,
  Offspring = 10,
  InstructionsInVertex = 11,
};

const char* feature_name(AcfgFeature feature) noexcept;

// Features of one block given its instructions and its out-degree.
std::array<double, kAcfgFeatureCount> block_features(
    std::span<const Instruction> instructions, std::uint32_t out_degree);

// Builds the full ACFG: nodes = blocks, Table-I attributes, weighted edges.
// `label`/`family` annotate the resulting graph.
Acfg to_acfg(const LiftedCfg& cfg, int label = -1, std::string family = {});

}  // namespace cfgx
