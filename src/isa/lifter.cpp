#include "isa/lifter.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace cfgx {
namespace {

// A call is "internal" when it targets a label inside the program; external
// API calls (symbol operands) stay inside their block.
bool is_internal_call(const Instruction& instr) {
  return instr.is_call() && instr.label_target() != nullptr;
}

bool ends_block(const Instruction& instr) {
  return instr.is_jump() || instr.is_terminator() || is_internal_call(instr);
}

}  // namespace

LiftedCfg::LiftedCfg(const Program& program, std::vector<BasicBlock> blocks,
                     std::vector<CfgEdge> edges)
    : program_(&program), blocks_(std::move(blocks)), edges_(std::move(edges)) {
  instr_to_block_.assign(program.size(), 0);
  for (const BasicBlock& block : blocks_) {
    for (std::size_t i = block.first; i < block.last; ++i) {
      instr_to_block_[i] = block.id;
    }
  }
}

std::span<const Instruction> LiftedCfg::block_instructions(
    std::uint32_t block_id) const {
  const BasicBlock& block = blocks_.at(block_id);
  return {program_->instructions().data() + block.first, block.size()};
}

std::uint32_t LiftedCfg::block_of_instruction(std::size_t index) const {
  if (index >= instr_to_block_.size()) {
    throw std::out_of_range("LiftedCfg::block_of_instruction: index out of range");
  }
  return instr_to_block_[index];
}

std::string LiftedCfg::block_to_string(std::uint32_t block_id) const {
  std::ostringstream out;
  out << "block_" << block_id << ":";
  for (const Instruction& instr : block_instructions(block_id)) {
    out << " " << instr.to_string() << ";";
  }
  return out.str();
}

LiftedCfg lift_program(const Program& program) {
  if (program.empty()) {
    throw std::invalid_argument("lift_program: empty program");
  }
  program.validate();
  const auto& instrs = program.instructions();

  // --- 1. leader analysis ---
  std::set<std::size_t> leaders;
  leaders.insert(0);
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    const Instruction& instr = instrs[i];
    if (const Operand* target = instr.label_target()) {
      leaders.insert(*program.label_index(target->text));
    }
    if (ends_block(instr) && i + 1 < instrs.size()) {
      leaders.insert(i + 1);
    }
  }

  // --- 2. block formation ---
  std::vector<BasicBlock> blocks;
  std::vector<std::size_t> sorted_leaders(leaders.begin(), leaders.end());
  for (std::size_t k = 0; k < sorted_leaders.size(); ++k) {
    BasicBlock block;
    block.id = static_cast<std::uint32_t>(k);
    block.first = sorted_leaders[k];
    block.last =
        k + 1 < sorted_leaders.size() ? sorted_leaders[k + 1] : instrs.size();
    blocks.push_back(block);
  }

  // Map instruction index -> block id for edge targets.
  std::vector<std::uint32_t> owner(instrs.size(), 0);
  for (const BasicBlock& block : blocks) {
    for (std::size_t i = block.first; i < block.last; ++i) owner[i] = block.id;
  }

  // --- 3. edge construction ---
  std::vector<CfgEdge> edges;
  const auto add_edge = [&](std::uint32_t src, std::uint32_t dst, EdgeKind kind) {
    const CfgEdge edge{src, dst, kind};
    if (std::find(edges.begin(), edges.end(), edge) == edges.end()) {
      edges.push_back(edge);
    }
  };

  for (const BasicBlock& block : blocks) {
    const Instruction& final_instr = instrs[block.last - 1];
    const bool has_next = block.last < instrs.size();
    const std::uint32_t next_block = has_next ? owner[block.last] : 0;

    if (final_instr.is_terminator()) {
      continue;  // ret/hlt/int3: no successors
    }
    if (final_instr.is_jump()) {
      const Operand* target = final_instr.label_target();
      if (target != nullptr) {
        add_edge(block.id, owner[*program.label_index(target->text)],
                 EdgeKind::Flow);
      }
      if (!final_instr.is_unconditional_jump() && has_next) {
        add_edge(block.id, next_block, EdgeKind::Flow);  // not-taken path
      }
      continue;
    }
    if (is_internal_call(final_instr)) {
      const Operand* target = final_instr.label_target();
      add_edge(block.id, owner[*program.label_index(target->text)],
               EdgeKind::Call);
      if (has_next) add_edge(block.id, next_block, EdgeKind::Flow);  // return site
      continue;
    }
    // Plain fall-through into the next leader.
    if (has_next) add_edge(block.id, next_block, EdgeKind::Flow);
  }

  return LiftedCfg(program, std::move(blocks), std::move(edges));
}

}  // namespace cfgx
