#include "isa/features.hpp"

namespace cfgx {

const char* feature_name(AcfgFeature feature) noexcept {
  switch (feature) {
    case AcfgFeature::NumericConstants: return "#numeric constants";
    case AcfgFeature::StringConstants: return "#string constants";
    case AcfgFeature::TransferInstructions: return "#transfer instructions";
    case AcfgFeature::CallInstructions: return "#call instructions";
    case AcfgFeature::ArithmeticInstructions: return "#arithmetic instructions";
    case AcfgFeature::CompareInstructions: return "#compare instructions";
    case AcfgFeature::MovInstructions: return "#mov instructions";
    case AcfgFeature::TerminationInstructions: return "#termination instructions";
    case AcfgFeature::DataDeclInstructions: return "#data declaration instructions";
    case AcfgFeature::TotalInstructions: return "#total instructions";
    case AcfgFeature::Offspring: return "#offspring (degree)";
    case AcfgFeature::InstructionsInVertex: return "#instructions in vertex";
  }
  return "?";
}

std::array<double, kAcfgFeatureCount> block_features(
    std::span<const Instruction> instructions, std::uint32_t out_degree) {
  std::array<double, kAcfgFeatureCount> features{};
  const auto bump = [&](AcfgFeature f) {
    features[static_cast<std::size_t>(f)] += 1.0;
  };

  for (const Instruction& instr : instructions) {
    switch (instr.category()) {
      case InstrCategory::Transfer: bump(AcfgFeature::TransferInstructions); break;
      case InstrCategory::Call: bump(AcfgFeature::CallInstructions); break;
      case InstrCategory::Arithmetic:
        bump(AcfgFeature::ArithmeticInstructions);
        break;
      case InstrCategory::Compare: bump(AcfgFeature::CompareInstructions); break;
      case InstrCategory::Mov: bump(AcfgFeature::MovInstructions); break;
      case InstrCategory::Termination:
        bump(AcfgFeature::TerminationInstructions);
        break;
      case InstrCategory::DataDecl: bump(AcfgFeature::DataDeclInstructions); break;
      case InstrCategory::Other: break;
    }
    bump(AcfgFeature::TotalInstructions);
    if (instr.category() != InstrCategory::DataDecl) {
      bump(AcfgFeature::InstructionsInVertex);
    }
    for (const Operand& op : instr.operands) {
      if (op.kind == Operand::Kind::Imm) bump(AcfgFeature::NumericConstants);
      if (op.kind == Operand::Kind::StringLit) bump(AcfgFeature::StringConstants);
    }
  }
  features[static_cast<std::size_t>(AcfgFeature::Offspring)] =
      static_cast<double>(out_degree);
  return features;
}

Acfg to_acfg(const LiftedCfg& cfg, int label, std::string family) {
  Acfg graph(cfg.block_count(), kAcfgFeatureCount);
  graph.set_label(label);
  graph.set_family(std::move(family));

  std::vector<Edge> edges;
  edges.reserve(cfg.edges().size());
  for (const CfgEdge& edge : cfg.edges()) {
    edges.push_back(Edge{edge.src, edge.dst, edge.kind});
  }
  // Bulk install keeps the lifter's edge order (explainers index edges by
  // position) while avoiding add_edge's quadratic duplicate scan.
  graph.set_edges(std::move(edges));

  const auto degrees = graph.out_degrees();
  for (std::uint32_t b = 0; b < cfg.block_count(); ++b) {
    const auto feats = block_features(cfg.block_instructions(b), degrees[b]);
    for (std::size_t f = 0; f < kAcfgFeatureCount; ++f) {
      graph.features()(b, f) = feats[f];
    }
  }
  graph.validate();
  return graph;
}

}  // namespace cfgx
