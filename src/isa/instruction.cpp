#include "isa/instruction.hpp"

#include <sstream>

namespace cfgx {

const char* to_string(Register reg) noexcept {
  switch (reg) {
    case Register::Eax: return "eax";
    case Register::Ebx: return "ebx";
    case Register::Ecx: return "ecx";
    case Register::Edx: return "edx";
    case Register::Esi: return "esi";
    case Register::Edi: return "edi";
    case Register::Ebp: return "ebp";
    case Register::Esp: return "esp";
    case Register::Al: return "al";
    case Register::Ah: return "ah";
    case Register::Bl: return "bl";
    case Register::Cl: return "cl";
    case Register::Dl: return "dl";
  }
  return "?";
}

const char* to_string(Opcode opcode) noexcept {
  switch (opcode) {
    case Opcode::Mov: return "mov";
    case Opcode::Movzx: return "movzx";
    case Opcode::Lea: return "lea";
    case Opcode::Xchg: return "xchg";
    case Opcode::Push: return "push";
    case Opcode::Pop: return "pop";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Imul: return "imul";
    case Opcode::Idiv: return "idiv";
    case Opcode::Inc: return "inc";
    case Opcode::Dec: return "dec";
    case Opcode::Neg: return "neg";
    case Opcode::Not: return "not";
    case Opcode::Xor: return "xor";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Cmp: return "cmp";
    case Opcode::Test: return "test";
    case Opcode::Jmp: return "jmp";
    case Opcode::Je: return "je";
    case Opcode::Jne: return "jne";
    case Opcode::Jg: return "jg";
    case Opcode::Jl: return "jl";
    case Opcode::Jge: return "jge";
    case Opcode::Jle: return "jle";
    case Opcode::Jz: return "jz";
    case Opcode::Jnz: return "jnz";
    case Opcode::Loop: return "loop";
    case Opcode::Call: return "call";
    case Opcode::Ret: return "ret";
    case Opcode::Hlt: return "hlt";
    case Opcode::Int3: return "int3";
    case Opcode::Nop: return "nop";
    case Opcode::Db: return "db";
    case Opcode::Dw: return "dw";
    case Opcode::Dd: return "dd";
  }
  return "?";
}

InstrCategory category_of(Opcode opcode) noexcept {
  switch (opcode) {
    case Opcode::Mov:
    case Opcode::Movzx:
    case Opcode::Lea:
    case Opcode::Xchg:
    case Opcode::Push:
    case Opcode::Pop:
      return InstrCategory::Mov;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Imul:
    case Opcode::Idiv:
    case Opcode::Inc:
    case Opcode::Dec:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::Xor:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Shl:
    case Opcode::Shr:
      return InstrCategory::Arithmetic;
    case Opcode::Cmp:
    case Opcode::Test:
      return InstrCategory::Compare;
    case Opcode::Jmp:
    case Opcode::Je:
    case Opcode::Jne:
    case Opcode::Jg:
    case Opcode::Jl:
    case Opcode::Jge:
    case Opcode::Jle:
    case Opcode::Jz:
    case Opcode::Jnz:
    case Opcode::Loop:
      return InstrCategory::Transfer;
    case Opcode::Call:
      return InstrCategory::Call;
    case Opcode::Ret:
    case Opcode::Hlt:
    case Opcode::Int3:
      return InstrCategory::Termination;
    case Opcode::Db:
    case Opcode::Dw:
    case Opcode::Dd:
      return InstrCategory::DataDecl;
    case Opcode::Nop:
      return InstrCategory::Other;
  }
  return InstrCategory::Other;
}

std::string Operand::to_string() const {
  switch (kind) {
    case Kind::Reg: return cfgx::to_string(reg);
    case Kind::Imm: {
      std::ostringstream out;
      if (imm >= 0 && imm <= 9) {
        out << imm;
      } else {
        out << std::hex << std::uppercase << imm << "h";
      }
      return out.str();
    }
    case Kind::Mem: return "[" + text + "]";
    case Kind::Sym: return text;
    case Kind::StringLit: return "\"" + text + "\"";
    case Kind::Label: return text;
  }
  return "?";
}

const Operand* Instruction::label_target() const noexcept {
  if (!is_jump() && !is_call()) return nullptr;
  for (const Operand& op : operands) {
    if (op.kind == Operand::Kind::Label) return &op;
  }
  return nullptr;
}

bool register_aliases(Register sub, Register full) noexcept {
  if (sub == full) return true;
  switch (sub) {
    case Register::Al:
    case Register::Ah:
      return full == Register::Eax;
    case Register::Bl:
      return full == Register::Ebx;
    case Register::Cl:
      return full == Register::Ecx;
    case Register::Dl:
      return full == Register::Edx;
    default:
      return false;
  }
}

bool Instruction::touches_register(Register reg) const noexcept {
  for (const Operand& op : operands) {
    if (op.kind == Operand::Kind::Reg && register_aliases(op.reg, reg)) {
      return true;
    }
  }
  return false;
}

std::string Instruction::to_string() const {
  std::string out = cfgx::to_string(opcode);
  for (std::size_t i = 0; i < operands.size(); ++i) {
    out += (i == 0 ? " " : ", ");
    out += operands[i].to_string();
  }
  return out;
}

}  // namespace cfgx
