// CFG lifter: instruction stream -> basic blocks -> control flow graph.
//
// Mirrors the IDA-Pro pipeline stage the paper relies on:
//   1. leader analysis (entry, jump/call targets, post-transfer sites)
//   2. basic-block formation
//   3. edge construction with the paper's weights: fall-through and jump
//      edges are Flow (weight 1), call edges are Call (weight 2).
//
// Conventions:
//   * An internal `call label` ends its block and produces a Call edge to
//     the callee plus a Flow edge to the return site (the next block).
//   * An external `call ds:SomeApi` (symbol operand) does NOT end the block
//     — the callee is outside the binary, exactly as a disassembler sees it.
//   * ret / hlt / int3 terminate with no successors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/acfg.hpp"
#include "isa/program.hpp"

namespace cfgx {

struct BasicBlock {
  std::uint32_t id = 0;
  std::size_t first = 0;  // index of the first instruction (inclusive)
  std::size_t last = 0;   // index one past the final instruction (exclusive)

  std::size_t size() const noexcept { return last - first; }
  bool operator==(const BasicBlock&) const = default;
};

struct CfgEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  EdgeKind kind = EdgeKind::Flow;
  bool operator==(const CfgEdge&) const = default;
};

// The lifted control flow graph, retaining a view into the program so block
// instructions remain inspectable (pattern detectors, Table V reports).
class LiftedCfg {
 public:
  LiftedCfg(const Program& program, std::vector<BasicBlock> blocks,
            std::vector<CfgEdge> edges);

  const Program& program() const noexcept { return *program_; }
  const std::vector<BasicBlock>& blocks() const noexcept { return blocks_; }
  const std::vector<CfgEdge>& edges() const noexcept { return edges_; }

  std::uint32_t block_count() const noexcept {
    return static_cast<std::uint32_t>(blocks_.size());
  }

  // Instructions of one block.
  std::span<const Instruction> block_instructions(std::uint32_t block_id) const;

  // Block containing instruction `index`; throws when out of range.
  std::uint32_t block_of_instruction(std::size_t index) const;

  // Disassembly listing of one block ("loc_3: mov eax, 1; ...").
  std::string block_to_string(std::uint32_t block_id) const;

 private:
  const Program* program_;  // non-owning; the caller keeps the Program alive
  std::vector<BasicBlock> blocks_;
  std::vector<CfgEdge> edges_;
  std::vector<std::uint32_t> instr_to_block_;
};

// Performs leader analysis + block formation + edge construction.
// Throws std::invalid_argument for an empty program.
// The LiftedCfg borrows `program`, so the rvalue overload is deleted:
// callers must keep the Program alive for the LiftedCfg's lifetime.
LiftedCfg lift_program(const Program& program);
LiftedCfg lift_program(Program&& program) = delete;

}  // namespace cfgx
