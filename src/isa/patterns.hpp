// Table-V malware pattern detectors.
//
// The paper's qualitative evaluation (Section V-D) inspects the top-20%
// subgraphs for: code manipulation (an instruction right after a call that
// touches the EAX return value), XOR obfuscation (xor of two distinct
// registers or register-with-constant), semantic-NOP obfuscation (nop and
// one-byte aliases like "mov edx, edx"), and Windows API / DLL usage
// (macro-level behaviour). These detectors automate that inspection over
// our mini-ISA so the Table-V bench can report the same categories.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "isa/lifter.hpp"

namespace cfgx {

enum class MalwarePattern : std::uint8_t {
  CodeManipulation,   // call; <instr touching eax>
  XorObfuscation,     // xor r1, r2 (r1 != r2) or xor r, imm (imm != 0)
  SemanticNop,        // nop / mov r,r / xchg r,r
  ApiCall,            // call to an external Windows API symbol
};

const char* to_string(MalwarePattern pattern) noexcept;

struct PatternHit {
  MalwarePattern pattern = MalwarePattern::SemanticNop;
  std::size_t instruction_index = 0;  // offset within the analyzed block
  std::string excerpt;                // e.g. "call ds:Sleep; mov eax, [ebp+var_18];"
  std::string api_name;               // set for ApiCall hits
};

// Scans one basic block's instructions.
std::vector<PatternHit> detect_patterns(std::span<const Instruction> block);

// Windows API behaviour classification for macro-level analysis (paper
// Section V-D "Macro-level analysis").
enum class ApiBehavior : std::uint8_t {
  ThreadCreation, ProcessCreation, FileIo, Network, Registry, Timing,
  Pipe, LibraryLoading, Memory, Crypto, Unknown,
};

const char* to_string(ApiBehavior behavior) noexcept;

// Classifies an API symbol name (handles the "ds:" prefix and the "j_"
// thunk prefix IDA emits, e.g. "ds:Sleep", "j_SleepEx").
ApiBehavior classify_api(const std::string& api_name);

// Aggregated report over a node subset of a lifted CFG (typically the
// explainer's top-k% blocks).
struct PatternReport {
  // pattern -> number of hits across the analyzed blocks
  std::map<MalwarePattern, std::size_t> pattern_counts;
  // behaviour -> distinct API names observed
  std::map<ApiBehavior, std::vector<std::string>> apis_by_behavior;
  // one representative excerpt per observed pattern
  std::map<MalwarePattern, std::string> examples;
  std::size_t blocks_analyzed = 0;
};

PatternReport analyze_blocks(const LiftedCfg& cfg,
                             std::span<const std::uint32_t> block_ids);

}  // namespace cfgx
