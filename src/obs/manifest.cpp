#include "obs/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

#ifndef CFGX_GIT_REV
#define CFGX_GIT_REV "unknown"
#endif

namespace cfgx::obs {

std::string build_git_revision() {
  if (const char* env = std::getenv("CFGX_GIT_REV")) {
    if (*env != '\0') return env;
  }
  return CFGX_GIT_REV;
}

RunManifest::RunManifest(std::string binary_name)
    : binary_(std::move(binary_name)) {}

void RunManifest::set_config_value(const std::string& key, ConfigValue value) {
  for (auto& [existing, stored] : config_) {
    if (existing == key) {
      stored = std::move(value);
      return;
    }
  }
  config_.emplace_back(key, std::move(value));
}

void RunManifest::set_config(const std::string& key, const std::string& value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::String;
  v.text = value;
  set_config_value(key, std::move(v));
}

void RunManifest::set_config(const std::string& key, const char* value) {
  set_config(key, std::string(value));
}

void RunManifest::set_config(const std::string& key, std::int64_t value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::Int;
  v.integer = value;
  set_config_value(key, std::move(v));
}

void RunManifest::set_config(const std::string& key, std::uint64_t value) {
  set_config(key, static_cast<std::int64_t>(value));
}

void RunManifest::set_config(const std::string& key, double value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::Double;
  v.number = value;
  set_config_value(key, std::move(v));
}

void RunManifest::set_config(const std::string& key, bool value) {
  ConfigValue v;
  v.kind = ConfigValue::Kind::Bool;
  v.flag = value;
  set_config_value(key, std::move(v));
}

void RunManifest::add_result(const std::string& key, double value) {
  results_.emplace_back(key, value);
}

void RunManifest::add_timing(ManifestTiming timing) {
  timings_.push_back(std::move(timing));
}

void RunManifest::set_metrics(MetricsSnapshot snapshot) {
  metrics_ = std::move(snapshot);
  has_metrics_ = true;
}

void RunManifest::set_trace_file(std::string path) {
  trace_file_ = std::move(path);
}

std::string RunManifest::json() const {
  JsonWriter writer;
  writer.begin_object();
  writer.field("schema", "cfgx-run-manifest/1");
  writer.field("binary", binary_);
  writer.field("git_rev", build_git_revision());
  writer.field("created_unix",
               static_cast<std::int64_t>(std::time(nullptr)));
  if (!trace_file_.empty()) writer.field("trace_file", trace_file_);

  writer.key("config").begin_object();
  for (const auto& [key, value] : config_) {
    writer.key(key);
    switch (value.kind) {
      case ConfigValue::Kind::String: writer.value(value.text); break;
      case ConfigValue::Kind::Int: writer.value(value.integer); break;
      case ConfigValue::Kind::Double: writer.value(value.number); break;
      case ConfigValue::Kind::Bool: writer.value(value.flag); break;
    }
  }
  writer.end_object();

  writer.key("results").begin_object();
  for (const auto& [key, value] : results_) writer.field(key, value);
  writer.end_object();

  writer.key("timings").begin_array();
  for (const ManifestTiming& t : timings_) {
    writer.begin_object()
        .field("name", t.name)
        .field("count", t.count)
        .field("total_seconds", t.total_seconds)
        .field("mean_seconds", t.mean_seconds)
        .field("stddev_seconds", t.stddev_seconds)
        .field("p50_seconds", t.p50_seconds)
        .field("p95_seconds", t.p95_seconds)
        .field("p99_seconds", t.p99_seconds)
        .end_object();
  }
  writer.end_array();

  if (has_metrics_) {
    writer.key("metrics");
    metrics_.write_json(writer);
  }
  writer.end_object();
  return writer.str();
}

void RunManifest::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("RunManifest: cannot open '" + path +
                             "' for writing");
  }
  out << json();
  if (!out) {
    throw std::runtime_error("RunManifest: failed writing '" + path + "'");
  }
}

}  // namespace cfgx::obs
