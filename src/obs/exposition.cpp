#include "obs/exposition.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace cfgx::obs {
namespace {

// Shortest round-trip formatting, so goldens don't depend on a fixed
// precision padding ("0.5" stays "0.5", not "0.50000000000000000").
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // The exposition format spells these out (unlike JSON).
    out += std::isnan(value) ? "NaN" : (value > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) {
    out.append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
  }
}

void append_sample(std::string& out, const std::string& name,
                   std::string_view labels, double value) {
  out += name;
  out += labels;
  out += ' ';
  append_double(out, value);
  out += '\n';
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    append_type(out, prom, "counter");
    append_sample(out, prom, "", static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    append_type(out, prom, "gauge");
    append_sample(out, prom, "", value);
  }
  for (const HistogramStats& h : snapshot.histograms) {
    const std::string prom = prometheus_name(h.name);
    append_type(out, prom, "summary");
    append_sample(out, prom, "{quantile=\"0.5\"}", h.p50);
    append_sample(out, prom, "{quantile=\"0.95\"}", h.p95);
    append_sample(out, prom, "{quantile=\"0.99\"}", h.p99);
    append_sample(out, prom + "_sum", "", h.sum);
    append_sample(out, prom + "_count", "", static_cast<double>(h.count));
  }
  return out;
}

}  // namespace cfgx::obs
