// Background metrics exporter: periodic snapshots of the registry turned
// into *windowed deltas* and appended as a JSONL time series.
//
// The PR-3 obs stack is pull-at-exit: a manifest snapshots cumulative
// totals once, when the process finishes. A long-running server needs the
// opposite view — what happened in the LAST N seconds — so the exporter
// thread samples the registry every `interval`, diffs each sample against
// the previous one, and emits one MetricsWindow per tick:
//
//   * counters: delta over the window plus a per-second rate;
//   * gauges: the point-in-time value (gauges are already instantaneous);
//   * histograms: count/sum deltas plus INTERVAL percentiles computed from
//     the bucket-count diff between the two snapshots
//     (Histogram::quantile_from_buckets) — the p50/p95/p99 of only the
//     samples recorded during this window, which cumulative histogram
//     stats can never recover once the distribution drifts.
//
// Consistency under concurrent mutation: every counter and bucket is a
// monotone relaxed atomic, so each individual delta is exact for its cell;
// a histogram's count/sum/bucket cells are read without a barrier and may
// disagree by the handful of records in flight during the snapshot.
// Windowed percentiles therefore normalize by the bucket-diff total (not
// the count delta), and no delta is ever negative. Metrics that first
// appear mid-flight diff against zero.
//
// The sampler thread holds no lock while serving traffic runs — it costs
// one registry snapshot per tick. stop() takes a final sample so the tail
// window is never lost, then joins; the destructor calls stop().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace cfgx::obs {

class JsonWriter;

struct WindowedCounter {
  std::string name;
  std::uint64_t delta = 0;
  double rate_per_second = 0.0;
};

struct WindowedHistogram {
  std::string name;
  std::uint64_t count_delta = 0;
  double sum_delta = 0.0;
  // Interval percentiles from the bucket-count diff; 0 when the window
  // recorded nothing.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// One exporter tick. Sections are sorted by metric name (inherited from
// MetricsSnapshot), so the JSONL stream is deterministic given the data.
struct MetricsWindow {
  // Wall-clock stamp of the sample (for the JSONL consumer's x-axis).
  std::int64_t wall_unix_ms = 0;
  // Measured (steady-clock) seconds since the previous sample.
  double interval_seconds = 0.0;
  std::vector<WindowedCounter> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<WindowedHistogram> histograms;

  // {"schema":"cfgx.metrics.window.v1","t_unix_ms":...,...}
  void write_json(JsonWriter& writer) const;
  std::string json() const;
};

// Diff two snapshots taken `interval_seconds` apart. Exposed for tests
// and for one-shot consumers; the exporter thread is this plus a timer.
MetricsWindow diff_snapshots(const MetricsSnapshot& previous,
                             const MetricsSnapshot& current,
                             double interval_seconds);

struct ExporterConfig {
  std::chrono::milliseconds interval{1000};
  // JSONL output path, appended one window per line; empty keeps windows
  // in memory only (recent_windows()).
  std::string path;
  // Ring of recent windows retained for in-process consumers (/statusz,
  // tests). 0 keeps none.
  std::size_t keep_windows = 64;
};

class MetricsExporter {
 public:
  // Takes the first (baseline) snapshot immediately; windows start
  // accumulating from construction, and the sampler thread starts at
  // once. Throws std::runtime_error when `path` cannot be opened.
  MetricsExporter(MetricsRegistry& registry, ExporterConfig config);
  ~MetricsExporter();  // stop()

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  // Cuts a window NOW (thread-safe; the periodic thread and manual calls
  // serialize) and returns it. Tests drive the exporter with this instead
  // of sleeping through intervals.
  MetricsWindow sample_now();

  // Most recent windows, oldest first (bounded by keep_windows).
  std::vector<MetricsWindow> recent_windows() const;

  std::uint64_t windows_sampled() const;

  // Final sample + join; idempotent.
  void stop();

  const ExporterConfig& config() const noexcept { return config_; }

 private:
  void sampler_loop();
  MetricsWindow sample_locked();  // requires sample_mutex_

  MetricsRegistry& registry_;
  ExporterConfig config_;

  mutable std::mutex sample_mutex_;  // previous snapshot + sink + ring
  MetricsSnapshot previous_;
  std::chrono::steady_clock::time_point previous_time_;
  std::ofstream sink_;
  std::deque<MetricsWindow> recent_;
  std::uint64_t windows_sampled_ = 0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread sampler_;
};

}  // namespace cfgx::obs
