#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cfgx::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::Object || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ += '}';
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::Array) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ += ']';
  scopes_.pop_back();
  first_in_scope_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (scopes_.empty() || scopes_.back() != Scope::Object || pending_key_) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!scopes_.empty() && scopes_.back() == Scope::Object) {
    if (!pending_key_) {
      throw std::logic_error("JsonWriter: object value without a key");
    }
    pending_key_ = false;
    return;
  }
  if (!scopes_.empty()) {  // array
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", number);
    out_ += buf;
  }
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  if (scopes_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !scopes_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string_value = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.bool_value = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.members.emplace(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Emitters only escape control characters; encode BMP code points
          // as UTF-8 to stay a superset of what we write.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      JsonValue v;
      v.kind = JsonValue::Kind::Number;
      v.number_value = std::stod(token, &used);
      if (used != token.size()) fail("malformed number");
      return v;
    } catch (const std::logic_error&) {  // invalid_argument / out_of_range
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cfgx::obs
