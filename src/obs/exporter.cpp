#include "obs/exporter.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace cfgx::obs {
namespace {

std::int64_t wall_unix_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Sorted-vector lookup helpers: both snapshots iterate sorted by name, so
// a linear merge would do; binary search keeps the code obvious.
template <typename Pair>
const Pair* find_by_name(const std::vector<Pair>& entries,
                         const std::string& name) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Pair& entry, const std::string& key) { return entry.first < key; });
  if (it == entries.end() || it->first != name) return nullptr;
  return &*it;
}

const HistogramStats* find_histogram(const std::vector<HistogramStats>& entries,
                                     const std::string& name) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const HistogramStats& entry, const std::string& key) {
        return entry.name < key;
      });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace

MetricsWindow diff_snapshots(const MetricsSnapshot& previous,
                             const MetricsSnapshot& current,
                             double interval_seconds) {
  MetricsWindow window;
  window.interval_seconds = interval_seconds;

  window.counters.reserve(current.counters.size());
  for (const auto& [name, value] : current.counters) {
    const auto* prev = find_by_name(previous.counters, name);
    const std::uint64_t before = prev != nullptr ? prev->second : 0;
    WindowedCounter wc;
    wc.name = name;
    // Counters are monotone; a snapshot pair can still invert if the
    // registry was reset between them — clamp instead of underflowing.
    wc.delta = value >= before ? value - before : value;
    wc.rate_per_second = interval_seconds > 0.0
                             ? static_cast<double>(wc.delta) / interval_seconds
                             : 0.0;
    window.counters.push_back(std::move(wc));
  }

  window.gauges = current.gauges;

  window.histograms.reserve(current.histograms.size());
  for (const HistogramStats& h : current.histograms) {
    const HistogramStats* prev = find_histogram(previous.histograms, h.name);
    WindowedHistogram wh;
    wh.name = h.name;
    wh.count_delta =
        prev != nullptr && h.count >= prev->count ? h.count - prev->count
                                                  : h.count;
    wh.sum_delta =
        prev != nullptr && h.sum >= prev->sum ? h.sum - prev->sum : h.sum;
    std::vector<std::uint64_t> bucket_delta = h.buckets;
    if (prev != nullptr && prev->buckets.size() == bucket_delta.size()) {
      for (std::size_t i = 0; i < bucket_delta.size(); ++i) {
        const std::uint64_t before = prev->buckets[i];
        bucket_delta[i] = bucket_delta[i] >= before
                              ? bucket_delta[i] - before
                              : bucket_delta[i];
      }
    }
    if (!bucket_delta.empty()) {
      wh.p50 = Histogram::quantile_from_buckets(bucket_delta, 0.50);
      wh.p95 = Histogram::quantile_from_buckets(bucket_delta, 0.95);
      wh.p99 = Histogram::quantile_from_buckets(bucket_delta, 0.99);
    }
    window.histograms.push_back(std::move(wh));
  }
  return window;
}

void MetricsWindow::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.field("schema", "cfgx.metrics.window.v1");
  writer.field("t_unix_ms", wall_unix_ms);
  writer.field("interval_seconds", interval_seconds);
  writer.key("counters").begin_object();
  for (const WindowedCounter& c : counters) {
    writer.key(c.name).begin_object();
    writer.field("delta", c.delta);
    writer.field("rate_per_second", c.rate_per_second);
    writer.end_object();
  }
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) writer.field(name, value);
  writer.end_object();
  writer.key("histograms").begin_object();
  for (const WindowedHistogram& h : histograms) {
    writer.key(h.name).begin_object();
    writer.field("count_delta", h.count_delta);
    writer.field("sum_delta", h.sum_delta);
    writer.field("p50", h.p50);
    writer.field("p95", h.p95);
    writer.field("p99", h.p99);
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
}

std::string MetricsWindow::json() const {
  JsonWriter writer;
  write_json(writer);
  return writer.str();
}

MetricsExporter::MetricsExporter(MetricsRegistry& registry,
                                 ExporterConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (!config_.path.empty()) {
    sink_.open(config_.path, std::ios::out | std::ios::app);
    if (!sink_) {
      throw std::runtime_error("MetricsExporter: cannot open " + config_.path);
    }
  }
  previous_ = registry_.snapshot();
  previous_time_ = std::chrono::steady_clock::now();
  sampler_ = std::thread([this] { sampler_loop(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

MetricsWindow MetricsExporter::sample_locked() {
  MetricsSnapshot current = registry_.snapshot();
  const auto now = std::chrono::steady_clock::now();
  MetricsWindow window = diff_snapshots(
      previous_, current,
      std::chrono::duration<double>(now - previous_time_).count());
  window.wall_unix_ms = wall_unix_ms_now();
  previous_ = std::move(current);
  previous_time_ = now;
  if (sink_.is_open()) {
    sink_ << window.json() << '\n';
    sink_.flush();  // a scraper may tail the file while we run
  }
  if (config_.keep_windows > 0) {
    recent_.push_back(window);
    while (recent_.size() > config_.keep_windows) recent_.pop_front();
  }
  ++windows_sampled_;
  return window;
}

MetricsWindow MetricsExporter::sample_now() {
  std::lock_guard lock(sample_mutex_);
  return sample_locked();
}

std::vector<MetricsWindow> MetricsExporter::recent_windows() const {
  std::lock_guard lock(sample_mutex_);
  return {recent_.begin(), recent_.end()};
}

std::uint64_t MetricsExporter::windows_sampled() const {
  std::lock_guard lock(sample_mutex_);
  return windows_sampled_;
}

void MetricsExporter::sampler_loop() {
  std::unique_lock lock(stop_mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, config_.interval, [&] { return stopping_; })) {
      return;
    }
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void MetricsExporter::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  // Tail flush: whatever accumulated since the last periodic tick becomes
  // the final window instead of silently vanishing.
  sample_now();
}

}  // namespace cfgx::obs
