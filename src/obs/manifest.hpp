// Machine-readable run manifests.
//
// Every bench binary emits one JSON manifest next to its human-readable
// table: the configuration it ran under, the git revision it was built
// from, named timing distributions (mean/std/p50/p95/p99), scalar results,
// and a snapshot of the metrics registry. This is the format the
// BENCH_*.json perf trajectory consumes - one manifest per run is one
// datapoint.
//
// Schema (cfgx-run-manifest/1):
//   {
//     "schema": "cfgx-run-manifest/1",
//     "binary": "table4_explanation_time",
//     "git_rev": "6d61db3",
//     "created_unix": 1754460000,
//     "trace_file": "table4_trace.json",        // only when tracing ran
//     "config": { "fast": true, "samples": 12, ... },
//     "results": { "gnn_accuracy": 0.97, ... },
//     "timings": [ {"name": "explain.CFGExplainer", "count": 36,
//                   "total_seconds": ..., "mean_seconds": ...,
//                   "stddev_seconds": ..., "p50_seconds": ...,
//                   "p95_seconds": ..., "p99_seconds": ...}, ... ],
//     "metrics": { "counters": {...}, "gauges": {...},
//                  "histograms": [...] }
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cfgx::obs {

// The revision the binary was built from (compile-time CFGX_GIT_REV,
// overridable at runtime via the CFGX_GIT_REV environment variable for
// CI jobs that build from a detached worktree).
std::string build_git_revision();

struct ManifestTiming {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

class RunManifest {
 public:
  explicit RunManifest(std::string binary_name);

  // Config entries preserve insertion order in the emitted JSON.
  void set_config(const std::string& key, const std::string& value);
  void set_config(const std::string& key, const char* value);
  void set_config(const std::string& key, std::int64_t value);
  void set_config(const std::string& key, std::uint64_t value);
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, bool value);

  void add_result(const std::string& key, double value);
  void add_timing(ManifestTiming timing);
  void set_metrics(MetricsSnapshot snapshot);
  void set_trace_file(std::string path);

  std::string json() const;
  // Throws std::runtime_error when the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  struct ConfigValue {
    enum class Kind { String, Int, Double, Bool } kind = Kind::String;
    std::string text;
    std::int64_t integer = 0;
    double number = 0.0;
    bool flag = false;
  };

  void set_config_value(const std::string& key, ConfigValue value);

  std::string binary_;
  std::string trace_file_;
  std::vector<std::pair<std::string, ConfigValue>> config_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<ManifestTiming> timings_;
  MetricsSnapshot metrics_;
  bool has_metrics_ = false;
};

}  // namespace cfgx::obs
