// Minimal JSON support for the observability layer: a streaming writer used
// by the trace and manifest emitters, and a small recursive-descent parser
// used by the tests (trace well-formedness, manifest round-trips) to read
// those files back. No external dependency; covers exactly the JSON subset
// the emitters produce (objects, arrays, strings, finite numbers, booleans,
// null).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cfgx::obs {

// Returns `text` with every character JSON cannot carry verbatim escaped
// (quotes, backslash, control characters as \u00XX).
std::string json_escape(std::string_view text);

// Streaming writer. Scope mismatches (value without a key inside an object,
// str() with open scopes) throw std::logic_error - emitting malformed JSON
// is a bug, not a runtime condition.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  // Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);

  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  // The finished document; throws if any scope is still open.
  const std::string& str() const;

 private:
  enum class Scope { Object, Array };
  void before_value();

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool done_ = false;
};

// Parsed JSON document. Deliberately a plain open struct: test code walks it
// directly. parse() throws std::runtime_error on malformed input, which is
// exactly what the trace well-formedness test asserts does not happen.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                 // Kind::Array
  std::map<std::string, JsonValue> members;     // Kind::Object

  static JsonValue parse(std::string_view text);

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool has(const std::string& name) const { return members.count(name) > 0; }
  // Member access; throws std::out_of_range when absent.
  const JsonValue& at(const std::string& name) const { return members.at(name); }
};

}  // namespace cfgx::obs
