// Prometheus text-exposition rendering of a MetricsSnapshot.
//
// render_prometheus() turns any snapshot — live registry state scraped by
// the admin endpoint, or a saved one in a test — into the Prometheus
// text format (version 0.0.4): one `# TYPE` line per metric family
// followed by its samples. Counters and gauges map directly; histograms
// are rendered as Prometheus *summaries* (pre-computed p50/p95/p99
// quantile samples plus `_sum` and `_count`), because the registry's
// log-spaced buckets already condense to exact-enough quantiles and a
// summary keeps the scrape payload small and schema-stable.
//
// Metric names are sanitized (prometheus_name): every character outside
// [a-zA-Z0-9_:] becomes '_' (so "serve.queue_depth" scrapes as
// "serve_queue_depth") and a leading digit gains a '_' prefix. Sanitized
// names can collide; the renderer keeps first-wins order within each
// section, which is deterministic because snapshots are sorted by name.
//
// Output is byte-deterministic for a given snapshot (fixed section order
// counters < gauges < histograms, sorted names inside each, shortest
// round-trip double formatting) — the property the golden-file tests pin.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cfgx::obs {

// "serve.request_latency_seconds" -> "serve_request_latency_seconds".
std::string prometheus_name(std::string_view name);

// The full text-exposition document; ends with a trailing newline as the
// format requires.
std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace cfgx::obs
