// Thread-safe metrics: named counters, gauges and log-bucketed histograms
// behind a process-global registry.
//
// Hot-path contract: recording is lock-free (relaxed atomics only) and a
// single relaxed load + branch when metrics are disabled, so counters and
// histograms may sit inside the matrix kernels and the thread-pool worker
// loop. Registration (name lookup) takes a mutex - cache the returned
// reference in a function-local static at the call site:
//
//   static auto& calls = obs::MetricsRegistry::global().counter("spmm.calls");
//   calls.add();
//
// References returned by the registry are stable for the process lifetime;
// reset() zeroes values but never invalidates them. The global enable flag
// initializes from CFGX_METRICS (unset/non-zero = on, "0" = off).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cfgx::obs {

class JsonWriter;

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept;

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written (set) or accumulated (add) double value.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void add(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(v, std::memory_order_relaxed);
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram over positive values (durations in seconds by
// convention). Buckets are log-spaced: each power-of-two octave starting at
// kFloor is split into kSubBucketsPerOctave linear sub-buckets (HdrHistogram
// style), giving <= 2^(1/4) ~ 19% relative resolution over [1ns, ~10^10s]
// with a fixed 2 KiB footprint and purely relaxed-atomic recording.
class Histogram {
 public:
  static constexpr std::size_t kSubBucketsPerOctave = 4;
  static constexpr std::size_t kOctaves = 64;
  static constexpr std::size_t kBucketCount = kOctaves * kSubBucketsPerOctave;
  static constexpr double kFloor = 1e-9;

  Histogram();

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  // 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

  // q in [0, 1]; returns a representative value from the bucket containing
  // the rank-q sample, clamped to the observed [min, max]; q of exactly 0
  // or 1 returns the exact observed min/max. An EMPTY histogram returns
  // 0.0 for every q — never a throw and never a read of the (empty) bucket
  // array, so reporting paths in a long-running process can snapshot idle
  // histograms unconditionally (DurationStats::percentile matches). With a
  // single sample (or all samples in one bucket) the min/max clamp makes
  // every quantile the exact observed value. Throws std::invalid_argument
  // outside [0, 1].
  double quantile(double q) const;

  // Inclusive lower edge of bucket `index` (index < kBucketCount).
  static double bucket_lower_bound(std::size_t index);

  std::vector<std::uint64_t> bucket_counts() const;

  // Nearest-rank quantile over a standalone bucket-count array laid out
  // like this histogram's buckets (geometric bucket midpoints, no min/max
  // clamp — the caller has no exact extremes). The total is the SUM of the
  // array, not an external count, so a windowed delta whose count counter
  // lags its bucket increments stays self-consistent. Returns 0.0 for an
  // all-zero array; throws std::invalid_argument outside [0, 1] or on a
  // wrong-sized array. This is what the exporter uses to turn
  // bucket-count diffs between two snapshots into interval percentiles.
  static double quantile_from_buckets(const std::vector<std::uint64_t>& buckets,
                                      double q);

  void reset() noexcept;

 private:
  static std::size_t bucket_index(double value) noexcept;

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Encoded as +/-inf when empty; CAS loops keep them exact under races.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct HistogramStats {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Raw per-bucket counts (Histogram::kBucketCount entries) so consumers
  // that need more than the precomputed percentiles — the exporter's
  // windowed bucket diffs, Prometheus exposition — work from one snapshot.
  // Not serialized by write_json (manifests keep their compact schema).
  std::vector<std::uint64_t> buckets;
};

// Point-in-time copy of every registered metric, for manifests and tests.
// Iteration order is DETERMINISTIC: each section is sorted by metric name
// (the registry stores metrics in ordered maps), so exposition output,
// manifests, exporter JSONL, and golden tests are stable across runs,
// platforms, and registration order.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStats> histograms;

  // Writes {"counters":{...},"gauges":{...},"histograms":[...]}.
  void write_json(JsonWriter& writer) const;
  std::string json() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  // Get-or-create; the reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  // Zeroes every metric; registrations (and references) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Records elapsed seconds into a histogram at scope exit. Skips the clock
// reads entirely when metrics are disabled at construction.
class ScopedDurationTimer {
 public:
  explicit ScopedDurationTimer(Histogram& histogram) noexcept
      : histogram_(metrics_enabled() ? &histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedDurationTimer(const ScopedDurationTimer&) = delete;
  ScopedDurationTimer& operator=(const ScopedDurationTimer&) = delete;

  ~ScopedDurationTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cfgx::obs
