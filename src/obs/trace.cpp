#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace cfgx::obs {
namespace detail {

std::atomic<bool> g_tracing_enabled{false};

}  // namespace detail

namespace {

struct TraceEvent {
  std::string name;
  const char* category;
  std::uint64_t start_ns;
  std::uint64_t duration_ns;
  std::uint32_t tid;
  // 'X' complete span, or a flow phase 's'/'t'/'f' (then flow_id is set
  // and duration_ns is 0).
  char phase = 'X';
  std::uint64_t flow_id = 0;
};

// One buffer per thread, owned jointly by the thread (thread_local) and the
// global registry (so events survive worker-thread exit until flushed).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex registry_mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> epoch_ns{0};
};

TraceState& state() {
  static TraceState* instance = new TraceState();  // never destroyed: worker
  return *instance;  // threads may outlive static teardown order
}

std::atomic<std::uint32_t> g_next_thread_id{0};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadBuffer& buffer_for_this_thread() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard lock(s.registry_mutex);
    s.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void append_event(TraceEvent event) {
  ThreadBuffer& buffer = buffer_for_this_thread();
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> collect_events() {
  TraceState& s = state();
  std::vector<TraceEvent> all;
  std::lock_guard registry_lock(s.registry_mutex);
  for (const auto& buffer : s.buffers) {
    std::lock_guard lock(buffer->mutex);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.duration_ns > b.duration_ns;
            });
  return all;
}

}  // namespace

std::uint32_t thread_id() noexcept {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void start_tracing() {
  clear_trace_events();
  state().epoch_ns.store(now_ns(), std::memory_order_relaxed);
  detail::g_tracing_enabled.store(true, std::memory_order_release);
}

void stop_tracing() {
  detail::g_tracing_enabled.store(false, std::memory_order_release);
}

void clear_trace_events() {
  TraceState& s = state();
  std::lock_guard registry_lock(s.registry_mutex);
  for (const auto& buffer : s.buffers) {
    std::lock_guard lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::size_t total = 0;
  std::lock_guard registry_lock(s.registry_mutex);
  for (const auto& buffer : s.buffers) {
    std::lock_guard lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::string trace_json() {
  const std::vector<TraceEvent> events = collect_events();
  const std::uint64_t epoch = state().epoch_ns.load(std::memory_order_relaxed);

  JsonWriter writer;
  writer.begin_object();
  writer.field("displayTimeUnit", "ms");
  writer.key("traceEvents").begin_array();
  // Process metadata so Perfetto labels the single-process timeline.
  writer.begin_object()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", std::int64_t{1})
      .field("tid", std::int64_t{0})
      .key("args")
      .begin_object()
      .field("name", "cfgx")
      .end_object()
      .end_object();
  for (const TraceEvent& event : events) {
    const char ph[2] = {event.phase, '\0'};
    writer.begin_object()
        .field("name", event.name)
        .field("cat", event.category)
        .field("ph", ph)
        .field("pid", std::int64_t{1})
        .field("tid", static_cast<std::int64_t>(event.tid))
        .field("ts", event.start_ns >= epoch
                         ? static_cast<double>(event.start_ns - epoch) / 1000.0
                         : 0.0);
    if (event.phase == 'X') {
      writer.field("dur", static_cast<double>(event.duration_ns) / 1000.0);
    } else {
      // Flow ids render as strings; Chrome matches them textually.
      writer.field("id", std::to_string(event.flow_id));
      if (event.phase == 'f') writer.field("bp", "e");
    }
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return writer.str();
}

bool write_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << trace_json();
  return static_cast<bool>(out);
}

void trace_flow(std::uint64_t flow_id, FlowPhase phase, const char* name,
                const char* category) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = now_ns();
  event.duration_ns = 0;
  event.tid = thread_id();
  event.phase = phase == FlowPhase::Start ? 's'
                : phase == FlowPhase::Step ? 't'
                                           : 'f';
  event.flow_id = flow_id;
  append_event(std::move(event));
}

TraceSpan::TraceSpan(const char* name, const char* category) noexcept {
  if (!tracing_enabled()) return;
  literal_name_ = name;
  category_ = category;
  start_ns_ = now_ns();
  active_ = true;
}

TraceSpan::TraceSpan(const std::string& name, const char* category) {
  if (!tracing_enabled()) return;
  name_ = name;
  category_ = category;
  start_ns_ = now_ns();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  // Spans that straddle stop_tracing() are dropped: every flushed event
  // lies entirely inside one [start, stop) collection window.
  if (!active_ || !tracing_enabled()) return;
  TraceEvent event;
  event.name = literal_name_ != nullptr ? std::string(literal_name_) : name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.duration_ns = now_ns() - start_ns_;
  event.tid = thread_id();
  append_event(std::move(event));
}

}  // namespace cfgx::obs
