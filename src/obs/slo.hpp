// Rolling-window SLO tracking with multi-window burn rates.
//
// Two objectives over the serving request stream:
//   * availability — at least `availability_objective` of requests finish
//     Ok (a queue rejection, deadline miss, or explainer error is "bad");
//   * latency — at least `latency_target_ratio` of requests finish within
//     `latency_objective_seconds`.
//
// For each objective the tracker keeps per-second aggregates in a ring
// covering the LONG window and reports the burn rate over a short and a
// long window (the standard 5m/1h pairing): burn = observed bad fraction /
// error budget, where the budget is (1 - objective). A burn of 1.0 means
// the error budget is being spent exactly as fast as it accrues; 14.4 on
// a 99.9% objective means the monthly budget would be gone in ~2 days.
// An objective ALERTS when BOTH windows exceed the threshold — the short
// window proves the problem is current, the long window proves it is
// sustained — and the crossing (in either direction) is logged once, not
// per request.
//
// Time is injected (seconds on an arbitrary monotone axis) so tests drive
// hours of traffic in microseconds; record() defaults to steady-clock now.
// All methods are thread-safe behind one mutex — the tracker is fed once
// per finished request and read by /statusz scrapes, both far off the
// kernel hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace cfgx::obs {

class JsonWriter;

struct SloConfig {
  double availability_objective = 0.999;
  double latency_objective_seconds = 0.050;
  double latency_target_ratio = 0.99;
  std::chrono::seconds short_window{300};    // 5m
  std::chrono::seconds long_window{3600};    // 1h
  // Page-worthy fast burn per the SRE-workbook pairing: at 14.4x a 30-day
  // budget is exhausted in 2 days.
  double burn_alert_threshold = 14.4;
  // Called once per threshold crossing (in either direction) with a
  // human-readable message. Defaults to stderr; obs sits below util in
  // the library order, so callers that want the real logger inject it
  // here (the serve engine routes this to CFGX_LOG(Warn)).
  std::function<void(const std::string&)> alert_sink;
};

struct BurnRate {
  std::uint64_t total = 0;  // requests in the window
  std::uint64_t bad = 0;    // objective violations in the window
  double burn = 0.0;        // bad fraction / error budget; 0 when empty
};

struct SloObjectiveStatus {
  BurnRate short_window;
  BurnRate long_window;
  bool alerting = false;
};

struct SloStatus {
  SloObjectiveStatus availability;
  SloObjectiveStatus latency;

  // {"availability":{"burn_5m":...,...},"latency":{...}}
  void write_json(JsonWriter& writer) const;
  std::string json() const;
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config = {});

  // One finished request: whether it met the availability objective, and
  // its latency in seconds. `now_seconds` < a previous call's value is
  // clamped forward (the tracker never rewinds).
  void record(bool ok, double latency_seconds);
  void record(bool ok, double latency_seconds, double now_seconds);

  SloStatus status() const;
  SloStatus status(double now_seconds) const;

  const SloConfig& config() const noexcept { return config_; }

 private:
  struct Cell {
    std::int64_t second = -1;  // absolute second this cell holds, -1 empty
    std::uint64_t total = 0;
    std::uint64_t unavailable = 0;
    std::uint64_t slow = 0;
  };

  double steady_now_seconds() const;
  BurnRate burn_locked(std::int64_t now_second, std::int64_t window_seconds,
                       bool latency_objective) const;
  void maybe_log_transitions(const SloStatus& status);

  SloConfig config_;
  mutable std::mutex mutex_;
  std::vector<Cell> ring_;  // long_window cells, indexed second % size
  std::int64_t latest_second_ = 0;
  bool availability_alerting_ = false;
  bool latency_alerting_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace cfgx::obs
