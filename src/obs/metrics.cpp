#include "obs/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace cfgx::obs {
namespace detail {

namespace {

bool metrics_enabled_from_env() {
  const char* env = std::getenv("CFGX_METRICS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

}  // namespace

std::atomic<bool> g_metrics_enabled{metrics_enabled_from_env()};

}  // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t Histogram::bucket_index(double value) noexcept {
  if (!(value > kFloor)) return 0;  // includes NaN and everything <= 1ns
  int exponent = 0;
  // value/kFloor = mantissa * 2^exponent with mantissa in [0.5, 1), so the
  // octave is exponent-1 and 2*mantissa in [1, 2) selects the linear
  // sub-bucket - no log() on the hot path.
  const double mantissa = std::frexp(value / kFloor, &exponent);
  const auto octave = static_cast<std::size_t>(exponent - 1);
  if (octave >= kOctaves) return kBucketCount - 1;
  const auto sub = static_cast<std::size_t>(
      (mantissa * 2.0 - 1.0) * static_cast<double>(kSubBucketsPerOctave));
  return octave * kSubBucketsPerOctave +
         (sub < kSubBucketsPerOctave ? sub : kSubBucketsPerOctave - 1);
}

double Histogram::bucket_lower_bound(std::size_t index) {
  if (index >= kBucketCount) {
    throw std::invalid_argument("Histogram::bucket_lower_bound: bad index");
  }
  const std::size_t octave = index / kSubBucketsPerOctave;
  const std::size_t sub = index % kSubBucketsPerOctave;
  return kFloor * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub) /
                    static_cast<double>(kSubBucketsPerOctave));
}

void Histogram::record(double value) noexcept {
  if (!metrics_enabled()) return;
  if (std::isnan(value)) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0.0 : v;
}

double Histogram::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Histogram::quantile: q outside [0, 1]");
  }
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  // The extremes are tracked exactly; don't blur them through a bucket.
  if (q == 0.0) return min();
  if (q == 1.0) return max();
  // Rank of the requested sample (1-based, nearest-rank definition).
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Geometric bucket midpoint, clamped to the observed range so
      // single-bucket histograms report exact values.
      const double lo = bucket_lower_bound(i);
      const double hi = i + 1 < kBucketCount ? bucket_lower_bound(i + 1)
                                             : lo * 2.0;
      const double mid = std::sqrt(lo * hi);
      return std::min(std::max(mid, min()), max());
    }
  }
  return max();
}

double Histogram::quantile_from_buckets(
    const std::vector<std::uint64_t>& buckets, double q) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument(
        "Histogram::quantile_from_buckets: q outside [0, 1]");
  }
  if (buckets.size() != kBucketCount) {
    throw std::invalid_argument(
        "Histogram::quantile_from_buckets: wrong bucket count");
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      const double lo = bucket_lower_bound(i);
      const double hi =
          i + 1 < kBucketCount ? bucket_lower_bound(i + 1) : lo * 2.0;
      return std::sqrt(lo * hi);
    }
  }
  return bucket_lower_bound(kBucketCount - 1);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void MetricsSnapshot::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.key("counters").begin_object();
  for (const auto& [name, value] : counters) writer.field(name, value);
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) writer.field(name, value);
  writer.end_object();
  writer.key("histograms").begin_array();
  for (const HistogramStats& h : histograms) {
    writer.begin_object()
        .field("name", h.name)
        .field("count", h.count)
        .field("sum", h.sum)
        .field("mean", h.mean)
        .field("min", h.min)
        .field("max", h.max)
        .field("p50", h.p50)
        .field("p95", h.p95)
        .field("p99", h.p99)
        .end_object();
  }
  writer.end_array();
  writer.end_object();
}

std::string MetricsSnapshot::json() const {
  JsonWriter writer;
  write_json(writer);
  return writer.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramStats stats;
    stats.name = name;
    stats.count = histogram->count();
    stats.sum = histogram->sum();
    stats.mean = histogram->mean();
    stats.min = histogram->min();
    stats.max = histogram->max();
    stats.p50 = histogram->quantile(0.50);
    stats.p95 = histogram->quantile(0.95);
    stats.p99 = histogram->quantile(0.99);
    stats.buckets = histogram->bucket_counts();
    snap.histograms.push_back(std::move(stats));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace cfgx::obs
