// RAII trace spans flushed as a Chrome trace_event JSON file.
//
// A TraceSpan records one complete ("ph":"X") event - name, category, start
// timestamp, duration, thread id - into a thread-local buffer; trace_json()
// / write_trace_file() merge every thread's buffer into a single JSON
// document that chrome://tracing and Perfetto load directly, so a whole
// bench run (corpus generation, training epochs, per-explainer phases, pool
// tasks across workers) renders as one timeline.
//
// Overhead contract: when tracing is disabled (the default) constructing a
// span from a string literal is one relaxed atomic load + branch - no clock
// read, no allocation - so spans may stay compiled into the hot paths.
// Collection is enabled explicitly (start_tracing()), typically from the
// bench harness's --trace flag or the CFGX_TRACE environment variable.
//
// Spans nest lexically per thread; the Chrome "X" event model recovers the
// parent-child relationship from interval containment on the same tid.
//
// Flow events (trace_flow) stitch spans on DIFFERENT threads into one
// logical timeline: a request that hops submit-thread -> dispatcher ->
// pool worker emits Start/Step/End flow events with the request id as the
// flow id, and chrome://tracing draws arrows between the enclosing spans.
// A flow event binds to the span whose interval contains its timestamp on
// the same tid, so emit it INSIDE the span it should attach to.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cfgx::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

// Stable dense id for the calling thread (0, 1, 2, ... in first-touch
// order). Used as the trace "tid" and by the logger's [Tnn] tag so
// interleaved pool output is attributable.
std::uint32_t thread_id() noexcept;

inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

// Discards previously collected events and starts collecting.
void start_tracing();

// Stops collecting; buffered events remain available for trace_json().
void stop_tracing();

void clear_trace_events();

std::size_t trace_event_count();

// The merged Chrome trace document:
//   {"displayTimeUnit":"ms","traceEvents":[...]}
// Timestamps are microseconds since start_tracing().
std::string trace_json();

// Writes trace_json() to `path`; false on I/O failure.
bool write_trace_file(const std::string& path);

// Chrome flow-event phases: "s" (start), "t" (step), "f" (end; emitted
// with bp:"e" so the arrow terminates at the enclosing slice).
enum class FlowPhase : std::uint8_t { Start, Step, End };

// Records one flow event for `flow_id` at the current time on the calling
// thread. Same overhead contract as TraceSpan: a relaxed load + branch
// when tracing is disabled. Events with the same flow id form one arrow
// chain across threads; use a process-unique id (e.g. the request id).
void trace_flow(std::uint64_t flow_id, FlowPhase phase, const char* name,
                const char* category = "cfgx");

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "cfgx") noexcept;
  // For names composed at runtime ("explain.CFGExplainer"); the string is
  // only copied when tracing is enabled.
  TraceSpan(const std::string& name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* literal_name_ = nullptr;  // set instead of name_ for literals
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace cfgx::obs
