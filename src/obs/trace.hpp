// RAII trace spans flushed as a Chrome trace_event JSON file.
//
// A TraceSpan records one complete ("ph":"X") event - name, category, start
// timestamp, duration, thread id - into a thread-local buffer; trace_json()
// / write_trace_file() merge every thread's buffer into a single JSON
// document that chrome://tracing and Perfetto load directly, so a whole
// bench run (corpus generation, training epochs, per-explainer phases, pool
// tasks across workers) renders as one timeline.
//
// Overhead contract: when tracing is disabled (the default) constructing a
// span from a string literal is one relaxed atomic load + branch - no clock
// read, no allocation - so spans may stay compiled into the hot paths.
// Collection is enabled explicitly (start_tracing()), typically from the
// bench harness's --trace flag or the CFGX_TRACE environment variable.
//
// Spans nest lexically per thread; the Chrome "X" event model recovers the
// parent-child relationship from interval containment on the same tid.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cfgx::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

// Stable dense id for the calling thread (0, 1, 2, ... in first-touch
// order). Used as the trace "tid" and by the logger's [Tnn] tag so
// interleaved pool output is attributable.
std::uint32_t thread_id() noexcept;

inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

// Discards previously collected events and starts collecting.
void start_tracing();

// Stops collecting; buffered events remain available for trace_json().
void stop_tracing();

void clear_trace_events();

std::size_t trace_event_count();

// The merged Chrome trace document:
//   {"displayTimeUnit":"ms","traceEvents":[...]}
// Timestamps are microseconds since start_tracing().
std::string trace_json();

// Writes trace_json() to `path`; false on I/O failure.
bool write_trace_file(const std::string& path);

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "cfgx") noexcept;
  // For names composed at runtime ("explain.CFGExplainer"); the string is
  // only copied when tracing is enabled.
  TraceSpan(const std::string& name, const char* category);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* literal_name_ = nullptr;  // set instead of name_ for literals
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace cfgx::obs
