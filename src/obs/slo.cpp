#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace cfgx::obs {
namespace {

void write_objective(JsonWriter& writer, const SloObjectiveStatus& objective) {
  writer.begin_object();
  writer.field("burn_short", objective.short_window.burn);
  writer.field("burn_long", objective.long_window.burn);
  writer.field("total_short", objective.short_window.total);
  writer.field("bad_short", objective.short_window.bad);
  writer.field("total_long", objective.long_window.total);
  writer.field("bad_long", objective.long_window.bad);
  writer.field("alerting", objective.alerting);
  writer.end_object();
}

}  // namespace

void SloStatus::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.key("availability");
  write_objective(writer, availability);
  writer.key("latency");
  write_objective(writer, latency);
  writer.end_object();
}

std::string SloStatus::json() const {
  JsonWriter writer;
  write_json(writer);
  return writer.str();
}

SloTracker::SloTracker(SloConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  if (config_.short_window.count() <= 0 ||
      config_.long_window < config_.short_window) {
    throw std::invalid_argument(
        "SloTracker: need 0 < short_window <= long_window");
  }
  if (!(config_.availability_objective > 0.0 &&
        config_.availability_objective < 1.0) ||
      !(config_.latency_target_ratio > 0.0 &&
        config_.latency_target_ratio < 1.0)) {
    throw std::invalid_argument("SloTracker: objectives must be in (0, 1)");
  }
  ring_.resize(static_cast<std::size_t>(config_.long_window.count()));
}

double SloTracker::steady_now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SloTracker::record(bool ok, double latency_seconds) {
  record(ok, latency_seconds, steady_now_seconds());
}

void SloTracker::record(bool ok, double latency_seconds, double now_seconds) {
  SloStatus crossing_check;
  bool check_transitions = false;
  {
    std::lock_guard lock(mutex_);
    const std::int64_t second =
        std::max(latest_second_, static_cast<std::int64_t>(
                                     std::floor(std::max(0.0, now_seconds))));
    latest_second_ = second;
    Cell& cell = ring_[static_cast<std::size_t>(
        second % static_cast<std::int64_t>(ring_.size()))];
    if (cell.second != second) {
      cell = Cell{};
      cell.second = second;
    }
    ++cell.total;
    if (!ok) ++cell.unavailable;
    if (latency_seconds > config_.latency_objective_seconds) ++cell.slow;
    // Evaluate alert transitions on the bad events only — a healthy
    // request can end an alert at the next status() pull instead.
    if (!ok || latency_seconds > config_.latency_objective_seconds ||
        availability_alerting_ || latency_alerting_) {
      crossing_check.availability.short_window =
          burn_locked(second, config_.short_window.count(), false);
      crossing_check.availability.long_window =
          burn_locked(second, config_.long_window.count(), false);
      crossing_check.latency.short_window =
          burn_locked(second, config_.short_window.count(), true);
      crossing_check.latency.long_window =
          burn_locked(second, config_.long_window.count(), true);
      check_transitions = true;
    }
  }
  if (check_transitions) maybe_log_transitions(crossing_check);
}

BurnRate SloTracker::burn_locked(std::int64_t now_second,
                                 std::int64_t window_seconds,
                                 bool latency_objective) const {
  BurnRate rate;
  const std::int64_t size = static_cast<std::int64_t>(ring_.size());
  const std::int64_t span = std::min(window_seconds, size);
  for (std::int64_t s = now_second - span + 1; s <= now_second; ++s) {
    if (s < 0) continue;
    const Cell& cell = ring_[static_cast<std::size_t>(s % size)];
    if (cell.second != s) continue;  // stale or never filled
    rate.total += cell.total;
    rate.bad += latency_objective ? cell.slow : cell.unavailable;
  }
  if (rate.total == 0) return rate;
  const double objective = latency_objective ? config_.latency_target_ratio
                                             : config_.availability_objective;
  const double budget = 1.0 - objective;
  const double bad_fraction =
      static_cast<double>(rate.bad) / static_cast<double>(rate.total);
  rate.burn = bad_fraction / budget;
  return rate;
}

SloStatus SloTracker::status() const {
  return status(steady_now_seconds());
}

SloStatus SloTracker::status(double now_seconds) const {
  SloStatus out;
  std::lock_guard lock(mutex_);
  const std::int64_t second =
      std::max(latest_second_, static_cast<std::int64_t>(
                                   std::floor(std::max(0.0, now_seconds))));
  out.availability.short_window =
      burn_locked(second, config_.short_window.count(), false);
  out.availability.long_window =
      burn_locked(second, config_.long_window.count(), false);
  out.latency.short_window =
      burn_locked(second, config_.short_window.count(), true);
  out.latency.long_window =
      burn_locked(second, config_.long_window.count(), true);
  out.availability.alerting =
      out.availability.short_window.burn >= config_.burn_alert_threshold &&
      out.availability.long_window.burn >= config_.burn_alert_threshold;
  out.latency.alerting =
      out.latency.short_window.burn >= config_.burn_alert_threshold &&
      out.latency.long_window.burn >= config_.burn_alert_threshold;
  return out;
}

void SloTracker::maybe_log_transitions(const SloStatus& status) {
  const bool availability_now =
      status.availability.short_window.burn >= config_.burn_alert_threshold &&
      status.availability.long_window.burn >= config_.burn_alert_threshold;
  const bool latency_now =
      status.latency.short_window.burn >= config_.burn_alert_threshold &&
      status.latency.long_window.burn >= config_.burn_alert_threshold;
  bool log_availability = false;
  bool log_latency = false;
  bool availability_state = false;
  bool latency_state = false;
  {
    std::lock_guard lock(mutex_);
    if (availability_now != availability_alerting_) {
      availability_alerting_ = availability_now;
      log_availability = true;
      availability_state = availability_now;
    }
    if (latency_now != latency_alerting_) {
      latency_alerting_ = latency_now;
      log_latency = true;
      latency_state = latency_now;
    }
  }
  const auto emit = [&](const char* objective, bool now_alerting,
                        const SloObjectiveStatus& o) {
    std::ostringstream message;
    message << "slo " << objective << " burn "
            << (now_alerting ? "CROSSED" : "recovered")
            << ": short=" << o.short_window.burn
            << " long=" << o.long_window.burn
            << " threshold=" << config_.burn_alert_threshold;
    if (config_.alert_sink) {
      config_.alert_sink(message.str());
    } else {
      std::cerr << "[slo] " << message.str() << "\n";
    }
  };
  if (log_availability) {
    emit("availability", availability_state, status.availability);
  }
  if (log_latency) emit("latency", latency_state, status.latency);
}

}  // namespace cfgx::obs
