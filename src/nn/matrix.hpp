// Dense row-major matrix of doubles: the numeric workhorse for every model
// in this repository (GCN layers, MLPs, explainer masks).
//
// The type is a regular value type (copyable, movable, equality-comparable)
// with bounds-checked element access in debug builds via at().
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace cfgx {

// Matrix heap blocks are 32-byte aligned (one AVX2 vector): the SIMD
// kernels use unaligned loads and stay correct either way, but an aligned
// base keeps vector loads from straddling cache lines on the common
// power-of-two column counts. Note the guarantee covers data() only — row
// starts are unaligned whenever cols % 4 != 0.
inline constexpr std::size_t kMatrixAlignment = 32;

// Minimal C++17 allocator carrying the over-aligned new/delete forms.
template <typename T, std::size_t Alignment = kMatrixAlignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^n");
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

class Matrix {
 public:
  Matrix() = default;

  // rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }
  static Matrix identity(std::size_t n);
  static Matrix row_vector(std::span<const double> values);
  static Matrix column_vector(std::span<const double> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  // Heap capacity in doubles; reshape() within it never reallocates.
  std::size_t capacity() const noexcept { return data_.capacity(); }

  // Resizes to rows x cols and zero-fills. Reuses the existing heap block
  // whenever its capacity suffices — the Workspace recycling contract and
  // the reason the `_into` kernels are allocation-free in steady state.
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  // Bounds-checked access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(double value) { data_.assign(data_.size(), value); }
  void set_zero() { fill(0.0); }

  // --- elementwise (in place); throw on shape mismatch ---
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;
  Matrix& hadamard_inplace(const Matrix& other);

  // Applies fn to every element. The template overload is the hot path
  // (inlined, no type erasure — ReLU/Sigmoid/mask application); the
  // std::function overload is kept for ABI/test compatibility and wins
  // overload resolution only when a std::function is passed explicitly.
  template <typename Fn>
    requires std::is_invocable_r_v<double, Fn, double>
  Matrix& apply(Fn&& fn) {
    for (double& v : data_) v = fn(v);
    return *this;
  }
  Matrix& apply(const std::function<double(double)>& fn);

  // --- elementwise (value-returning) ---
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double scalar) noexcept { return lhs *= scalar; }
  friend Matrix operator*(double scalar, Matrix rhs) noexcept { return rhs *= scalar; }
  Matrix hadamard(const Matrix& other) const {
    Matrix out = *this;
    return out.hadamard_inplace(other);
  }

  bool operator==(const Matrix& other) const = default;

  // --- reductions ---
  double sum() const noexcept;
  double max_abs() const noexcept;
  double frobenius_norm() const noexcept;
  Matrix row_sums() const;   // [rows, 1]
  Matrix col_sums() const;   // [1, cols]

  Matrix transpose() const;

  // Human-readable rendering (tests, debugging).
  std::string to_string(int decimals = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double, AlignedAllocator<double>> data_;
};

// --- destination-passing kernels (the allocation-free hot path) ---
//
// Each `_into` variant reshapes `out` to the result shape (zero-filling,
// capacity-reusing — see Matrix::reshape) and overwrites it. `out` must not
// alias `a` or `b`. The value-returning functions below are thin wrappers
// and therefore bit-identical; both run the ISA-dispatched microkernel
// (simd.hpp), whose per-element accumulation order over k is the same
// strictly increasing order as the naive i-k-j reference. Under the scalar
// ISA results match the reference to the last bit (verified by the `prop`
// differential suites); under AVX2 each step is FMA-contracted, with the
// per-element difference bounded as documented in simd.hpp and pinned by
// the `simd` differential suite.

// C = A * B. Throws std::invalid_argument on inner-dimension mismatch.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);
Matrix matmul(const Matrix& a, const Matrix& b);
// Row-masked C = A * B: computes only rows i with row_live[i] != 0.0 (the
// reshape leaves masked rows at exact zero); nullptr degrades to
// matmul_into. Live rows are bit-identical to matmul_into — Algorithm 2
// uses this to skip rows of pruned nodes, whose values only ever reach
// surviving rows through exact-zero adjacency coefficients.
void matmul_live_rows_into(const Matrix& a, const Matrix& b, Matrix& out,
                           const double* row_live);
// C = A^T * B without materializing A^T.
void matmul_transpose_a_into(const Matrix& a, const Matrix& b, Matrix& out);
Matrix matmul_transpose_a(const Matrix& a, const Matrix& b);
// C = A * B^T without materializing B^T.
void matmul_transpose_b_into(const Matrix& a, const Matrix& b, Matrix& out);
Matrix matmul_transpose_b(const Matrix& a, const Matrix& b);

namespace detail {

// Cache-blocked (tiled) dense microkernel computing rows [row_begin,
// row_end) of out += A * B with a 2-row register tile and a 4-wide unrolled
// innermost loop. Shared by the serial matmul_into and the row-partitioned
// matmul_parallel. `out` rows must be zeroed on entry.
void matmul_block_rows(const Matrix& a, const Matrix& b, Matrix& out,
                       std::size_t row_begin, std::size_t row_end);

// The naive i-k-j reference loop (the pre-blocking kernel), kept as the
// IEEE-faithful oracle for the differential tests and the blocked-vs-naive
// micro benches. Bit-identical to matmul_block_rows by construction.
void matmul_reference_rows(const Matrix& a, const Matrix& b, Matrix& out,
                           std::size_t row_begin, std::size_t row_end);

// ISA-dispatched row kernel: the AVX2+FMA kernel when simd::dispatch()
// selects it, else matmul_block_rows. Under AVX2 each element differs from
// the scalar result only by FMA contraction (bound documented in
// simd.hpp); within one ISA it is deterministic and shared by matmul_into,
// matmul_live_rows_into and matmul_parallel.
void matmul_rows_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                          std::size_t row_begin, std::size_t row_end);

}  // namespace detail

// True when both shapes match and all |a-b| <= tol.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace cfgx
