// Dense row-major matrix of doubles: the numeric workhorse for every model
// in this repository (GCN layers, MLPs, explainer masks).
//
// The type is a regular value type (copyable, movable, equality-comparable)
// with bounds-checked element access in debug builds via at().
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cfgx {

class Matrix {
 public:
  Matrix() = default;

  // rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }
  static Matrix identity(std::size_t n);
  static Matrix row_vector(std::span<const double> values);
  static Matrix column_vector(std::span<const double> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  // Bounds-checked access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(double value) { data_.assign(data_.size(), value); }
  void set_zero() { fill(0.0); }

  // --- elementwise (in place); throw on shape mismatch ---
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;
  Matrix& hadamard_inplace(const Matrix& other);

  // Applies fn to every element.
  Matrix& apply(const std::function<double(double)>& fn);

  // --- elementwise (value-returning) ---
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double scalar) noexcept { return lhs *= scalar; }
  friend Matrix operator*(double scalar, Matrix rhs) noexcept { return rhs *= scalar; }
  Matrix hadamard(const Matrix& other) const {
    Matrix out = *this;
    return out.hadamard_inplace(other);
  }

  bool operator==(const Matrix& other) const = default;

  // --- reductions ---
  double sum() const noexcept;
  double max_abs() const noexcept;
  double frobenius_norm() const noexcept;
  Matrix row_sums() const;   // [rows, 1]
  Matrix col_sums() const;   // [1, cols]

  Matrix transpose() const;

  // Human-readable rendering (tests, debugging).
  std::string to_string(int decimals = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// C = A * B. Throws std::invalid_argument on inner-dimension mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);
// C = A^T * B without materializing A^T.
Matrix matmul_transpose_a(const Matrix& a, const Matrix& b);
// C = A * B^T without materializing B^T.
Matrix matmul_transpose_b(const Matrix& a, const Matrix& b);

// True when both shapes match and all |a-b| <= tol.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace cfgx
