// Loss functions.
//
// The paper's CFGExplainer uses a negative log-likelihood loss over softmax
// probabilities with a small positive bias inside the log (Section IV-A:
// log(Y[C] + 1e-20)) to avoid log(0). nll_from_probabilities reproduces
// exactly that. The GNN classifier itself is trained with the standard
// fused softmax + cross-entropy for numerical stability.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace cfgx {

// The paper's log bias (Section IV-A).
inline constexpr double kLogBias = 1e-20;

// Floor applied to the target softmax probability in softmax_cross_entropy,
// in BOTH the loss value and the gradient (they must describe the same
// function). Keeps -log(p) finite when extreme logits underflow p to 0.
inline constexpr double kSoftmaxProbFloor = 1e-300;

struct LossResult {
  double value = 0.0;  // mean loss over the batch
  Matrix grad;         // dLoss/dInput, same shape as the loss input
};

// NLL over probability rows: loss = -(1/m) sum_i log(P[i, target_i] + bias).
// `probabilities` is [batch, classes] of softmax outputs; grad is w.r.t.
// the probabilities (to be chained through SoftmaxRows::backward).
LossResult nll_from_probabilities(const Matrix& probabilities,
                                  const std::vector<std::size_t>& targets,
                                  double bias = kLogBias);

// Fused softmax + cross-entropy over logits. Returns the mean loss and the
// gradient w.r.t. the *logits* (softmax(logits) - onehot)/batch.
LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<std::size_t>& targets);

// Row-wise softmax probabilities of logits (no caching; convenience).
Matrix softmax_rows(const Matrix& logits);

// argmax of each row.
std::vector<std::size_t> argmax_rows(const Matrix& scores);

}  // namespace cfgx
