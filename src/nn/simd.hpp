// Runtime-dispatched SIMD microkernels (DESIGN.md decision 14).
//
// The dense blocked matmul and the CSR spmm row loop each exist in two
// implementations:
//
//   * scalar — the cache-blocked kernels of matrix.cpp / sparse.cpp,
//     compiled for the baseline ISA. These remain the oracles: the scalar
//     blocked matmul is bit-identical to detail::matmul_reference_rows (the
//     seed naive loop), and every scalar fast path is proven bit-identical
//     to the seed reference by the `prop` differential suites.
//   * avx2 — hand-written AVX2+FMA kernels (kernels_avx2.cpp, compiled with
//     -mavx2 -mfma and only ever called after a runtime CPUID check).
//
// Dispatch is decided ONCE per process (first dispatch() call): the CPUID
// probe selects the widest supported ISA, overridable by the CFGX_SIMD
// environment variable ("avx2" | "scalar"; anything else throws) and by
// set_isa() (the bench `--simd` flag and the differential tests). The
// selected ISA is exported as the `kernels.isa` gauge so run manifests
// attribute every measurement to the code path that produced it.
//
// Equivalence contract (what the simd prop suite pins):
//   * Within one ISA, every kernel variant (`_into`, live-rows, parallel,
//     batched) is bit-identical to the others — same per-element IEEE
//     operation sequence, so determinism and all existing cross-variant
//     oracles hold unchanged under either ISA.
//   * Across ISAs, the AVX2 kernels preserve the scalar accumulation ORDER
//     (ascending k per output element) but contract each multiply-add into
//     one fused rounding. The difference is therefore bounded per element:
//     |avx2 - scalar| <= 2 * k * u * sum_k |a_ik * b_kj|, u = 2^-53
//     (each of the k steps replaces two roundings by one; no
//     reassociation). The simd_oracle suite checks this bound.
//   * The bf16 kernels (matrix16.hpp) accumulate in fp32 with correctly
//     rounded fmaf on both ISAs and are bit-identical across ISAs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cfgx {
namespace simd {

enum class Isa : std::uint8_t { Scalar = 0, Avx2 = 1 };

// Stable lowercase name ("scalar", "avx2") for manifests and metrics.
const char* isa_name(Isa isa) noexcept;

// Parses "scalar" / "avx2"; throws std::invalid_argument on anything else.
Isa parse_isa(const std::string& value);

// True when this build carries the AVX2 kernels AND the running CPU
// supports AVX2+FMA (one-time CPUID probe).
bool avx2_supported() noexcept;

// The active ISA. First call resolves it: CFGX_SIMD when set (unknown
// values throw std::runtime_error; "avx2" on an unsupported host throws
// too), otherwise the widest supported ISA. Subsequent calls are a relaxed
// atomic load.
Isa dispatch();

// Overrides the active ISA (bench --simd flag, differential tests). Throws
// std::runtime_error when the requested ISA is not supported on this host.
void set_isa(Isa isa);

// Updates the `kernels.isa` gauge to the active ISA's enum value. Called
// on dispatch resolution and by set_isa(); exposed for tests.
void record_isa_metric();

// RAII override: resolves the current ISA, forces `isa`, restores on
// destruction. For tests pinning one side of the differential contract and
// for bench baseline sweeps. Not thread-safe — the override is process-wide.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : previous_(dispatch()) { set_isa(isa); }
  ~ScopedIsa() { set_isa(previous_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  Isa previous_;
};

}  // namespace simd

namespace detail {

// AVX2+FMA kernels (kernels_avx2.cpp, raw-pointer signatures so the
// AVX2-compiled TU instantiates no shared inline code). Callable only when
// simd::avx2_supported(); the dispatch wrappers in matrix.cpp / sparse.cpp
// / matrix16.cpp guarantee that. Contracts mirror the scalar kernels they
// replace: ascending-k accumulation per output element, `out` rows holding
// their accumulation seed (zero after reshape) on entry.
//
// out[i, 0..n) += A[i, 0..k) * B[0..k, 0..n) for i in [row_begin, row_end).
void matmul_rows_avx2(const double* a, std::size_t a_cols, const double* b,
                      std::size_t n_cols, double* out, std::size_t row_begin,
                      std::size_t row_end);
// CSR rows: out[i, j] += sum_p values[p] * B[col_idx[p], j].
void spmm_rows_avx2(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                    const double* values, const double* b, std::size_t n_cols,
                    double* out, std::size_t row_begin, std::size_t row_end);
// bf16 weights, fp32 accumulation: out[i, j] = (double) sum_k
// fmaf((float) a[i, k], widen(w[k, j]), acc). Bit-identical to the scalar
// bf16 kernel in matrix16.cpp (same correctly rounded fp32 fma sequence).
void matmul_bf16_rows_avx2(const double* a, std::size_t a_cols,
                           const std::uint16_t* w, std::size_t n_cols,
                           double* out, std::size_t row_begin,
                           std::size_t row_end);

}  // namespace detail
}  // namespace cfgx
