#include "nn/workspace.hpp"

#include <limits>

#include "obs/metrics.hpp"

namespace cfgx {

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

void Workspace::Lease::release() {
  if (workspace_ != nullptr) {
    workspace_->release_buffer(std::move(buffer_));
    workspace_ = nullptr;
  }
}

Workspace::Lease Workspace::acquire(std::size_t rows, std::size_t cols) {
  static obs::Counter& bytes_reused =
      obs::MetricsRegistry::global().counter("workspace.bytes_reused");
  static obs::Counter& bytes_allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  const std::size_t needed = rows * cols;
  // Best fit: the smallest pooled buffer that already holds `needed`
  // doubles, so a small scratch does not burn a big buffer's capacity.
  std::size_t best = pool_.size();
  std::size_t best_capacity = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const std::size_t capacity = pool_[i].capacity();
    if (capacity >= needed && capacity < best_capacity) {
      best = i;
      best_capacity = capacity;
    }
  }
  if (best < pool_.size()) {
    Matrix buffer = std::move(pool_[best]);
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best));
    buffer.reshape(rows, cols);  // capacity suffices: zero-fill, no alloc
    bytes_reused.add(needed * sizeof(double));
    return Lease(this, std::move(buffer));
  }
  bytes_allocated.add(needed * sizeof(double));
  return Lease(this, Matrix(rows, cols));
}

void Workspace::release_buffer(Matrix buffer) {
  // Keep even zero-capacity buffers out of the pool: they can never serve
  // a request and would only slow the scan down.
  if (buffer.capacity() == 0) return;
  pool_.push_back(std::move(buffer));
}

std::size_t Workspace::pooled_capacity() const noexcept {
  std::size_t total = 0;
  for (const Matrix& m : pool_) total += m.capacity();
  return total;
}

}  // namespace cfgx
