#include "nn/workspace.hpp"

#include <limits>

#include "obs/metrics.hpp"

namespace cfgx {
namespace {

// Cross-thread aggregate of parked pool bytes. Updated by deltas
// (Gauge::add is a relaxed fetch_add), so concurrent thread-local pools
// sum coherently.
obs::Gauge& retained_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("workspace.bytes_retained");
  return gauge;
}

double capacity_bytes(const Matrix& buffer) {
  return static_cast<double>(buffer.capacity() * sizeof(double));
}

}  // namespace

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

void Workspace::Lease::release() {
  if (workspace_ != nullptr) {
    workspace_->release_buffer(std::move(buffer_), stamp_);
    workspace_ = nullptr;
  }
}

Workspace::Lease Workspace::acquire(std::size_t rows, std::size_t cols) {
  static obs::Counter& bytes_reused =
      obs::MetricsRegistry::global().counter("workspace.bytes_reused");
  static obs::Counter& bytes_allocated =
      obs::MetricsRegistry::global().counter("workspace.bytes_allocated");

  ++acquisitions_;
  trim_stale();

  const std::size_t needed = rows * cols;
  // Best fit: the smallest pooled buffer that already holds `needed`
  // doubles, so a small scratch does not burn a big buffer's capacity.
  std::size_t best = pool_.size();
  std::size_t best_capacity = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const std::size_t capacity = pool_[i].buffer.capacity();
    if (capacity >= needed && capacity < best_capacity) {
      best = i;
      best_capacity = capacity;
    }
  }
  if (best < pool_.size()) {
    Matrix buffer = std::move(pool_[best].buffer);
    const std::uint64_t stamp = pool_[best].last_right_sized;
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best));
    retained_gauge().add(-capacity_bytes(buffer));
    buffer.reshape(rows, cols);  // capacity suffices: zero-fill, no alloc
    bytes_reused.add(needed * sizeof(double));
    return Lease(this, std::move(buffer), stamp);
  }
  bytes_allocated.add(needed * sizeof(double));
  // A fresh buffer starts right-sized by construction.
  return Lease(this, Matrix(rows, cols), acquisitions_);
}

void Workspace::release_buffer(Matrix buffer, std::uint64_t stamp) {
  // Keep even zero-capacity buffers out of the pool: they can never serve
  // a request and would only slow the scan down.
  if (buffer.capacity() == 0) return;
  // Right-sized use refreshes the age; a borrowed oversized use (final
  // contents under half the capacity) keeps the stale stamp so the buffer
  // still ages out. `_into` kernels may have reshaped the buffer, so judge
  // by its final size, not the acquire() request.
  if (buffer.size() * 2 >= buffer.capacity()) stamp = acquisitions_;
  retained_gauge().add(capacity_bytes(buffer));
  pool_.push_back(PooledBuffer{std::move(buffer), stamp});
}

void Workspace::trim_stale() {
  if (trim_after_ == 0) return;
  for (std::size_t i = 0; i < pool_.size();) {
    if (acquisitions_ - pool_[i].last_right_sized > trim_after_) {
      retained_gauge().add(-capacity_bytes(pool_[i].buffer));
      pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Workspace::clear() {
  for (const PooledBuffer& pooled : pool_) {
    retained_gauge().add(-capacity_bytes(pooled.buffer));
  }
  pool_.clear();
}

std::size_t Workspace::pooled_capacity() const noexcept {
  std::size_t total = 0;
  for (const PooledBuffer& pooled : pool_) total += pooled.buffer.capacity();
  return total;
}

}  // namespace cfgx
