// AVX2+FMA microkernels. This translation unit is the ONLY one compiled
// with -mavx2 -mfma; every entry point is reached strictly through the
// runtime dispatch in simd.cpp, so no AVX2 instruction executes on a host
// whose CPUID probe failed. Signatures are raw pointers on purpose: the TU
// must not instantiate inline code shared with baseline-ISA TUs (the
// linker could pick the AVX2-compiled copy and crash a non-AVX2 host).
//
// Numerical contract (DESIGN.md decision 14): every kernel accumulates
// each output element over k in the SAME strictly ascending order as its
// scalar counterpart. The only difference is FMA contraction — each
// `acc += a * b` becomes one correctly rounded fused step instead of two
// roundings — so |avx2 - scalar| is bounded by 2*k*u*sum|a*b| per element
// with no reassociation term, and results are identical across repeated
// runs and across the `_into` / live-rows / parallel / batched variants
// (they all funnel into these row kernels).
//
// Remainder columns (n % 4) use std::fma / std::fmaf so the contracted
// rounding matches the vector lanes exactly; remainder rows reuse the
// one-row tile.
#include "nn/simd.hpp"

#if defined(CFGX_HAVE_AVX2_BUILD) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>

namespace cfgx::detail {
namespace {

// out_row[j..j+4) = acc after folding a_row[k] * b[k][j..j+4) for all k in
// ascending order, seeded from the current out_row values. One register
// accumulator per output vector reproduces the scalar read-modify-write
// chain exactly: ((out0 + t0) + t1) + ... with each + t contracted to fma.
inline void matmul_one_row(const double* a_row, const double* b,
                           std::size_t n_cols, std::size_t k_total,
                           double* out_row) {
  std::size_t j = 0;
  for (; j + 8 <= n_cols; j += 8) {
    __m256d acc0 = _mm256_loadu_pd(out_row + j);
    __m256d acc1 = _mm256_loadu_pd(out_row + j + 4);
    const double* b_col = b + j;
    for (std::size_t k = 0; k < k_total; ++k, b_col += n_cols) {
      const __m256d aik = _mm256_set1_pd(a_row[k]);
      acc0 = _mm256_fmadd_pd(aik, _mm256_loadu_pd(b_col), acc0);
      acc1 = _mm256_fmadd_pd(aik, _mm256_loadu_pd(b_col + 4), acc1);
    }
    _mm256_storeu_pd(out_row + j, acc0);
    _mm256_storeu_pd(out_row + j + 4, acc1);
  }
  for (; j + 4 <= n_cols; j += 4) {
    __m256d acc = _mm256_loadu_pd(out_row + j);
    const double* b_col = b + j;
    for (std::size_t k = 0; k < k_total; ++k, b_col += n_cols) {
      acc = _mm256_fmadd_pd(_mm256_set1_pd(a_row[k]), _mm256_loadu_pd(b_col),
                            acc);
    }
    _mm256_storeu_pd(out_row + j, acc);
  }
  for (; j < n_cols; ++j) {
    double acc = out_row[j];
    const double* b_col = b + j;
    for (std::size_t k = 0; k < k_total; ++k, b_col += n_cols) {
      acc = std::fma(a_row[k], *b_col, acc);
    }
    out_row[j] = acc;
  }
}

// Two output rows share every B load (the same register-tiling idea as the
// scalar blocked kernel); per-element accumulation order is unchanged.
inline void matmul_two_rows(const double* a_row0, const double* a_row1,
                            const double* b, std::size_t n_cols,
                            std::size_t k_total, double* out_row0,
                            double* out_row1) {
  std::size_t j = 0;
  for (; j + 8 <= n_cols; j += 8) {
    __m256d acc00 = _mm256_loadu_pd(out_row0 + j);
    __m256d acc01 = _mm256_loadu_pd(out_row0 + j + 4);
    __m256d acc10 = _mm256_loadu_pd(out_row1 + j);
    __m256d acc11 = _mm256_loadu_pd(out_row1 + j + 4);
    const double* b_col = b + j;
    for (std::size_t k = 0; k < k_total; ++k, b_col += n_cols) {
      const __m256d b0 = _mm256_loadu_pd(b_col);
      const __m256d b1 = _mm256_loadu_pd(b_col + 4);
      const __m256d a0 = _mm256_set1_pd(a_row0[k]);
      const __m256d a1 = _mm256_set1_pd(a_row1[k]);
      acc00 = _mm256_fmadd_pd(a0, b0, acc00);
      acc01 = _mm256_fmadd_pd(a0, b1, acc01);
      acc10 = _mm256_fmadd_pd(a1, b0, acc10);
      acc11 = _mm256_fmadd_pd(a1, b1, acc11);
    }
    _mm256_storeu_pd(out_row0 + j, acc00);
    _mm256_storeu_pd(out_row0 + j + 4, acc01);
    _mm256_storeu_pd(out_row1 + j, acc10);
    _mm256_storeu_pd(out_row1 + j + 4, acc11);
  }
  for (; j + 4 <= n_cols; j += 4) {
    __m256d acc0 = _mm256_loadu_pd(out_row0 + j);
    __m256d acc1 = _mm256_loadu_pd(out_row1 + j);
    const double* b_col = b + j;
    for (std::size_t k = 0; k < k_total; ++k, b_col += n_cols) {
      const __m256d bv = _mm256_loadu_pd(b_col);
      acc0 = _mm256_fmadd_pd(_mm256_set1_pd(a_row0[k]), bv, acc0);
      acc1 = _mm256_fmadd_pd(_mm256_set1_pd(a_row1[k]), bv, acc1);
    }
    _mm256_storeu_pd(out_row0 + j, acc0);
    _mm256_storeu_pd(out_row1 + j, acc1);
  }
  for (; j < n_cols; ++j) {
    double acc0 = out_row0[j];
    double acc1 = out_row1[j];
    const double* b_col = b + j;
    for (std::size_t k = 0; k < k_total; ++k, b_col += n_cols) {
      acc0 = std::fma(a_row0[k], *b_col, acc0);
      acc1 = std::fma(a_row1[k], *b_col, acc1);
    }
    out_row0[j] = acc0;
    out_row1[j] = acc1;
  }
}

// Widens 8 bf16 payloads to an fp32 vector: bf16 is the top half of the
// IEEE binary32 bit pattern, so widening is a 16-bit left shift.
inline __m256 widen_bf16(const std::uint16_t* w) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  return _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
}

inline float widen_bf16_scalar(std::uint16_t w) {
  const std::uint32_t bits = static_cast<std::uint32_t>(w) << 16;
  float out;
  __builtin_memcpy(&out, &bits, sizeof out);
  return out;
}

}  // namespace

void matmul_rows_avx2(const double* a, std::size_t a_cols, const double* b,
                      std::size_t n_cols, double* out, std::size_t row_begin,
                      std::size_t row_end) {
  std::size_t i = row_begin;
  for (; i + 2 <= row_end; i += 2) {
    matmul_two_rows(a + i * a_cols, a + (i + 1) * a_cols, b, n_cols, a_cols,
                    out + i * n_cols, out + (i + 1) * n_cols);
  }
  if (i < row_end) {
    matmul_one_row(a + i * a_cols, b, n_cols, a_cols, out + i * n_cols);
  }
}

void spmm_rows_avx2(const std::size_t* row_ptr, const std::uint32_t* col_idx,
                    const double* values, const double* b, std::size_t n_cols,
                    double* out, std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double* out_row = out + i * n_cols;
    const std::size_t p_begin = row_ptr[i];
    const std::size_t p_end = row_ptr[i + 1];
    // A zero-nnz row contributes nothing: out already holds its seed.
    if (p_begin == p_end) continue;
    std::size_t j = 0;
    // 16-wide blocks (4 accumulators): one broadcast feeds 4 fmas per
    // nonzero, and the block loop runs n/16 times — at CFG density (~2
    // nnz/row) the loop + broadcast overhead, not the fmas, is the cost.
    for (; j + 16 <= n_cols; j += 16) {
      __m256d acc0 = _mm256_loadu_pd(out_row + j);
      __m256d acc1 = _mm256_loadu_pd(out_row + j + 4);
      __m256d acc2 = _mm256_loadu_pd(out_row + j + 8);
      __m256d acc3 = _mm256_loadu_pd(out_row + j + 12);
      for (std::size_t p = p_begin; p < p_end; ++p) {
        const double* b_row = b + col_idx[p] * n_cols + j;
        const __m256d v = _mm256_set1_pd(values[p]);
        acc0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b_row), acc0);
        acc1 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b_row + 4), acc1);
        acc2 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b_row + 8), acc2);
        acc3 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b_row + 12), acc3);
      }
      _mm256_storeu_pd(out_row + j, acc0);
      _mm256_storeu_pd(out_row + j + 4, acc1);
      _mm256_storeu_pd(out_row + j + 8, acc2);
      _mm256_storeu_pd(out_row + j + 12, acc3);
    }
    for (; j + 8 <= n_cols; j += 8) {
      __m256d acc0 = _mm256_loadu_pd(out_row + j);
      __m256d acc1 = _mm256_loadu_pd(out_row + j + 4);
      for (std::size_t p = p_begin; p < p_end; ++p) {
        const double* b_row = b + col_idx[p] * n_cols + j;
        const __m256d v = _mm256_set1_pd(values[p]);
        acc0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b_row), acc0);
        acc1 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b_row + 4), acc1);
      }
      _mm256_storeu_pd(out_row + j, acc0);
      _mm256_storeu_pd(out_row + j + 4, acc1);
    }
    for (; j + 4 <= n_cols; j += 4) {
      __m256d acc = _mm256_loadu_pd(out_row + j);
      for (std::size_t p = p_begin; p < p_end; ++p) {
        acc = _mm256_fmadd_pd(_mm256_set1_pd(values[p]),
                              _mm256_loadu_pd(b + col_idx[p] * n_cols + j),
                              acc);
      }
      _mm256_storeu_pd(out_row + j, acc);
    }
    for (; j < n_cols; ++j) {
      double acc = out_row[j];
      for (std::size_t p = p_begin; p < p_end; ++p) {
        acc = std::fma(values[p], b[col_idx[p] * n_cols + j], acc);
      }
      out_row[j] = acc;
    }
  }
}

void matmul_bf16_rows_avx2(const double* a, std::size_t a_cols,
                           const std::uint16_t* w, std::size_t n_cols,
                           double* out, std::size_t row_begin,
                           std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* a_row = a + i * a_cols;
    double* out_row = out + i * n_cols;
    std::size_t j = 0;
    for (; j + 8 <= n_cols; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      const std::uint16_t* w_col = w + j;
      for (std::size_t k = 0; k < a_cols; ++k, w_col += n_cols) {
        const __m256 aik = _mm256_set1_ps(static_cast<float>(a_row[k]));
        acc = _mm256_fmadd_ps(aik, widen_bf16(w_col), acc);
      }
      // fp32 accumulator -> fp64 output (exact widening).
      _mm256_storeu_pd(out_row + j,
                       _mm256_cvtps_pd(_mm256_castps256_ps128(acc)));
      _mm256_storeu_pd(out_row + j + 4,
                       _mm256_cvtps_pd(_mm256_extractf128_ps(acc, 1)));
    }
    for (; j < n_cols; ++j) {
      float acc = 0.0f;
      const std::uint16_t* w_col = w + j;
      for (std::size_t k = 0; k < a_cols; ++k, w_col += n_cols) {
        acc = std::fmaf(static_cast<float>(a_row[k]),
                        widen_bf16_scalar(*w_col), acc);
      }
      out_row[j] = static_cast<double>(acc);
    }
  }
}

}  // namespace cfgx::detail

#else  // !CFGX_HAVE_AVX2_BUILD

// Stubs for builds without AVX2 support (non-x86 targets or a compiler
// lacking -mavx2 -mfma). simd::avx2_supported() is false in these builds,
// so dispatch can never reach them.
#include <cstdlib>

namespace cfgx::detail {

void matmul_rows_avx2(const double*, std::size_t, const double*, std::size_t,
                      double*, std::size_t, std::size_t) {
  std::abort();
}
void spmm_rows_avx2(const std::size_t*, const std::uint32_t*, const double*,
                    const double*, std::size_t, double*, std::size_t,
                    std::size_t) {
  std::abort();
}
void matmul_bf16_rows_avx2(const double*, std::size_t, const std::uint16_t*,
                           std::size_t, double*, std::size_t, std::size_t) {
  std::abort();
}

}  // namespace cfgx::detail

#endif
