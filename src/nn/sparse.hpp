// Compressed-sparse-row kernels for the GCN hot path.
//
// CFG adjacencies are >95% zeros (a basic block has at most a handful of
// successors), so the normalized propagation matrix A_hat multiplied in
// every GCN forward/backward and every explainer iteration is extremely
// sparse. CsrMatrix stores only the structural non-zeros; spmm /
// spmm_transpose_a are the sparse counterparts of matmul /
// matmul_transpose_a and are bit-identical to the dense reference on
// matching inputs (same per-row accumulation order).
//
// Sparsity semantics: a *structural* zero (an entry CSR never stored) is
// treated as absent — it contributes nothing even against NaN/Inf in the
// dense operand. The dense kernels in matrix.cpp are the IEEE-faithful
// reference (0 * NaN = NaN); the sparse fast path makes the skip explicit
// in the representation instead of hiding it in a value test.
//
// Parallelism: every kernel takes an optional ThreadPool. Work is
// partitioned over disjoint output regions (rows for spmm/matmul, column
// slices for spmm_transpose_a), so the parallel result is deterministic
// and identical to the serial one — each output element is accumulated by
// exactly one thread in the same order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace cfgx {

class ThreadPool;

class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Captures every entry of `dense` with |value| > threshold (exact
  // non-zeros by default, so from_dense . to_dense is the identity).
  static CsrMatrix from_dense(const Matrix& dense, double threshold = 0.0);

  // From explicit triplet-style rows: row_ptr has rows+1 entries.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::uint32_t> col_idx,
            std::vector<double> values);

  Matrix to_dense() const;
  CsrMatrix transpose() const;

  // Mutable access to the stored values (structure stays fixed). The
  // incremental Algorithm-2 masking path rewrites the normalized values in
  // place each pruning iteration instead of rebuilding the CSR arrays.
  std::vector<double>& values_mut() noexcept { return values_; }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }
  bool empty() const noexcept { return rows_ == 0 && cols_ == 0; }

  // Fraction of stored entries, in [0, 1]; 0 for an empty matrix.
  double density() const noexcept;

  const std::vector<std::size_t>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const noexcept { return col_idx_; }
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;     // size rows_ + 1
  std::vector<std::uint32_t> col_idx_;   // size nnz
  std::vector<double> values_;           // size nnz
};

// Block-diagonal concatenation of CSR matrices with per-block row ranges:
// the batching primitive shared by the explanation-serving engine and
// (future) minibatched training. K graphs' normalized adjacencies become
// ONE CSR of shape (sum rows_k) x (sum cols_k); one spmm over it performs
// all K per-graph propagations at once, and it is BIT-identical to the K
// separate spmm calls: each batched row holds exactly its block's entries
// in the same order with the same values (column indices shift by the
// block offset, and the dense operand's rows shift by the same amount), so
// every per-row accumulation is the same sequence of IEEE additions.
//
// Row ranges let callers slice per-graph results back out of stacked
// outputs: rows [range(k).begin, range(k).end) of any row-aligned matrix
// (stacked features, embeddings) belong to block k.
class BatchedCsr {
 public:
  struct Range {
    std::size_t begin = 0;  // first row of this block
    std::size_t end = 0;    // one past the last row
    std::size_t size() const noexcept { return end - begin; }
  };

  BatchedCsr() = default;

  // Block-diagonal concat; blocks may be ragged (any shapes, including
  // empty). Throws std::invalid_argument on a null pointer or when the
  // total column count overflows the 32-bit CSR column index.
  static BatchedCsr concat(const std::vector<const CsrMatrix*>& blocks);

  const CsrMatrix& matrix() const noexcept { return matrix_; }
  std::size_t num_blocks() const noexcept { return ranges_.size(); }
  const Range& range(std::size_t block) const { return ranges_.at(block); }
  const std::vector<Range>& ranges() const noexcept { return ranges_; }

 private:
  CsrMatrix matrix_;
  std::vector<Range> ranges_;
};

// C = A * B with A in CSR form. Throws std::invalid_argument on
// inner-dimension mismatch. With a pool, rows of C are computed in
// worker_count chunks (deterministic; see header comment).
//
// The `_into` variants reshape `out` (zero-filling, capacity-reusing) and
// overwrite it; `out` must not alias `b`. The value-returning functions
// are thin wrappers, so both paths are bit-identical.
void spmm_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
               ThreadPool* pool = nullptr);
Matrix spmm(const CsrMatrix& a, const Matrix& b, ThreadPool* pool = nullptr);

// Row-masked spmm: computes only rows i with row_live[i] != 0.0, leaving
// masked rows at the exact zero the reshape wrote; nullptr degrades to
// spmm_into. Live rows are bit-identical to spmm_into.
void spmm_live_rows_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
                         const double* row_live, ThreadPool* pool = nullptr);

// C = A^T * B without materializing A^T. With a pool, each worker owns a
// disjoint slice of B's columns (scatter over output rows is race-free
// because writes within a slice never overlap across workers).
void spmm_transpose_a_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
                           ThreadPool* pool = nullptr);
Matrix spmm_transpose_a(const CsrMatrix& a, const Matrix& b,
                        ThreadPool* pool = nullptr);

// Dense C = A * B with rows of C partitioned across the pool, each worker
// running the cache-blocked microkernel on its row range. Identical
// results to matmul(a, b); use for the large dense products (gradient
// scatter, readout) that stay dense.
void matmul_parallel_into(const Matrix& a, const Matrix& b, Matrix& out,
                          ThreadPool& pool);
Matrix matmul_parallel(const Matrix& a, const Matrix& b, ThreadPool& pool);

}  // namespace cfgx
