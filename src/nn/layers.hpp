// Neural-network layer modules with hand-derived backpropagation.
//
// Every module maps a [batch, in] matrix to a [batch, out] matrix. forward()
// caches whatever backward() needs; backward() consumes dLoss/dOutput and
// returns dLoss/dInput, accumulating dLoss/dParameter into Parameter::grad.
// Gradients are *accumulated* (+=) so shared modules can be driven several
// times per step; call zero_grad() between optimizer steps.
//
// The exact gradients here are verified against central finite differences
// in tests/nn/gradcheck_test.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace cfgx {

// A trainable tensor and its gradient accumulator.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter(std::string name_, Matrix value_)
      : name(std::move(name_)),
        value(std::move(value_)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.set_zero(); }
};

class Module {
 public:
  virtual ~Module() = default;

  virtual Matrix forward(const Matrix& input) = 0;
  virtual Matrix backward(const Matrix& grad_output) = 0;

  // Destination-passing forward: reshapes `out` (capacity-reusing) and
  // overwrites it. `out` must not alias `input`. The default delegates to
  // forward(); hot modules (Dense, Relu, Sigmoid, Sequential) override it
  // with allocation-free implementations backed by the Workspace pool.
  // Results are bit-identical to forward() in every override.
  virtual void forward_into(const Matrix& input, Matrix& out) {
    out = forward(input);
  }

  // Trainable parameters (may be empty for activations).
  virtual std::vector<Parameter*> parameters() { return {}; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }
};

// Fully connected layer: Y = X W + 1 b  (W: [in, out], b: [1, out]).
class Dense : public Module {
 public:
  // Xavier/Glorot-uniform initialization for W, zeros for b.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
        std::string name = "dense");

  Matrix forward(const Matrix& input) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;
  Parameter bias_;
  Matrix cached_input_;
};

// Elementwise max(0, x).
class Relu : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  Matrix backward(const Matrix& grad_output) override;

 private:
  Matrix cached_input_;
};

// Elementwise logistic sigmoid.
class Sigmoid : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  void forward_into(const Matrix& input, Matrix& out) override;
  Matrix backward(const Matrix& grad_output) override;

 private:
  Matrix cached_output_;
};

// Row-wise softmax with the standard max-subtraction stabilization.
// backward() implements the full softmax Jacobian-vector product.
class SoftmaxRows : public Module {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

 private:
  Matrix cached_output_;
};

// Ordered composition of modules.
class Sequential : public Module {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Module> module) {
    modules_.push_back(std::move(module));
    return *this;
  }

  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    modules_.push_back(std::make_unique<M>(std::forward<Args>(args)...));
    return *this;
  }

  Matrix forward(const Matrix& input) override;
  // Ping-pongs intermediates through Workspace scratch buffers, so a
  // steady-state forward pass allocates nothing.
  void forward_into(const Matrix& input, Matrix& out) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Parameter*> parameters() override;

  std::size_t module_count() const { return modules_.size(); }
  Module& module(std::size_t i) { return *modules_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

// Glorot-uniform initialization: U(-sqrt(6/(fan_in+fan_out)), +...).
Matrix glorot_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng);

}  // namespace cfgx
