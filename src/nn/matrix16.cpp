#include "nn/matrix16.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/simd.hpp"
#include "obs/metrics.hpp"

namespace cfgx {
namespace {

// Scalar bf16 kernel: fp32 accumulation via correctly rounded std::fmaf in
// ascending-k order — the exact operation sequence the AVX2 kernel
// replays, so the two are bit-identical.
void matmul_bf16_rows_scalar(const double* a, std::size_t a_cols,
                             const std::uint16_t* w, std::size_t n_cols,
                             double* out, std::size_t row_begin,
                             std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* a_row = a + i * a_cols;
    double* out_row = out + i * n_cols;
    for (std::size_t j = 0; j < n_cols; ++j) {
      float acc = 0.0f;
      const std::uint16_t* w_col = w + j;
      for (std::size_t k = 0; k < a_cols; ++k, w_col += n_cols) {
        acc = std::fmaf(static_cast<float>(a_row[k]), bf16_to_float(*w_col),
                        acc);
      }
      out_row[j] = static_cast<double>(acc);
    }
  }
}

void matmul_bf16_rows_dispatch(const Matrix& a, const Matrix16& w, Matrix& out,
                               std::size_t row_begin, std::size_t row_end) {
  if (simd::dispatch() == simd::Isa::Avx2) {
    detail::matmul_bf16_rows_avx2(a.data(), a.cols(), w.data(), w.cols(),
                                  out.data(), row_begin, row_end);
  } else {
    matmul_bf16_rows_scalar(a.data(), a.cols(), w.data(), w.cols(), out.data(),
                            row_begin, row_end);
  }
}

void check_bf16_shapes(const Matrix& a, const Matrix16& w) {
  if (a.cols() != w.rows()) {
    throw std::invalid_argument("matmul_bf16: inner dimensions do not match");
  }
}

}  // namespace

const char* precision_name(Precision precision) noexcept {
  switch (precision) {
    case Precision::Bf16:
      return "bf16";
    case Precision::Fp64:
      break;
  }
  return "fp64";
}

Precision parse_precision(const std::string& value) {
  if (value == "fp64") return Precision::Fp64;
  if (value == "bf16") return Precision::Bf16;
  throw std::invalid_argument("unknown precision '" + value +
                              "' (expected 'fp64' or 'bf16')");
}

std::uint16_t float_to_bf16(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  if (std::isnan(value)) {
    // Truncate the payload but force a mantissa bit so the result stays a
    // (quiet) NaN instead of decaying to Inf.
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even, on the low 16 bits. Overflow carries
  // into the exponent and saturates finite values to Inf, which is the
  // correct RNE result for magnitudes above the largest bf16 finite.
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>(bits >> 16);
}

float bf16_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t wide = static_cast<std::uint32_t>(bits) << 16;
  float out;
  std::memcpy(&out, &wide, sizeof out);
  return out;
}

Matrix16 Matrix16::pack(const Matrix& source) {
  Matrix16 packed(source.rows(), source.cols());
  const double* src = source.data();
  std::uint16_t* dst = packed.data();
  for (std::size_t i = 0; i < source.size(); ++i) {
    dst[i] = float_to_bf16(static_cast<float>(src[i]));
  }
  return packed;
}

Matrix Matrix16::unpack() const {
  Matrix wide(rows_, cols_);
  double* dst = wide.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    dst[i] = static_cast<double>(bf16_to_float(data_[i]));
  }
  return wide;
}

void matmul_bf16_into(const Matrix& a, const Matrix16& w, Matrix& out) {
  check_bf16_shapes(a, w);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul_bf16.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.matmul_bf16.seconds");
  calls.add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), w.cols());
  matmul_bf16_rows_dispatch(a, w, out, 0, a.rows());
}

Matrix matmul_bf16(const Matrix& a, const Matrix16& w) {
  Matrix out;
  matmul_bf16_into(a, w, out);
  return out;
}

void matmul_bf16_live_rows_into(const Matrix& a, const Matrix16& w, Matrix& out,
                                const double* row_live) {
  if (row_live == nullptr) {
    matmul_bf16_into(a, w, out);
    return;
  }
  check_bf16_shapes(a, w);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul_bf16.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.matmul_bf16.seconds");
  calls.add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), w.cols());
  // Maximal runs of live rows, mirroring matmul_live_rows_into: dead rows
  // keep the exact zeros reshape wrote.
  std::size_t i = 0;
  const std::size_t rows = a.rows();
  while (i < rows) {
    if (row_live[i] == 0.0) {
      ++i;
      continue;
    }
    std::size_t end = i + 1;
    while (end < rows && row_live[end] != 0.0) ++end;
    matmul_bf16_rows_dispatch(a, w, out, i, end);
    i = end;
  }
}

}  // namespace cfgx
