// Binary (de)serialization for matrices and named parameter sets.
//
// Format (little-endian, as produced by the host):
//   matrix  := u64 rows | u64 cols | f64 data[rows*cols]
//   archive := magic "CFGXW001" | u64 count | count * (string name | matrix)
//   string  := u64 length | bytes
//
// Deserialization validates the magic, lengths and stream health, and
// throws SerializationError on any malformed input (exercised by the
// failure-injection tests).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"
#include "nn/matrix16.hpp"

namespace cfgx {

class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Bytes left between the stream's read position and its end, or nullopt for
// non-seekable streams. Readers use it to validate a declared count/length
// against the bytes actually present BEFORE allocating, so a corrupted
// header throws SerializationError instead of attempting a huge resize.
std::optional<std::uint64_t> stream_bytes_remaining(std::istream& in);

void write_matrix(std::ostream& out, const Matrix& matrix);
Matrix read_matrix(std::istream& in);

// bf16 variant (u64 rows | u64 cols | u16 data[rows*cols]) for exporting
// packed inference weights; checkpoints keep the fp64 masters, so this is
// a standalone format with the same validation behaviour as read_matrix.
void write_matrix16(std::ostream& out, const Matrix16& matrix);
Matrix16 read_matrix16(std::istream& in);

void write_string(std::ostream& out, const std::string& value);
std::string read_string(std::istream& in);

// Writes parameter values (not gradients) keyed by Parameter::name.
void save_parameters(std::ostream& out, const std::vector<Parameter*>& params);
void save_parameters_file(const std::string& path,
                          const std::vector<Parameter*>& params);

// Loads values into matching parameters; throws if a name is missing or a
// shape disagrees. Extra names in the archive are an error too (a loaded
// checkpoint must describe exactly this model).
void load_parameters(std::istream& in, const std::vector<Parameter*>& params);
void load_parameters_file(const std::string& path,
                          const std::vector<Parameter*>& params);

}  // namespace cfgx
