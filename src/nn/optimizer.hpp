// Adam optimizer (Kingma & Ba, 2014) — the optimizer named by the paper for
// both the GNN classifier and CFGExplainer's joint training (Algorithm 1,
// line 15).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace cfgx {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style) when > 0
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  // Applies one update from the accumulated gradients, then leaves the
  // gradients untouched (call zero_grad on the owning modules afterwards).
  void step();

  // Convenience: zero the gradients of all registered parameters.
  void zero_grad();

  std::size_t step_count() const { return step_count_; }
  const AdamConfig& config() const { return config_; }

  // Checkpointing of the optimizer state (step count + both moment
  // estimates, keyed by parameter name). Resuming training from a saved
  // (parameters, optimizer state) pair continues the exact trajectory:
  // save -> load -> step produces bit-identical weights on both copies.
  // load_state throws SerializationError when the archive does not match
  // this optimizer's parameters (missing name, shape mismatch, bad magic).
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);
  void save_state_file(const std::string& path) const;
  void load_state_file(const std::string& path);

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
  std::size_t step_count_ = 0;
};

}  // namespace cfgx
