// bf16 (bfloat16) weight storage for the reduced-precision inference path
// of Phi (DESIGN.md decision 14).
//
// bf16 is the top 16 bits of an IEEE binary32: same exponent range as
// fp32, 7 mantissa bits. Matrix16 stores a packed bf16 copy of a weight
// matrix (half the bytes of fp32, a quarter of the fp64 master weights);
// the matmul_bf16 kernels multiply fp64 activations against it with fp32
// ACCUMULATION — every product is fmaf((float)a_ik, widen(w_kj), acc) in
// ascending-k order, so the scalar and AVX2 implementations are
// bit-identical (both chain correctly rounded fp32 fmas in the same
// order; the widening back to the fp64 output is exact).
//
// Rounding: pack() narrows fp64 -> fp32 -> bf16, each step
// round-to-nearest-even; NaNs are quieted (never flushed to Inf), Inf and
// signed zeros are preserved. Representable values round-trip exactly and
// rounding is monotone — both properties pinned by the bf16 prop suite.
//
// The master weights stay fp64: bf16 is a derived, inference-only view
// (GnnClassifier::set_precision packs it; training and serialization
// always use the fp64 parameters, and set_precision must be re-applied
// after any weight update).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace cfgx {

// Inference precision for Phi. Fp64 is the reference path; Bf16 stores
// weights in bf16 and accumulates in fp32 (see above).
enum class Precision : std::uint8_t { Fp64 = 0, Bf16 = 1 };

const char* precision_name(Precision precision) noexcept;
// Parses "fp64" / "bf16"; throws std::invalid_argument on anything else.
Precision parse_precision(const std::string& value);

// Round-to-nearest-even fp32 -> bf16; NaN payloads are quieted so the
// result is still NaN after widening.
std::uint16_t float_to_bf16(float value) noexcept;
// Exact widening (bf16 is a prefix of the fp32 bit pattern).
float bf16_to_float(std::uint16_t bits) noexcept;

// Dense row-major bf16 matrix (packed weights).
class Matrix16 {
 public:
  Matrix16() = default;
  Matrix16(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  // fp64 -> fp32 -> bf16, round-to-nearest-even at each narrowing.
  static Matrix16 pack(const Matrix& source);
  // Exact widening back to fp64 (for tests and diagnostics).
  Matrix unpack() const;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  std::uint16_t* data() noexcept { return data_.data(); }
  const std::uint16_t* data() const noexcept { return data_.data(); }

  std::uint16_t& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  std::uint16_t operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  bool operator==(const Matrix16& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint16_t> data_;
};

// out = A * W with W in bf16 and fp32 accumulation; `out` is reshaped
// (capacity-reusing) and must not alias `a`. Throws std::invalid_argument
// on inner-dimension mismatch. Dispatched per ISA (scalar / AVX2) and
// bit-identical across ISAs.
void matmul_bf16_into(const Matrix& a, const Matrix16& w, Matrix& out);
Matrix matmul_bf16(const Matrix& a, const Matrix16& w);

// Row-masked variant: computes only rows i with row_live[i] != 0.0 (masked
// rows stay at the exact zero the reshape wrote); nullptr degrades to
// matmul_bf16_into. Live rows are bit-identical to matmul_bf16_into.
void matmul_bf16_live_rows_into(const Matrix& a, const Matrix16& w,
                                Matrix& out, const double* row_live);

}  // namespace cfgx
