#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace cfgx {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  if (params_.empty()) throw std::invalid_argument("Adam: no parameters");
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const Parameter* p : params_) {
    first_moment_.emplace_back(p->value.rows(), p->value.cols());
    second_moment_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    Matrix& m = first_moment_[k];
    Matrix& v = second_moment_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const double g = p.grad.data()[i];
      m.data()[i] = config_.beta1 * m.data()[i] + (1.0 - config_.beta1) * g;
      v.data()[i] = config_.beta2 * v.data()[i] + (1.0 - config_.beta2) * g * g;
      const double m_hat = m.data()[i] / bias1;
      const double v_hat = v.data()[i] / bias2;
      double update = m_hat / (std::sqrt(v_hat) + config_.epsilon);
      if (config_.weight_decay > 0.0) {
        update += config_.weight_decay * p.value.data()[i];
      }
      p.value.data()[i] -= config_.learning_rate * update;
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace cfgx
