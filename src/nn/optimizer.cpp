#include "nn/optimizer.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace cfgx {
namespace {

constexpr char kAdamMagic[] = "CFGXA001";
constexpr std::size_t kAdamMagicLen = 8;

}  // namespace

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  if (params_.empty()) throw std::invalid_argument("Adam: no parameters");
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const Parameter* p : params_) {
    first_moment_.emplace_back(p->value.rows(), p->value.cols());
    second_moment_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    Matrix& m = first_moment_[k];
    Matrix& v = second_moment_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const double g = p.grad.data()[i];
      m.data()[i] = config_.beta1 * m.data()[i] + (1.0 - config_.beta1) * g;
      v.data()[i] = config_.beta2 * v.data()[i] + (1.0 - config_.beta2) * g * g;
      const double m_hat = m.data()[i] / bias1;
      const double v_hat = v.data()[i] / bias2;
      double update = m_hat / (std::sqrt(v_hat) + config_.epsilon);
      if (config_.weight_decay > 0.0) {
        update += config_.weight_decay * p.value.data()[i];
      }
      p.value.data()[i] -= config_.learning_rate * update;
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void Adam::save_state(std::ostream& out) const {
  out.write(kAdamMagic, kAdamMagicLen);
  std::uint64_t step_count = step_count_;
  out.write(reinterpret_cast<const char*>(&step_count), sizeof step_count);
  std::uint64_t count = params_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    write_string(out, params_[k]->name);
    write_matrix(out, first_moment_[k]);
    write_matrix(out, second_moment_[k]);
  }
  if (!out) throw SerializationError("write failure while saving optimizer state");
}

void Adam::load_state(std::istream& in) {
  char magic[kAdamMagicLen] = {};
  in.read(magic, kAdamMagicLen);
  if (!in || std::string(magic, kAdamMagicLen) != kAdamMagic) {
    throw SerializationError("bad magic: not a CFGX optimizer archive");
  }
  std::uint64_t step_count = 0;
  in.read(reinterpret_cast<char*>(&step_count), sizeof step_count);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in) throw SerializationError("unexpected end of optimizer archive header");
  if (count != params_.size()) {
    throw SerializationError("optimizer archive has " + std::to_string(count) +
                             " entries, optimizer tracks " +
                             std::to_string(params_.size()));
  }

  std::vector<Matrix> first(params_.size());
  std::vector<Matrix> second(params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const std::string name = read_string(in);
    if (name != params_[k]->name) {
      throw SerializationError("optimizer archive entry '" + name +
                               "' does not match parameter '" +
                               params_[k]->name + "'");
    }
    first[k] = read_matrix(in);
    second[k] = read_matrix(in);
    if (!first[k].same_shape(params_[k]->value) ||
        !second[k].same_shape(params_[k]->value)) {
      throw SerializationError("optimizer moment shape mismatch for '" + name + "'");
    }
  }
  step_count_ = static_cast<std::size_t>(step_count);
  first_moment_ = std::move(first);
  second_moment_ = std::move(second);
}

void Adam::save_state_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  save_state(out);
}

void Adam::load_state_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  load_state(in);
}

}  // namespace cfgx
