#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>

namespace cfgx {
namespace {

constexpr char kMagic[] = "CFGXW001";
constexpr std::size_t kMagicLen = 8;
// Upper bounds that keep a corrupted length field from triggering a huge
// allocation before the stream read fails.
constexpr std::uint64_t kMaxDim = 1ull << 24;
constexpr std::uint64_t kMaxStringLen = 1ull << 16;
constexpr std::uint64_t kMaxEntries = 1ull << 16;

void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("unexpected end of stream reading u64");
  return value;
}

// Throws when the stream is seekable and demonstrably holds fewer than
// `needed` bytes (`what` names the field for the error message). A
// non-seekable stream falls back to the read-then-check path.
void require_bytes(std::istream& in, std::uint64_t needed, const char* what) {
  const auto remaining = stream_bytes_remaining(in);
  if (remaining && *remaining < needed) {
    throw SerializationError(std::string(what) +
                             " exceeds the bytes remaining in the stream");
  }
}

}  // namespace

std::optional<std::uint64_t> stream_bytes_remaining(std::istream& in) {
  const std::istream::pos_type current = in.tellg();
  if (current == std::istream::pos_type(-1)) {
    in.clear(in.rdstate() & ~std::ios::failbit);
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(current);
  if (end == std::istream::pos_type(-1) || end < current) return std::nullopt;
  return static_cast<std::uint64_t>(end - current);
}

void write_matrix(std::ostream& out, const Matrix& matrix) {
  write_u64(out, matrix.rows());
  write_u64(out, matrix.cols());
  out.write(reinterpret_cast<const char*>(matrix.data()),
            static_cast<std::streamsize>(matrix.size() * sizeof(double)));
}

Matrix read_matrix(std::istream& in) {
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  if (rows > kMaxDim || cols > kMaxDim) {
    throw SerializationError("matrix dimensions implausibly large");
  }
  // Per-dimension caps still admit a 2^48-element product; check the
  // declared payload against the stream before allocating.
  require_bytes(in, rows * cols * sizeof(double), "matrix payload");
  Matrix out(rows, cols);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size() * sizeof(double)));
  if (!in) throw SerializationError("unexpected end of stream reading matrix data");
  return out;
}

void write_matrix16(std::ostream& out, const Matrix16& matrix) {
  write_u64(out, matrix.rows());
  write_u64(out, matrix.cols());
  out.write(reinterpret_cast<const char*>(matrix.data()),
            static_cast<std::streamsize>(matrix.size() * sizeof(std::uint16_t)));
}

Matrix16 read_matrix16(std::istream& in) {
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  if (rows > kMaxDim || cols > kMaxDim) {
    throw SerializationError("matrix dimensions implausibly large");
  }
  require_bytes(in, rows * cols * sizeof(std::uint16_t), "matrix payload");
  Matrix16 out(rows, cols);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size() * sizeof(std::uint16_t)));
  if (!in) throw SerializationError("unexpected end of stream reading matrix data");
  return out;
}

void write_string(std::ostream& out, const std::string& value) {
  write_u64(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string read_string(std::istream& in) {
  const std::uint64_t length = read_u64(in);
  if (length > kMaxStringLen) {
    throw SerializationError("string length implausibly large");
  }
  require_bytes(in, length, "string payload");
  std::string value(length, '\0');
  in.read(value.data(), static_cast<std::streamsize>(length));
  if (!in) throw SerializationError("unexpected end of stream reading string");
  return value;
}

void save_parameters(std::ostream& out, const std::vector<Parameter*>& params) {
  out.write(kMagic, kMagicLen);
  write_u64(out, params.size());
  for (const Parameter* p : params) {
    write_string(out, p->name);
    write_matrix(out, p->value);
  }
  if (!out) throw SerializationError("write failure while saving parameters");
}

void load_parameters(std::istream& in, const std::vector<Parameter*>& params) {
  char magic[kMagicLen] = {};
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kMagic) {
    throw SerializationError("bad magic: not a CFGX weight archive");
  }
  const std::uint64_t count = read_u64(in);
  if (count > kMaxEntries) throw SerializationError("entry count implausibly large");
  // Each entry needs at least a string header + matrix header (24 bytes).
  require_bytes(in, count * 24, "parameter entries");

  std::map<std::string, Matrix> loaded;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    Matrix value = read_matrix(in);
    if (!loaded.emplace(std::move(name), std::move(value)).second) {
      throw SerializationError("duplicate parameter name in archive");
    }
  }

  if (loaded.size() != params.size()) {
    throw SerializationError("archive has " + std::to_string(loaded.size()) +
                             " parameters, model expects " +
                             std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    const auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      throw SerializationError("archive missing parameter '" + p->name + "'");
    }
    if (!it->second.same_shape(p->value)) {
      throw SerializationError("shape mismatch for parameter '" + p->name + "'");
    }
    p->value = std::move(it->second);
  }
}

void save_parameters_file(const std::string& path,
                          const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  save_parameters(out, params);
}

void load_parameters_file(const std::string& path,
                          const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  load_parameters(in, params);
}

}  // namespace cfgx
