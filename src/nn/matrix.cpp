#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "nn/simd.hpp"
#include "obs/metrics.hpp"

namespace cfgx {
namespace {

// Per-ISA attribution for the dense matmul entry points: the aggregate
// kernel.matmul.calls counter stays (dashboards depend on it), and the
// .scalar/.avx2 split records which code path served the call.
obs::Counter& matmul_isa_counter(simd::Isa isa) {
  static obs::Counter& scalar =
      obs::MetricsRegistry::global().counter("kernel.matmul.calls.scalar");
  static obs::Counter& avx2 =
      obs::MetricsRegistry::global().counter("kernel.matmul.calls.avx2");
  return isa == simd::Isa::Avx2 ? avx2 : scalar;
}

[[noreturn]] void throw_shape(const char* op, const Matrix& a, const Matrix& b) {
  throw std::invalid_argument(std::string("Matrix ") + op + ": shape mismatch [" +
                              std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
                              "] vs [" + std::to_string(b.rows()) + "x" +
                              std::to_string(b.cols()) + "]");
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::row_vector(std::span<const double> values) {
  Matrix out(1, values.size());
  std::copy(values.begin(), values.end(), out.data());
  return out;
}

Matrix Matrix::column_vector(std::span<const double> values) {
  Matrix out(values.size(), 1);
  std::copy(values.begin(), values.end(), out.data());
  return out;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(r) + "," +
                            std::to_string(c) + ") out of [" +
                            std::to_string(rows_) + "x" + std::to_string(cols_) + "]");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw_shape("+=", *this, other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw_shape("-=", *this, other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  if (!same_shape(other)) throw_shape("hadamard", *this, other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::apply(const std::function<double(double)>& fn) {
  for (double& v : data_) v = fn(v);
  return *this;
}

double Matrix::sum() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Matrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Matrix Matrix::row_sums() const {
  Matrix out(rows_, 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c);
    out(r, 0) = acc;
  }
  return out;
}

Matrix Matrix::col_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

std::string Matrix::to_string(int decimals) const {
  std::ostringstream out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof buf, "% .*f", decimals, (*this)(r, c));
      out << buf << (c + 1 == cols_ ? "" : " ");
    }
    out << (r + 1 == rows_ ? "]" : "\n");
  }
  return out.str();
}

namespace detail {

void matmul_reference_rows(const Matrix& a, const Matrix& b, Matrix& out,
                           std::size_t row_begin, std::size_t row_end) {
  // i-k-j loop order for cache-friendly access of row-major operands.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double* out_row = out.data() + i * out.cols();
    for (std::size_t k = 0; k < a.cols(); ++k) {
      // No zero-skip here: the dense kernel is the IEEE-faithful reference
      // (0 * NaN must poison the output). Sparsity lives in CsrMatrix.
      const double aik = a(i, k);
      const double* b_row = b.data() + k * b.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
}

namespace {

// Panel sizes tuned for doubles: a KC x NC panel of B (128 KiB at the
// maxima) stays L2-resident while every row pair of A streams against it.
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockN = 256;

// One (i-pair, k-panel, j-panel) tile: two output rows accumulate against
// the same B rows, halving B traffic; the innermost loop is unrolled 4
// wide. Each out[i][j] still accumulates over k in strictly increasing
// order, so the result is bit-identical to matmul_reference_rows.
inline void tile_two_rows(const double* a_row0, const double* a_row1,
                          const double* b_data, double* out_row0,
                          double* out_row1, std::size_t n_cols,
                          std::size_t k_begin, std::size_t k_end,
                          std::size_t j_begin, std::size_t j_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const double a0k = a_row0[k];
    const double a1k = a_row1[k];
    const double* b_row = b_data + k * n_cols;
    std::size_t j = j_begin;
    for (; j + 4 <= j_end; j += 4) {
      out_row0[j] += a0k * b_row[j];
      out_row0[j + 1] += a0k * b_row[j + 1];
      out_row0[j + 2] += a0k * b_row[j + 2];
      out_row0[j + 3] += a0k * b_row[j + 3];
      out_row1[j] += a1k * b_row[j];
      out_row1[j + 1] += a1k * b_row[j + 1];
      out_row1[j + 2] += a1k * b_row[j + 2];
      out_row1[j + 3] += a1k * b_row[j + 3];
    }
    for (; j < j_end; ++j) {
      out_row0[j] += a0k * b_row[j];
      out_row1[j] += a1k * b_row[j];
    }
  }
}

inline void tile_one_row(const double* a_row, const double* b_data,
                         double* out_row, std::size_t n_cols,
                         std::size_t k_begin, std::size_t k_end,
                         std::size_t j_begin, std::size_t j_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const double aik = a_row[k];
    const double* b_row = b_data + k * n_cols;
    std::size_t j = j_begin;
    for (; j + 4 <= j_end; j += 4) {
      out_row[j] += aik * b_row[j];
      out_row[j + 1] += aik * b_row[j + 1];
      out_row[j + 2] += aik * b_row[j + 2];
      out_row[j + 3] += aik * b_row[j + 3];
    }
    for (; j < j_end; ++j) out_row[j] += aik * b_row[j];
  }
}

}  // namespace

void matmul_block_rows(const Matrix& a, const Matrix& b, Matrix& out,
                       std::size_t row_begin, std::size_t row_end) {
  const std::size_t n_cols = b.cols();
  const std::size_t k_total = a.cols();
  for (std::size_t jj = 0; jj < n_cols; jj += kBlockN) {
    const std::size_t j_end = std::min(n_cols, jj + kBlockN);
    for (std::size_t kk = 0; kk < k_total; kk += kBlockK) {
      const std::size_t k_end = std::min(k_total, kk + kBlockK);
      std::size_t i = row_begin;
      for (; i + 2 <= row_end; i += 2) {
        tile_two_rows(a.data() + i * k_total, a.data() + (i + 1) * k_total,
                      b.data(), out.data() + i * n_cols,
                      out.data() + (i + 1) * n_cols, n_cols, kk, k_end, jj,
                      j_end);
      }
      if (i < row_end) {
        tile_one_row(a.data() + i * k_total, b.data(),
                     out.data() + i * n_cols, n_cols, kk, k_end, jj, j_end);
      }
    }
  }
}

void matmul_rows_dispatch(const Matrix& a, const Matrix& b, Matrix& out,
                          std::size_t row_begin, std::size_t row_end) {
  if (simd::dispatch() == simd::Isa::Avx2) {
    matmul_rows_avx2(a.data(), a.cols(), b.data(), b.cols(), out.data(),
                     row_begin, row_end);
  } else {
    matmul_block_rows(a, b, out, row_begin, row_end);
  }
}

}  // namespace detail

void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows()) throw_shape("matmul", a, b);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.matmul.seconds");
  calls.add();
  matmul_isa_counter(simd::dispatch()).add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), b.cols());
  detail::matmul_rows_dispatch(a, b, out, 0, a.rows());
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul_into(a, b, out);
  return out;
}

void matmul_live_rows_into(const Matrix& a, const Matrix& b, Matrix& out,
                           const double* row_live) {
  if (row_live == nullptr) {
    matmul_into(a, b, out);
    return;
  }
  if (a.cols() != b.rows()) throw_shape("matmul", a, b);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.matmul.seconds");
  calls.add();
  matmul_isa_counter(simd::dispatch()).add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), b.cols());
  // Run the dispatched kernel over maximal contiguous runs of live rows;
  // the reshape above already left every masked row at exact zero.
  std::size_t i = 0;
  while (i < a.rows()) {
    if (row_live[i] == 0.0) {
      ++i;
      continue;
    }
    std::size_t end = i + 1;
    while (end < a.rows() && row_live[end] != 0.0) ++end;
    detail::matmul_rows_dispatch(a, b, out, i, end);
    i = end;
  }
}

void matmul_transpose_a_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows()) throw_shape("matmul_transpose_a", a, b);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul_transpose_a.calls");
  calls.add();
  out.reshape(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.data() + k * a.cols();
    const double* b_row = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      double* out_row = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul_transpose_a_into(a, b, out);
  return out;
}

void matmul_transpose_b_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols()) throw_shape("matmul_transpose_b", a, b);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul_transpose_b.calls");
  calls.add();
  out.reshape(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.data() + i * a.cols();
    double* out_row = out.data() + i * out.cols();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.data() + j * b.cols();
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a_row[k] * b_row[k];
      out_row[j] = acc;
    }
  }
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b) {
  Matrix out;
  matmul_transpose_b_into(a, b, out);
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

}  // namespace cfgx
