#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace cfgx {

Matrix glorot_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix out(fan_in, fan_out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = rng.uniform(-limit, limit);
  }
  return out;
}

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
             std::string name)
    : weight_(name + ".W", glorot_uniform(in_features, out_features, rng)),
      bias_(name + ".b", Matrix(1, out_features)) {}

Matrix Dense::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = matmul(input, weight_.value);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += bias_.value(0, c);
  }
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  // dL/dW = X^T G, dL/db = sum_rows(G), dL/dX = G W^T.
  weight_.grad += matmul_transpose_a(cached_input_, grad_output);
  bias_.grad += grad_output.col_sums();
  return matmul_transpose_b(grad_output, weight_.value);
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::max(0.0, out.data()[i]);
  }
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  Matrix out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double x = out.data()[i];
    // Numerically stable in both tails.
    out.data()[i] = x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                             : std::exp(x) / (1.0 + std::exp(x));
  }
  cached_output_ = out;
  return out;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double s = cached_output_.data()[i];
    grad.data()[i] *= s * (1.0 - s);
  }
  return grad;
}

Matrix SoftmaxRows::forward(const Matrix& input) {
  Matrix out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    const double m = *std::max_element(row.begin(), row.end());
    double denom = 0.0;
    for (double& v : row) {
      v = std::exp(v - m);
      denom += v;
    }
    for (double& v : row) v /= denom;
  }
  cached_output_ = out;
  return out;
}

Matrix SoftmaxRows::backward(const Matrix& grad_output) {
  // For each row: dL/dx_i = s_i * (g_i - sum_j g_j s_j).
  Matrix grad(grad_output.rows(), grad_output.cols());
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    double dot = 0.0;
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      dot += grad_output(r, c) * cached_output_(r, c);
    }
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      grad(r, c) = cached_output_(r, c) * (grad_output(r, c) - dot);
    }
  }
  return grad;
}

Matrix Sequential::forward(const Matrix& input) {
  Matrix current = input;
  for (auto& module : modules_) current = module->forward(current);
  return current;
}

Matrix Sequential::backward(const Matrix& grad_output) {
  Matrix current = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& module : modules_) {
    for (Parameter* p : module->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace cfgx
