#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "nn/workspace.hpp"

namespace cfgx {
namespace {

inline double relu_value(double x) { return x > 0.0 ? x : 0.0; }

inline double sigmoid_value(double x) {
  // Numerically stable in both tails.
  return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                  : std::exp(x) / (1.0 + std::exp(x));
}

}  // namespace

Matrix glorot_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix out(fan_in, fan_out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = rng.uniform(-limit, limit);
  }
  return out;
}

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
             std::string name)
    : weight_(name + ".W", glorot_uniform(in_features, out_features, rng)),
      bias_(name + ".b", Matrix(1, out_features)) {}

Matrix Dense::forward(const Matrix& input) {
  Matrix out;
  forward_into(input, out);
  return out;
}

void Dense::forward_into(const Matrix& input, Matrix& out) {
  cached_input_ = input;  // copy-assign reuses the cache's capacity
  matmul_into(input, weight_.value, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += bias_.value(0, c);
  }
}

Matrix Dense::backward(const Matrix& grad_output) {
  // dL/dW = X^T G, dL/db = sum_rows(G), dL/dX = G W^T.
  weight_.grad += matmul_transpose_a(cached_input_, grad_output);
  bias_.grad += grad_output.col_sums();
  return matmul_transpose_b(grad_output, weight_.value);
}

Matrix Relu::forward(const Matrix& input) {
  cached_input_ = input;
  Matrix out = input;
  out.apply(relu_value);
  return out;
}

void Relu::forward_into(const Matrix& input, Matrix& out) {
  cached_input_ = input;
  out = input;
  out.apply(relu_value);
}

Matrix Relu::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

Matrix Sigmoid::forward(const Matrix& input) {
  Matrix out = input;
  out.apply(sigmoid_value);
  cached_output_ = out;
  return out;
}

void Sigmoid::forward_into(const Matrix& input, Matrix& out) {
  out = input;
  out.apply(sigmoid_value);
  cached_output_ = out;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const double s = cached_output_.data()[i];
    grad.data()[i] *= s * (1.0 - s);
  }
  return grad;
}

Matrix SoftmaxRows::forward(const Matrix& input) {
  Matrix out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    const double m = *std::max_element(row.begin(), row.end());
    double denom = 0.0;
    for (double& v : row) {
      v = std::exp(v - m);
      denom += v;
    }
    for (double& v : row) v /= denom;
  }
  cached_output_ = out;
  return out;
}

Matrix SoftmaxRows::backward(const Matrix& grad_output) {
  // For each row: dL/dx_i = s_i * (g_i - sum_j g_j s_j).
  Matrix grad(grad_output.rows(), grad_output.cols());
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    double dot = 0.0;
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      dot += grad_output(r, c) * cached_output_(r, c);
    }
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      grad(r, c) = cached_output_(r, c) * (grad_output(r, c) - dot);
    }
  }
  return grad;
}

Matrix Sequential::forward(const Matrix& input) {
  Matrix current = input;
  for (auto& module : modules_) current = module->forward(current);
  return current;
}

void Sequential::forward_into(const Matrix& input, Matrix& out) {
  if (modules_.empty()) {
    out = input;
    return;
  }
  if (modules_.size() == 1) {
    modules_.front()->forward_into(input, out);
    return;
  }
  // Ping-pong between two workspace buffers; the last module writes
  // straight into `out`, so no final copy is needed.
  Workspace& workspace = Workspace::local();
  Workspace::Lease ping = workspace.acquire(0, 0);
  Workspace::Lease pong = workspace.acquire(0, 0);
  const Matrix* current = &input;
  Matrix* scratch = &ping.get();
  Matrix* other = &pong.get();
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    Matrix& dst = (i + 1 == modules_.size()) ? out : *scratch;
    modules_[i]->forward_into(*current, dst);
    current = &dst;
    std::swap(scratch, other);
  }
}

Matrix Sequential::backward(const Matrix& grad_output) {
  Matrix current = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& module : modules_) {
    for (Parameter* p : module->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace cfgx
