// Thread-local scratch-buffer pool backing the allocation-free kernel path.
//
// Every destination-passing kernel (`matmul_into`, `spmm_into`, ...) writes
// into a caller-owned Matrix, and the hot callers (GCN inference, the
// Algorithm-2 interpreter, the explainer scorer) own those destinations as
// Workspace leases: acquire() hands out a shape-tagged scratch Matrix whose
// heap block is recycled across forward/backward passes, so a steady-state
// workload (repeated `interpret()` calls on same-sized graphs) performs no
// heap allocation at all after warm-up.
//
// Ownership rules (DESIGN.md decision 12):
//   * A Lease owns its buffer for its lifetime and returns it to the pool on
//     destruction. Leases nest freely (LIFO or not) and may be moved, but
//     never copied.
//   * Buffers come back zero-filled at the requested shape; `_into` kernels
//     may reshape them (capacity is reused, the pool only grows).
//   * The pool is thread-local: kernels running on ThreadPool workers write
//     into the *caller's* destination and never touch the worker's pool, so
//     no synchronization is needed.
//
// Observability: `workspace.bytes_reused` counts bytes served from pooled
// capacity; `workspace.bytes_allocated` counts bytes that needed fresh heap.
// After warm-up the allocated counter must stay flat — the property the
// steady-state determinism tests pin down. `workspace.bytes_retained` is a
// gauge tracking the heap bytes currently parked in pools across all
// threads (delta-updated, so concurrent pools sum coherently).
//
// Retention policy: a long-running process (the serve engine) sees graphs
// of many sizes on one thread, and a pool that keeps the largest buffer it
// ever handed out per shape would grow without bound across heterogeneous
// traffic. acquire() therefore ages the pool: a pooled buffer that has not
// been *right-sized* for any lease in `trim_after()` consecutive
// acquisitions is released back to the heap. A lease is right-sized when
// the buffer's final contents fill at least half its capacity — best-fit
// lets a giant buffer left over from a one-off graph keep serving tiny
// requests, and such borrowed uses must not pin its capacity forever.
// Buffers in steady same-shape reuse refresh their age on every lease, so
// the zero-allocation steady state on homogeneous traffic is unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace cfgx {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // The calling thread's pool. Buffers never migrate across threads.
  static Workspace& local();

  // RAII ownership of one scratch buffer; returns it to the pool on
  // destruction. Movable so helpers can hand leases to callers.
  class Lease {
   public:
    Lease(Workspace* workspace, Matrix buffer, std::uint64_t stamp = 0)
        : workspace_(workspace), buffer_(std::move(buffer)), stamp_(stamp) {}

    Lease(Lease&& other) noexcept
        : workspace_(other.workspace_),
          buffer_(std::move(other.buffer_)),
          stamp_(other.stamp_) {
      other.workspace_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        workspace_ = other.workspace_;
        buffer_ = std::move(other.buffer_);
        stamp_ = other.stamp_;
        other.workspace_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() { release(); }

    Matrix& operator*() noexcept { return buffer_; }
    Matrix* operator->() noexcept { return &buffer_; }
    Matrix& get() noexcept { return buffer_; }
    const Matrix& get() const noexcept { return buffer_; }

   private:
    void release();

    Workspace* workspace_;
    Matrix buffer_;
    // The buffer's last right-sized acquisition stamp at lease time;
    // carried through so a poor-fit (borrowed oversized) use returns the
    // buffer with its age intact. See the retention policy above.
    std::uint64_t stamp_ = 0;
  };

  // A zero-filled rows x cols scratch buffer. Served from the smallest
  // pooled buffer with sufficient capacity when one exists (counted as
  // reused bytes); otherwise fresh storage is allocated (counted as
  // allocated bytes). Also ages the pool (see retention policy above).
  Lease acquire(std::size_t rows, std::size_t cols);

  // Buffers currently sitting in the pool (not leased out).
  std::size_t pooled_count() const noexcept { return pool_.size(); }
  // Total capacity (in doubles) of pooled buffers.
  std::size_t pooled_capacity() const noexcept;
  // Heap bytes currently parked in THIS pool (capacity * sizeof(double));
  // the cross-thread aggregate lives in the `workspace.bytes_retained`
  // gauge.
  std::size_t bytes_retained() const noexcept {
    return pooled_capacity() * sizeof(double);
  }

  // High-water-mark trim policy: a pooled buffer unused for this many
  // acquisitions is dropped. 0 disables trimming (the pre-serve behaviour:
  // the pool only grows). The default is far above the ~10^2 leases one
  // explanation takes, so a buffer in every-call reuse is never churned,
  // while a one-off giant graph's buffer is released within a few dozen
  // serving batches.
  static constexpr std::uint64_t kDefaultTrimAfter = 4096;
  void set_trim_after(std::uint64_t acquisitions) noexcept {
    trim_after_ = acquisitions;
  }
  std::uint64_t trim_after() const noexcept { return trim_after_; }

  // Drops every pooled buffer (tests; trimming after a huge one-off graph).
  void clear();

 private:
  friend class Lease;
  void release_buffer(Matrix buffer, std::uint64_t stamp);
  void trim_stale();

  struct PooledBuffer {
    Matrix buffer;
    // Acquisition count of the last lease whose final contents filled at
    // least half the buffer's capacity.
    std::uint64_t last_right_sized = 0;
  };

  std::vector<PooledBuffer> pool_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t trim_after_ = kDefaultTrimAfter;
};

}  // namespace cfgx
