// Thread-local scratch-buffer pool backing the allocation-free kernel path.
//
// Every destination-passing kernel (`matmul_into`, `spmm_into`, ...) writes
// into a caller-owned Matrix, and the hot callers (GCN inference, the
// Algorithm-2 interpreter, the explainer scorer) own those destinations as
// Workspace leases: acquire() hands out a shape-tagged scratch Matrix whose
// heap block is recycled across forward/backward passes, so a steady-state
// workload (repeated `interpret()` calls on same-sized graphs) performs no
// heap allocation at all after warm-up.
//
// Ownership rules (DESIGN.md decision 12):
//   * A Lease owns its buffer for its lifetime and returns it to the pool on
//     destruction. Leases nest freely (LIFO or not) and may be moved, but
//     never copied.
//   * Buffers come back zero-filled at the requested shape; `_into` kernels
//     may reshape them (capacity is reused, the pool only grows).
//   * The pool is thread-local: kernels running on ThreadPool workers write
//     into the *caller's* destination and never touch the worker's pool, so
//     no synchronization is needed.
//
// Observability: `workspace.bytes_reused` counts bytes served from pooled
// capacity; `workspace.bytes_allocated` counts bytes that needed fresh heap.
// After warm-up the allocated counter must stay flat — the property the
// steady-state determinism tests pin down.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace cfgx {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // The calling thread's pool. Buffers never migrate across threads.
  static Workspace& local();

  // RAII ownership of one scratch buffer; returns it to the pool on
  // destruction. Movable so helpers can hand leases to callers.
  class Lease {
   public:
    Lease(Workspace* workspace, Matrix buffer)
        : workspace_(workspace), buffer_(std::move(buffer)) {}

    Lease(Lease&& other) noexcept
        : workspace_(other.workspace_), buffer_(std::move(other.buffer_)) {
      other.workspace_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        workspace_ = other.workspace_;
        buffer_ = std::move(other.buffer_);
        other.workspace_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() { release(); }

    Matrix& operator*() noexcept { return buffer_; }
    Matrix* operator->() noexcept { return &buffer_; }
    Matrix& get() noexcept { return buffer_; }
    const Matrix& get() const noexcept { return buffer_; }

   private:
    void release();

    Workspace* workspace_;
    Matrix buffer_;
  };

  // A zero-filled rows x cols scratch buffer. Served from the smallest
  // pooled buffer with sufficient capacity when one exists (counted as
  // reused bytes); otherwise fresh storage is allocated (counted as
  // allocated bytes).
  Lease acquire(std::size_t rows, std::size_t cols);

  // Buffers currently sitting in the pool (not leased out).
  std::size_t pooled_count() const noexcept { return pool_.size(); }
  // Total capacity (in doubles) of pooled buffers.
  std::size_t pooled_capacity() const noexcept;

  // Drops every pooled buffer (tests; trimming after a huge one-off graph).
  void clear() { pool_.clear(); }

 private:
  friend class Lease;
  void release_buffer(Matrix buffer);

  std::vector<Matrix> pool_;
};

}  // namespace cfgx
