#include "nn/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "nn/simd.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

// Per-ISA attribution mirroring matrix.cpp: aggregate counters stay, the
// .scalar/.avx2 split records the serving code path.
obs::Counter& spmm_isa_counter(simd::Isa isa) {
  static obs::Counter& scalar =
      obs::MetricsRegistry::global().counter("kernel.spmm.calls.scalar");
  static obs::Counter& avx2 =
      obs::MetricsRegistry::global().counter("kernel.spmm.calls.avx2");
  return isa == simd::Isa::Avx2 ? avx2 : scalar;
}

[[noreturn]] void throw_spmm_shape(const char* op, std::size_t a_rows,
                                   std::size_t a_cols, const Matrix& b) {
  throw std::invalid_argument(std::string(op) + ": shape mismatch [" +
                              std::to_string(a_rows) + "x" +
                              std::to_string(a_cols) + "] vs [" +
                              std::to_string(b.rows()) + "x" +
                              std::to_string(b.cols()) + "]");
}

// Splits [0, extent) into at most pool.worker_count() contiguous chunks and
// runs body(begin, end) for each on the pool. Chunks are disjoint, so the
// body may write its output range without synchronization.
void parallel_ranges(ThreadPool& pool, std::size_t extent,
                     const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t chunk_count =
      std::max<std::size_t>(1, std::min(extent, pool.worker_count()));
  const std::size_t chunk = (extent + chunk_count - 1) / chunk_count;
  pool.parallel_for(chunk_count, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(extent, begin + chunk);
    if (begin < end) body(begin, end);
  });
}

void spmm_rows_scalar(const CsrMatrix& a, const Matrix& b, Matrix& out,
                      std::size_t row_begin, std::size_t row_end) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const std::size_t n_cols = b.cols();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double* out_row = out.data() + i * n_cols;
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = values[p];
      const double* b_row = b.data() + col_idx[p] * n_cols;
      for (std::size_t j = 0; j < n_cols; ++j) out_row[j] += v * b_row[j];
    }
  }
}

// ISA-dispatched CSR row loop. Per output element both implementations
// accumulate the row's nonzeros in ascending-p order (the scalar loop is
// p-outer / j-inner, the AVX2 one j-outer / p-inner — same per-element
// sequence), so they differ only by FMA contraction (bound in simd.hpp).
void spmm_rows(const CsrMatrix& a, const Matrix& b, Matrix& out,
               std::size_t row_begin, std::size_t row_end) {
  if (simd::dispatch() == simd::Isa::Avx2) {
    detail::spmm_rows_avx2(a.row_ptr().data(), a.col_idx().data(),
                           a.values().data(), b.data(), b.cols(), out.data(),
                           row_begin, row_end);
  } else {
    spmm_rows_scalar(a, b, out, row_begin, row_end);
  }
}

// A^T * B restricted to B's column slice [col_begin, col_end): every nnz
// (k -> i, v) scatters v * B[k, j] into out[i, j] for j in the slice only.
void spmm_transpose_cols(const CsrMatrix& a, const Matrix& b, Matrix& out,
                         std::size_t col_begin, std::size_t col_end) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const std::size_t n_cols = b.cols();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* b_row = b.data() + k * n_cols;
    for (std::size_t p = row_ptr[k]; p < row_ptr[k + 1]; ++p) {
      const double v = values[p];
      double* out_row = out.data() + col_idx[p] * n_cols;
      for (std::size_t j = col_begin; j < col_end; ++j) {
        out_row[j] += v * b_row[j];
      }
    }
  }
}

}  // namespace

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double threshold) {
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_ptr_.assign(out.rows_ + 1, 0);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::abs(v) > threshold) {
        out.col_idx_.push_back(static_cast<std::uint32_t>(j));
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[i + 1] = out.values_.size();
  }
  return out;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::uint32_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (row_ptr_.size() != rows_ + 1 || row_ptr_.front() != 0 ||
      row_ptr_.back() != values_.size() || col_idx_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent CSR arrays");
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) {
      throw std::invalid_argument("CsrMatrix: row_ptr must be non-decreasing");
    }
  }
  for (std::uint32_t c : col_idx_) {
    if (c >= cols_) throw std::invalid_argument("CsrMatrix: column out of range");
  }
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) = values_[p];
    }
  }
  return out;
}

CsrMatrix CsrMatrix::transpose() const {
  CsrMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(cols_ + 1, 0);
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  // Counting sort by source column: count, prefix-sum, scatter.
  for (std::uint32_t c : col_idx_) ++out.row_ptr_[c + 1];
  for (std::size_t i = 0; i < cols_; ++i) out.row_ptr_[i + 1] += out.row_ptr_[i];
  std::vector<std::size_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const std::size_t slot = cursor[col_idx_[p]]++;
      out.col_idx_[slot] = static_cast<std::uint32_t>(i);
      out.values_[slot] = values_[p];
    }
  }
  return out;
}

double CsrMatrix::density() const noexcept {
  const std::size_t total = rows_ * cols_;
  return total == 0 ? 0.0
                    : static_cast<double>(nnz()) / static_cast<double>(total);
}

BatchedCsr BatchedCsr::concat(const std::vector<const CsrMatrix*>& blocks) {
  std::size_t total_rows = 0;
  std::size_t total_cols = 0;
  std::size_t total_nnz = 0;
  for (std::size_t k = 0; k < blocks.size(); ++k) {
    if (blocks[k] == nullptr) {
      throw std::invalid_argument("BatchedCsr::concat: null block at index " +
                                  std::to_string(k));
    }
    total_rows += blocks[k]->rows();
    total_cols += blocks[k]->cols();
    total_nnz += blocks[k]->nnz();
  }
  if (total_cols > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "BatchedCsr::concat: total column count " + std::to_string(total_cols) +
        " overflows the 32-bit CSR column index");
  }

  std::vector<std::size_t> row_ptr;
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(total_rows + 1);
  col_idx.reserve(total_nnz);
  values.reserve(total_nnz);
  row_ptr.push_back(0);

  BatchedCsr batched;
  batched.ranges_.reserve(blocks.size());
  std::size_t row_base = 0;
  std::size_t col_base = 0;
  std::size_t nnz_base = 0;
  for (const CsrMatrix* block : blocks) {
    // Rows keep their block's entries verbatim: same order, same values.
    // Only the column indices shift, by the running column offset.
    for (std::size_t r = 0; r < block->rows(); ++r) {
      row_ptr.push_back(nnz_base + block->row_ptr()[r + 1]);
    }
    for (std::uint32_t c : block->col_idx()) {
      col_idx.push_back(static_cast<std::uint32_t>(col_base + c));
    }
    values.insert(values.end(), block->values().begin(),
                  block->values().end());
    batched.ranges_.push_back(Range{row_base, row_base + block->rows()});
    row_base += block->rows();
    col_base += block->cols();
    nnz_base += block->nnz();
  }

  batched.matrix_ = CsrMatrix(total_rows, total_cols, std::move(row_ptr),
                              std::move(col_idx), std::move(values));
  return batched;
}

void spmm_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
               ThreadPool* pool) {
  if (a.cols() != b.rows()) throw_spmm_shape("spmm", a.rows(), a.cols(), b);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.spmm.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.spmm.seconds");
  calls.add();
  spmm_isa_counter(simd::dispatch()).add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), b.cols());
  if (pool != nullptr && a.rows() > 1) {
    parallel_ranges(*pool, a.rows(), [&](std::size_t begin, std::size_t end) {
      spmm_rows(a, b, out, begin, end);
    });
  } else {
    spmm_rows(a, b, out, 0, a.rows());
  }
}

Matrix spmm(const CsrMatrix& a, const Matrix& b, ThreadPool* pool) {
  Matrix out;
  spmm_into(a, b, out, pool);
  return out;
}

void spmm_live_rows_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
                         const double* row_live, ThreadPool* pool) {
  if (row_live == nullptr) {
    spmm_into(a, b, out, pool);
    return;
  }
  if (a.cols() != b.rows()) throw_spmm_shape("spmm", a.rows(), a.cols(), b);
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.spmm.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.spmm.seconds");
  calls.add();
  spmm_isa_counter(simd::dispatch()).add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), b.cols());
  const auto live_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (row_live[i] != 0.0) spmm_rows(a, b, out, i, i + 1);
    }
  };
  if (pool != nullptr && a.rows() > 1) {
    parallel_ranges(*pool, a.rows(), live_rows);
  } else {
    live_rows(0, a.rows());
  }
}

void spmm_transpose_a_into(const CsrMatrix& a, const Matrix& b, Matrix& out,
                           ThreadPool* pool) {
  if (a.rows() != b.rows()) {
    throw_spmm_shape("spmm_transpose_a", a.rows(), a.cols(), b);
  }
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.spmm_transpose.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.spmm_transpose.seconds");
  calls.add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.cols(), b.cols());
  if (pool != nullptr && b.cols() > 1) {
    parallel_ranges(*pool, b.cols(), [&](std::size_t begin, std::size_t end) {
      spmm_transpose_cols(a, b, out, begin, end);
    });
  } else {
    spmm_transpose_cols(a, b, out, 0, b.cols());
  }
}

Matrix spmm_transpose_a(const CsrMatrix& a, const Matrix& b, ThreadPool* pool) {
  Matrix out;
  spmm_transpose_a_into(a, b, out, pool);
  return out;
}

void matmul_parallel_into(const Matrix& a, const Matrix& b, Matrix& out,
                          ThreadPool& pool) {
  if (a.cols() != b.rows()) {
    throw_spmm_shape("matmul_parallel", a.rows(), a.cols(), b);
  }
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("kernel.matmul_parallel.calls");
  static obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.matmul_parallel.seconds");
  calls.add();
  obs::ScopedDurationTimer timer(seconds);
  out.reshape(a.rows(), b.cols());
  parallel_ranges(pool, a.rows(), [&](std::size_t begin, std::size_t end) {
    detail::matmul_rows_dispatch(a, b, out, begin, end);
  });
}

Matrix matmul_parallel(const Matrix& a, const Matrix& b, ThreadPool& pool) {
  Matrix out;
  matmul_parallel_into(a, b, out, pool);
  return out;
}

}  // namespace cfgx
