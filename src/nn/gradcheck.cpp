#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace cfgx {
namespace {

double scalarize(const Matrix& output, const Matrix& weights) {
  double acc = 0.0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    acc += output.data()[i] * weights.data()[i];
  }
  return acc;
}

void fold(GradCheckResult& result, double analytic, double numeric) {
  const double abs_err = std::abs(analytic - numeric);
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-8});
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
}

}  // namespace

GradCheckResult check_gradient_against(Matrix& subject, const Matrix& analytic,
                                       const std::function<double()>& loss_of,
                                       double eps) {
  GradCheckResult result;
  for (std::size_t i = 0; i < subject.size(); ++i) {
    const double saved = subject.data()[i];
    subject.data()[i] = saved + eps;
    const double plus = loss_of();
    subject.data()[i] = saved - eps;
    const double minus = loss_of();
    subject.data()[i] = saved;
    fold(result, analytic.data()[i], (plus - minus) / (2.0 * eps));
  }
  return result;
}

GradCheckResult check_input_gradient(Module& module, const Matrix& input,
                                     const Matrix& weights, double eps) {
  Matrix x = input;
  module.zero_grad();
  const Matrix output = module.forward(x);
  const Matrix analytic = module.backward(weights);
  (void)output;
  return check_gradient_against(
      x, analytic, [&] { return scalarize(module.forward(x), weights); }, eps);
}

GradCheckResult check_parameter_gradients(Module& module, const Matrix& input,
                                          const Matrix& weights, double eps) {
  module.zero_grad();
  module.forward(input);
  module.backward(weights);

  GradCheckResult worst;
  for (Parameter* param : module.parameters()) {
    const Matrix analytic = param->grad;
    const GradCheckResult r = check_gradient_against(
        param->value, analytic,
        [&] { return scalarize(module.forward(input), weights); }, eps);
    worst.max_abs_error = std::max(worst.max_abs_error, r.max_abs_error);
    worst.max_rel_error = std::max(worst.max_rel_error, r.max_rel_error);
  }
  return worst;
}

}  // namespace cfgx
