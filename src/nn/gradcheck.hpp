// Numerical gradient checking against central finite differences.
//
// Lives in the library (not in tests/) because the ablation benches also
// use it to certify the analytic gradients of the exact configurations
// they time.
#pragma once

#include <functional>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"

namespace cfgx {

struct GradCheckResult {
  double max_abs_error = 0.0;   // max |analytic - numeric|
  double max_rel_error = 0.0;   // max |a-n| / max(|a|,|n|,1e-8)
  bool passed(double tol = 1e-5) const { return max_rel_error <= tol; }
};

// Checks dLoss/dInput of `module` for scalar loss = sum(weights .* output).
// `weights` fixes an arbitrary linear functional of the output so the full
// Jacobian is exercised, not just the row sums.
GradCheckResult check_input_gradient(Module& module, const Matrix& input,
                                     const Matrix& weights, double eps = 1e-6);

// Checks dLoss/dParameter for every parameter of `module` under the same
// scalarization.
GradCheckResult check_parameter_gradients(Module& module, const Matrix& input,
                                          const Matrix& weights,
                                          double eps = 1e-6);

// Generic checker: compares `analytic` to the central difference of
// `loss_of(x)` where x perturbs `subject` elementwise.
GradCheckResult check_gradient_against(
    Matrix& subject, const Matrix& analytic,
    const std::function<double()>& loss_of, double eps = 1e-6);

}  // namespace cfgx
