#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cfgx {
namespace {

void check_targets(const Matrix& scores, const std::vector<std::size_t>& targets,
                   const char* who) {
  if (targets.size() != scores.rows()) {
    throw std::invalid_argument(std::string(who) + ": batch size mismatch");
  }
  for (std::size_t t : targets) {
    if (t >= scores.cols()) {
      throw std::invalid_argument(std::string(who) + ": target class out of range");
    }
  }
}

}  // namespace

LossResult nll_from_probabilities(const Matrix& probabilities,
                                  const std::vector<std::size_t>& targets,
                                  double bias) {
  check_targets(probabilities, targets, "nll_from_probabilities");
  const auto batch = static_cast<double>(probabilities.rows());
  LossResult result;
  result.grad = Matrix(probabilities.rows(), probabilities.cols());
  for (std::size_t i = 0; i < probabilities.rows(); ++i) {
    const double p = probabilities(i, targets[i]);
    result.value += -std::log(p + bias);
    result.grad(i, targets[i]) = -1.0 / ((p + bias) * batch);
  }
  result.value /= batch;
  return result;
}

LossResult softmax_cross_entropy(const Matrix& logits,
                                 const std::vector<std::size_t>& targets) {
  check_targets(logits, targets, "softmax_cross_entropy");
  const auto batch = static_cast<double>(logits.rows());
  Matrix probs = softmax_rows(logits);
  LossResult result;
  // The target probability is clamped identically in the loss value and in
  // the gradient, so both describe the same (floored) function: with
  // extreme logits the softmax underflows to exactly 0 and an unclamped
  // pair would mix a finite loss with the gradient of the unfloored one.
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const double p = std::max(probs(i, targets[i]), kSoftmaxProbFloor);
    result.value += -std::log(p);
    probs(i, targets[i]) = p - 1.0;
  }
  result.value /= batch;
  probs *= 1.0 / batch;
  result.grad = std::move(probs);
  return result;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    const double m = *std::max_element(row.begin(), row.end());
    double denom = 0.0;
    for (double& v : row) {
      v = std::exp(v - m);
      denom += v;
    }
    for (double& v : row) v /= denom;
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Matrix& scores) {
  std::vector<std::size_t> out(scores.rows());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.row(r);
    out[r] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

}  // namespace cfgx
