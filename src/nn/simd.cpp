#include "nn/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace cfgx::simd {
namespace {

// -1 = unresolved; otherwise a valid Isa enum value.
std::atomic<int> g_active_isa{-1};
std::mutex g_resolve_mutex;

bool probe_avx2() noexcept {
#if defined(CFGX_HAVE_AVX2_BUILD) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa resolve_from_environment() {
  const char* env = std::getenv("CFGX_SIMD");
  if (env != nullptr && *env != '\0') {
    const Isa requested = parse_isa(env);  // throws on unknown values
    if (requested == Isa::Avx2 && !avx2_supported()) {
      throw std::runtime_error(
          "CFGX_SIMD=avx2: AVX2+FMA not supported on this host/build");
    }
    return requested;
  }
  return avx2_supported() ? Isa::Avx2 : Isa::Scalar;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::Avx2:
      return "avx2";
    case Isa::Scalar:
      break;
  }
  return "scalar";
}

Isa parse_isa(const std::string& value) {
  if (value == "scalar") return Isa::Scalar;
  if (value == "avx2") return Isa::Avx2;
  throw std::invalid_argument("unknown SIMD ISA '" + value +
                              "' (expected 'avx2' or 'scalar')");
}

bool avx2_supported() noexcept {
  static const bool supported = probe_avx2();
  return supported;
}

void record_isa_metric() {
  const int active = g_active_isa.load(std::memory_order_relaxed);
  obs::MetricsRegistry::global()
      .gauge("kernels.isa")
      .set(active < 0 ? 0 : active);
}

Isa dispatch() {
  int active = g_active_isa.load(std::memory_order_relaxed);
  if (active < 0) {
    std::lock_guard<std::mutex> lock(g_resolve_mutex);
    active = g_active_isa.load(std::memory_order_relaxed);
    if (active < 0) {
      // Resolution may throw (malformed CFGX_SIMD); the override stays
      // unresolved so the error repeats on every kernel call instead of
      // silently degrading.
      const Isa resolved = resolve_from_environment();
      active = static_cast<int>(resolved);
      g_active_isa.store(active, std::memory_order_relaxed);
      record_isa_metric();
    }
  }
  return static_cast<Isa>(active);
}

void set_isa(Isa isa) {
  if (isa == Isa::Avx2 && !avx2_supported()) {
    throw std::runtime_error(
        "simd::set_isa: AVX2+FMA not supported on this host/build");
  }
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  record_isa_metric();
}

}  // namespace cfgx::simd
